"""Quickstart: from a chiplet design to an assembled, scored quantum MCM.

This walks the full public API in a few minutes on a laptop:

1. model collision-limited yield of a heavy-hex chiplet vs. a monolith,
2. repair the monolith batch with a post-fabrication tuner and compare
   the as-fab and repaired yields (the CLI equivalent is
   ``python -m repro run tunedyield --tuning greedy``),
3. fabricate a batch of chiplets, screen them for frequency collisions and
   characterise their gate errors (known-good-die testing),
4. assemble them into a 2x2 multi-chip module,
5. compile a benchmark onto the module and estimate its success via the
   fidelity product of its two-qubit gates.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.circuits.benchmarks import build_benchmark
from repro.compiler.transpile import transpile
from repro.core.assembly import assemble_mcms, fabricate_chiplet_bin, post_assembly_yield
from repro.core.chiplet import ChipletDesign
from repro.core.fabrication import FabricationModel
from repro.core.frequencies import allocate_heavy_hex_frequencies
from repro.core.mcm import MCMDesign
from repro.core.yield_model import simulate_yield
from repro.device.calibration import washington_cx_model
from repro.device.noise import LinkErrorModel
from repro.simulation.esp import fidelity_product
from repro.topology.heavy_hex import heavy_hex_by_qubit_count
from repro.tuning import TuningOptions


def main() -> None:
    rng = np.random.default_rng(7)
    fabrication = FabricationModel(sigma_ghz=0.014)  # laser-tuned precision

    # ------------------------------------------------------------------ #
    # 1. Collision-free yield: 20-qubit chiplet vs. 80-qubit monolith
    # ------------------------------------------------------------------ #
    chiplet = ChipletDesign.build(20)
    chiplet_yield = simulate_yield(chiplet.allocation, fabrication, 2000, rng)

    monolith = heavy_hex_by_qubit_count(80)
    mono_allocation = allocate_heavy_hex_frequencies(monolith)
    mono_yield = simulate_yield(mono_allocation, fabrication, 2000, rng)

    print("Collision-free yield (sigma_f = 0.014 GHz, batch of 2000):")
    print(
        format_table(
            ["device", "qubits", "yield"],
            [
                ["20-qubit chiplet", 20, f"{chiplet_yield.collision_free_yield:.3f}"],
                ["80-qubit monolith", 80, f"{mono_yield.collision_free_yield:.3f}"],
            ],
        )
    )

    # ------------------------------------------------------------------ #
    # 2. Post-fabrication repair: turn dead monolith dies into yield
    # ------------------------------------------------------------------ #
    repaired = simulate_yield(
        mono_allocation,
        fabrication,
        2000,
        np.random.default_rng(7),
        tuning=TuningOptions(),  # greedy local repair, laser-like tuner
    )
    print(
        f"\nPost-fabrication repair (80-qubit monolith): as-fab yield "
        f"{repaired.as_fab_yield:.3f} -> repaired {repaired.repaired_yield:.3f} "
        f"({repaired.num_repaired} dies recovered, "
        f"{repaired.tuned_qubits} qubits shifted)"
    )

    # ------------------------------------------------------------------ #
    # 3. Known-good-die testing of a fabricated chiplet batch
    # ------------------------------------------------------------------ #
    cx_model = washington_cx_model()
    chiplet_bin = fabricate_chiplet_bin(chiplet, fabrication, cx_model, 2000, rng)
    print(
        f"\nKGD bin: {chiplet_bin.num_collision_free}/{chiplet_bin.batch_size} dies survive "
        f"screening; best average CX error "
        f"{chiplet_bin.chiplets[0].average_error:.4f}, worst "
        f"{chiplet_bin.chiplets[-1].average_error:.4f}"
    )

    # ------------------------------------------------------------------ #
    # 4. Assemble 2x2 MCMs (80 qubits) from the sorted bin
    # ------------------------------------------------------------------ #
    mcm_design = MCMDesign.build(chiplet, 2, 2)
    link_model = LinkErrorModel.from_mean_median()
    assembly = assemble_mcms(chiplet_bin, mcm_design, link_model, rng)
    mcm_yield = post_assembly_yield(assembly, chiplet_bin.batch_size)
    best = min(assembly.mcms, key=lambda m: m.average_error)
    print(
        f"\nAssembled {assembly.num_mcms} collision-free 2x2 MCMs "
        f"({mcm_design.num_qubits} qubits each, {mcm_design.num_links} inter-chip links); "
        f"post-assembly yield {mcm_yield:.3f} vs. monolithic "
        f"{mono_yield.collision_free_yield:.3f}"
    )
    device = best.to_device("best-mcm")
    print(
        f"Best module: E_avg = {device.average_two_qubit_error():.4f} "
        f"(on-chip {device.average_on_chip_error():.4f}, links {device.average_link_error():.4f})"
    )

    # ------------------------------------------------------------------ #
    # 5. Compile a benchmark and estimate its success probability
    # ------------------------------------------------------------------ #
    circuit = build_benchmark("qaoa", int(0.8 * device.num_qubits), seed=1)
    transpiled = transpile(circuit, device)
    score = fidelity_product(transpiled.two_qubit_edges, device)
    print(
        f"\nQAOA at 80% utilisation: {transpiled.metrics.num_two_qubit} two-qubit gates "
        f"after routing ({transpiled.num_swaps} SWAPs); "
        f"log10 fidelity product = {score.log10_fidelity:.2f}"
    )


if __name__ == "__main__":
    main()
