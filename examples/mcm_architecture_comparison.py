"""Architecture comparison: should your next 180-qubit machine be modular?

Uses the shared :class:`ArchitectureStudy` pipeline to answer the paper's
central question for one target size: it fabricates chiplet batches,
assembles 3x3 MCMs of 20-qubit chiplets, compares yield and average
two-qubit error against a 180-qubit monolith under the four link-quality
scenarios of Fig. 9, and finally compiles the benchmark suite onto both
architectures (Fig. 10 style).

Run with:  python examples/mcm_architecture_comparison.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.analysis.study import ArchitectureStudy, StudyConfig
from repro.circuits.benchmarks import BENCHMARK_NAMES, build_benchmark
from repro.compiler.transpile import transpile
from repro.engine import ExecutionEngine
from repro.simulation.esp import fidelity_product, fidelity_ratio


def main() -> None:
    chiplet_size, grid = 20, (3, 3)
    config = StudyConfig(
        chiplet_batch_size=2000,
        monolithic_batch_size=2000,
        chiplet_sizes=(chiplet_size,),
        seed=2022,
    )
    # The engine fans the study's independent products (chiplet bin,
    # monolithic Monte-Carlo) out over worker processes; results are
    # bit-identical to the sequential path.
    study = ArchitectureStudy(config, engine=ExecutionEngine(use_cache=False))
    study.prefetch(
        chiplet_sizes=(chiplet_size,),
        mcm_grids=[(chiplet_size, grid)],
        monolithic_sizes=(chiplet_size * grid[0] * grid[1],),
    )

    mcm = study.mcm_result(chiplet_size, grid)
    mono = study.monolithic_result(mcm.design.num_qubits)

    # ------------------------------------------------------------------ #
    # Yield and average-error comparison
    # ------------------------------------------------------------------ #
    print(f"Target machine: {mcm.design.num_qubits} qubits "
          f"({grid[0]}x{grid[1]} MCM of {chiplet_size}-qubit chiplets vs. monolith)\n")
    print(
        format_table(
            ["architecture", "yield", "assembled devices"],
            [
                ["monolithic", f"{mono.collision_free_yield:.4f}",
                 f"{int(mono.collision_free_yield * config.monolithic_batch_size)}"],
                ["MCM", f"{mcm.post_assembly_yield:.4f}", f"{mcm.num_mcms}"],
            ],
        )
    )

    num_mono = max(1, int(round(mono.collision_free_yield * config.monolithic_batch_size)))
    rows = []
    for scenario in study.scenarios:
        eavg = mcm.eavg_for_scenario(scenario, count=num_mono)
        ratio = eavg / mono.eavg if mono.eavg > 0 else float("inf")
        rows.append([scenario.name, f"{eavg:.4f}", f"{mono.eavg:.4f}", f"{ratio:.3f}"])
    print("\nAverage two-qubit infidelity (scaled collision-free comparison):")
    print(format_table(["link scenario", "E_avg MCM", "E_avg mono", "ratio"], rows))

    # ------------------------------------------------------------------ #
    # Application-level comparison (fidelity product of 2q gates)
    # ------------------------------------------------------------------ #
    width = int(0.8 * mcm.design.num_qubits)
    rows = []
    for name in BENCHMARK_NAMES:
        circuit = build_benchmark(name, width, seed=5)
        mcm_score = fidelity_product(
            transpile(circuit, mcm.best_device).two_qubit_edges, mcm.best_device
        )
        mono_score = None
        if mono.representative_device is not None:
            mono_score = fidelity_product(
                transpile(circuit, mono.representative_device).two_qubit_edges,
                mono.representative_device,
            )
        ratio = fidelity_ratio(mcm_score, mono_score)
        rows.append(
            [
                name,
                f"{mcm_score.log10_fidelity:.1f}",
                "0-yield" if mono_score is None else f"{mono_score.log10_fidelity:.1f}",
                "inf" if ratio == float("inf") else f"{ratio:.3g}",
            ]
        )
    print(f"\nBenchmark fidelity products at {width} qubits (80% utilisation):")
    print(format_table(["benchmark", "log10 F_mcm", "log10 F_mono", "F_mcm / F_mono"], rows))
    print("\nRatios above 1 mark workloads where the modular machine wins outright;")
    print("'inf' marks sizes a monolithic device cannot even be manufactured for.")


if __name__ == "__main__":
    main()
