"""Design-space exploration: how far can a monolithic transmon chip scale?

Reproduces the reasoning behind the paper's Fig. 4 and Section V-C at a
reduced batch size: it sweeps fabrication precision and the ideal detuning
step, locates the precision needed to keep monolithic yield alive at
1000 qubits, and quantifies the manufacturing-output gain of switching to
chiplets for a 100-qubit machine.

The sweep runs through the parallel experiment engine — the same path as
``python -m repro run fig4 --jobs N`` — so it uses every available core
and caches its Monte-Carlo points on disk for instant re-runs.

Run with:  python examples/yield_design_space.py
"""

from __future__ import annotations

from repro.analysis.figures import run_fig4_yield_sweep, run_sec5c_fabrication_output
from repro.analysis.reporting import format_table
from repro.engine import ExecutionEngine


def main() -> None:
    engine = ExecutionEngine()  # all cores, on-disk cache under .repro_cache/

    # ------------------------------------------------------------------ #
    # Yield vs. size for three fabrication precisions and two step sizes
    # ------------------------------------------------------------------ #
    sizes = (10, 20, 40, 65, 100, 200, 300, 500, 1000)
    sweep = run_fig4_yield_sweep(
        steps_ghz=(0.04, 0.06),
        sigmas_ghz=(0.1323, 0.014, 0.006),
        sizes=sizes,
        batch_size=800,
        seed=7,
        engine=engine,
    )
    print("Collision-free yield vs. qubits (rows: detuning step / sigma_f):")
    print(sweep.format_table())
    print(
        f"\nBest detuning step at laser-tuned precision: "
        f"{sweep.best_step(0.014):.2f} GHz (paper: 0.06 GHz)"
    )

    sigma_needed = None
    for sigma in (0.1323, 0.014, 0.006):
        if sweep.curves[(0.06, sigma)][-1] > 0:
            sigma_needed = sigma
            break
    print(
        "Largest simulated sigma_f with non-zero yield at 1000 qubits: "
        f"{sigma_needed} GHz (paper argues sigma_f < 0.006 GHz is required)"
    )

    # ------------------------------------------------------------------ #
    # Fabrication output: 100-qubit monolith vs. 2x5 MCM of 10-qubit chiplets
    # ------------------------------------------------------------------ #
    output = run_sec5c_fabrication_output(batch_size=1000, seed=7, engine=engine)
    print("\nManufacturing output from the same wafer budget (Section V-C):")
    print(
        format_table(
            ["architecture", "collision-free machines"],
            [
                ["100-qubit monolith", f"{output.monolithic_devices:.0f}"],
                ["2x5 MCM of 10-qubit chiplets", f"{output.mcm_devices:.0f}"],
            ],
        )
    )
    print(f"Output gain: {output.gain:.2f}x (paper reports ~7.7x)")
    print(f"\n[engine] {engine.stats.summary()}")


if __name__ == "__main__":
    main()
