"""Known-good-die binning strategies for MCM assembly.

The paper assembles MCMs from the *best* chiplets first ("speed binning").
This example quantifies how much that choice matters by assembling the same
batch of 20-qubit chiplets three ways — best-first, random, and worst-first
— and comparing the average two-qubit error of the first few modules each
strategy produces.

Run with:  python examples/chiplet_binning_strategies.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.assembly import ChipletBin, assemble_mcms, fabricate_chiplet_bin
from repro.core.chiplet import ChipletDesign
from repro.core.fabrication import FabricationModel
from repro.core.mcm import MCMDesign
from repro.device.calibration import washington_cx_model
from repro.device.noise import LinkErrorModel


def _reordered(bin_: ChipletBin, strategy: str, rng: np.random.Generator) -> ChipletBin:
    chiplets = list(bin_.chiplets)
    if strategy == "random":
        rng.shuffle(chiplets)
    elif strategy == "worst-first":
        chiplets = chiplets[::-1]
    elif strategy != "best-first":
        raise ValueError(f"unknown strategy {strategy!r}")
    return ChipletBin(design=bin_.design, chiplets=chiplets, batch_size=bin_.batch_size)


def main() -> None:
    rng = np.random.default_rng(11)
    design = ChipletDesign.build(20)
    cx_model = washington_cx_model()
    link_model = LinkErrorModel.from_mean_median()

    bin_ = fabricate_chiplet_bin(design, FabricationModel(0.014), cx_model, 3000, rng)
    mcm_design = MCMDesign.build(design, 2, 2)
    print(
        f"Fabricated {bin_.batch_size} chiplets, {bin_.num_collision_free} collision-free "
        f"({bin_.collision_free_yield:.1%}); assembling 2x2 MCMs three ways.\n"
    )

    rows = []
    for strategy in ("best-first", "random", "worst-first"):
        reordered = _reordered(bin_, strategy, np.random.default_rng(3))
        assembly = assemble_mcms(
            reordered, mcm_design, link_model, np.random.default_rng(5), max_mcms=25
        )
        first_five = [m.average_error for m in assembly.mcms[:5]]
        all_25 = [m.average_error for m in assembly.mcms]
        rows.append(
            [
                strategy,
                f"{np.mean(first_five):.4f}",
                f"{np.mean(all_25):.4f}",
                assembly.num_mcms,
            ]
        )
    print(
        format_table(
            ["strategy", "E_avg of first 5 MCMs", "E_avg of first 25", "modules built"],
            rows,
        )
    )
    print(
        "\nBest-first binning concentrates the lowest-error dies in the first modules —"
        "\nthe mechanism behind the MCM advantage in the paper's Fig. 9 comparison."
    )


if __name__ == "__main__":
    main()
