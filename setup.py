"""Setup shim for environments without the `wheel` package (offline installs).

All project metadata lives in pyproject.toml; this file only enables legacy
`pip install -e . --no-use-pep517` / `python setup.py develop` workflows.
"""
from setuptools import setup

setup()
