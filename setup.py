"""Package metadata for the `repro` reproduction.

Kept as a plain setup.py (no build-system requirements beyond
setuptools) so offline `pip install -e .` / `python setup.py develop`
workflows keep working in hermetic environments.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Scaling Superconducting Quantum Computers with "
        "Chiplet Architectures' (MICRO 2022): collision-limited yield, "
        "chiplet/MCM architecture evaluation, parallel experiment engine, "
        "adaptive Monte-Carlo statistics"
    ),
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=[
        # Floor = the version CI's oldest-numpy leg pins: the sample bank
        # relies on Generator.normal == sigma * standard_normal bitwise
        # and on bit-generator state round-trips, both verified there.
        "numpy>=1.24",
        "scipy",
        "networkx",
    ],
    extras_require={
        "test": [
            "pytest",
            "pytest-benchmark",
            "pytest-cov",
            "hypothesis",
        ],
    },
)
