"""Cross-PR performance-trend harness.

Every benchmark in this directory commits its measurements to a
``BENCH_*.json`` file.  Those files are *snapshots*: each PR regenerates
the ones its changes touch, and the repository history is the only
record of how a number moved.  This script folds the snapshots into one
committed ledger, ``BENCH_trend.json``, so a perf regression shows up as
a diff in a single file instead of an archaeology session:

* every run collects the speedup-style metrics (any numeric leaf whose
  key is ``speedup`` or ends in ``_speedup``, plus ``memory_ratio``),
  the ``speedup_regression`` flags, the ``speedup_context`` noise-floor
  annotations, and the ``cores`` counts from each ``BENCH_*.json``;
* the collected metrics become one *row* labelled for the current PR
  (default ``PR-<n>`` where ``n`` is the next line of ``CHANGES.md``,
  i.e. the PR being prepared; override with ``--label``).  Re-running
  replaces the row with the same label, so the script is idempotent
  within a PR and appends across PRs;
* ``--check`` exits non-zero naming every file that set
  ``speedup_regression: true`` anywhere — CI runs this so a regression
  a benchmark flagged cannot merge silently.

The ``cores`` and ``speedup_context`` fields ride along because a
sub-1.0x reading on a 1-core CI host is usually the measurement noise
floor, not a regression — the benchmarks record that context and the
trend ledger preserves it next to the number (see README
"Performance").

Standard library only: the harness must run in CI before any optional
dependency is installed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = [
    "collect_file_metrics",
    "build_row",
    "fold_row",
    "find_regressions",
    "main",
]

TREND_FILENAME = "BENCH_trend.json"

#: Numeric leaves collected even though their key is not speedup-shaped.
EXTRA_METRIC_KEYS = frozenset({"memory_ratio"})


def _is_metric_key(key: str) -> bool:
    return key == "speedup" or key.endswith("_speedup") or key in EXTRA_METRIC_KEYS


def _walk(node, path, out):
    """Depth-first walk recording metrics, flags, contexts and cores."""
    if isinstance(node, dict):
        for key, value in node.items():
            child = f"{path}.{key}" if path else key
            if _is_metric_key(key) and isinstance(value, (int, float)):
                out["speedups"][child] = value
            elif key == "speedup_regression":
                if bool(value):
                    out["regressions"].append(child)
            elif key == "speedup_context" and value:
                out["contexts"][child] = value
            elif key == "cores" and isinstance(value, int):
                out["cores"].add(value)
            else:
                _walk(value, child, out)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            _walk(value, f"{path}[{index}]", out)


def collect_file_metrics(path: Path) -> dict:
    """Summarise one ``BENCH_*.json`` file into a trend entry."""
    doc = json.loads(path.read_text())
    out = {"speedups": {}, "regressions": [], "contexts": {}, "cores": set()}
    _walk(doc, "", out)
    return {
        "speedups": dict(sorted(out["speedups"].items())),
        "regressions": sorted(out["regressions"]),
        "contexts": dict(sorted(out["contexts"].items())),
        "cores": sorted(out["cores"]),
    }


def bench_files(directory: Path) -> list[Path]:
    """The snapshot files, excluding the ledger itself."""
    return sorted(
        path
        for path in directory.glob("BENCH_*.json")
        if path.name != TREND_FILENAME
    )


def build_row(directory: Path, label: str) -> dict:
    """Fold every snapshot in *directory* into one labelled trend row."""
    return {
        "label": label,
        "files": {
            path.name: collect_file_metrics(path) for path in bench_files(directory)
        },
    }


def fold_row(ledger_path: Path, row: dict) -> dict:
    """Insert *row* into the ledger, replacing any row with the same label."""
    if ledger_path.exists():
        ledger = json.loads(ledger_path.read_text())
    else:
        ledger = {"rows": []}
    rows = [r for r in ledger.get("rows", []) if r.get("label") != row["label"]]
    rows.append(row)
    ledger["rows"] = rows
    ledger_path.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")
    return ledger


def find_regressions(directory: Path) -> dict[str, list[str]]:
    """Map file name -> paths that set ``speedup_regression: true``."""
    flagged = {}
    for path in bench_files(directory):
        regressions = collect_file_metrics(path)["regressions"]
        if regressions:
            flagged[path.name] = regressions
    return flagged


def default_label(repo_root: Path) -> str:
    """``PR-<n>`` where ``n`` is the CHANGES.md line this PR will add."""
    changes = repo_root / "CHANGES.md"
    if changes.exists():
        lines = [line for line in changes.read_text().splitlines() if line.strip()]
        return f"PR-{len(lines) + 1}"
    return "PR-1"


def main(argv: list[str] | None = None) -> int:
    directory = Path(__file__).resolve().parent
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir",
        type=Path,
        default=directory,
        help="directory holding the BENCH_*.json snapshots",
    )
    parser.add_argument(
        "--label",
        default=None,
        help="trend-row label (default: PR-<next CHANGES.md line>)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any snapshot sets speedup_regression: true",
    )
    args = parser.parse_args(argv)

    flagged = find_regressions(args.dir)
    if args.check:
        if flagged:
            for name, paths in sorted(flagged.items()):
                for path in paths:
                    print(f"REGRESSION {name}: {path}", file=sys.stderr)
            return 1
        print(f"no speedup regressions across {len(bench_files(args.dir))} files")
        return 0

    label = args.label or default_label(args.dir.parent)
    row = build_row(args.dir, label)
    ledger = fold_row(args.dir / TREND_FILENAME, row)
    metrics = sum(len(entry["speedups"]) for entry in row["files"].values())
    print(
        f"{TREND_FILENAME}: row {label!r} folded from "
        f"{len(row['files'])} files ({metrics} metrics); "
        f"{len(ledger['rows'])} rows total"
    )
    for name, paths in sorted(flagged.items()):
        for path in paths:
            print(f"WARNING regression flagged in {name}: {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
