"""Ablation benchmarks for the design choices called out in DESIGN.md.

Two ablations complement the paper's figures:

* frequency-step ablation — how the collision-free yield of the 20-qubit
  chiplet responds to the ideal detuning step (the paper fixes 0.06 GHz
  after the Fig. 4 sweep);
* collision-threshold ablation — how sensitive yield is to the Table I
  windows (tighter CR requirements shrink the windows, looser ones grow
  them), quantifying how much of the scaling wall is due to the criteria
  themselves rather than to fabrication precision.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.sweeps import sweep_parameter
from repro.core.chiplet import ChipletDesign
from repro.core.collisions import CollisionThresholds
from repro.core.fabrication import FabricationModel
from repro.core.frequencies import FrequencySpec, allocate_heavy_hex_frequencies
from repro.core.yield_model import simulate_yield


def _chiplet_yield_for_step(step: float, seed: int = 17) -> float:
    design = ChipletDesign.build(20, spec=FrequencySpec(step_ghz=step))
    rng = np.random.default_rng(seed)
    return simulate_yield(
        design.allocation, FabricationModel(0.014), 1500, rng
    ).collision_free_yield


def test_ablation_frequency_step(benchmark):
    """Yield peaks near the paper's 0.06 GHz detuning step.

    The runner's fixed default seed gives every step the same frequency
    draws (common random numbers), so the cross-step comparison is
    sample-wise rather than merely statistical.
    """
    steps = (0.03, 0.04, 0.05, 0.06, 0.07, 0.08)
    results = benchmark.pedantic(
        sweep_parameter, args=(steps, _chiplet_yield_for_step), rounds=1, iterations=1
    )
    print("\n[Ablation] 20-qubit chiplet yield vs. ideal detuning step")
    print(format_table(["step (GHz)", "yield"], [[s, f"{y:.3f}"] for s, y in results]))
    yields = dict(results)
    assert max(yields, key=yields.get) in (0.05, 0.06, 0.07)
    assert yields[0.06] > yields[0.03]


def _yield_for_threshold_scale(scale: float, seed: int = 23) -> float:
    thresholds = CollisionThresholds(
        type1_ghz=0.017 * scale,
        type2_ghz=0.004 * scale,
        type3_ghz=0.030 * scale,
        type5_ghz=0.017 * scale,
        type6_ghz=0.025 * scale,
        type7_ghz=0.017 * scale,
    )
    lattice_allocation = allocate_heavy_hex_frequencies(
        ChipletDesign.build(60).lattice
    )
    rng = np.random.default_rng(seed)
    return simulate_yield(
        lattice_allocation, FabricationModel(0.014), 1200, rng, thresholds=thresholds
    ).collision_free_yield


def test_ablation_collision_thresholds(benchmark):
    """Yield falls monotonically as the collision windows widen.

    Every scale reuses the runner's fixed default seed, so widening the
    windows can only remove surviving devices — the monotonicity
    assertion below is guaranteed, not statistical.
    """
    scales = (0.5, 1.0, 1.5, 2.0)
    results = benchmark.pedantic(
        sweep_parameter, args=(scales, _yield_for_threshold_scale), rounds=1, iterations=1
    )
    print("\n[Ablation] 60-qubit chiplet yield vs. collision-window scale")
    print(format_table(["window scale", "yield"], [[s, f"{y:.3f}"] for s, y in results]))
    yields = [y for _, y in results]
    assert yields == sorted(yields, reverse=True)
    assert yields[0] > yields[-1]
