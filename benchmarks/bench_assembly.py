"""E-ASM — MCM placement search: batched vs. batch-of-1 collision checks.

``assembly._try_placements`` historically evaluated candidate chiplet
placements one at a time — up to 100 ``collision_free_mask`` calls of
batch size 1 per subset.  The current implementation tests the in-order
placement first and, when it collides, evaluates *every* candidate
permutation in one vectorised batch (rewinding and replaying the random
stream so downstream link sampling is bit-identical).

This benchmark replays the search over the subsets of a real assembly
run with both strategies, asserts placement-for-placement identical
outcomes (including the generator's end state), and writes the measured
speedup to ``benchmarks/BENCH_assembly.json``.  It also times the
vectorised ``edge_errors`` construction of ``fabricate_chiplet_bin``
against the historical per-(survivor, coupling) Python loop.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.assembly import _try_placements, fabricate_chiplet_bin
from repro.core.chiplet import ChipletDesign
from repro.core.collisions import collision_free_mask
from repro.core.fabrication import FabricationModel
from repro.core.mcm import MCMDesign
from repro.device.calibration import washington_cx_model

RESULT_PATH = Path(__file__).parent / "BENCH_assembly.json"

#: Fabrication precision of the benchmark bin.  0.05 GHz keeps survivor
#: frequencies scattered enough that in-order placements regularly collide
#: (tens of reshuffles per subset, occasional timeouts) while still
#: yielding a bin of ~180 dies — the regime the batched search accelerates.
BENCH_SIGMA = 0.05

CHIPLET_QUBITS = 10
GRID = (2, 2)
BATCH_SIZE = 3000
SEED = 2022
MAX_RESHUFFLES = 100


def _reference_try_placements(subset, design, rng, max_reshuffles, thresholds):
    """The historical draw-one-test-one search (pre-vectorisation)."""
    num_chips = design.num_chips
    attempts = 0
    placement = list(range(num_chips))
    while True:
        frequencies = design.assemble_frequencies(
            [subset[i].frequencies_ghz for i in placement]
        )
        if bool(collision_free_mask(design.allocation, frequencies, thresholds)[0]):
            return placement, attempts
        if attempts >= max_reshuffles:
            return None, attempts
        attempts += 1
        placement = list(rng.permutation(num_chips))


def _subsets(chiplet_bin, num_chips):
    pool = list(chiplet_bin.chiplets)
    while len(pool) >= num_chips:
        yield pool[:num_chips]
        pool = pool[num_chips:]


def _run_search(search, subsets, design):
    rng = np.random.default_rng(SEED + 1)
    outcomes = []
    started = time.perf_counter()
    for subset in subsets:
        placement, attempts = search(subset, design, rng, MAX_RESHUFFLES, None)
        outcomes.append((placement, attempts))
    elapsed = time.perf_counter() - started
    return outcomes, elapsed, rng.bit_generator.state


def test_batched_placement_search_matches_reference_and_is_fast():
    """Batched candidate evaluation is outcome- and stream-identical to the
    sequential reference, and faster once reshuffles actually happen."""
    design = ChipletDesign.build(CHIPLET_QUBITS)
    mcm_design = MCMDesign.build(design, *GRID)
    cx_model = washington_cx_model(seed=11)
    chiplet_bin = fabricate_chiplet_bin(
        design,
        FabricationModel(sigma_ghz=BENCH_SIGMA),
        cx_model,
        batch_size=BATCH_SIZE,
        rng=np.random.default_rng(SEED),
    )
    subsets = list(_subsets(chiplet_bin, mcm_design.num_chips))
    assert subsets, "benchmark bin produced no assemblable subsets"

    reference, ref_seconds, ref_state = _run_search(
        _reference_try_placements, subsets, mcm_design
    )
    batched, bat_seconds, bat_state = _run_search(
        _try_placements, subsets, mcm_design
    )

    assert batched == reference
    assert bat_state == ref_state, "random stream diverged from the reference"

    total_attempts = sum(attempts for _, attempts in reference)
    timeouts = sum(1 for placement, _ in reference if placement is None)
    speedup = ref_seconds / bat_seconds if bat_seconds > 0 else float("inf")

    # Vectorised edge_errors construction vs. the historical per-element loop.
    survivors = np.stack([c.frequencies_ghz for c in chiplet_bin.chiplets])
    edges = design.edges()
    edge_u = np.asarray([u for u, _ in edges])
    edge_v = np.asarray([v for _, v in edges])
    detunings = np.abs(survivors[:, edge_u] - survivors[:, edge_v])
    errors = cx_model.sample_many(detunings, np.random.default_rng(SEED + 2))

    started = time.perf_counter()
    loop_dicts = [
        {edges[col]: float(errors[row, col]) for col in range(len(edges))}
        for row in range(errors.shape[0])
    ]
    loop_seconds = time.perf_counter() - started

    started = time.perf_counter()
    vector_dicts = [dict(zip(edges, row)) for row in errors.tolist()]
    vector_seconds = time.perf_counter() - started
    assert vector_dicts == loop_dicts
    edge_speedup = loop_seconds / vector_seconds if vector_seconds > 0 else float("inf")

    record = {
        "benchmark": "mcm_placement_search",
        "chiplet_qubits": CHIPLET_QUBITS,
        "grid": list(GRID),
        "batch_size": BATCH_SIZE,
        "sigma_ghz": BENCH_SIGMA,
        "num_subsets": len(subsets),
        "total_reshuffles": total_attempts,
        "timeouts": timeouts,
        "sequential_seconds": round(ref_seconds, 4),
        "batched_seconds": round(bat_seconds, 4),
        "speedup": round(speedup, 3),
        "bit_identical": True,
        "edge_errors": {
            "survivors": int(errors.shape[0]),
            "couplings": len(edges),
            "loop_seconds": round(loop_seconds, 4),
            "vectorised_seconds": round(vector_seconds, 4),
            "speedup": round(edge_speedup, 3),
        },
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\n[assembly] {len(subsets)} subsets, {total_attempts} reshuffles, "
        f"{timeouts} timeouts: sequential {ref_seconds:.3f}s, "
        f"batched {bat_seconds:.3f}s -> speedup {speedup:.2f}x"
    )
    print(
        f"[assembly] edge_errors dicts: loop {loop_seconds:.3f}s, "
        f"vectorised {vector_seconds:.3f}s -> speedup {edge_speedup:.2f}x"
    )
    print(f"[assembly] wrote {RESULT_PATH}")
