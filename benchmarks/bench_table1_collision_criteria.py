"""E-T1 — Table I: the seven frequency-collision criteria.

Regenerates a demonstration of each collision type and benchmarks the
vectorised collision checker on a Washington-sized device batch.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures.tables import run_table1_collision_criteria
from repro.core.collisions import collision_free_mask
from repro.core.fabrication import FabricationModel
from repro.core.frequencies import allocate_heavy_hex_frequencies
from repro.topology.heavy_hex import heavy_hex_by_qubit_count


def test_table1_criteria_demonstration(benchmark):
    """Every Table I criterion is detected on a crafted three-qubit device."""
    result = benchmark(run_table1_collision_criteria)
    print("\n[Table I] collision-criteria demonstrations")
    print(result.format_table())
    assert all(row["detected"] for row in result.rows)


def test_table1_vectorised_checker_throughput(benchmark):
    """Throughput of the batched collision check on a 127-qubit device."""
    lattice = heavy_hex_by_qubit_count(127)
    allocation = allocate_heavy_hex_frequencies(lattice)
    frequencies = FabricationModel(0.014).sample_batch(
        allocation, 1000, np.random.default_rng(0)
    )
    mask = benchmark(collision_free_mask, allocation, frequencies)
    print(f"\n[Table I] collision-free fraction on 127 qubits: {mask.mean():.3f}")
    assert 0.0 <= mask.mean() <= 1.0
