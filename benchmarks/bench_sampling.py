"""E-SAMP — common-random-number sample bank on the Fig. 4/7 detuning sweep.

Runs the yield-vs-sigma detuning sweep (20 fabrication precisions, one
shared-draw axis) twice sequentially — sample bank disabled, then
enabled — and writes ``benchmarks/BENCH_sampling.json``:

* **bit-identity asserted**: the banked sweep must reproduce every
  unbanked yield point exactly (same counts, same CI bounds) — banking
  is an affine re-scaling of the same standard-normal draws, never a
  statistical change;
* **sampling_speedup asserted (>= 3x)**: wall-clock of the ``sample``
  phase bucket (see :mod:`repro.engine.phases`).  With ``share_draws``
  the 20-sigma grid fabricates each device size ONCE and re-scales
  banked draws for the other 19 points, so the sampling pass collapses;
* **end_to_end_speedup reported, not asserted**: sampling is ~40% of
  the sample+mask pipeline, so Amdahl caps the whole-sweep win well
  below the sampling-pass win — the honest number is recorded for the
  trend ledger.

The in-process sequential path has no ambient phase collector, so the
benchmark wraps each sweep in ``collecting()`` itself.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import bench_batch_size

from repro.core.sample_bank import (
    clear_sample_bank,
    sample_bank_stats,
    set_sample_bank_enabled,
)
from repro.core.yield_model import detuning_sweep
from repro.engine import phases

RESULT_PATH = Path(__file__).parent / "BENCH_sampling.json"

#: One detuning step, twenty fabrication precisions, two device sizes:
#: the yield-vs-sigma axis of the detuning study, wide enough that the
#: shared-draw design (one sampling pass + 19 re-scalings per size)
#: dominates the measurement.
SIGMA_GRID = tuple(round(0.004 + 0.007 * i, 6) for i in range(20))
SWEEP_KWARGS = dict(
    steps_ghz=(0.06,),
    sigmas_ghz=SIGMA_GRID,
    sizes=(200, 500),
    seed=7,
    share_draws=True,
)

#: Floor asserted on the sampling-phase speedup (the issue's contract).
SAMPLING_SPEEDUP_FLOOR = 3.0


def _timed_sweep(batch: int):
    """Sequential sweep; returns (curves, sample_seconds, total_seconds)."""
    with phases.collecting() as buckets:
        started = time.perf_counter()
        curves = detuning_sweep(**SWEEP_KWARGS, batch_size=batch)
        total = time.perf_counter() - started
    return curves, buckets.get("sample", 0.0), total


def _flatten(curves) -> list[tuple]:
    """Every yield point as a comparable tuple, in grid order."""
    return [
        (key, p.num_qubits, p.num_collision_free, p.batch_size, p.ci_low, p.ci_high)
        for key in sorted(curves)
        for p in curves[key].points
    ]


def test_sample_bank_detuning_sweep_speedup():
    """Banked sweep: bit-identical points, >= 3x faster sampling phase."""
    batch = min(bench_batch_size(1000), 2000)

    try:
        set_sample_bank_enabled(False)
        _timed_sweep(batch)  # warm-up: allocations, lattice caches, imports
        unbanked, unbanked_sample, unbanked_total = _timed_sweep(batch)

        set_sample_bank_enabled(True)
        clear_sample_bank()
        banked, banked_sample, banked_total = _timed_sweep(batch)
        bank = sample_bank_stats()
    finally:
        set_sample_bank_enabled(None)
        clear_sample_bank()

    assert _flatten(banked) == _flatten(unbanked), (
        "banked sweep diverged from the unbanked sweep"
    )
    # One miss per device size; every other (sigma, size) cell re-scales.
    assert bank["misses"] == len(SWEEP_KWARGS["sizes"])
    assert bank["hits"] == len(SWEEP_KWARGS["sizes"]) * (len(SIGMA_GRID) - 1)
    assert bank["bypasses"] == 0

    sampling_speedup = unbanked_sample / banked_sample if banked_sample > 0 else None
    end_to_end_speedup = unbanked_total / banked_total if banked_total > 0 else None
    assert sampling_speedup is not None and sampling_speedup >= SAMPLING_SPEEDUP_FLOOR, (
        f"sampling phase speedup {sampling_speedup:.2f}x below the "
        f"{SAMPLING_SPEEDUP_FLOOR}x floor "
        f"(unbanked {unbanked_sample:.4f}s vs banked {banked_sample:.4f}s)"
    )

    record = {
        "benchmark": "sample_bank_detuning_sweep",
        "batch_size": batch,
        "num_sigmas": len(SIGMA_GRID),
        "sizes": list(SWEEP_KWARGS["sizes"]),
        "bit_identical": True,
        "bank": {key: bank[key] for key in ("hits", "misses", "entries", "bytes")},
        "unbanked_sample_seconds": round(unbanked_sample, 4),
        "banked_sample_seconds": round(banked_sample, 4),
        "unbanked_total_seconds": round(unbanked_total, 4),
        "banked_total_seconds": round(banked_total, 4),
        "sampling_speedup": round(sampling_speedup, 3),
        "end_to_end_speedup": round(end_to_end_speedup, 3),
        "sampling_speedup_floor": SAMPLING_SPEEDUP_FLOOR,
        "speedup_regression": sampling_speedup < SAMPLING_SPEEDUP_FLOOR,
        "speedup_context": (
            "sampling_speedup is the `sample` phase bucket (the pass the "
            "bank removes); end_to_end_speedup includes the collision mask "
            "and reduction, which Amdahl leaves untouched"
        ),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print(
        f"\n[sampling] {len(SIGMA_GRID)} sigmas x {len(SWEEP_KWARGS['sizes'])} "
        f"sizes, batch {batch}"
    )
    print(
        f"[sampling] sample phase: {unbanked_sample:.3f}s -> "
        f"{banked_sample:.3f}s  ({sampling_speedup:.2f}x)"
    )
    print(
        f"[sampling] end to end:   {unbanked_total:.3f}s -> "
        f"{banked_total:.3f}s  ({end_to_end_speedup:.2f}x)"
    )
    print(f"[sampling] bank: {bank['hits']} hits / {bank['misses']} misses")
    print(f"[sampling] wrote {RESULT_PATH}")
