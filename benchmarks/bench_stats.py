"""E-STATS — the adaptive Monte-Carlo statistics layer, measured.

Compares fixed-batch yield estimation (the paper's flat 1000 samples per
sweep point) against the adaptive chunked estimator (draw spawn-seeded
chunks until the Wilson CI half-width reaches a target) on the Fig. 4
size sweep, and the O(batch) monolithic sampler against the O(chunk)
streaming sampler on peak memory.  Writes the measurements to
``benchmarks/BENCH_stats.json``.

The headline numbers this records:

* deep-in-the-tail points (yield ~ 0 at large monoliths, ~ 1 at small
  chiplets) reach the CI target after a chunk or two — a fraction of the
  fixed 1000-sample budget, at equal-or-better reported precision;
* streaming peak memory stays flat in the batch size.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path

from repro.core.collisions import collision_free_mask
from repro.core.fabrication import FabricationModel
from repro.core.frequencies import allocate_heavy_hex_frequencies
from repro.core.yield_model import (
    materialize_seeded_batch,
    simulate_yield_adaptive,
    simulate_yield_streaming,
)
from repro.stats import samples_for_half_width
from repro.topology.heavy_hex import heavy_hex_by_qubit_count

RESULT_PATH = Path(__file__).parent / "BENCH_stats.json"

SIGMA_GHZ = 0.014
STEP_GHZ = 0.06
SIZES = (10, 20, 40, 100, 200, 500)
FIXED_BATCH = 1000
CI_TARGET = 0.02
CHUNK_SIZE = 250
MAX_SAMPLES = 4000
SEED = 7

MEMORY_BATCH = 20_000
MEMORY_CHUNK = 500
MEMORY_SIZE = 100


def _allocation(size: int):
    from repro.core.frequencies import FrequencySpec

    return allocate_heavy_hex_frequencies(
        heavy_hex_by_qubit_count(size), spec=FrequencySpec(step_ghz=STEP_GHZ)
    )


def test_adaptive_reaches_target_with_fewer_samples():
    """Adaptive sampling hits the 0.02 CI target below the fixed budget on
    the tail points, and the JSON artifact records the whole sweep."""
    fabrication = FabricationModel(SIGMA_GHZ)
    points = []
    for size in SIZES:
        allocation = _allocation(size)
        started = time.perf_counter()
        fixed = simulate_yield_streaming(
            allocation, fabrication,
            batch_size=FIXED_BATCH, chunk_size=CHUNK_SIZE, seed=SEED,
        )
        fixed_seconds = time.perf_counter() - started
        started = time.perf_counter()
        adaptive = simulate_yield_adaptive(
            allocation, fabrication,
            ci_target=CI_TARGET, max_samples=MAX_SAMPLES,
            chunk_size=CHUNK_SIZE, seed=SEED,
        )
        adaptive_seconds = time.perf_counter() - started
        points.append(
            {
                "num_qubits": size,
                "fixed": {
                    "samples": fixed.samples_used,
                    "estimate": fixed.estimate,
                    "ci_half_width": round(fixed.ci_half_width, 6),
                    "seconds": round(fixed_seconds, 4),
                },
                "adaptive": {
                    "samples": adaptive.samples_used,
                    "estimate": adaptive.estimate,
                    "ci_half_width": round(adaptive.ci_half_width, 6),
                    "reached_target": adaptive.ci_half_width <= CI_TARGET,
                    "seconds": round(adaptive_seconds, 4),
                },
                "normal_approx_samples_needed": samples_for_half_width(
                    fixed.estimate, CI_TARGET
                ),
            }
        )

    wins = [
        p
        for p in points
        if p["adaptive"]["reached_target"]
        and p["adaptive"]["samples"] < p["fixed"]["samples"]
    ]
    total_fixed = sum(p["fixed"]["samples"] for p in points)
    total_adaptive = sum(p["adaptive"]["samples"] for p in points)

    memory = _peak_memory_comparison()

    record = {
        "benchmark": "adaptive_vs_fixed_yield_sampling",
        "sigma_ghz": SIGMA_GHZ,
        "step_ghz": STEP_GHZ,
        "ci_target_half_width": CI_TARGET,
        "chunk_size": CHUNK_SIZE,
        "fixed_batch": FIXED_BATCH,
        "max_samples": MAX_SAMPLES,
        "seed": SEED,
        "points": points,
        "points_where_adaptive_beats_fixed_budget": len(wins),
        "total_samples_fixed": total_fixed,
        "total_samples_adaptive": total_adaptive,
        "peak_memory": memory,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\n[stats] adaptive hit the {CI_TARGET} target under the fixed "
        f"{FIXED_BATCH}-sample budget on {len(wins)}/{len(points)} points "
        f"({total_adaptive} vs {total_fixed} total samples)"
    )
    print(
        f"[stats] streaming peak memory {memory['streaming_peak_mb']} MB vs "
        f"monolithic {memory['monolithic_peak_mb']} MB "
        f"({memory['batch_size']} devices x {memory['num_qubits']} qubits)"
    )
    print(f"[stats] wrote {RESULT_PATH}")

    # Acceptance: at least one sweep point reaches the 0.02 half-width
    # with fewer total samples than the fixed 1000-sample batch.
    assert wins, "adaptive sampling never beat the fixed budget at target CI"
    for p in points:
        for mode in ("fixed", "adaptive"):
            estimate = p[mode]["estimate"]
            assert 0.0 <= estimate <= 1.0


def _peak_memory_comparison() -> dict:
    """tracemalloc peaks: materialise-everything vs stream-by-chunk."""
    allocation = _allocation(MEMORY_SIZE)
    fabrication = FabricationModel(SIGMA_GHZ)

    tracemalloc.start()
    batch = materialize_seeded_batch(
        allocation, fabrication,
        batch_size=MEMORY_BATCH, chunk_size=MEMORY_CHUNK, seed=SEED,
    )
    monolithic_count = int(collision_free_mask(allocation, batch).sum())
    _, monolithic_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del batch

    tracemalloc.start()
    streamed = simulate_yield_streaming(
        allocation, fabrication,
        batch_size=MEMORY_BATCH, chunk_size=MEMORY_CHUNK, seed=SEED,
    )
    _, streaming_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # the memory benchmark doubles as one more parity check
    assert streamed.num_collision_free == monolithic_count

    return {
        "batch_size": MEMORY_BATCH,
        "chunk_size": MEMORY_CHUNK,
        "num_qubits": MEMORY_SIZE,
        "monolithic_peak_mb": round(monolithic_peak / 1e6, 2),
        "streaming_peak_mb": round(streaming_peak / 1e6, 2),
        "memory_ratio": round(monolithic_peak / max(streaming_peak, 1), 1),
    }
