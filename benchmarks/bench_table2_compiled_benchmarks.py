"""E-T2 — Table II: compiled-benchmark gate counts on 2x2 MCM systems.

Compiles the seven benchmarks (80 % utilisation) onto 2x2 MCMs built from
10/20/40/60/90-qubit chiplets and reports the single-qubit count, the
two-qubit count and the two-qubit critical path for each, mirroring the
paper's Table II.
"""

from __future__ import annotations

from conftest import full_run

from repro.analysis.figures.tables import run_table2_compiled_benchmarks


def test_table2_compiled_benchmark_details(benchmark, engine):
    """Gate counts grow with system size; routing dominates large systems."""
    chiplet_sizes = (10, 20, 40, 60, 90) if full_run() else (10, 20, 40)
    result = benchmark.pedantic(
        run_table2_compiled_benchmarks,
        kwargs={
            "chiplet_sizes": chiplet_sizes,
            "utilisation": 0.8,
            "seed": 5,
            "engine": engine,
        },
        rounds=1,
        iterations=1,
    )
    print("\n[Table II] compiled benchmark details (2x2 MCMs, 80% utilisation)")
    print(result.format_table())

    # Two-qubit counts for a given benchmark grow with the system size.
    for name in ("bv", "adder", "primacy"):
        counts = [
            row["num_two_qubit"]
            for row in result.rows
            if row["benchmark"] == name
        ]
        assert counts == sorted(counts)
    # The critical path never exceeds the two-qubit gate count.
    for row in result.rows:
        assert 0 < row["two_qubit_critical_path"] <= row["num_two_qubit"]
