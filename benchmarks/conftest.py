"""Shared fixtures for the figure/table regeneration benchmarks.

Every benchmark regenerates the data behind one table or figure of the
paper and prints the corresponding rows/series.  The Monte-Carlo batch
sizes default to a laptop-friendly scale; set ``REPRO_BENCH_BATCH`` (e.g.
to 10000, the paper's value) and ``REPRO_BENCH_FULL=1`` for a full-scale
run.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.study import ArchitectureStudy, StudyConfig
from repro.engine import ExecutionEngine


def bench_batch_size(default: int = 3000) -> int:
    """Monte-Carlo batch size used by the benchmarks."""
    return int(os.environ.get("REPRO_BENCH_BATCH", default))


def full_run() -> bool:
    """True when the full-scale (paper-sized) sweep was requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_jobs() -> int:
    """Worker processes for the engine (``REPRO_BENCH_JOBS``, default: all)."""
    return int(os.environ.get("REPRO_BENCH_JOBS", os.cpu_count() or 1))


@pytest.fixture(scope="session")
def engine() -> ExecutionEngine:
    """Shared execution engine (cache off so timings stay honest)."""
    return ExecutionEngine(jobs=bench_jobs(), use_cache=False)


@pytest.fixture(scope="session")
def study(engine) -> ArchitectureStudy:
    """Architecture study shared by the Fig. 8 / Fig. 9 / Fig. 10 benchmarks.

    Carries the session engine, so the figure drivers prefetch chiplet
    bins, assemblies and monolithic Monte-Carlo runs in parallel.
    """
    batch = bench_batch_size()
    config = StudyConfig(
        chiplet_batch_size=batch,
        monolithic_batch_size=batch,
        seed=2022,
    )
    return ArchitectureStudy(config, engine=engine)


@pytest.fixture(scope="session")
def application_chiplet_sizes() -> tuple[int, ...]:
    """Chiplet sizes used by the application-level benchmarks.

    The default covers the square systems highlighted in Fig. 9(a)/Fig. 10(b)
    (where the paper locates the MCM advantage); the full 102-configuration
    sweep is enabled with ``REPRO_BENCH_FULL=1``.
    """
    if full_run():
        return (10, 20, 40, 60, 90, 120, 160, 200, 250)
    return (20, 40, 60, 90)
