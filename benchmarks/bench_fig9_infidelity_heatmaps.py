"""E-F9 — Fig. 9: E_avg,MCM / E_avg,Mono heat-maps for square MCMs.

Compares the average two-qubit infidelity of assembled square MCMs (using
the scaled collision-free bin, i.e. as many best modules as there are
collision-free monoliths) against monolithic devices of the same size under
four link-quality scenarios: the state of the art (e_link/e_chip ~ 4.17)
and improved links with ratios 3, 2 and 1.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.figures.fig9_heatmaps import run_fig9_infidelity_heatmap


def test_fig9_average_infidelity_heatmaps(benchmark, study):
    """Carefully-selected MCMs reach lower E_avg; better links help further."""
    result = benchmark.pedantic(
        run_fig9_infidelity_heatmap, args=(study,), rounds=1, iterations=1
    )

    for scenario in ("state-of-art", "elink=3echip", "elink=2echip", "elink=1echip"):
        print(f"\n[Fig. 9] E_avg,MCM / E_avg,Mono — scenario: {scenario}")
        print(result.format_table(scenario))
        print(
            f"  fraction of cells with MCM advantage: "
            f"{result.fraction_below_one(scenario):.2f}; "
            f"best ratio: {result.best_ratio(scenario):.3f}"
        )

    # The best state-of-the-art ratio is well below one (paper: ~0.815).
    assert result.best_ratio("state-of-art") < 0.95
    # Improving the link error monotonically increases the MCM-win fraction.
    fractions = [
        result.fraction_below_one(s)
        for s in ("state-of-art", "elink=3echip", "elink=2echip", "elink=1echip")
    ]
    assert all(b >= a - 1e-9 for a, b in zip(fractions, fractions[1:]))
    # With links as good as on-chip couplings the MCM wins (almost) everywhere.
    assert fractions[-1] > 0.85

    # Mid-sized chiplets (20-90 qubits) show an advantage at state of the art.
    soa = [
        c
        for c in result.cells
        if c["scenario"] == "state-of-art"
        and c["chiplet_size"] in (20, 40, 60, 90)
        and np.isfinite(c["ratio"])
    ]
    assert any(c["ratio"] < 1.0 for c in soa)
