"""E-F8 — Fig. 8: yield vs. qubits for monolithic and MCM architectures.

Fabricates chiplet batches, assembles every MCM configuration (102 in the
full run), applies assembly/bump-bond losses (including the 100x failure
sensitivity study), and compares against monolithic Monte-Carlo yields.
The paper's headline numbers are 9.6-92.6x average yield improvements for
<~500-qubit machines.
"""

from __future__ import annotations

from math import inf

from repro.analysis.figures.fig8_mcm import run_fig8_yield_comparison
from repro.analysis.reporting import format_series


def test_fig8_yield_monolithic_vs_mcm(benchmark, study):
    """MCMs preserve high yield at sizes where monoliths drop to ~zero."""
    result = benchmark.pedantic(
        run_fig8_yield_comparison, args=(study,), rounds=1, iterations=1
    )

    print("\n[Fig. 8a] monolithic yield vs. qubits")
    print(format_series("monolithic", [(n, f"{y:.4f}") for n, y in result.monolithic]))
    for chiplet_size, series in sorted(result.mcm_series.items()):
        printable = [(n, f"{y:.4f} (100x link-fail: {y100:.4f})") for n, y, y100 in series]
        print(format_series(f"MCM, {chiplet_size}-qubit chiplets", printable))
    print("\n[Fig. 8b] chiplet yields and average yield improvements")
    print(result.format_table())

    # Monolithic yield collapses with size (paper: ~10 % at 120 qubits,
    # essentially zero beyond ~400 qubits).
    mono = dict(result.monolithic)
    assert mono[min(mono)] > mono[max(mono)]
    large_sizes = [n for n in mono if n >= 400]
    assert all(mono[n] < 0.02 for n in large_sizes)

    # Chiplet yields decrease with chiplet size (Fig. 8b).
    chiplet_yields = [result.chiplet_yields[s] for s in sorted(result.chiplet_yields)]
    assert chiplet_yields == sorted(chiplet_yields, reverse=True)

    # Average yield improvement per chiplet group is large and grows into the
    # tens, matching the paper's 9.6-92.6x range (infinite groups appear when
    # every monolithic counterpart had zero yield).
    finite = [v for v in result.yield_improvements.values() if v != inf]
    assert finite, "at least one chiplet group must have a finite improvement"
    assert min(finite) > 3.0
    assert max(finite) > 20.0
