"""E-F10 — Fig. 10: application-level fidelity, MCM vs. monolithic.

Compiles the seven-benchmark suite (sized at 80 % device utilisation) onto
the best assembled MCM and onto a representative collision-free monolithic
device of the same size, then compares the two-qubit-gate fidelity products.
Monolithic sizes with zero collision-free yield appear as ``inf`` ratios —
the red-X points of the paper's figure, where the MCM is the only option.

The default run covers the square systems of Fig. 10(b); set
``REPRO_BENCH_FULL=1`` for the full 102-configuration sweep of Fig. 10(a).
"""

from __future__ import annotations

from math import inf

from conftest import full_run

from repro.analysis.figures.fig10_apps import run_fig10_applications
from repro.circuits.benchmarks import BENCHMARK_NAMES


def test_fig10_application_fidelity_ratios(benchmark, study, application_chiplet_sizes):
    """Selected modular systems achieve benchmark-fidelity parity or better."""
    result = benchmark.pedantic(
        run_fig10_applications,
        kwargs={
            "study": study,
            "chiplet_sizes": application_chiplet_sizes,
            "square_only": not full_run(),
            "benchmarks": BENCHMARK_NAMES,
            "utilisation": 0.8,
            "seed": 5,
        },
        rounds=1,
        iterations=1,
    )
    print("\n[Fig. 10] MCM / monolithic benchmark-fidelity ratios (80% utilisation)")
    print(result.format_table())

    assert result.rows, "the sweep must produce at least one comparison"
    # Every benchmark was compiled on every system.
    benchmarks_seen = {row["benchmark"] for row in result.rows}
    assert benchmarks_seen == set(BENCHMARK_NAMES)

    # Zero-yield monolithic counterparts appear as infinite ratios: there the
    # MCM is the only way to run the workload at all.
    zero_yield = [r for r in result.rows if r["mono_log10_fidelity"] is None]
    assert all(r["ratio"] == inf for r in zero_yield)

    # Among systems where both architectures exist, the MCM wins a meaningful
    # share of the comparisons (the paper highlights the 40/60/90-qubit
    # chiplet square systems).
    finite = [r for r in result.rows if r["mono_log10_fidelity"] is not None]
    if finite:
        wins = sum(1 for r in finite if r["ratio"] >= 1.0)
        print(f"\nMCM advantage in {wins}/{len(finite)} finite comparisons")
        assert wins >= 1
