"""E-ENG — the execution engine, measured: auto backend + staged kernel.

Two measurements, written to ``benchmarks/BENCH_engine.json``:

* ``fig4_detuning_sweep``: the Fig. 4 Monte-Carlo grid run sequentially
  vs. through the engine's default ``auto`` backend (with task fusion).
  Bit-identical yields are asserted unconditionally.  The speedup is
  recorded with a noise band: on a single-core host the auto mode's
  whole job is to *not* pay pool overhead, so the honest expectation is
  ~1.0x there and > 1x only when real cores exist.
* ``staged_collision_mask``: the staged shrinking-subset collision
  kernel vs. the historical single-pass full-batch evaluation, at the
  yield phase transition where staging pays.  Bit-identical masks are
  asserted, and the kernel speedup is asserted > 1x (>= 1.5x under
  ``REPRO_BENCH_STRICT=1``) — this is a per-core win, independent of
  how many workers the host offers.

The pool-speedup assertion (>= 2x) only fires with
``REPRO_BENCH_STRICT=1`` on >= 4 cores; one-shot wall-clock numbers on
shared CI runners are too noisy to gate a build on by default.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from conftest import bench_batch_size, bench_jobs

from repro.analysis.figures.fig4_yield import run_fig4_yield_sweep
from repro.core.collisions import CollisionThresholds, collision_free_mask
from repro.core.frequencies import FrequencySpec, allocate_heavy_hex_frequencies
from repro.engine import ExecutionEngine
from repro.topology.heavy_hex import heavy_hex_by_qubit_count

RESULT_PATH = Path(__file__).parent / "BENCH_engine.json"

SWEEP_KWARGS = dict(
    steps_ghz=(0.04, 0.05, 0.06, 0.07),
    sigmas_ghz=(0.1323, 0.014, 0.006),
    sizes=(5, 10, 20, 40, 65, 100, 200, 300, 500),
    seed=7,
)

#: Measured speedups below this are regressions; between this and 1.0 is
#: measurement noise on a host that cannot parallelise (the engine's
#: sequential downgrade costs nothing but the measurement still jitters).
_NOISE_FLOOR = 0.9

_RECORD: dict = {}


def _flush() -> None:
    RESULT_PATH.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")
    print(f"[engine] wrote {RESULT_PATH}")


def _timed_sweep(engine: ExecutionEngine | None, batch_size: int):
    started = time.perf_counter()
    result = run_fig4_yield_sweep(
        **SWEEP_KWARGS, batch_size=batch_size, engine=engine
    )
    return result, time.perf_counter() - started


def test_engine_auto_backend_sweep_matches_sequential_and_is_fast(benchmark):
    """Auto-backend Fig. 4 sweeps are bit-identical to sequential, and
    faster when the hardware has the cores to show it."""
    cores = os.cpu_count() or 1
    jobs = max(2, bench_jobs())
    batch = min(bench_batch_size(1000), 2000)

    sequential, seq_seconds = _timed_sweep(None, batch)
    engine = ExecutionEngine(jobs=jobs, use_cache=False, backend="auto")
    parallel, par_seconds = benchmark.pedantic(
        lambda: _timed_sweep(engine, batch), rounds=1, iterations=1
    )

    assert parallel.curves.keys() == sequential.curves.keys()
    for key in sequential.curves:
        assert parallel.curves[key] == sequential.curves[key], key

    speedup = seq_seconds / par_seconds if par_seconds > 0 else float("inf")
    num_points = len(SWEEP_KWARGS["steps_ghz"]) * len(SWEEP_KWARGS["sigmas_ghz"]) * len(
        SWEEP_KWARGS["sizes"]
    )
    regression = speedup < _NOISE_FLOOR
    workers_used = engine.stats.workers_used
    if speedup >= 1.0:
        context = None
    elif cores <= 1:
        context = (
            f"host has {cores} core(s): the auto backend resolves batches "
            "sequentially, so ~1.0x (no pool overhead) is the ceiling here; "
            "sub-1.0x readings within the noise band are measurement jitter"
        )
    elif jobs > cores:
        context = (
            f"{jobs} jobs oversubscribe {cores} physical core(s); "
            "pool overhead dominates"
        )
    else:
        context = (
            "parallel slower than sequential despite available cores — "
            "investigate worker startup / pickling overhead for this batch"
        )
    _RECORD["fig4_detuning_sweep"] = {
        "num_points": num_points,
        "batch_size": batch,
        "cores": cores,
        "jobs": jobs,
        "backend": engine.stats.backend,
        "workers_used": workers_used,
        "tasks_fused": engine.stats.tasks_fused,
        "fusion_batches": engine.stats.fusion_batches,
        "sequential_seconds": round(seq_seconds, 4),
        "parallel_seconds": round(par_seconds, 4),
        "speedup": round(speedup, 3),
        "speedup_regression": regression,
        "speedup_context": context,
        "bit_identical": True,
        "tasks_per_second_parallel": round(num_points / par_seconds, 2)
        if par_seconds > 0
        else None,
    }
    print(f"\n[engine] sequential {seq_seconds:.2f}s, auto {par_seconds:.2f}s "
          f"({workers_used} worker(s) used of {jobs} jobs on {cores} cores, "
          f"{engine.stats.tasks_fused} tasks fused) -> speedup {speedup:.2f}x")
    if context:
        print(f"[engine] NOTE: {context}")
    _flush()

    if cores >= 4 and os.environ.get("REPRO_BENCH_STRICT", "0") == "1":
        assert speedup >= 2.0, (
            f"expected >=2x speedup on {cores} cores, measured {speedup:.2f}x"
        )


def _unstaged_mask(allocation, freqs, thresholds) -> np.ndarray:
    """The historical kernel, verbatim: every criterion over the full batch."""
    th = thresholds
    alpha = allocation.anharmonicities
    collided = np.zeros(freqs.shape[0], dtype=bool)
    edges = allocation.directed_edges
    if edges.shape[0]:
        fi = freqs[:, edges[:, 0]]
        fj = freqs[:, edges[:, 1]]
        ai = alpha[edges[:, 0]][np.newaxis, :]
        aj = alpha[edges[:, 1]][np.newaxis, :]
        collided |= (np.abs(fi - fj) < th.type1_ghz).any(axis=1)
        collided |= (np.abs(fi + ai / 2.0 - fj) < th.type2_ghz).any(axis=1)
        collided |= (
            (np.abs(fi - (fj + aj)) < th.type3_ghz)
            | (np.abs(fj - (fi + ai)) < th.type3_ghz)
        ).any(axis=1)
        collided |= ((fj < fi + ai) | (fi < fj)).any(axis=1)
    triples = allocation.control_triples
    if triples.shape[0]:
        fi = freqs[:, triples[:, 0]]
        fj = freqs[:, triples[:, 1]]
        fk = freqs[:, triples[:, 2]]
        ai = alpha[triples[:, 0]][np.newaxis, :]
        aj = alpha[triples[:, 1]][np.newaxis, :]
        ak = alpha[triples[:, 2]][np.newaxis, :]
        collided |= (np.abs(fj - fk) < th.type5_ghz).any(axis=1)
        collided |= (
            (np.abs(fj - (fk + ak)) < th.type6_ghz)
            | (np.abs(fk - (fj + aj)) < th.type6_ghz)
        ).any(axis=1)
        collided |= (np.abs(2.0 * fi + ai - (fj + fk)) < th.type7_ghz).any(axis=1)
    return ~collided


def test_staged_collision_mask_matches_unstaged_and_is_fast():
    """The staged kernel == the single-pass kernel, severalfold cheaper."""
    lattice = heavy_hex_by_qubit_count(500)
    allocation = allocate_heavy_hex_frequencies(lattice, spec=FrequencySpec())
    thresholds = CollisionThresholds()
    batch = min(bench_batch_size(1000), 2000)
    # sigma at the laser-tuned phase transition: nearly every device dies
    # on a pair criterion, which is exactly where staging pays.
    rng = np.random.default_rng(7)
    freqs = rng.normal(
        allocation.ideal_frequencies, 0.014, size=(batch, allocation.num_qubits)
    )

    reference = _unstaged_mask(allocation, freqs, thresholds)
    staged = collision_free_mask(allocation, freqs, thresholds)
    assert np.array_equal(staged, reference), "staged mask diverged"

    unstaged_seconds = min(
        _timed(lambda: _unstaged_mask(allocation, freqs, thresholds))
        for _ in range(3)
    )
    staged_seconds = min(
        _timed(lambda: collision_free_mask(allocation, freqs, thresholds))
        for _ in range(3)
    )
    speedup = unstaged_seconds / staged_seconds if staged_seconds > 0 else float("inf")
    assert speedup > 1.0, (
        f"staged collision kernel slower than single-pass ({speedup:.2f}x)"
    )
    if os.environ.get("REPRO_BENCH_STRICT", "0") == "1":
        assert speedup >= 1.5, f"expected >=1.5x kernel speedup, got {speedup:.2f}x"

    _RECORD["staged_collision_mask"] = {
        "num_qubits": allocation.num_qubits,
        "batch_size": batch,
        "sigma_ghz": 0.014,
        "unstaged_seconds": round(unstaged_seconds, 5),
        "staged_seconds": round(staged_seconds, 5),
        "speedup": round(speedup, 2),
        "speedup_regression": speedup < 1.0,
        "bit_identical": True,
        "collision_free_fraction": round(float(reference.mean()), 5),
    }
    print(
        f"\n[engine] staged mask ({allocation.num_qubits}q x{batch}): "
        f"single-pass {unstaged_seconds * 1e3:.1f}ms, staged "
        f"{staged_seconds * 1e3:.1f}ms -> speedup {speedup:.2f}x"
    )
    _flush()


def _timed(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
