"""E-ENG — the parallel experiment engine: sequential vs. parallel sweeps.

Times the Fig. 4 Monte-Carlo grid on the sequential in-process backend and
on the process-pool backend, verifies the two produce bit-identical yield
numbers at the same seed, and writes the measurements to
``benchmarks/BENCH_engine.json`` so CI can track the speedup over time.

On a >= 4-core machine the parallel run is expected to be >= 2x faster.
The determinism assertion always runs; the speedup assertion only fires
with ``REPRO_BENCH_STRICT=1`` (one-shot wall-clock measurements are too
noisy on shared CI runners to gate a build on by default — the JSON
artifact records the number either way).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import bench_batch_size, bench_jobs

from repro.analysis.figures.fig4_yield import run_fig4_yield_sweep
from repro.engine import ExecutionEngine

RESULT_PATH = Path(__file__).parent / "BENCH_engine.json"

SWEEP_KWARGS = dict(
    steps_ghz=(0.04, 0.05, 0.06, 0.07),
    sigmas_ghz=(0.1323, 0.014, 0.006),
    sizes=(5, 10, 20, 40, 65, 100, 200, 300, 500),
    seed=7,
)


def _timed_sweep(engine: ExecutionEngine | None, batch_size: int):
    started = time.perf_counter()
    result = run_fig4_yield_sweep(
        **SWEEP_KWARGS, batch_size=batch_size, engine=engine
    )
    return result, time.perf_counter() - started


def test_engine_parallel_sweep_matches_sequential_and_is_fast(benchmark):
    """Parallel Fig. 4 sweeps are bit-identical to sequential, and faster
    when the hardware has the cores to show it."""
    cores = os.cpu_count() or 1
    jobs = max(2, bench_jobs())
    batch = min(bench_batch_size(1000), 2000)

    sequential, seq_seconds = _timed_sweep(None, batch)
    parallel_engine = ExecutionEngine(jobs=jobs, use_cache=False)
    parallel, par_seconds = benchmark.pedantic(
        lambda: _timed_sweep(parallel_engine, batch), rounds=1, iterations=1
    )

    assert parallel.curves.keys() == sequential.curves.keys()
    for key in sequential.curves:
        assert parallel.curves[key] == sequential.curves[key], key

    speedup = seq_seconds / par_seconds if par_seconds > 0 else float("inf")
    num_points = len(SWEEP_KWARGS["steps_ghz"]) * len(SWEEP_KWARGS["sigmas_ghz"]) * len(
        SWEEP_KWARGS["sizes"]
    )
    # A sub-1x "speedup" is a real measurement, not a publishable claim:
    # flag it and record why (the classic cause is requesting more jobs
    # than the machine has physical cores, where pool overhead dominates).
    regression = speedup < 1.0
    workers_used = parallel_engine.stats.workers_used
    if regression:
        if jobs > cores:
            context = (
                f"parallel slower than sequential: {jobs} jobs oversubscribe "
                f"{cores} physical core(s), so pool overhead dominates"
            )
        else:
            context = (
                "parallel slower than sequential despite available cores — "
                "investigate worker startup / pickling overhead for this batch"
            )
    else:
        context = None
    record = {
        "benchmark": "fig4_detuning_sweep",
        "num_points": num_points,
        "batch_size": batch,
        "cores": cores,
        "jobs": jobs,
        "workers_used": workers_used,
        "sequential_seconds": round(seq_seconds, 4),
        "parallel_seconds": round(par_seconds, 4),
        "speedup": round(speedup, 3),
        "speedup_regression": regression,
        "speedup_context": context,
        "bit_identical": True,
        "tasks_per_second_parallel": round(num_points / par_seconds, 2)
        if par_seconds > 0
        else None,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(f"\n[engine] sequential {seq_seconds:.2f}s, parallel {par_seconds:.2f}s "
          f"({workers_used} worker(s) used of {jobs} jobs on {cores} cores) "
          f"-> speedup {speedup:.2f}x")
    if regression:
        print(f"[engine] WARNING: {context}")
    print(f"[engine] wrote {RESULT_PATH}")

    if cores >= 4 and os.environ.get("REPRO_BENCH_STRICT", "0") == "1":
        assert speedup >= 2.0, (
            f"expected >=2x speedup on {cores} cores, measured {speedup:.2f}x"
        )
