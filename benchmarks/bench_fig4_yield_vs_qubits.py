"""E-F4 — Fig. 4: collision-free yield vs. qubits.

Sweeps the ideal detuning step (0.04-0.07 GHz) and the fabrication
precision (as-fabricated, laser-tuned, projected) over heavy-hex devices up
to ~1000 qubits and prints one yield curve per parameter combination.
"""

from __future__ import annotations

from conftest import bench_batch_size, full_run

from repro.analysis.figures.fig4_yield import run_fig4_yield_sweep


def test_fig4_yield_vs_qubits_sweep(benchmark, engine):
    """Yield collapses with size; 0.06 GHz detuning and tighter sigma_f help."""
    sizes = (
        (5, 10, 16, 20, 27, 40, 65, 100, 127, 200, 300, 400, 500, 650, 800, 1000)
        if full_run()
        else (5, 10, 20, 40, 65, 100, 200, 300, 500, 750, 1000)
    )
    result = benchmark.pedantic(
        run_fig4_yield_sweep,
        kwargs={
            "sizes": sizes,
            "batch_size": min(bench_batch_size(1000), 2000),
            "seed": 7,
            "engine": engine,
        },
        rounds=1,
        iterations=1,
    )
    print("\n[Fig. 4] collision-free yield vs. qubits (rows: step / sigma_f)")
    print(result.format_table())

    # Laser tuning dominates the as-fabricated precision at every step.
    for step in (0.04, 0.05, 0.06, 0.07):
        tuned = sum(result.curves[(step, 0.014)])
        raw = sum(result.curves[(step, 0.1323)])
        assert tuned > raw
    # The paper's optimum detuning (0.06 GHz) maximises yield at sigma = 0.014.
    assert result.best_step(0.014) in (0.05, 0.06)
    # sigma_f = 0.006 GHz sustains non-zero yield out to ~1000 qubits.
    assert result.curves[(0.06, 0.006)][-1] > 0.0
    # The laser-tuned curve is essentially dead well before 1000 qubits.
    assert result.curves[(0.06, 0.014)][-1] < 0.01
