"""E-OBS — observability overhead on a fixed Fig. 4 yield sweep.

The tracing/metrics layer's contract is "off ⇒ free": with no tracer
installed, every ``span()``/``phase()`` entry collapses to one
thread-local attribute probe.  This benchmark pins that down from two
directions and writes ``benchmarks/BENCH_obs.json``:

* **Macro**: the same seeded sweep timed untraced and traced.  The
  untraced run IS the production hot path (instrumentation compiled in,
  tracing off); the traced run records every engine/task/phase span.
  The traced/untraced ratio is *reported*, not asserted — collecting
  hundreds of spans is allowed to cost something.
* **Micro**: the per-call cost of the off-path primitives
  (``is_tracing`` probe, a full no-op ``span()`` entry/exit), scaled by
  the number of instrumentation points the sweep actually crosses
  (counted from the traced run's span list).  That product bounds what
  the off path adds to the sweep, and **is** asserted: < 3% of the
  untraced wall-clock.

Bit-identity between the traced and untraced runs is asserted
unconditionally — observation must never change a result.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from conftest import bench_batch_size

from repro.analysis.figures.fig4_yield import run_fig4_yield_sweep
from repro.engine import ExecutionEngine
from repro.obs import tracing

RESULT_PATH = Path(__file__).parent / "BENCH_obs.json"

#: Reduced Fig. 4 grid (24 engine tasks), same shape as bench_backends.
SWEEP_KWARGS = dict(
    steps_ghz=(0.05, 0.06, 0.07),
    sigmas_ghz=(0.014, 0.1323),
    sizes=(10, 27, 65, 100),
    seed=7,
)

#: Overhead gate for the tracing-OFF hot path.
MAX_OFF_OVERHEAD_FRACTION = 0.03

#: Iterations for the microbenchmark loops.
MICRO_ITERATIONS = 200_000


def _timed_sweep(tracer, batch):
    engine = ExecutionEngine(
        jobs=1, use_cache=False, backend="sequential", tracer=tracer
    )
    started = time.perf_counter()
    result = run_fig4_yield_sweep(**SWEEP_KWARGS, batch_size=batch, engine=engine)
    return result, time.perf_counter() - started


def _micro_seconds_per_call(fn, iterations=MICRO_ITERATIONS):
    # One warmup pass keeps attribute-cache effects out of the timing.
    for _ in range(1000):
        fn()
    started = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - started) / iterations


def _noop_span():
    with tracing.span("bench.noop"):
        pass


def test_tracing_off_overhead_under_gate():
    """Off-path cost × instrumentation points < 3% of the untraced run."""
    batch = bench_batch_size(1000)

    # Interleave repeats so drift (thermal, page cache) hits both arms.
    untraced_times, traced_times = [], []
    untraced_result = traced_result = None
    traced_span_count = 0
    for _ in range(3):
        untraced_result, seconds = _timed_sweep(None, batch)
        untraced_times.append(seconds)
        tracer = tracing.Tracer()
        traced_result, seconds = _timed_sweep(tracer, batch)
        traced_times.append(seconds)
        traced_span_count = len(tracer)

    assert untraced_result == traced_result, (
        "tracing changed the sweep's numbers"
    )
    assert traced_span_count > 0

    untraced = min(untraced_times)
    traced = min(traced_times)

    probe_s = _micro_seconds_per_call(tracing.is_tracing)
    noop_span_s = _micro_seconds_per_call(_noop_span)
    # Every recorded span corresponds to one crossed instrumentation
    # point; bound the off path with the *costlier* no-op span figure.
    off_bound_s = noop_span_s * traced_span_count
    off_fraction = off_bound_s / untraced

    record = {
        "benchmark": "fig4_observability_overhead",
        "batch_size": batch,
        "num_tasks": len(SWEEP_KWARGS["steps_ghz"])
        * len(SWEEP_KWARGS["sigmas_ghz"])
        * len(SWEEP_KWARGS["sizes"]),
        "untraced_seconds": round(untraced, 4),
        "traced_seconds": round(traced, 4),
        "tracing_on_ratio": round(traced / untraced, 4),
        "traced_span_count": traced_span_count,
        "micro_is_tracing_ns": round(probe_s * 1e9, 1),
        "micro_noop_span_ns": round(noop_span_s * 1e9, 1),
        "off_path_bound_seconds": round(off_bound_s, 6),
        "off_path_bound_fraction": round(off_fraction, 6),
        "off_overhead_gate": MAX_OFF_OVERHEAD_FRACTION,
        "bit_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print(
        f"\n[obs] untraced {untraced:.3f}s, traced {traced:.3f}s "
        f"({record['tracing_on_ratio']:.2f}x, {traced_span_count} spans)"
    )
    print(
        f"[obs] off path: is_tracing {record['micro_is_tracing_ns']:.0f}ns, "
        f"no-op span {record['micro_noop_span_ns']:.0f}ns -> bound "
        f"{off_fraction * 100:.3f}% of the untraced run "
        f"(gate {MAX_OFF_OVERHEAD_FRACTION * 100:.0f}%)"
    )
    print(f"[obs] wrote {RESULT_PATH}")

    assert off_fraction < MAX_OFF_OVERHEAD_FRACTION, (
        f"tracing-off instrumentation bound {off_fraction * 100:.2f}% "
        f"exceeds the {MAX_OFF_OVERHEAD_FRACTION * 100:.0f}% gate"
    )
