"""E-BACK — per-backend wall clock on a fixed Fig. 4 yield sweep.

Runs the same seeded Monte-Carlo sweep on every executable backend
(``sequential``, ``threads``, ``processes``, ``shared-memory``), each
with task fusion on and off, plus the ``auto`` selection mode, and
writes the wall-clock table to ``benchmarks/BENCH_backends.json``.

Cross-backend bit-identity is asserted unconditionally: every task
carries its own spawn-derived seed, so all backends must reproduce the
sequential yield curves exactly.  The speedups are *reported*, not
asserted — on a single-core host every pool is overhead by construction,
and the table exists precisely to record that honestly (the
``speedup_context`` field explains sub-1x rows).

The ``sequential`` + fusion row is both the bit-identity reference and
the 1.0 speedup baseline, so the table is self-consistent (historically
speedups were computed against a *separate* no-engine run, which made
the sequential row itself report ~1.06x).  The sample bank is cleared
before every timed row: in-process rows would otherwise serve banked
draws warmed by earlier rows while fresh worker pools start cold, and
the table is about backend dispatch cost, not bank state.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import bench_batch_size, bench_jobs

from repro.analysis.figures.fig4_yield import run_fig4_yield_sweep
from repro.core.sample_bank import clear_sample_bank
from repro.engine import ExecutionEngine

RESULT_PATH = Path(__file__).parent / "BENCH_backends.json"

#: A reduced Fig. 4 grid: 24 engine tasks, enough to exercise fusion
#: (multiple waves per worker) while keeping 9 timed runs affordable.
SWEEP_KWARGS = dict(
    steps_ghz=(0.05, 0.06, 0.07),
    sigmas_ghz=(0.014, 0.1323),
    sizes=(10, 27, 65, 100),
    seed=7,
)

#: (backend, fuse) rows of the table; ``auto`` fuses by default.
TABLE_ROWS = [
    ("sequential", True),
    ("sequential", False),
    ("threads", True),
    ("threads", False),
    ("processes", True),
    ("processes", False),
    ("shared-memory", True),
    ("shared-memory", False),
    ("auto", True),
]


def _timed_sweep(engine: ExecutionEngine | None, batch: int):
    started = time.perf_counter()
    result = run_fig4_yield_sweep(**SWEEP_KWARGS, batch_size=batch, engine=engine)
    return result, time.perf_counter() - started


def test_backend_table_bit_identical_wall_clock():
    """Every backend reproduces the sequential curves; timings tabled."""
    cores = os.cpu_count() or 1
    jobs = max(2, bench_jobs())
    batch = min(bench_batch_size(400), 1000)

    _timed_sweep(None, batch)  # warm-up: first-touch allocations, imports

    rows = []
    baseline = None
    baseline_seconds = None
    for name, fuse in TABLE_ROWS:
        engine = ExecutionEngine(jobs=jobs, use_cache=False, backend=name, fuse=fuse)
        clear_sample_bank()
        result, seconds = _timed_sweep(engine, batch)
        if baseline is None:
            # First row is (sequential, fuse=True): the reference curves
            # AND the 1.0 speedup denominator.
            baseline, baseline_seconds = result, seconds
        assert result.curves.keys() == baseline.curves.keys()
        for key in baseline.curves:
            assert result.curves[key] == baseline.curves[key], (
                f"backend {name!r} (fuse={fuse}) diverged on {key}"
            )
        rows.append(
            {
                "backend": name,
                "task_fusion": fuse,
                "seconds": round(seconds, 4),
                "speedup_vs_sequential": round(baseline_seconds / seconds, 3)
                if seconds > 0
                else None,
                "workers_used": engine.stats.workers_used,
                "tasks_executed": engine.stats.tasks_executed,
                "tasks_fused": engine.stats.tasks_fused,
                "fusion_batches": engine.stats.fusion_batches,
            }
        )

    best = max(rows, key=lambda row: row["speedup_vs_sequential"] or 0.0)
    context = None
    if cores <= 1:
        context = (
            f"host has {cores} core(s): pooled rows measure pure pool "
            "overhead; only the in-process rows (sequential, and auto's "
            "sequential downgrade) can reach ~1.0x here"
        )
    elif best["speedup_vs_sequential"] < 1.0:
        context = (
            "no backend beat sequential despite multiple cores — "
            "per-task work too small to amortise pool startup at this batch"
        )

    record = {
        "benchmark": "fig4_backend_table",
        "num_tasks": len(SWEEP_KWARGS["steps_ghz"])
        * len(SWEEP_KWARGS["sigmas_ghz"])
        * len(SWEEP_KWARGS["sizes"]),
        "batch_size": batch,
        "cores": cores,
        "jobs": jobs,
        "sequential_baseline_seconds": round(baseline_seconds, 4),
        "rows": rows,
        "best_backend": best["backend"],
        "best_speedup": best["speedup_vs_sequential"],
        "speedup_context": context,
        "bit_identical": True,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    print(f"\n[backends] baseline (sequential+fusion): {baseline_seconds:.2f}s")
    for row in rows:
        print(
            f"[backends] {row['backend']:>13} fuse={str(row['task_fusion']):5} "
            f"{row['seconds']:7.2f}s  {row['speedup_vs_sequential']:5.2f}x  "
            f"workers={row['workers_used']} fused={row['tasks_fused']}"
        )
    if context:
        print(f"[backends] NOTE: {context}")
    print(f"[backends] wrote {RESULT_PATH}")
