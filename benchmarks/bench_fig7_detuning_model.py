"""E-F7 — Fig. 7: CX infidelity vs. qubit-qubit detuning (empirical model).

Fits the detuning-binned on-chip error model to a Washington-like synthetic
calibration dataset and reports the per-bin means plus the overall median
and mean (the paper quotes 1.2 % / 1.8 %).
"""

from __future__ import annotations

from repro.analysis.figures.fig7_detuning import run_fig7_detuning_model


def test_fig7_detuning_binned_cx_model(benchmark):
    """The empirical model reproduces the published Washington statistics."""
    result = benchmark(run_fig7_detuning_model, seed=11)
    print("\n[Fig. 7] CX infidelity vs. detuning (0.1 GHz bins)")
    print(result.format_table())
    print(
        f"median = {result.median:.4f} (paper 0.012), "
        f"mean = {result.mean:.4f} (paper 0.018), points = {result.num_points}"
    )
    assert abs(result.median - 0.012) < 0.003
    assert abs(result.mean - 0.018) < 0.006
    assert result.mean > result.median
    assert len(result.bin_means) >= 3
