"""E-VC — Section V-C: monolithic vs. MCM fabrication output (Eq. 1).

Reproduces the worked example: a 100-qubit monolith vs. 2x5 MCMs of
10-qubit chiplets from the same wafer budget, for which the paper reports a
~7.7x gain in manufactured collision-free machines.
"""

from __future__ import annotations

from conftest import bench_batch_size

from repro.analysis.figures.sec5c_output import run_sec5c_fabrication_output


def test_sec5c_fabrication_output_gain(benchmark, engine):
    """The MCM route manufactures several times more 100-qubit machines."""
    comparison = benchmark.pedantic(
        run_sec5c_fabrication_output,
        kwargs={
            "batch_size": min(bench_batch_size(1000), 4000),
            "seed": 7,
            "engine": engine,
        },
        rounds=1,
        iterations=1,
    )
    print(
        "\n[Sec. V-C] monolithic devices: "
        f"{comparison.monolithic_devices:.0f} (yield {comparison.monolithic_yield:.3f}), "
        f"MCM upper bound: {comparison.mcm_devices:.0f} "
        f"(chiplet yield {comparison.chiplet_yield:.3f}), "
        f"gain: {comparison.gain:.2f}x (paper: ~7.7x)"
    )
    assert comparison.gain > 4.0
    assert comparison.mcm_devices > comparison.monolithic_devices
