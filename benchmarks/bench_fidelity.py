"""E-FID — link-scenario construction: vectorised vs. per-ratio loop.

``core.fidelity.default_link_scenarios`` historically rescaled the base
log-normal link model once per improvement ratio —
``base.scaled_to_mean(ratio * on_chip_mean)`` in a Python loop, each call
doing its own scalar ``log``.  The current implementation computes every
rescaled location parameter in a single numpy pass and materialises the
scenario objects from the result.

This benchmark builds a large scenario sweep both ways, asserts the
resulting models agree to within 1e-12 relative (``np.log`` and the
scalar ``math.log`` can differ in the last ulp on some inputs — about
1e-16 relative, seven orders of magnitude below the 1e-9 golden gate;
at the paper's own ratios the two are bit-identical, which the fig9
golden pins), and writes the measured speedup to
``benchmarks/BENCH_fidelity.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.fidelity import LinkScenario, default_link_scenarios
from repro.device.noise import (
    LINK_MEAN_INFIDELITY,
    LINK_MEDIAN_INFIDELITY,
    LinkErrorModel,
    ON_CHIP_MEAN_INFIDELITY,
)

RESULT_PATH = Path(__file__).parent / "BENCH_fidelity.json"

#: Ratio grid large enough that construction cost is measurable; spans
#: the paper's 1-3x window at fine resolution.
NUM_RATIOS = 50_000


def _reference_scenarios(on_chip_mean, ratios):
    """The historical function, verbatim: one scaled_to_mean call per ratio."""
    base = LinkErrorModel.from_mean_median(
        mean=LINK_MEAN_INFIDELITY, median=LINK_MEDIAN_INFIDELITY
    )
    scenarios = [
        LinkScenario(
            name="state-of-art", ratio=base.mean / on_chip_mean, link_model=base
        )
    ]
    for ratio in ratios:
        scenarios.append(
            LinkScenario(
                name=f"elink={ratio:g}echip",
                ratio=float(ratio),
                link_model=base.scaled_to_mean(ratio * on_chip_mean),
            )
        )
    return scenarios


def test_vectorised_link_scenarios_match_loop_and_are_fast():
    """Vectorised scenario construction is value-identical and faster."""
    ratios = tuple(np.linspace(1.0, 3.0, NUM_RATIOS).tolist())

    started = time.perf_counter()
    reference = _reference_scenarios(ON_CHIP_MEAN_INFIDELITY, ratios)
    loop_seconds = time.perf_counter() - started

    started = time.perf_counter()
    scenarios = default_link_scenarios(
        on_chip_mean=ON_CHIP_MEAN_INFIDELITY, improvement_ratios=ratios
    )
    vector_seconds = time.perf_counter() - started

    assert len(scenarios) == len(reference)
    max_rel = 0.0
    for scenario, ref in zip(scenarios, reference):
        assert scenario.name == ref.name
        assert scenario.ratio == ref.ratio
        assert scenario.link_model.sigma == ref.link_model.sigma
        assert scenario.link_model.max_infidelity == ref.link_model.max_infidelity
        rel = abs(scenario.link_model.mu - ref.link_model.mu) / abs(ref.link_model.mu)
        max_rel = max(max_rel, rel)
    # ulp-level log differences only; far below the 1e-9 golden gate.
    assert max_rel <= 1e-12

    # The paper's own three ratios must stay bit-identical (fig9 golden).
    for scenario, ref in zip(
        default_link_scenarios(),
        _reference_scenarios(ON_CHIP_MEAN_INFIDELITY, (3.0, 2.0, 1.0)),
    ):
        assert scenario.link_model.mu == ref.link_model.mu

    # The numeric kernel alone: per-ratio scaled_to_mean calls vs. the
    # single-numpy-pass location computation (scenario-object creation,
    # which both paths share, excluded).
    base = LinkErrorModel.from_mean_median(
        mean=LINK_MEAN_INFIDELITY, median=LINK_MEDIAN_INFIDELITY
    )
    ratio_array = np.asarray(ratios, dtype=float)
    started = time.perf_counter()
    kernel_loop = [
        base.scaled_to_mean(ratio * ON_CHIP_MEAN_INFIDELITY).mu for ratio in ratios
    ]
    kernel_loop_seconds = time.perf_counter() - started
    started = time.perf_counter()
    kernel_vector = base.mu + np.log(
        ratio_array * ON_CHIP_MEAN_INFIDELITY / base.mean
    )
    kernel_vector_seconds = time.perf_counter() - started
    assert np.allclose(kernel_vector, kernel_loop, rtol=1e-12, atol=0.0)
    kernel_speedup = (
        kernel_loop_seconds / kernel_vector_seconds
        if kernel_vector_seconds > 0
        else float("inf")
    )
    assert kernel_speedup > 1.0, "vectorised kernel failed to beat the loop"

    speedup = loop_seconds / vector_seconds if vector_seconds > 0 else float("inf")
    record = {
        "benchmark": "link_scenario_construction",
        "num_ratios": NUM_RATIOS,
        "loop_seconds": round(loop_seconds, 4),
        "vectorised_seconds": round(vector_seconds, 4),
        "speedup": round(speedup, 3),
        "kernel_loop_seconds": round(kernel_loop_seconds, 4),
        "kernel_vectorised_seconds": round(kernel_vector_seconds, 5),
        "kernel_speedup": round(kernel_speedup, 1),
        "max_relative_mu_deviation": max_rel,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\n[fidelity] {NUM_RATIOS} scenarios: loop {loop_seconds:.3f}s, "
        f"vectorised {vector_seconds:.3f}s -> speedup {speedup:.2f}x"
    )
    print(
        f"[fidelity] numeric kernel: loop {kernel_loop_seconds:.3f}s, "
        f"vectorised {kernel_vector_seconds:.5f}s -> "
        f"speedup {kernel_speedup:.0f}x"
    )
    print(f"[fidelity] wrote {RESULT_PATH}")
