"""E-TUN — post-fabrication repair: throughput and determinism.

Two measurements back the tuning subsystem:

1. **Greedy-repair throughput** — devices repaired per second on a
   collided heavy-hex batch (the regime the ``tunedyield`` experiment
   runs in), plus the recovered-yield gain, for both shipped strategies.
2. **Parallel == sequential bit-identity** — the chunk-fanned tuned
   estimate (``simulate_yield_chunks`` through a 4-worker engine) must
   reproduce the sequential in-process run *exactly*: same collision-free
   count, same repaired count, same accepted-shift totals.  This is the
   engine's spawn-seed contract extended through the repair stage.

Results are written to ``benchmarks/BENCH_tuning.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.architecture import get_architecture
from repro.core.fabrication import FabricationModel
from repro.core.yield_model import simulate_yield_chunks
from repro.engine import ExecutionEngine, ResultCache
from repro.tuning import (
    AnnealingRepair,
    GreedyLocalRepair,
    TuningOptions,
    repair_batch,
)

RESULT_PATH = Path(__file__).parent / "BENCH_tuning.json"

#: Device size / precision of the benchmark batch: at 65 qubits and the
#: paper's laser-tuned sigma most dies are collided but repairable — the
#: regime where repair throughput actually matters.
NUM_QUBITS = 65
SIGMA = 0.014
BATCH_SIZE = 600
SEED = 2022


def _bench_strategy(allocation, frequencies, strategy):
    opts = TuningOptions(strategy=strategy)
    rng = np.random.default_rng(SEED + 1)
    started = time.perf_counter()
    outcome = repair_batch(allocation, frequencies, opts, rng)
    elapsed = time.perf_counter() - started
    collided = int((~outcome.as_fab_mask).sum())
    return {
        "strategy": strategy.name,
        "collided_devices": collided,
        "repaired_devices": outcome.num_repaired,
        "as_fab_yield": round(outcome.num_as_fab / BATCH_SIZE, 4),
        "repaired_yield": round(outcome.num_free / BATCH_SIZE, 4),
        "seconds": round(elapsed, 4),
        "devices_per_second": round(collided / elapsed, 1) if elapsed > 0 else None,
        "total_tunes": outcome.total_tunes,
    }


def test_repair_throughput_and_parallel_bit_identity(tmp_path):
    """Measure repair throughput and pin the parallel determinism contract."""
    arch = get_architecture(None)
    allocation = arch.allocate(arch.lattice(NUM_QUBITS))
    fabrication = FabricationModel(sigma_ghz=SIGMA)
    frequencies = fabrication.sample_batch(
        allocation, BATCH_SIZE, np.random.default_rng(SEED)
    )

    greedy = _bench_strategy(allocation, frequencies, GreedyLocalRepair())
    anneal = _bench_strategy(allocation, frequencies, AnnealingRepair())
    assert greedy["repaired_devices"] > 0, "benchmark batch produced no repairs"
    assert greedy["repaired_yield"] > greedy["as_fab_yield"]

    # Parallel == sequential bit-identity through the chunked pipeline.
    opts = TuningOptions()
    kwargs = dict(
        sigma_ghz=SIGMA,
        step_ghz=allocation.spec.step_ghz,
        num_qubits=NUM_QUBITS,
        batch_size=BATCH_SIZE,
        chunk_size=150,
        seed=SEED,
        tuning=opts,
    )
    sequential = simulate_yield_chunks(**kwargs)
    engine = ExecutionEngine(jobs=4, cache=ResultCache(tmp_path / "cache"))
    parallel = simulate_yield_chunks(executor=engine, **kwargs)
    identical = (
        sequential.num_collision_free,
        sequential.num_repaired,
        sequential.tuned_qubits,
        sequential.total_tunes,
    ) == (
        parallel.num_collision_free,
        parallel.num_repaired,
        parallel.tuned_qubits,
        parallel.total_tunes,
    )
    assert identical, "parallel tuned run diverged from the sequential one"
    assert sequential == parallel

    record = {
        "benchmark": "post_fabrication_repair",
        "num_qubits": NUM_QUBITS,
        "sigma_ghz": SIGMA,
        "batch_size": BATCH_SIZE,
        "seed": SEED,
        "strategies": [greedy, anneal],
        "parallel_bit_identity": {
            "jobs": 4,
            "chunk_size": 150,
            "num_collision_free": sequential.num_collision_free,
            "num_repaired": sequential.num_repaired,
            "total_tunes": sequential.total_tunes,
            "workers_used": engine.stats.workers_used,
            "identical": identical,
        },
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    print(
        f"\n[tuning] greedy: {greedy['repaired_devices']}/{greedy['collided_devices']} "
        f"collided dies repaired in {greedy['seconds']}s "
        f"({greedy['devices_per_second']} dev/s), yield "
        f"{greedy['as_fab_yield']} -> {greedy['repaired_yield']}"
    )
    print(
        f"[tuning] anneal: {anneal['repaired_devices']}/{anneal['collided_devices']} "
        f"repaired in {anneal['seconds']}s ({anneal['devices_per_second']} dev/s)"
    )
    print(
        f"[tuning] parallel(jobs=4) == sequential: {identical} "
        f"({engine.stats.workers_used} workers used)"
    )
    print(f"[tuning] wrote {RESULT_PATH}")
