"""E-F6 — Fig. 6: MCM configuration count and assembled-module bound vs. size.

Uses the measured collision-free yield of the 20-qubit chiplet at the
state-of-the-art precision (the paper quotes ~69.4 %) and a batch of 10^5
dies, then reports, for every square MCM dimension, the (log10) number of
possible chiplet placements and the maximum number of assembled modules.
"""

from __future__ import annotations

from repro.analysis.figures.fig6_configurations import run_fig6_configurations
from repro.analysis.reporting import format_table


def test_fig6_configurations_vs_mcm_size(benchmark, engine):
    """Placements grow factorially while the assembled-module bound shrinks."""
    points = benchmark(
        run_fig6_configurations, batch_size=100_000, max_grid=7, seed=7, engine=engine
    )

    rows = [
        [f"{p.grid[0]}x{p.grid[1]}", p.mcm_qubits, f"{p.log10_configurations:.1f}", p.max_mcms]
        for p in points
    ]
    print("\n[Fig. 6] configurations (log10) and max assembled MCMs vs. MCM size")
    print(format_table(["grid", "qubits", "log10(configurations)", "max MCMs"], rows))

    log_configs = [p.log10_configurations for p in points]
    max_mcms = [p.max_mcms for p in points]
    assert log_configs == sorted(log_configs)
    assert max_mcms == sorted(max_mcms, reverse=True)
    # With ~69 000 good dies even the largest module count stays above 1000.
    assert max_mcms[-1] > 500
