#!/usr/bin/env python
"""End-to-end smoke check for ``python -m repro serve``.

Launches the real server as a subprocess, fires TWO identical small
``fig4`` submissions concurrently, and asserts the service contract:

* exactly one of the two submissions creates the job, the other
  coalesces onto it (same job id, ``coalesced`` flags ``{False, True}``);
* the shared job computes once (``submissions == 2``, one engine run);
* the service result is identical to a plain CLI run
  (``python -m repro run fig4 --dump-json``) at the same seed/batch —
  the job API must not change any number the paper pipeline produces.

Written as a plain script (not pytest) so CI can run it as its own step
against the packaged entry point; ``--artifact PATH`` records a JSON
summary for upload.  Exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.metrics import parse_prometheus  # noqa: E402
from repro.service.http import request  # noqa: E402

_LISTEN_RE = re.compile(r"listening on http://([\d.]+):(\d+)")

#: Small but non-trivial fig4 configuration: a few seconds of real
#: Monte-Carlo, long enough that the second submission lands mid-flight.
EXPERIMENT = "fig4"
PARAMS = {"seed": 7, "batch_size": 50}


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def launch_server(env: dict) -> tuple[subprocess.Popen, str, int]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "2",
         "--no-cache"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.time() + 60
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            check(proc.poll() is None, "server exited before listening")
            continue
        match = _LISTEN_RE.search(line)
        if match:
            return proc, match.group(1), int(match.group(2))
    raise SmokeFailure("server never reported its listening address")


async def exercise_service(host: str, port: int) -> dict:
    payload = {"experiment": EXPERIMENT, "params": PARAMS, "client": "smoke"}
    first, second = await asyncio.gather(
        request(host, port, "POST", "/jobs", payload),
        request(host, port, "POST", "/jobs", payload),
    )
    for status, _, body in (first, second):
        check(status == 202, f"submit returned {status}: {body}")
    bodies = [first[2], second[2]]
    check(
        bodies[0]["id"] == bodies[1]["id"],
        f"identical submissions got different jobs: {bodies[0]['id']} vs {bodies[1]['id']}",
    )
    flags = sorted(body["coalesced"] for body in bodies)
    check(flags == [False, True], f"expected one coalesced submission, got {flags}")
    job_id = bodies[0]["id"]

    status, _, result = await request(
        host, port, "GET", f"/jobs/{job_id}/result?wait=600", timeout=620
    )
    check(status == 200, f"result returned {status}: {result}")
    check(result["engine"]["tasks_executed"] > 0, "job executed no engine tasks")

    status, _, snapshot = await request(host, port, "GET", f"/jobs/{job_id}")
    check(snapshot["submissions"] == 2, f"submissions = {snapshot['submissions']}")
    check(snapshot["state"] == "succeeded", f"state = {snapshot['state']}")

    status, _, stats = await request(host, port, "GET", "/stats")
    check(stats["submitted"] == 2, f"stats.submitted = {stats['submitted']}")
    check(stats["coalesced"] == 1, f"stats.coalesced = {stats['coalesced']}")
    check(stats["succeeded"] == 1, f"stats.succeeded = {stats['succeeded']}")

    # The Prometheus endpoint must parse and carry the queue/coalescing/
    # retry series (the retry family is pre-registered at zero, so it is
    # present even on a clean run).
    status, headers, metrics_text = await request(host, port, "GET", "/metrics")
    check(status == 200, f"/metrics returned {status}")
    check(
        "text/plain" in headers.get("content-type", ""),
        f"/metrics content-type = {headers.get('content-type')!r}",
    )
    series = parse_prometheus(metrics_text)
    submissions = series.get("repro_service_submissions_total", {})
    check(
        submissions.get((("outcome", "accepted"),)) == 1.0,
        f"metrics accepted = {submissions.get((('outcome', 'accepted'),))}",
    )
    check(
        submissions.get((("outcome", "coalesced"),)) == 1.0,
        f"metrics coalesced = {submissions.get((('outcome', 'coalesced'),))}",
    )
    check(
        () in series.get("repro_service_queue_depth", {}),
        "queue-depth gauge missing from /metrics",
    )
    check(
        "repro_service_retries_total" in series,
        "retry counter family missing from /metrics",
    )
    check(
        series.get("repro_service_jobs_total", {}).get((("state", "succeeded"),))
        == 1.0,
        "succeeded-jobs counter missing or wrong in /metrics",
    )
    metrics_summary = {
        "series_families": len(series),
        "submissions_accepted": submissions.get((("outcome", "accepted"),)),
        "submissions_coalesced": submissions.get((("outcome", "coalesced"),)),
    }
    return {
        "job": snapshot, "result": result, "stats": stats,
        "metrics": metrics_summary,
    }


def cli_reference(env: dict) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        dump = Path(tmp) / "cli.json"
        subprocess.run(
            [sys.executable, "-m", "repro", "run", EXPERIMENT,
             "--seed", str(PARAMS["seed"]), "--batch", str(PARAMS["batch_size"]),
             "--no-cache", "--quiet", "--dump-json", str(dump)],
            check=True,
            env=env,
            timeout=600,
            stdout=subprocess.DEVNULL,
        )
        return json.loads(dump.read_text())


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifact", type=Path, default=None,
        help="write a JSON summary of the smoke run to this path",
    )
    args = parser.parse_args()

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")

    started = time.time()
    proc, host, port = launch_server(env)
    summary: dict = {"experiment": EXPERIMENT, "params": PARAMS}
    try:
        service = asyncio.run(exercise_service(host, port))
        summary.update(service)

        cli = cli_reference(env)
        check(
            cli["result"] == service["result"]["result"],
            "service result differs from the CLI run at the same seed/batch",
        )
        check(
            cli["text"] == service["result"]["text"],
            "service result table differs from the CLI run",
        )
        summary["cli_matches"] = True
        summary["elapsed_seconds"] = time.time() - started
        print(
            f"[smoke] OK: one coalesced fig4 job, 2 submissions, "
            f"service == CLI ({summary['elapsed_seconds']:.1f}s)"
        )
        return 0
    except SmokeFailure as failure:
        summary["failure"] = str(failure)
        print(f"[smoke] FAIL: {failure}", file=sys.stderr)
        return 1
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
        if args.artifact is not None:
            args.artifact.write_text(json.dumps(summary, indent=2) + "\n")


if __name__ == "__main__":
    raise SystemExit(main())
