"""E-F3 — Fig. 3(b): CX infidelity vs. processor size over 15 calibration cycles.

The synthetic calibration generator stands in for the IBM backend data (see
DESIGN.md); the regenerated statistic is the growth of the median CX error
and of its spread from the 27-qubit Falcon to the 127-qubit Eagle.
"""

from __future__ import annotations

from repro.analysis.figures.fig3_trends import run_fig3_processor_trends


def test_fig3_cx_infidelity_vs_processor_size(benchmark):
    """Median CX infidelity and its spread grow with processor size."""
    result = benchmark(run_fig3_processor_trends, num_cycles=15, seed=11)
    print("\n[Fig. 3b] CX infidelity statistics per processor (15 cycles)")
    print(result.format_table())

    medians = [row["median"] for row in result.rows]
    iqrs = [row["iqr"] for row in result.rows]
    assert medians == sorted(medians), "median error must grow with device size"
    assert iqrs[0] < iqrs[-1], "error spread must grow with device size"
    # The 127-qubit device reproduces the published Washington statistics.
    washington = result.rows[-1]
    assert abs(washington["median"] - 0.012) < 0.003
