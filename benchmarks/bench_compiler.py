"""B-COMPILER — the pass-pipeline application stack, measured.

Three measurements, written to ``benchmarks/BENCH_compiler.json``:

* ``fig10_engine``: the Fig. 10 compile+score sweep run sequentially
  vs. through the execution engine on a warmed study (device
  construction excluded, so the timing isolates the compile tasks).
  Bit-identical rows are asserted unconditionally; the speedup is
  reported with worker context and flagged (not asserted) when the
  host cannot actually parallelise.
* ``fidelity_product``: the vectorised searchsorted+log10 scorer vs.
  the historical per-gate Python loop on a long compiled trace —
  value-identical within the 1e-9 golden gate, with the measured
  speedup.
* ``noise_aware_routing``: fidelity delta of noise-aware vs. basic
  routing — a deterministic poisoned-edge win plus the per-benchmark
  deltas on a real assembled MCM device (reported, sign not asserted:
  on near-uniform error maps the detours can cost more than they
  save).
* ``routing_cache``: a sequential fig10-style compile loop on a
  500-qubit grid device, paying the historical per-compile eager
  all-pairs Dijkstra vs. the process-wide routing cache with lazy
  per-source trees.  Bit-identical routes asserted; the >=2x speedup
  IS asserted — the cache exists to delete redundant Dijkstra work,
  which no core count or noise floor can excuse missing.
"""

from __future__ import annotations

import json
import os
import time
from math import inf, log10
from pathlib import Path

from repro.analysis.figures.fig10_apps import run_fig10_applications
from repro.analysis.study import ArchitectureStudy, StudyConfig
from repro.circuits.benchmarks import build_benchmark
from repro.circuits.circuit import QuantumCircuit
from repro.compiler.layout import Layout
from repro.compiler.routing import route_circuit, route_circuit_noise_aware
from repro.compiler.transpile import transpile
from repro.engine import ExecutionEngine
from repro.simulation.esp import fidelity_product
from repro.topology.coupling import CouplingMap

from conftest import bench_batch_size, bench_jobs

RESULT_PATH = Path(__file__).parent / "BENCH_compiler.json"

_RECORD: dict = {}


def _loop_fidelity_product(two_qubit_edges, edge_errors):
    """The historical per-gate Python loop, verbatim (the reference)."""
    errors = {
        (min(u, v), max(u, v)): float(e) for (u, v), e in edge_errors.items()
    }
    total = 0.0
    count = 0
    for u, v in two_qubit_edges:
        error = errors[(min(u, v), max(u, v))]
        count += 1
        fidelity = 1.0 - error
        if fidelity <= 0.0:
            return -inf, count
        total += log10(fidelity)
    return total, count


def _flush():
    RESULT_PATH.write_text(json.dumps(_RECORD, indent=2, sort_keys=True) + "\n")
    print(f"[compiler] wrote {RESULT_PATH}")


def test_fig10_engine_parallel_matches_sequential_wall_clock():
    """Engine-parallel fig10 compiles are bit-identical; timings recorded."""
    config = StudyConfig(
        chiplet_batch_size=bench_batch_size(600),
        monolithic_batch_size=bench_batch_size(600),
        chiplet_sizes=(10, 20),
        seed=2022,
    )
    study = ArchitectureStudy(config)
    benchmarks = ("bv", "qaoa", "ghz")

    # Warm the study so both timed runs see only compile+score work.
    run_fig10_applications(study, benchmarks=("bv",), seed=5)

    started = time.perf_counter()
    sequential = run_fig10_applications(study, benchmarks=benchmarks, seed=5)
    seq_seconds = time.perf_counter() - started

    jobs = bench_jobs()
    engine = ExecutionEngine(jobs=jobs, use_cache=False)
    started = time.perf_counter()
    parallel = run_fig10_applications(
        study, benchmarks=benchmarks, seed=5, engine=engine
    )
    par_seconds = time.perf_counter() - started

    assert parallel.rows == sequential.rows, "parallel fig10 diverged from sequential"

    speedup = seq_seconds / par_seconds if par_seconds > 0 else float("inf")
    workers_used = engine.stats.workers_used
    cores = os.cpu_count() or 1
    context = None
    if speedup < 1.0:
        if cores <= 1:
            context = (
                f"host has {cores} core(s): the auto backend runs these "
                "batches in-process, so ~1.0x is the ceiling and sub-1.0x "
                "readings inside the noise band are measurement jitter"
            )
        elif workers_used <= 1:
            context = (
                "the pool fell back to (or was effectively) one worker; "
                "parallel overhead with no parallel execution"
            )
        elif cores < jobs:
            context = (
                f"host has {cores} core(s) for {jobs} requested jobs; "
                "task pickling dominates on an oversubscribed pool"
            )
        else:
            context = "per-task compile time too small to amortise pool startup"

    _RECORD["fig10_engine"] = {
        "rows": len(sequential.rows),
        "compile_tasks": engine.stats.tasks_total,
        "jobs": jobs,
        "workers_used": workers_used,
        "cores": cores,
        "backend": engine.stats.backend,
        "tasks_fused": engine.stats.tasks_fused,
        "fusion_batches": engine.stats.fusion_batches,
        "sequential_seconds": round(seq_seconds, 4),
        "parallel_seconds": round(par_seconds, 4),
        "speedup": round(speedup, 3),
        # Below 0.9 is a real regression; 0.9-1.0 on a host that cannot
        # parallelise is measurement noise around the sequential downgrade.
        "speedup_regression": speedup < 0.9,
        "speedup_context": context,
        "bit_identical": True,
    }
    print(
        f"\n[compiler] fig10 x{len(sequential.rows)} rows: sequential "
        f"{seq_seconds:.2f}s, engine {par_seconds:.2f}s "
        f"({workers_used} worker(s) of {jobs} jobs on {cores} cores) "
        f"-> speedup {speedup:.2f}x"
    )
    if context:
        print(f"[compiler] WARNING: {context}")
    _flush()


def test_vectorised_fidelity_product_matches_loop_and_is_fast():
    """One numpy pass over edge indices == the per-gate loop, measured."""
    coupling = CouplingMap(
        num_qubits=100, edges=[(i, i + 1) for i in range(99)]
    )
    errors = {
        (i, i + 1): 0.0005 + 0.0001 * (i % 17) for i in range(99)
    }
    from repro.device.device import Device
    import numpy as np

    device = Device(
        name="bench-line",
        coupling=coupling,
        frequencies_ghz=np.full(100, 5.0),
        labels=np.zeros(100, dtype=int),
        edge_errors=errors,
    )
    # A long synthetic trace (deterministic, ~200k gates).
    trace = [(i % 99, i % 99 + 1) for i in range(200_000)]

    started = time.perf_counter()
    loop_total, loop_count = _loop_fidelity_product(trace, errors)
    loop_seconds = time.perf_counter() - started

    started = time.perf_counter()
    score = fidelity_product(trace, device)
    vector_seconds = time.perf_counter() - started

    assert score.num_two_qubit_gates == loop_count
    assert abs(score.log10_fidelity - loop_total) < 1e-9, (
        "vectorised fidelity product drifted beyond the golden gate"
    )
    speedup = loop_seconds / vector_seconds if vector_seconds > 0 else float("inf")
    assert speedup > 1.0, "vectorised fidelity product failed to beat the loop"

    _RECORD["fidelity_product"] = {
        "num_gates": len(trace),
        "loop_seconds": round(loop_seconds, 4),
        "vectorised_seconds": round(vector_seconds, 5),
        "speedup": round(speedup, 1),
        "max_abs_log10_deviation": abs(score.log10_fidelity - loop_total),
    }
    print(
        f"\n[compiler] fidelity product x{len(trace)} gates: loop "
        f"{loop_seconds:.3f}s, vectorised {vector_seconds:.4f}s "
        f"-> speedup {speedup:.0f}x"
    )
    _flush()


def test_routing_cache_speedup_on_large_mcm():
    """Shared routing cache vs per-compile eager Dijkstra, bit-identical.

    The device is MCM-scale (a 20x25 grid, 500 qubits) so the weighted
    shortest-path structure dominates each compile the way it does in
    the fig10/appsweep loops; the circuits are the sweep's benchmark
    kinds at a realistic width.  The legacy arm emulates the historical
    cost exactly: every compile rebuilds the weights and eagerly
    computes the all-pairs predecessor matrix.  The cached arm compiles
    the same circuits against one warm cache entry whose Dijkstra rows
    fill lazily — bit-identical routes, a fraction of the sources.
    """
    import numpy as np

    from repro.compiler.routing import (
        clear_routing_cache,
        routing_cache_stats,
        routing_weights,
    )
    from repro.device.device import Device

    rows_n, cols_n = 20, 25
    n = rows_n * cols_n
    edges = []
    for r in range(rows_n):
        for c in range(cols_n):
            q = r * cols_n + c
            if c + 1 < cols_n:
                edges.append((q, q + 1))
            if r + 1 < rows_n:
                edges.append((q, q + cols_n))
    errors = {
        edge: 0.0005 + 0.0004 * ((i * 7) % 13) / 13 for i, edge in enumerate(edges)
    }
    device = Device(
        name="bench-grid",
        coupling=CouplingMap(num_qubits=n, edges=edges),
        frequencies_ghz=np.full(n, 5.0),
        labels=np.zeros(n, dtype=int),
        edge_errors=errors,
    )
    circuits = [
        build_benchmark(name, 40, seed=seed)
        for name in ("bv", "ghz", "qaoa")
        for seed in (1, 2)
    ]

    started = time.perf_counter()
    legacy = []
    for circuit in circuits:
        clear_routing_cache()
        routing_weights(device.coupling, device).predecessor_matrix()
        legacy.append(transpile(circuit, device, routing="noise-aware"))
    legacy_seconds = time.perf_counter() - started

    clear_routing_cache()
    started = time.perf_counter()
    cached = [
        transpile(circuit, device, routing="noise-aware") for circuit in circuits
    ]
    cached_seconds = time.perf_counter() - started
    stats = routing_cache_stats()
    clear_routing_cache()

    for cold, warm in zip(legacy, cached):
        assert warm.two_qubit_edges == cold.two_qubit_edges, (
            "cached routing diverged from the per-compile eager build"
        )
        assert warm.num_swaps == cold.num_swaps
    assert stats["misses"] == 1 and stats["hits"] == len(circuits) - 1
    assert stats["sources_computed"] < n, "lazy rows degenerated to all-pairs"

    speedup = legacy_seconds / cached_seconds if cached_seconds > 0 else float("inf")
    # Unlike the pool benchmarks there is no core-count excuse here:
    # both arms are sequential in one process, the cache only deletes
    # redundant Dijkstra work.  The issue's acceptance floor is 2x.
    assert speedup >= 2.0, (
        f"routing cache speedup {speedup:.2f}x fell below the 2x floor"
    )

    _RECORD["routing_cache"] = {
        "num_qubits": n,
        "compiles": len(circuits),
        "cores": os.cpu_count() or 1,
        "legacy_eager_seconds": round(legacy_seconds, 4),
        "cached_seconds": round(cached_seconds, 4),
        "speedup": round(speedup, 2),
        "speedup_regression": speedup < 2.0,
        "speedup_context": (
            "both arms sequential in one process: the speedup is pure "
            "deleted Dijkstra work, independent of core count"
        ),
        "cache_hits": stats["hits"],
        "cache_misses": stats["misses"],
        "sources_computed": stats["sources_computed"],
        "bit_identical": True,
    }
    print(
        f"\n[compiler] routing cache x{len(circuits)} compiles on {n}q grid: "
        f"legacy {legacy_seconds:.3f}s, cached {cached_seconds:.3f}s "
        f"-> speedup {speedup:.2f}x "
        f"({stats['sources_computed']}/{n} Dijkstra sources computed)"
    )
    _flush()


def test_noise_aware_routing_fidelity_delta():
    """Noise-aware routing wins the poisoned-edge case; deltas recorded."""
    # Deterministic adversarial case: the direct coupling is terrible,
    # the detour is clean — noise-aware must produce a higher-fidelity
    # route than basic.
    coupling = CouplingMap(num_qubits=4, edges=[(0, 1), (0, 2), (1, 3), (2, 3)])
    errors = {(0, 1): 0.4, (0, 2): 0.001, (1, 3): 0.001, (2, 3): 0.001}
    circuit = QuantumCircuit(4)
    for _ in range(5):
        circuit.cx(0, 1)
    layout = Layout({i: i for i in range(4)})
    basic = route_circuit(circuit, coupling, layout)
    aware = route_circuit_noise_aware(circuit, coupling, layout, errors)

    def trace_of(routed):
        edges = []
        for gate, edge in zip(
            (g for g in routed.circuit if g.num_qubits == 2), routed.two_qubit_edges
        ):
            edges.extend([edge] * (3 if gate.name == "swap" else 1))
        return edges

    basic_score = fidelity_product(trace_of(basic), errors)
    aware_score = fidelity_product(trace_of(aware), errors)
    assert aware_score.log10_fidelity > basic_score.log10_fidelity, (
        "noise-aware routing lost the poisoned-edge case"
    )

    # Aggregate deltas on a real assembled MCM device (reported only).
    config = StudyConfig(
        chiplet_batch_size=bench_batch_size(600),
        monolithic_batch_size=bench_batch_size(600),
        chiplet_sizes=(20,),
        seed=2022,
    )
    study = ArchitectureStudy(config)
    device = study.mcm_result(20, (2, 2)).best_device
    deltas = {}
    for name in ("bv", "qaoa", "ghz"):
        bench = build_benchmark(name, 64, seed=5)
        basic_t = transpile(bench, device, routing="basic")
        aware_t = transpile(bench, device, routing="noise-aware")
        basic_f = fidelity_product(basic_t.two_qubit_edges, device).log10_fidelity
        aware_f = fidelity_product(aware_t.two_qubit_edges, device).log10_fidelity
        deltas[name] = {
            "basic_log10_fidelity": basic_f,
            "noise_aware_log10_fidelity": aware_f,
            "delta_log10": aware_f - basic_f,
            "basic_swaps": basic_t.num_swaps,
            "noise_aware_swaps": aware_t.num_swaps,
        }

    _RECORD["noise_aware_routing"] = {
        "poisoned_edge_case": {
            "basic_log10_fidelity": basic_score.log10_fidelity,
            "noise_aware_log10_fidelity": aware_score.log10_fidelity,
            "delta_log10": aware_score.log10_fidelity - basic_score.log10_fidelity,
        },
        "mcm_2x2_20q_deltas": deltas,
    }
    print(
        f"\n[compiler] poisoned edge: basic {basic_score.log10_fidelity:.3f}, "
        f"noise-aware {aware_score.log10_fidelity:.3f}"
    )
    for name, row in deltas.items():
        print(
            f"[compiler] {name}: delta log10F "
            f"{row['delta_log10']:+.3f} (swaps {row['basic_swaps']} -> "
            f"{row['noise_aware_swaps']})"
        )
    _flush()
