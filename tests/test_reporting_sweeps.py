"""Tests for report formatting and sweep helpers."""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_series, format_table
from repro.analysis.sweeps import grid_sweep, sweep_parameter


class TestFormatTable:
    def test_alignment_and_header(self):
        table = format_table(["name", "value"], [["a", 1], ["longer", 22]])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[2:])

    def test_row_length_validation(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table

    def test_format_series(self):
        text = format_series("yield", [(10, 0.8), (20, 0.7)])
        assert text.splitlines()[0] == "yield"
        assert "10: 0.8" in text


class TestSweeps:
    def test_grid_sweep_covers_cartesian_product(self):
        records = grid_sweep({"a": [1, 2], "b": [10, 20]}, lambda a, b: a + b)
        assert len(records) == 4
        assert {r["result"] for r in records} == {11, 21, 12, 22}

    def test_grid_sweep_preserves_parameters(self):
        records = grid_sweep({"a": [3]}, lambda a: a * a)
        assert records[0]["a"] == 3
        assert records[0]["result"] == 9

    def test_sweep_parameter(self):
        assert sweep_parameter([1, 2, 3], lambda v: v * 10) == [(1, 10), (2, 20), (3, 30)]
