"""Tests for the per-figure experiment drivers."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    run_fig3_processor_trends,
    run_fig4_yield_sweep,
    run_fig6_configurations,
    run_fig7_detuning_model,
    run_fig8_yield_comparison,
    run_fig9_infidelity_heatmap,
    run_fig10_applications,
    run_sec5c_fabrication_output,
    run_table1_collision_criteria,
    run_table2_compiled_benchmarks,
)


class TestFig3:
    def test_median_grows_with_size(self):
        result = run_fig3_processor_trends(num_cycles=8, seed=11)
        medians = [row["median"] for row in result.rows]
        assert medians == sorted(medians)
        assert "Washington" in result.format_table()


class TestTable1:
    def test_every_criterion_is_detected(self):
        result = run_table1_collision_criteria()
        assert len(result.rows) == 7
        assert all(row["detected"] for row in result.rows)
        assert "yes" in result.format_table()


class TestFig4:
    def test_sweep_structure_and_monotonicity(self):
        result = run_fig4_yield_sweep(
            steps_ghz=(0.06,),
            sigmas_ghz=(0.1323, 0.014),
            sizes=(10, 40, 100),
            batch_size=300,
            seed=3,
        )
        assert set(result.curves) == {(0.06, 0.1323), (0.06, 0.014)}
        precise = result.curves[(0.06, 0.014)]
        coarse = result.curves[(0.06, 0.1323)]
        assert sum(precise) > sum(coarse)
        assert result.best_step(0.014) == pytest.approx(0.06)
        assert "0.06" in result.format_table()


class TestFig6:
    def test_curve_uses_measured_yield(self):
        points = run_fig6_configurations(max_grid=4, seed=3)
        assert [p.grid for p in points] == [(2, 2), (3, 3), (4, 4)]
        assert points[0].max_mcms > points[-1].max_mcms

    def test_explicit_yield(self):
        points = run_fig6_configurations(chiplet_yield=0.694, max_grid=3)
        assert points[0].max_mcms == int(0.694 * 100_000) // 4


class TestSec5C:
    def test_output_gain_in_paper_range(self):
        comparison = run_sec5c_fabrication_output(batch_size=800, seed=9)
        assert comparison.gain > 3.0
        assert comparison.mcm_devices > comparison.monolithic_devices


class TestFig7:
    def test_summary_matches_washington(self):
        result = run_fig7_detuning_model(seed=11)
        assert result.median == pytest.approx(0.012, abs=0.003)
        assert result.mean > result.median
        assert len(result.bin_means) >= 3
        assert "bin centre" in result.format_table()


@pytest.fixture(scope="module")
def small_fig8(small_study):
    return run_fig8_yield_comparison(small_study, chiplet_sizes=(10, 20, 40))


class TestFig8:
    def test_monolithic_yield_collapses_with_size(self, small_fig8):
        yields = dict(small_fig8.monolithic)
        assert yields[max(yields)] <= yields[min(yields)]

    def test_mcm_yields_beat_monolithic_at_scale(self, small_fig8, small_study):
        for chiplet_size, series in small_fig8.mcm_series.items():
            for num_qubits, mcm_yield, mcm_yield_100x in series:
                if num_qubits >= 200:
                    mono = small_study.monolithic_result(num_qubits).collision_free_yield
                    assert mcm_yield >= mono
                assert mcm_yield_100x <= mcm_yield + 1e-12

    def test_yield_improvements_positive(self, small_fig8):
        for value in small_fig8.yield_improvements.values():
            assert value > 1.0
        assert "chiplet size" in small_fig8.format_table()


class TestFig9:
    def test_heatmap_cells_and_scenarios(self, small_study):
        result = run_fig9_infidelity_heatmap(small_study, chiplet_sizes=(10, 20, 40))
        scenarios = {c["scenario"] for c in result.cells}
        assert len(scenarios) == 4
        assert result.fraction_below_one("elink=1echip") >= result.fraction_below_one(
            "state-of-art"
        ) - 1e-9
        table = result.format_table("state-of-art")
        assert "ratio" in table

    def test_equal_link_quality_favours_mcm(self, small_study):
        result = run_fig9_infidelity_heatmap(small_study, chiplet_sizes=(20, 40))
        assert result.fraction_below_one("elink=1echip") > 0.5


class TestFig10AndTable2:
    def test_application_rows(self, small_study):
        result = run_fig10_applications(
            small_study,
            chiplet_sizes=(20,),
            benchmarks=("bv", "ghz"),
            square_only=True,
        )
        assert result.rows
        for row in result.rows:
            assert row["mcm_log10_fidelity"] <= 0
            assert row["ratio"] > 0
        assert "benchmark" in result.format_table()
        bv_ratios = result.ratios_for_benchmark("bv")
        assert {size for size, _ in bv_ratios} <= {80, 180, 320, 500}

    def test_table2_row_structure(self):
        result = run_table2_compiled_benchmarks(
            chiplet_sizes=(10,), benchmarks=("bv", "ghz"), utilisation=0.8
        )
        assert len(result.rows) == 2
        for row in result.rows:
            assert row["num_qubits"] == 40
            assert row["num_two_qubit"] > 0
            assert row["two_qubit_critical_path"] <= row["num_two_qubit"]
        assert "2q critical" in result.format_table()
