"""Tests for chiplet designs."""

from __future__ import annotations

import pytest

from repro.core.chiplet import ChipletDesign, PAPER_CHIPLET_SIZES
from repro.core.collisions import has_collision
from repro.core.frequencies import FrequencySpec


class TestPaperSizes:
    def test_paper_lists_nine_sizes(self):
        assert PAPER_CHIPLET_SIZES == (10, 20, 40, 60, 90, 120, 160, 200, 250)

    @pytest.mark.parametrize("size", PAPER_CHIPLET_SIZES)
    def test_every_paper_chiplet_builds(self, size):
        design = ChipletDesign.build(size)
        assert design.num_qubits == size
        assert design.lattice.is_connected()
        assert not has_collision(design.allocation, design.allocation.ideal_frequencies)


class TestChipletDesign:
    def test_name_defaults_to_size(self, chiplet_20):
        assert chiplet_20.name == "chiplet-20"

    def test_custom_spec_is_used(self):
        spec = FrequencySpec(step_ghz=0.05)
        design = ChipletDesign.build(20, spec=spec)
        assert design.allocation.spec.step_ghz == pytest.approx(0.05)

    def test_edges_match_lattice(self, chiplet_20):
        assert chiplet_20.num_edges == chiplet_20.lattice.num_edges
        assert set(chiplet_20.edges()) == set(chiplet_20.lattice.edges)

    def test_control_target_labels_consistency(self, chiplet_20):
        targets = chiplet_20.control_target_labels()
        labels = chiplet_20.labels
        for control, target_labels in targets.items():
            # Controls always carry the highest label among their couplings.
            assert all(labels[control] > l for l in target_labels)
            # A control never drives two targets with the same label.
            assert len(set(target_labels)) == len(target_labels)

    def test_boundary_sides(self, chiplet_20):
        for side in ("left", "right", "top", "bottom"):
            boundary = chiplet_20.boundary_qubits(side)
            assert boundary, f"boundary {side} should not be empty"
            for qubit in boundary.values():
                assert 0 <= qubit < chiplet_20.num_qubits

    def test_boundary_unknown_side(self, chiplet_20):
        with pytest.raises(ValueError):
            chiplet_20.boundary_qubits("diagonal")

    def test_left_right_boundaries_keyed_by_row(self, chiplet_20):
        left = chiplet_20.boundary_qubits("left")
        right = chiplet_20.boundary_qubits("right")
        for row, qubit in left.items():
            assert chiplet_20.lattice.site(qubit).row == row
        assert set(left) == set(right)

    def test_boundaries_cached_copy(self, chiplet_20):
        a = chiplet_20.boundary_qubits("right")
        a[999] = 0  # mutating the returned dict must not corrupt the cache
        assert 999 not in chiplet_20.boundary_qubits("right")
