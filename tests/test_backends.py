"""Tests for the pluggable execution backends.

Covers the backend PR's contract: the registry (names, did-you-mean
diagnostics, the ``auto`` selection mode), bit-identical results across
all four executable backends — at the ``map_calls`` level, at the
experiment level (``fig4`` / ``tunedyield`` / ``appsweep``), and against
the committed fig4 golden — task fusion bookkeeping (per-subtask cache
entries and stats), the shared-memory export/attach round-trip, and the
``REPRO_BACKEND`` environment default.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.registry import EXPERIMENTS
from repro.core.collisions import collision_free_mask, count_collision_free
from repro.engine import (
    BACKENDS,
    Backend,
    ExecutionEngine,
    ResultCache,
    SequentialBackend,
    get_backend,
    spawn_seeds,
)
from repro.engine import backends as backends_module
from repro.engine.runner import BACKEND_ENV_VAR

#: Every instantiable backend (``auto`` is a selection mode, not a class).
EXECUTABLE_BACKENDS = ("sequential", "threads", "processes", "shared-memory")


# Module-level task functions: picklable for the process-pool backends.
def _normal_sum(seed: int, count: int = 8) -> float:
    return float(np.random.default_rng(seed).normal(size=count).sum())


def _square(x: int) -> int:
    return x * x


def _boom(x):
    raise RuntimeError(f"task failed on {x}")


class TestBackendRegistry:
    def test_all_backends_registered(self):
        assert set(BACKENDS.names()) == {"auto", *EXECUTABLE_BACKENDS}

    def test_unknown_backend_has_did_you_mean(self):
        with pytest.raises(KeyError, match="did you mean 'processes'"):
            BACKENDS.get("procesess")

    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(KeyError, match="known: .*sequential"):
            BACKENDS.get("mpi")

    def test_auto_is_not_instantiable(self):
        with pytest.raises(ValueError, match="selection mode"):
            get_backend("auto", jobs=2)

    @pytest.mark.parametrize("name", EXECUTABLE_BACKENDS)
    def test_instances_satisfy_protocol(self, name):
        backend = get_backend(name, jobs=2)
        assert isinstance(backend, Backend)
        assert backend.name == name

    def test_engine_rejects_unknown_backend_early(self):
        with pytest.raises(KeyError, match="did you mean 'threads'"):
            ExecutionEngine(jobs=2, use_cache=False, backend="treads")

    def test_duplicate_registration_rejected(self):
        spec = BACKENDS.get("sequential")
        with pytest.raises(ValueError, match="already registered"):
            BACKENDS.register(spec)


class TestBackendParity:
    """All backends must be bit-identical: tasks carry their own seeds."""

    @pytest.mark.parametrize("name", EXECUTABLE_BACKENDS)
    def test_map_calls_matches_sequential(self, name):
        kwargs = [{"seed": s} for s in spawn_seeds(7, 6)]
        baseline = ExecutionEngine(jobs=1, use_cache=False, backend="sequential")
        engine = ExecutionEngine(jobs=2, use_cache=False, backend=name)
        assert engine.map_calls(_normal_sum, kwargs, name="t") == baseline.map_calls(
            _normal_sum, kwargs, name="t"
        )

    @pytest.mark.parametrize("name", ("threads", "processes"))
    def test_fusion_does_not_change_results(self, name):
        kwargs = [{"seed": s} for s in spawn_seeds(13, 9)]
        fused = ExecutionEngine(jobs=2, use_cache=False, backend=name)
        plain = ExecutionEngine(jobs=2, use_cache=False, backend=name, fuse=False)
        assert fused.map_calls(_normal_sum, kwargs, name="t") == plain.map_calls(
            _normal_sum, kwargs, name="t"
        )
        assert fused.stats.tasks_fused == 9
        assert plain.stats.tasks_fused == 0

    @pytest.mark.parametrize("name", ("threads", "processes", "shared-memory"))
    def test_task_exceptions_propagate_from_pools(self, name):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend=name, fuse=False)
        with pytest.raises(RuntimeError, match="task failed on"):
            engine.map_calls(_boom, [{"x": 1}, {"x": 2}], name="boom")

    def test_lambda_downgrades_process_backend_to_sequential(self):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend="processes")
        offset = 10
        results = engine.map_calls(
            lambda x: x + offset, [{"x": 1}, {"x": 2}, {"x": 3}], name="closure"
        )
        assert results == [11, 12, 13]
        assert engine.stats.workers_used == 1  # ran in-process


class TestTaskFusion:
    def test_fusion_stats_and_grouping(self):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend="threads")
        values = list(range(8))
        results = engine.map_calls(_square, [{"x": v} for v in values], name="sq")
        assert results == [v * v for v in values]
        # 8 pending tasks on 2 workers, 2 waves -> groups of 2, 4 batches.
        assert engine.stats.tasks_fused == 8
        assert engine.stats.fusion_batches == 4
        assert engine.stats.tasks_executed == 8

    def test_fused_tasks_keep_per_subtask_cache_entries(self, tmp_path):
        kwargs = [{"seed": s} for s in spawn_seeds(11, 8)]
        first = ExecutionEngine(
            jobs=2, cache=ResultCache(tmp_path / "cache"), backend="threads"
        )
        warm = first.map_calls(_normal_sum, kwargs, name="ns")
        assert first.stats.tasks_fused == 8

        second = ExecutionEngine(
            jobs=2, cache=ResultCache(tmp_path / "cache"), backend="threads"
        )
        replay = second.map_calls(_normal_sum, kwargs, name="ns")
        assert replay == warm
        assert second.stats.cache_hits == 8
        assert second.stats.tasks_executed == 0

    def test_small_batches_do_not_fuse(self):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend="threads")
        engine.map_calls(_square, [{"x": 1}, {"x": 2}], name="sq")
        assert engine.stats.tasks_fused == 0  # len(pending) <= jobs

    def test_sequential_backend_never_fuses(self):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend="sequential")
        engine.map_calls(_square, [{"x": v} for v in range(8)], name="sq")
        assert engine.stats.tasks_fused == 0
        assert engine.stats.fusion_batches == 0


class TestSharedMemoryBackend:
    def test_export_attach_roundtrip(self):
        big = np.arange(4096, dtype=float)  # 32 KiB: exported
        small = np.arange(4, dtype=float)  # pickled as-is
        refs: dict = {}
        blocks: list = []
        payload = {"x": big, "y": small, "nest": [big * 2.0, "tag"]}
        kwargs = backends_module._export_value(payload, (), refs, blocks)
        try:
            assert set(refs) == {("x",), ("nest", 0)}
            assert kwargs["x"] is None and kwargs["nest"][0] is None
            np.testing.assert_array_equal(kwargs["y"], small)
            attached = backends_module._attach(refs[("x",)])
            np.testing.assert_array_equal(attached, big)
            assert not attached.flags.writeable  # inputs are shared views
            nested = backends_module._attach(refs[("nest", 0)])
            np.testing.assert_array_equal(nested, big * 2.0)
        finally:
            backends_module._detach_all()
            for block in blocks:
                block.close()
                block.unlink()

    def test_small_arrays_are_not_exported(self):
        refs: dict = {}
        blocks: list = []
        kwargs = backends_module._export_value(
            {"a": np.arange(8, dtype=float)}, (), refs, blocks
        )
        assert refs == {} and blocks == []
        np.testing.assert_array_equal(kwargs["a"], np.arange(8, dtype=float))

    def test_large_array_kwargs_parity(self, allocation_27):
        rng = np.random.default_rng(42)
        batches = [
            rng.normal(0.0, 0.05, size=(400, 27)) + allocation_27.ideal_frequencies
            for _ in range(2)
        ]
        kwargs = [{"allocation": allocation_27, "frequencies": f} for f in batches]
        shm = ExecutionEngine(jobs=2, use_cache=False, backend="shared-memory")
        counts = shm.map_calls(count_collision_free, kwargs, name="cf")
        expected = [
            int(collision_free_mask(allocation_27, f).sum()) for f in batches
        ]
        assert counts == expected


class TestAutoModeAndEnvironment:
    def test_auto_resolves_tiny_batches_sequentially(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        engine = ExecutionEngine(jobs=2, use_cache=False)
        kwargs = [{"x": v} for v in range(6)]
        assert engine.map_calls(_square, kwargs, name="sq") == [
            v * v for v in range(6)
        ]
        assert engine.stats.backend == "auto"
        assert engine.stats.workers_used == 1  # probe + cheap -> in-process

    def test_auto_matches_sequential_results(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        kwargs = [{"seed": s} for s in spawn_seeds(5, 7)]
        auto = ExecutionEngine(jobs=2, use_cache=False, backend="auto")
        seq = ExecutionEngine(jobs=1, use_cache=False, backend="sequential")
        assert auto.map_calls(_normal_sum, kwargs, name="t") == seq.map_calls(
            _normal_sum, kwargs, name="t"
        )

    def test_env_var_sets_default_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threads")
        assert ExecutionEngine(jobs=2, use_cache=False).backend == "threads"

    def test_explicit_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threads")
        engine = ExecutionEngine(jobs=2, use_cache=False, backend="sequential")
        assert engine.backend == "sequential"

    def test_empty_env_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert ExecutionEngine(jobs=2, use_cache=False).backend == "auto"

    def test_invalid_env_backend_raises_with_suggestion(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "procesess")
        with pytest.raises(KeyError, match="did you mean 'processes'"):
            ExecutionEngine(jobs=2, use_cache=False)

    def test_stats_summary_names_backend(self):
        engine = ExecutionEngine(jobs=1, use_cache=False, backend="sequential")
        engine.map_calls(_square, [{"x": 2}], name="sq")
        assert "[sequential]" in engine.stats.summary()

    def test_sequential_backend_forces_one_job(self):
        assert SequentialBackend(jobs=8).jobs == 1


#: (experiment, runner kwargs) pairs for end-to-end backend parity —
#: small batches, every engine-driven Monte-Carlo / compile path.
_EXPERIMENT_CASES = {
    "fig4": dict(seed=7, batch_size=100),
    "tunedyield": dict(seed=7, batch_size=60),
    "appsweep": dict(seed=7, batch_size=60, benchmarks=("ghz",), routing="basic"),
}


@pytest.fixture(scope="module")
def sequential_experiment_texts():
    texts = {}
    for name, kwargs in _EXPERIMENT_CASES.items():
        engine = ExecutionEngine(jobs=1, use_cache=False, backend="sequential")
        _, texts[name] = EXPERIMENTS.get(name).runner(engine, **kwargs)
    return texts


class TestExperimentBackendParity:
    @pytest.mark.parametrize("backend", ("threads", "processes", "shared-memory"))
    @pytest.mark.parametrize("experiment", sorted(_EXPERIMENT_CASES))
    def test_experiment_output_identical(
        self, backend, experiment, sequential_experiment_texts
    ):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend=backend)
        spec = EXPERIMENTS.get(experiment)
        _, text = spec.runner(engine, **_EXPERIMENT_CASES[experiment])
        assert text == sequential_experiment_texts[experiment]

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_fig4_golden_survives_backend(self, backend):
        """Spot-check: the committed fig4 golden holds under pooled backends."""
        from test_golden_regression import GOLDEN_DIR, GOLDEN_PARAMS, _drift, summarize
        import json

        seed, batch = GOLDEN_PARAMS["fig4"]
        engine = ExecutionEngine(jobs=2, use_cache=False, backend=backend)
        result, _ = EXPERIMENTS.get("fig4").runner(
            engine, seed=seed, batch_size=batch, full=False
        )
        golden = json.loads((GOLDEN_DIR / "fig4.json").read_text())
        problems = _drift(golden["summary"], summarize(result))
        assert not problems, "\n".join(problems[:10])
