"""Tests for the pluggable execution backends.

Covers the backend PR's contract: the registry (names, did-you-mean
diagnostics, the ``auto`` selection mode), bit-identical results across
all four executable backends — at the ``map_calls`` level, at the
experiment level (``fig4`` / ``tunedyield`` / ``appsweep``), and against
the committed fig4 golden — task fusion bookkeeping (per-subtask cache
entries and stats), the shared-memory export/attach round-trip, and the
``REPRO_BACKEND`` environment default.

Regression suites added with the service PR: the shared-memory
fallback's use-after-free on aliasing results, the broken-pool resume
(no re-execution of completed calls), and cooperative cancellation
through every backend.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.analysis.registry import EXPERIMENTS
from repro.core.collisions import collision_free_mask, count_collision_free
from repro.engine import (
    BACKENDS,
    Backend,
    CancelToken,
    ExecutionCancelled,
    ExecutionEngine,
    ResultCache,
    SequentialBackend,
    get_backend,
    spawn_seeds,
)
from repro.engine import backends as backends_module
from repro.engine.runner import BACKEND_ENV_VAR

#: Every instantiable backend (``auto`` is a selection mode, not a class).
EXECUTABLE_BACKENDS = ("sequential", "threads", "processes", "shared-memory")


# Module-level task functions: picklable for the process-pool backends.
def _normal_sum(seed: int, count: int = 8) -> float:
    return float(np.random.default_rng(seed).normal(size=count).sum())


def _square(x: int) -> int:
    return x * x


def _boom(x):
    raise RuntimeError(f"task failed on {x}")


def _identity(arr):
    return arr


def _nested_identity(arr):
    return {"arr": arr, "tag": "x", "pair": [arr, 1]}


def _record_marker(marker_dir: str, index: int) -> int:
    with open(os.path.join(marker_dir, "markers.log"), "a") as handle:
        handle.write(f"{index}:{os.getpid()}\n")
    return index * 10


def _kill_worker(marker_dir: str, index: int, parent_pid: int) -> int:
    if os.getpid() != parent_pid:
        os._exit(1)  # die BEFORE writing a marker: the pool breaks here
    return _record_marker(marker_dir, index)


def _gated(marker_dir: str, index: int, gate: str, timeout: float = 30.0) -> int:
    with open(os.path.join(marker_dir, f"ran-{index}"), "w"):
        pass
    deadline = time.time() + timeout
    gate_path = os.path.join(marker_dir, gate)
    while not os.path.exists(gate_path) and time.time() < deadline:
        time.sleep(0.01)
    return index


class TestBackendRegistry:
    def test_all_backends_registered(self):
        assert set(BACKENDS.names()) == {"auto", *EXECUTABLE_BACKENDS}

    def test_unknown_backend_has_did_you_mean(self):
        with pytest.raises(KeyError, match="did you mean 'processes'"):
            BACKENDS.get("procesess")

    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(KeyError, match="known: .*sequential"):
            BACKENDS.get("mpi")

    def test_auto_is_not_instantiable(self):
        with pytest.raises(ValueError, match="selection mode"):
            get_backend("auto", jobs=2)

    @pytest.mark.parametrize("name", EXECUTABLE_BACKENDS)
    def test_instances_satisfy_protocol(self, name):
        backend = get_backend(name, jobs=2)
        assert isinstance(backend, Backend)
        assert backend.name == name

    def test_engine_rejects_unknown_backend_early(self):
        with pytest.raises(KeyError, match="did you mean 'threads'"):
            ExecutionEngine(jobs=2, use_cache=False, backend="treads")

    def test_duplicate_registration_rejected(self):
        spec = BACKENDS.get("sequential")
        with pytest.raises(ValueError, match="already registered"):
            BACKENDS.register(spec)


class TestBackendParity:
    """All backends must be bit-identical: tasks carry their own seeds."""

    @pytest.mark.parametrize("name", EXECUTABLE_BACKENDS)
    def test_map_calls_matches_sequential(self, name):
        kwargs = [{"seed": s} for s in spawn_seeds(7, 6)]
        baseline = ExecutionEngine(jobs=1, use_cache=False, backend="sequential")
        engine = ExecutionEngine(jobs=2, use_cache=False, backend=name)
        assert engine.map_calls(_normal_sum, kwargs, name="t") == baseline.map_calls(
            _normal_sum, kwargs, name="t"
        )

    @pytest.mark.parametrize("name", ("threads", "processes"))
    def test_fusion_does_not_change_results(self, name):
        kwargs = [{"seed": s} for s in spawn_seeds(13, 9)]
        fused = ExecutionEngine(jobs=2, use_cache=False, backend=name)
        plain = ExecutionEngine(jobs=2, use_cache=False, backend=name, fuse=False)
        assert fused.map_calls(_normal_sum, kwargs, name="t") == plain.map_calls(
            _normal_sum, kwargs, name="t"
        )
        assert fused.stats.tasks_fused == 9
        assert plain.stats.tasks_fused == 0

    @pytest.mark.parametrize("name", ("threads", "processes", "shared-memory"))
    def test_task_exceptions_propagate_from_pools(self, name):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend=name, fuse=False)
        with pytest.raises(RuntimeError, match="task failed on"):
            engine.map_calls(_boom, [{"x": 1}, {"x": 2}], name="boom")

    def test_lambda_downgrades_process_backend_to_sequential(self):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend="processes")
        offset = 10
        results = engine.map_calls(
            lambda x: x + offset, [{"x": 1}, {"x": 2}, {"x": 3}], name="closure"
        )
        assert results == [11, 12, 13]
        assert engine.stats.workers_used == 1  # ran in-process


class TestTaskFusion:
    def test_fusion_stats_and_grouping(self):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend="threads")
        values = list(range(8))
        results = engine.map_calls(_square, [{"x": v} for v in values], name="sq")
        assert results == [v * v for v in values]
        # 8 pending tasks on 2 workers, 2 waves -> groups of 2, 4 batches.
        assert engine.stats.tasks_fused == 8
        assert engine.stats.fusion_batches == 4
        assert engine.stats.tasks_executed == 8

    def test_fused_tasks_keep_per_subtask_cache_entries(self, tmp_path):
        kwargs = [{"seed": s} for s in spawn_seeds(11, 8)]
        first = ExecutionEngine(
            jobs=2, cache=ResultCache(tmp_path / "cache"), backend="threads"
        )
        warm = first.map_calls(_normal_sum, kwargs, name="ns")
        assert first.stats.tasks_fused == 8

        second = ExecutionEngine(
            jobs=2, cache=ResultCache(tmp_path / "cache"), backend="threads"
        )
        replay = second.map_calls(_normal_sum, kwargs, name="ns")
        assert replay == warm
        assert second.stats.cache_hits == 8
        assert second.stats.tasks_executed == 0

    def test_small_batches_do_not_fuse(self):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend="threads")
        engine.map_calls(_square, [{"x": 1}, {"x": 2}], name="sq")
        assert engine.stats.tasks_fused == 0  # len(pending) <= jobs

    def test_sequential_backend_never_fuses(self):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend="sequential")
        engine.map_calls(_square, [{"x": v} for v in range(8)], name="sq")
        assert engine.stats.tasks_fused == 0
        assert engine.stats.fusion_batches == 0


class TestSharedMemoryBackend:
    def test_export_attach_roundtrip(self):
        big = np.arange(4096, dtype=float)  # 32 KiB: exported
        small = np.arange(4, dtype=float)  # pickled as-is
        refs: dict = {}
        blocks: list = []
        payload = {"x": big, "y": small, "nest": [big * 2.0, "tag"]}
        kwargs = backends_module._export_value(payload, (), refs, blocks)
        try:
            assert set(refs) == {("x",), ("nest", 0)}
            assert kwargs["x"] is None and kwargs["nest"][0] is None
            np.testing.assert_array_equal(kwargs["y"], small)
            attached = backends_module._attach(refs[("x",)])
            np.testing.assert_array_equal(attached, big)
            assert not attached.flags.writeable  # inputs are shared views
            nested = backends_module._attach(refs[("nest", 0)])
            np.testing.assert_array_equal(nested, big * 2.0)
        finally:
            backends_module._detach_all()
            for block in blocks:
                block.close()
                block.unlink()

    def test_small_arrays_are_not_exported(self):
        refs: dict = {}
        blocks: list = []
        kwargs = backends_module._export_value(
            {"a": np.arange(8, dtype=float)}, (), refs, blocks
        )
        assert refs == {} and blocks == []
        np.testing.assert_array_equal(kwargs["a"], np.arange(8, dtype=float))

    def test_large_array_kwargs_parity(self, allocation_27):
        rng = np.random.default_rng(42)
        batches = [
            rng.normal(0.0, 0.05, size=(400, 27)) + allocation_27.ideal_frequencies
            for _ in range(2)
        ]
        kwargs = [{"allocation": allocation_27, "frequencies": f} for f in batches]
        shm = ExecutionEngine(jobs=2, use_cache=False, backend="shared-memory")
        counts = shm.map_calls(count_collision_free, kwargs, name="cf")
        expected = [
            int(collision_free_mask(allocation_27, f).sum()) for f in batches
        ]
        assert counts == expected


class TestAutoModeAndEnvironment:
    def test_auto_resolves_tiny_batches_sequentially(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        engine = ExecutionEngine(jobs=2, use_cache=False)
        kwargs = [{"x": v} for v in range(6)]
        assert engine.map_calls(_square, kwargs, name="sq") == [
            v * v for v in range(6)
        ]
        assert engine.stats.backend == "auto"
        assert engine.stats.workers_used == 1  # probe + cheap -> in-process

    def test_auto_matches_sequential_results(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        kwargs = [{"seed": s} for s in spawn_seeds(5, 7)]
        auto = ExecutionEngine(jobs=2, use_cache=False, backend="auto")
        seq = ExecutionEngine(jobs=1, use_cache=False, backend="sequential")
        assert auto.map_calls(_normal_sum, kwargs, name="t") == seq.map_calls(
            _normal_sum, kwargs, name="t"
        )

    def test_env_var_sets_default_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threads")
        assert ExecutionEngine(jobs=2, use_cache=False).backend == "threads"

    def test_explicit_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "threads")
        engine = ExecutionEngine(jobs=2, use_cache=False, backend="sequential")
        assert engine.backend == "sequential"

    def test_empty_env_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "")
        assert ExecutionEngine(jobs=2, use_cache=False).backend == "auto"

    def test_invalid_env_backend_raises_with_suggestion(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "procesess")
        with pytest.raises(KeyError, match="did you mean 'processes'"):
            ExecutionEngine(jobs=2, use_cache=False)

    def test_stats_summary_names_backend(self):
        engine = ExecutionEngine(jobs=1, use_cache=False, backend="sequential")
        engine.map_calls(_square, [{"x": 2}], name="sq")
        assert "[sequential]" in engine.stats.summary()

    def test_sequential_backend_forces_one_job(self):
        assert SequentialBackend(jobs=8).jobs == 1


#: (experiment, runner kwargs) pairs for end-to-end backend parity —
#: small batches, every engine-driven Monte-Carlo / compile path.
_EXPERIMENT_CASES = {
    "fig4": dict(seed=7, batch_size=100),
    "tunedyield": dict(seed=7, batch_size=60),
    "appsweep": dict(seed=7, batch_size=60, benchmarks=("ghz",), routing="basic"),
}


@pytest.fixture(scope="module")
def sequential_experiment_texts():
    texts = {}
    for name, kwargs in _EXPERIMENT_CASES.items():
        engine = ExecutionEngine(jobs=1, use_cache=False, backend="sequential")
        _, texts[name] = EXPERIMENTS.get(name).runner(engine, **kwargs)
    return texts


class TestExperimentBackendParity:
    @pytest.mark.parametrize("backend", ("threads", "processes", "shared-memory"))
    @pytest.mark.parametrize("experiment", sorted(_EXPERIMENT_CASES))
    def test_experiment_output_identical(
        self, backend, experiment, sequential_experiment_texts
    ):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend=backend)
        spec = EXPERIMENTS.get(experiment)
        _, text = spec.runner(engine, **_EXPERIMENT_CASES[experiment])
        assert text == sequential_experiment_texts[experiment]

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_fig4_golden_survives_backend(self, backend):
        """Spot-check: the committed fig4 golden holds under pooled backends."""
        from test_golden_regression import GOLDEN_DIR, GOLDEN_PARAMS, _drift, summarize
        import json

        seed, batch = GOLDEN_PARAMS["fig4"]
        engine = ExecutionEngine(jobs=2, use_cache=False, backend=backend)
        result, _ = EXPERIMENTS.get("fig4").runner(
            engine, seed=seed, batch_size=batch, full=False
        )
        golden = json.loads((GOLDEN_DIR / "fig4.json").read_text())
        problems = _drift(golden["summary"], summarize(result))
        assert not problems, "\n".join(problems[:10])


class _NoProcessPool:
    """Stand-in that refuses to start, forcing the sequential fallback."""

    def __init__(self, *args, **kwargs):
        raise OSError("process creation refused (test)")


class TestSharedMemoryFallbackAliasing:
    """Regression: the sequential fallback used to unlink shared blocks
    while a task result could still be a numpy view into one of them —
    every later read of that result touched freed memory."""

    def _force_fallback(self, monkeypatch):
        monkeypatch.setattr(backends_module, "ProcessPoolExecutor", _NoProcessPool)

    def test_result_aliasing_input_survives_unlink(self, monkeypatch):
        self._force_fallback(monkeypatch)
        big = np.arange(8192, dtype=float)  # 64 KiB: exported to a block
        backend = get_backend("shared-memory", jobs=2)
        call = backends_module.Call(fn=_identity, kwargs={"arr": big}, family="t")
        report = backend.execute([call])
        (result,) = report.results
        # The blocks are gone; the result must be process-owned memory.
        assert backends_module._ATTACHED == {}
        np.testing.assert_array_equal(result, big)
        assert result.flags.writeable  # a copy, not the read-only shared view
        result += 1.0  # writable and backed by live memory
        np.testing.assert_array_equal(result, big + 1.0)

    def test_nested_aliasing_results_are_copied(self, monkeypatch):
        self._force_fallback(monkeypatch)
        big = np.arange(4096, dtype=float)
        backend = get_backend("shared-memory", jobs=2)
        call = backends_module.Call(
            fn=_nested_identity, kwargs={"arr": big}, family="t"
        )
        (result,) = backend.execute([call]).results
        np.testing.assert_array_equal(result["arr"], big)
        np.testing.assert_array_equal(result["pair"][0], big)
        assert result["arr"].flags.writeable
        assert result["pair"][0].flags.writeable
        assert result["tag"] == "x" and result["pair"][1] == 1

    def test_non_aliasing_results_are_not_copied(self, monkeypatch):
        self._force_fallback(monkeypatch)
        big = np.arange(4096, dtype=float)
        backend = get_backend("shared-memory", jobs=2)
        call = backends_module.Call(fn=_normal_sum, kwargs={"seed": 3}, family="t")
        small = backends_module.Call(fn=_identity, kwargs={"arr": big}, family="t")
        scalar, arr = backend.execute([call, small]).results
        assert scalar == _normal_sum(3)
        np.testing.assert_array_equal(arr, big)


class TestBrokenPoolResume:
    """Regression: the broken-pool sequential fallback used to re-run the
    WHOLE batch in the parent, duplicating completed calls' side effects."""

    def test_resume_skips_completed_calls(self, monkeypatch, tmp_path):
        # A fallback is only taken when the canary says workers can't
        # start; here a task killed its worker, so pretend they can't.
        monkeypatch.setattr(backends_module, "_workers_can_start", lambda: False)
        marker_dir = str(tmp_path)
        parent = os.getpid()
        backend = get_backend("processes", jobs=1)  # FIFO: one worker
        calls = [
            backends_module.Call(
                fn=_record_marker,
                kwargs={"marker_dir": marker_dir, "index": i},
                family="resume",
            )
            for i in range(5)
        ]
        calls[2] = backends_module.Call(
            fn=_kill_worker,
            kwargs={"marker_dir": marker_dir, "index": 2, "parent_pid": parent},
            family="resume",
        )
        report = backend.execute(calls)
        assert report.results == [0, 10, 20, 30, 40]
        lines = (tmp_path / "markers.log").read_text().splitlines()
        executed = sorted(int(line.split(":")[0]) for line in lines)
        assert executed == [0, 1, 2, 3, 4]  # each call ran exactly once
        # Calls 0-1 ran in a pool worker, the resumed tail in the parent.
        by_index = {int(l.split(":")[0]): int(l.split(":")[1]) for l in lines}
        assert by_index[2] == by_index[3] == by_index[4] == parent
        assert by_index[0] != parent and by_index[1] != parent

    def test_pool_that_never_starts_runs_everything_once(self, monkeypatch, tmp_path):
        monkeypatch.setattr(backends_module, "ProcessPoolExecutor", _NoProcessPool)
        backend = get_backend("processes", jobs=2)
        calls = [
            backends_module.Call(
                fn=_record_marker,
                kwargs={"marker_dir": str(tmp_path), "index": i},
                family="t",
            )
            for i in range(3)
        ]
        assert backend.execute(calls).results == [0, 10, 20]
        lines = (tmp_path / "markers.log").read_text().splitlines()
        assert sorted(int(line.split(":")[0]) for line in lines) == [0, 1, 2]


class TestCancellation:
    @pytest.mark.parametrize("name", EXECUTABLE_BACKENDS)
    def test_pre_cancelled_token_runs_nothing(self, name, tmp_path):
        backend = get_backend(name, jobs=2)
        token = CancelToken()
        token.cancel()
        calls = [
            backends_module.Call(
                fn=_record_marker,
                kwargs={"marker_dir": str(tmp_path), "index": i},
                family="t",
            )
            for i in range(4)
        ]
        with pytest.raises(ExecutionCancelled):
            backend.execute(calls, cancel=token)
        assert not (tmp_path / "markers.log").exists()

    @pytest.mark.parametrize("name", EXECUTABLE_BACKENDS)
    def test_cancel_mid_batch_stops_unscheduled_calls(self, name, tmp_path):
        backend = get_backend(name, jobs=1)  # one worker: FIFO scheduling
        token = CancelToken()
        # Call 0 blocks on its own gate; the tail blocks on a second gate
        # that stays closed until the execute loop has had time to observe
        # the token — so the only call the single worker can dequeue before
        # cancellation takes effect is the one racer blocked on "go-rest".
        calls = [
            backends_module.Call(
                fn=_gated,
                kwargs={
                    "marker_dir": str(tmp_path),
                    "index": i,
                    "gate": "go-first" if i == 0 else "go-rest",
                },
                family="gated",
            )
            for i in range(8)
        ]
        outcome: list = []

        def run():
            try:
                backend.execute(calls, cancel=token)
                outcome.append(None)
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                outcome.append(exc)

        thread = threading.Thread(target=run)
        thread.start()
        deadline = time.time() + 30.0
        while not (tmp_path / "ran-0").exists() and time.time() < deadline:
            time.sleep(0.01)
        assert (tmp_path / "ran-0").exists(), "first call never started"
        token.cancel()
        (tmp_path / "go-first").write_text("")  # release the in-flight call
        time.sleep(0.5)  # let the loop observe the token and cancel the tail
        (tmp_path / "go-rest").write_text("")  # release the racer, if any
        thread.join(timeout=60.0)
        assert not thread.is_alive()
        assert isinstance(outcome[0], ExecutionCancelled)
        assert "unscheduled" in str(outcome[0]) or "cancelled" in str(outcome[0])
        ran = {int(p.name.split("-")[1]) for p in tmp_path.glob("ran-*")}
        assert 0 in ran
        # The in-flight call plus the racers a pool may have dequeued or
        # pre-fed to its workers before the loop observed the token (a
        # ProcessPoolExecutor keeps max_workers+1 calls in its feed queue,
        # beyond cancellation's reach); the unscheduled tail never runs.
        assert len(ran) <= 4, f"cancellation let {sorted(ran)} run"
        assert ran.isdisjoint({4, 5, 6, 7}), f"tail calls ran: {sorted(ran)}"

    def test_cancel_token_is_idempotent_and_irreversible(self):
        token = CancelToken()
        assert not token.cancelled
        token.raise_if_cancelled()  # no-op while clear
        token.cancel()
        token.cancel()
        assert token.cancelled
        with pytest.raises(ExecutionCancelled):
            token.raise_if_cancelled()


class TestEngineCancellationAndProgress:
    def test_engine_checks_token_before_running(self):
        token = CancelToken()
        token.cancel()
        engine = ExecutionEngine(
            jobs=1, use_cache=False, backend="sequential", cancel=token
        )
        with pytest.raises(ExecutionCancelled):
            engine.map_calls(_square, [{"x": 1}], name="sq")
        assert engine.stats.tasks_executed == 0

    def test_legacy_backend_signatures_are_detected(self):
        from repro.engine.runner import _backend_accepts_cancel

        class _Legacy:
            def execute(self, calls):
                return backends_module.ExecutionReport(results=[], seconds=[])

        assert not _backend_accepts_cancel(_Legacy)
        assert _backend_accepts_cancel(SequentialBackend)
        assert _backend_accepts_cancel(backends_module.SharedMemoryBackend)

    def test_progress_callback_sees_batch_snapshots(self):
        snapshots: list[dict] = []
        engine = ExecutionEngine(
            jobs=1,
            use_cache=False,
            backend="sequential",
            progress=snapshots.append,
        )
        engine.map_calls(_square, [{"x": v} for v in range(4)], name="sq")
        assert snapshots, "progress callback never fired"
        last = snapshots[-1]
        assert last["tasks_total"] == 4
        assert last["tasks_executed"] == 4
        assert last["batch_tasks"] == 4
        assert last["cache_hits"] == 0
        assert last["wall_seconds"] >= 0.0
