"""Tests for the engine-parallel application-evaluation layer."""

from __future__ import annotations

from math import inf, isnan

import pytest

from repro.analysis.appeval import (
    benchmark_seeds,
    compile_and_score,
    run_compile_jobs,
    score_from_row,
    summarise_ensemble,
)
from repro.analysis.figures.appsweep import run_appsweep
from repro.analysis.figures.fig10_apps import run_fig10_applications
from repro.circuits.benchmarks import BENCHMARK_NAMES
from repro.engine import ExecutionEngine, ResultCache
from repro.stats import median_interval


@pytest.fixture()
def cached_engine(tmp_path):
    def build(jobs: int) -> ExecutionEngine:
        return ExecutionEngine(jobs=jobs, cache=ResultCache(tmp_path / "cache"))

    return build


class TestCompileAndScore:
    def test_deterministic_and_scored(self, small_study):
        device = small_study.mcm_result(20, (2, 2)).best_device
        first = compile_and_score("qaoa", 30, 5, device)
        second = compile_and_score("qaoa", 30, 5, device)
        assert first == second
        assert first["log10_fidelity"] < 0
        assert first["num_two_qubit_gates"] > 0
        assert first["routing"] == "basic"

    def test_score_roundtrip(self, small_study):
        device = small_study.mcm_result(20, (2, 2)).best_device
        row = compile_and_score("bv", 30, 5, device)
        score = score_from_row(row)
        assert score.log10_fidelity == row["log10_fidelity"]
        assert score.num_two_qubit_gates == row["num_two_qubit_gates"]

    def test_routing_changes_the_result_fields(self, small_study):
        device = small_study.mcm_result(20, (2, 2)).best_device
        basic = compile_and_score("qaoa", 30, 5, device, routing="basic")
        aware = compile_and_score("qaoa", 30, 5, device, routing="noise-aware")
        assert basic["routing"] == "basic" and aware["routing"] == "noise-aware"
        # Same logical circuit, so both compile the same two-qubit load
        # before routing; only the SWAP traffic may differ.
        assert basic["width"] == aware["width"]


class TestEngineParity:
    def test_parallel_matches_sequential_and_caches(self, small_study, cached_engine):
        device = small_study.mcm_result(20, (2, 2)).best_device
        kwargs_list = [
            dict(benchmark=name, width=24, circuit_seed=seed, device=device)
            for name in ("bv", "qaoa", "ghz")
            for seed in (1, 2)
        ]
        sequential = run_compile_jobs(kwargs_list, engine=None)

        parallel_engine = cached_engine(jobs=4)
        parallel = run_compile_jobs(kwargs_list, engine=parallel_engine)
        assert parallel == sequential
        assert parallel_engine.stats.cache_hits == 0

        rerun_engine = cached_engine(jobs=1)
        rerun = run_compile_jobs(kwargs_list, engine=rerun_engine)
        assert rerun == sequential
        assert rerun_engine.stats.cache_hits == len(kwargs_list)

    def test_fig10_engine_parallel_is_bit_identical(self, small_study, cached_engine):
        sequential = run_fig10_applications(
            small_study, chiplet_sizes=(20,), benchmarks=("bv", "qaoa"), seed=5
        )
        parallel = run_fig10_applications(
            small_study,
            chiplet_sizes=(20,),
            benchmarks=("bv", "qaoa"),
            seed=5,
            engine=cached_engine(jobs=4),
        )
        assert parallel.rows == sequential.rows

    def test_device_identity_separates_cache_entries(self, small_study, cached_engine):
        best = small_study.mcm_result(20, (2, 2)).top_devices(2)
        engine = cached_engine(jobs=1)
        kwargs_list = [
            dict(benchmark="bv", width=24, circuit_seed=3, device=device)
            for device in best
        ]
        first, second = run_compile_jobs(kwargs_list, engine=engine)
        assert engine.stats.cache_hits == 0
        assert first["device"] != second["device"]


class TestEnsembleSummary:
    def test_median_and_spread(self):
        rows = [
            {"log10_fidelity": -1.0, "num_swaps": 10},
            {"log10_fidelity": -3.0, "num_swaps": 30},
            {"log10_fidelity": -2.0, "num_swaps": 20},
        ]
        summary = summarise_ensemble(rows)
        assert summary.median_log10_fidelity == -2.0
        assert summary.num_devices == 3
        assert summary.median_swaps == 20
        assert summary.spread is not None
        assert summary.spread.low == -3.0 and summary.spread.high == -1.0

    def test_empty_ensemble(self):
        summary = summarise_ensemble([])
        assert summary.num_devices == 0
        assert isnan(summary.median_log10_fidelity)
        assert summary.spread is None
        assert isnan(summary.ratio_vs(summary))

    def test_dead_ensemble_median(self):
        rows = [{"log10_fidelity": -inf, "num_swaps": 1}] * 3
        summary = summarise_ensemble(rows)
        assert summary.median_log10_fidelity == -inf
        assert summary.spread is None

    def test_ratio_semantics(self):
        good = summarise_ensemble([{"log10_fidelity": -1.0, "num_swaps": 0}])
        better = summarise_ensemble([{"log10_fidelity": -0.5, "num_swaps": 0}])
        assert better.ratio_vs(good) == pytest.approx(10.0**0.5)
        assert good.ratio_vs(None) == inf
        dead = summarise_ensemble([{"log10_fidelity": -inf, "num_swaps": 0}])
        assert good.ratio_vs(dead) == inf
        assert dead.ratio_vs(good) == 0.0


class TestSeeding:
    def test_benchmark_seeds_are_position_stable(self):
        seeds = benchmark_seeds(11)
        assert set(seeds) == set(BENCHMARK_NAMES)
        assert len(set(seeds.values())) == len(BENCHMARK_NAMES)
        assert benchmark_seeds(11) == seeds
        assert benchmark_seeds(12) != seeds

    def test_none_seed_propagates(self):
        seeds = benchmark_seeds(None)
        assert all(seed is None for seed in seeds.values())


class TestAppSweep:
    def test_jobs_parity_and_axis_filtering(self, cached_engine):
        sequential = run_appsweep(
            topologies=("heavy-hex", "ring"),
            benchmarks=("ghz",),
            batch_size=60,
            top_k=2,
            seed=7,
        )
        parallel = run_appsweep(
            topologies=("heavy-hex", "ring"),
            benchmarks=("ghz",),
            batch_size=60,
            top_k=2,
            seed=7,
            engine=cached_engine(jobs=4),
        )
        assert parallel.rows == sequential.rows

        # Filtering an axis reproduces the matching rows of the full run.
        ring_only = run_appsweep(
            topologies=("ring",),
            benchmarks=("ghz",),
            batch_size=60,
            top_k=2,
            seed=7,
        )
        ring_rows = [row for row in sequential.rows if row.topology == "ring"]
        assert ring_only.rows == ring_rows

    def test_rerun_is_all_cache_hits(self, cached_engine):
        kwargs = dict(
            topologies=("ring",), benchmarks=("ghz",), batch_size=60, top_k=2, seed=7
        )
        first_engine = cached_engine(jobs=1)
        first = run_appsweep(engine=first_engine, **kwargs)
        assert first_engine.stats.cache_hits == 0
        rerun_engine = cached_engine(jobs=1)
        rerun = run_appsweep(engine=rerun_engine, **kwargs)
        assert rerun.rows == first.rows
        assert rerun_engine.stats.cache_hits == rerun_engine.stats.tasks_total > 0

    def test_routing_filter_keeps_the_ratio_baseline(self):
        # Filtering --routing must not silently re-anchor the ratio
        # column: the baseline (untuned basic) axis is still compiled.
        full = run_appsweep(
            topologies=("ring",), benchmarks=("ghz",), batch_size=60, top_k=2, seed=7
        )
        aware_only = run_appsweep(
            topologies=("ring",),
            benchmarks=("ghz",),
            routings=("noise-aware",),
            batch_size=60,
            top_k=2,
            seed=7,
        )
        assert all(row.routing == "noise-aware" for row in aware_only.rows)
        full_aware = [row for row in full.rows if row.routing == "noise-aware"]
        assert aware_only.rows == full_aware

    def test_baseline_rows_have_unit_ratio(self):
        result = run_appsweep(
            topologies=("heavy-hex",), benchmarks=("ghz",), batch_size=60, seed=7
        )
        for row in result.rows_for(routing="basic", tuned=False):
            assert row.ratio_vs_baseline == 1.0
        assert result.rows_for(routing="noise-aware")


class TestMedianInterval:
    def test_singleton(self):
        ci = median_interval([2.5])
        assert ci.low == ci.high == ci.estimate == 2.5
        assert ci.confidence == 0.0  # a single point brackets nothing

    def test_small_sample_returns_full_range_with_achieved_coverage(self):
        ci = median_interval([1.0, 3.0, 2.0])
        assert ci.low == 1.0 and ci.high == 3.0 and ci.estimate == 2.0
        assert ci.method == "median-order"
        # The interval reports its exact coverage (1 - 2^(1-3)), not the
        # 0.95 it was asked for and cannot reach.
        assert ci.confidence == pytest.approx(0.75)

    def test_large_sample_tightens(self):
        values = list(range(101))
        ci = median_interval([float(v) for v in values])
        assert ci.estimate == 50.0
        assert ci.low > 0.0 and ci.high < 100.0
        assert ci.low <= ci.estimate <= ci.high
        assert ci.confidence >= 0.95

    def test_validation(self):
        with pytest.raises(ValueError):
            median_interval([])
        with pytest.raises(ValueError):
            median_interval([1.0], confidence=1.5)
