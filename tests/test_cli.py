"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main
from repro.analysis.registry import EXPERIMENTS, build_study


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the on-disk cache at a throwaway directory for every test."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestRegistryContents:
    def test_all_fifteen_experiments_registered(self):
        assert set(EXPERIMENTS.names()) == {
            "fig3", "table1", "fig4", "fig6", "sec5c",
            "fig7", "fig8", "fig9", "fig10", "table2",
            "topoyield", "topomcm", "tunedyield", "repairbudget",
            "appsweep",
        }

    def test_aliases_resolve(self):
        assert EXPERIMENTS.get("yield").name == "fig4"
        assert EXPERIMENTS.get("mcm").name == "fig8"
        assert EXPERIMENTS.get("apps").name == "fig10"
        assert EXPERIMENTS.get("topologies").name == "topoyield"
        assert EXPERIMENTS.get("repair").name == "tunedyield"
        assert EXPERIMENTS.get("budget").name == "repairbudget"
        assert EXPERIMENTS.get("appeval").name == "appsweep"

    def test_topology_awareness_flags(self):
        assert EXPERIMENTS.get("fig4").topology_aware
        assert EXPERIMENTS.get("topoyield").topology_aware
        assert EXPERIMENTS.get("appsweep").topology_aware
        assert not EXPERIMENTS.get("fig8").topology_aware

    def test_tuning_awareness_flags(self):
        assert EXPERIMENTS.get("fig4").tuning_aware
        assert EXPERIMENTS.get("tunedyield").tuning_aware
        assert EXPERIMENTS.get("repairbudget").tuning_aware
        assert not EXPERIMENTS.get("fig8").tuning_aware

    def test_compiler_awareness_flags(self):
        assert EXPERIMENTS.get("fig10").compiler_aware
        assert EXPERIMENTS.get("appsweep").compiler_aware
        assert not EXPERIMENTS.get("fig4").compiler_aware

    def test_unknown_experiment_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'fig9'"):
            EXPERIMENTS.get("fig99")

    def test_build_study_respects_seed_and_batch(self):
        study = build_study(seed=5, batch_size=123)
        assert study.config.seed == 5
        assert study.config.chiplet_batch_size == 123


class TestCLI:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "table2" in out
        assert "topologies (for --topology):" in out
        assert "heavy-hex" in out and "square" in out and "ring" in out
        assert "repair strategies (for --tuning):" in out
        assert "greedy" in out and "anneal" in out
        assert "benchmarks (for --benchmarks):" in out
        assert "bv" in out and "hamiltonian" in out
        assert "routing strategies (for --routing):" in out
        assert "basic" in out and "noise-aware" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_table1(self, capsys):
        assert main(["run", "table1", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "yes" in out and "[engine]" in out

    def test_run_fig7_quiet(self, capsys):
        assert main(["run", "fig7", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "bin centre" not in out
        assert "[engine]" in out

    def test_run_fig4_seeded_runs_match_across_jobs(self, capsys):
        args = ["run", "fig4", "--seed", "7", "--batch", "120", "--no-cache"]
        assert main([*args, "--jobs", "1"]) == 0
        seq = capsys.readouterr().out
        assert main([*args, "--jobs", "2"]) == 0
        par = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("[engine]")
        ]
        assert strip(seq) == strip(par)

    def test_run_fig4_caches_results(self, capsys):
        args = ["run", "fig4", "--seed", "3", "--batch", "100", "--jobs", "1", "--quiet"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "(0 cached" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "132 cached" in second

    def test_cache_info_and_clear(self, capsys):
        main(["run", "fig4", "--seed", "3", "--batch", "50", "--jobs", "1", "--quiet"])
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        assert "entries: 132" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 132" in capsys.readouterr().out

    def test_run_fig4_square_topology_matches_across_jobs(self, capsys):
        args = [
            "run", "fig4", "--topology", "square",
            "--seed", "7", "--batch", "100", "--no-cache",
        ]
        assert main([*args, "--jobs", "1"]) == 0
        seq = capsys.readouterr().out
        assert main([*args, "--jobs", "2"]) == 0
        par = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("[engine]")
        ]
        assert strip(seq) == strip(par)

    def test_run_square_differs_from_heavy_hex(self, capsys):
        args = ["run", "fig4", "--seed", "7", "--batch", "100", "--jobs", "1"]
        assert main(args) == 0
        heavy = capsys.readouterr().out
        assert main([*args, "--topology", "square"]) == 0
        square = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("[engine]")
        ]
        assert strip(heavy) != strip(square)

    def test_invalid_topology_rejected(self, capsys):
        assert main(["run", "fig4", "--topology", "kagome"]) == 2
        assert "unknown topology 'kagome'" in capsys.readouterr().err

    def test_topology_typo_gets_suggestion(self, capsys):
        assert main(["run", "fig4", "--topology", "sqare"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'square'" in err

    def test_unknown_experiment_gets_suggestion(self, capsys):
        assert main(["run", "fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err and "did you mean 'fig9'" in err

    def test_topology_warning_for_unaware_experiment(self, capsys):
        assert main(["run", "table1", "--topology", "square", "--jobs", "1"]) == 0
        err = capsys.readouterr().err
        assert "heavy-hex only" in err

    def test_tuning_warning_for_unaware_experiment(self, capsys):
        assert main(["run", "table1", "--tuning", "greedy", "--jobs", "1"]) == 0
        err = capsys.readouterr().err
        assert "post-fabrication repair" in err

    def test_run_tunedyield_with_tuning_flags(self, capsys):
        args = [
            "run", "tunedyield", "--batch", "60", "--jobs", "1", "--seed", "7",
            "--tuning", "greedy", "--max-shift-mhz", "100", "--repair-budget", "2",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "as-fab" in out and "repaired" in out

    def test_repair_budget_zero_is_noop_baseline(self, capsys):
        args = [
            "run", "fig4", "--batch", "80", "--jobs", "1", "--seed", "3", "--quiet",
        ]
        assert main([*args]) == 0
        untuned = capsys.readouterr().out
        assert main([*args, "--tuning", "greedy", "--repair-budget", "0"]) == 0
        tuned = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("[engine]")
        ]
        assert strip(untuned) == strip(tuned)

    def test_dump_json_writes_result_with_cis(self, tmp_path, capsys):
        import json

        path = tmp_path / "fig4.json"
        args = [
            "run", "fig4", "--batch", "60", "--jobs", "1", "--seed", "7",
            "--quiet", "--dump-json", str(path),
        ]
        assert main(args) == 0
        assert "result written to" in capsys.readouterr().out
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "fig4"
        assert payload["seed"] == 7 and payload["batch_size"] == 60
        points = next(iter(payload["result"]["results"].values()))
        first = points[0]
        assert {"ci_low", "ci_high", "num_collision_free", "batch_size"} <= set(first)
        assert first["ci_low"] <= first["num_collision_free"] / first["batch_size"]
        assert first["ci_high"] >= first["num_collision_free"] / first["batch_size"]

    def test_dump_json_tuned_run_reports_repairs(self, tmp_path, capsys):
        import json

        path = tmp_path / "budget.json"
        args = [
            "run", "repairbudget", "--batch", "60", "--jobs", "1",
            "--quiet", "--dump-json", str(path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        rows = payload["result"]["rows"]
        assert rows[0]["max_shift_mhz"] == 0.0 and rows[0]["num_repaired"] == 0
        assert any(row["num_repaired"] > 0 for row in rows)

    def test_unknown_benchmark_gets_suggestion(self, capsys):
        assert main(["run", "fig10", "--benchmarks", "qoaa"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'qoaa'" in err and "did you mean 'qaoa'" in err

    def test_empty_benchmark_list_rejected(self, capsys):
        assert main(["run", "fig10", "--benchmarks", ","]) == 2
        assert "at least one name" in capsys.readouterr().err

    def test_unknown_routing_gets_suggestion(self, capsys):
        assert main(["run", "fig10", "--routing", "noise-awre"]) == 2
        err = capsys.readouterr().err
        assert "unknown routing strategy 'noise-awre'" in err
        assert "did you mean 'noise-aware'" in err

    def test_compiler_flag_warning_for_unaware_experiment(self, capsys):
        assert main(["run", "table1", "--routing", "basic", "--jobs", "1"]) == 0
        assert "does not thread benchmark/routing" in capsys.readouterr().err

    def test_run_appsweep_with_compiler_flags(self, capsys):
        args = [
            "run", "appsweep", "--batch", "60", "--jobs", "1", "--seed", "7",
            "--benchmarks", "ghz", "--routing", "noise-aware",
            "--topology", "ring",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "noise-aware" in out and "ghz" in out and "ring" in out
        # The filtered sweep compiles only the requested axes.
        assert "qaoa" not in out and "heavy-hex" not in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 1
        assert "usage" in capsys.readouterr().out


class TestCLIBackends:
    def test_list_shows_backends(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "execution backends (for --backend / $REPRO_BACKEND):" in out
        for name in ("auto", "sequential", "threads", "processes", "shared-memory"):
            assert name in out

    def test_backend_typo_gets_suggestion(self, capsys):
        assert main(["run", "fig4", "--backend", "procces"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'procces'" in err
        assert "did you mean 'processes'" in err

    def test_unknown_backend_rejected(self, capsys):
        assert main(["run", "fig4", "--backend", "mpi"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'mpi'" in err and "sequential" in err

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_run_fig4_backend_matches_sequential(self, backend, capsys):
        args = ["run", "fig4", "--seed", "7", "--batch", "100", "--no-cache"]
        assert main([*args, "--jobs", "1", "--backend", "sequential"]) == 0
        seq = capsys.readouterr().out
        assert main([*args, "--jobs", "2", "--backend", backend]) == 0
        par = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("[engine]")
        ]
        assert strip(seq) == strip(par)

    def test_engine_line_names_backend(self, capsys):
        args = [
            "run", "fig4", "--seed", "3", "--batch", "60",
            "--jobs", "1", "--backend", "threads", "--no-cache",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "[threads]" in out

    def test_env_var_backend_default(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        args = ["run", "fig4", "--seed", "3", "--batch", "60", "--jobs", "1", "--no-cache"]
        assert main(args) == 0
        assert "[threads]" in capsys.readouterr().out

    def test_dump_json_reports_engine_stats(self, tmp_path, capsys):
        import json

        path = tmp_path / "fig4.json"
        args = [
            "run", "fig4", "--batch", "60", "--jobs", "1", "--seed", "7",
            "--backend", "sequential", "--quiet", "--dump-json", str(path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        engine = payload["engine"]
        assert engine["backend"] == "sequential"
        assert engine["jobs"] == 1
        assert engine["tasks_total"] >= engine["tasks_executed"] > 0
        assert {"tasks_fused", "fusion_batches", "cache_hits", "wall_seconds"} <= set(
            engine
        )


class TestObservabilityCLI:
    """``run --trace``, the ``trace`` summarizer and the logging flags."""

    def test_run_trace_writes_chrome_file(self, tmp_path, capsys):
        import json

        path = tmp_path / "fig4.trace.json"
        args = [
            "run", "fig4", "--batch", "60", "--jobs", "1", "--seed", "7",
            "--no-cache", "--quiet", "--trace", str(path),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "span(s) written to" in out
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        names = {e["name"] for e in events}
        assert "run:fig4" in names and "engine.batch" in names
        assert any(name.startswith("task:") for name in names)
        assert any(name.startswith("phase:") for name in names)
        # Exactly one root: the run span; everything else hangs off it.
        roots = [e for e in events if e["args"].get("parent") is None]
        assert [e["name"] for e in roots] == ["run:fig4"]

    def test_run_trace_jsonl_format(self, tmp_path, capsys):
        import json

        path = tmp_path / "fig4.trace.jsonl"
        args = [
            "run", "fig4", "--batch", "60", "--jobs", "1", "--seed", "7",
            "--no-cache", "--quiet", "--trace", str(path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        lines = path.read_text().splitlines()
        assert lines
        span = json.loads(lines[0])
        assert {"name", "id", "parent", "ts", "dur", "pid", "tid"} <= set(span)

    def test_trace_summarizer_roundtrip(self, tmp_path, capsys):
        import json

        path = tmp_path / "t.trace.json"
        args = [
            "run", "fig4", "--batch", "60", "--jobs", "1", "--seed", "7",
            "--no-cache", "--quiet", "--trace", str(path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(["trace", str(path), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top spans:" in out and "critical path:" in out
        assert main(["trace", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["span_count"] > 0
        assert summary["top_spans"][0]["name"] == "run:fig4"

    def test_trace_summarizer_missing_file(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.json")]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_traced_and_untraced_runs_agree(self, tmp_path, capsys):
        base = [
            "run", "fig4", "--batch", "60", "--jobs", "1", "--seed", "7",
            "--no-cache",
        ]
        assert main(base) == 0
        plain = capsys.readouterr().out
        assert main([*base, "--trace", str(tmp_path / "t.json")]) == 0
        traced = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines()
            if not line.startswith(("[engine]", "[trace]"))
        ]
        assert strip(plain) == strip(traced)

    def test_dump_json_reports_cache_counters(self, tmp_path, capsys):
        import json

        path = tmp_path / "fig4.json"
        args = [
            "run", "fig4", "--batch", "60", "--jobs", "1", "--seed", "7",
            "--quiet", "--dump-json", str(path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        engine = json.loads(path.read_text())["engine"]
        assert {"hits", "misses", "evictions", "entries", "sources_computed"} <= set(
            engine["routing_cache"]
        )
        assert {"hits", "misses", "poisoned_unlinks"} <= set(engine["result_cache"])
        assert engine["result_cache"]["misses"] > 0  # cold cache: all misses
        assert list(engine["seconds_by_phase"]) == sorted(engine["seconds_by_phase"])

    def test_dump_json_without_cache_reports_null(self, tmp_path, capsys):
        import json

        path = tmp_path / "fig4.json"
        args = [
            "run", "fig4", "--batch", "60", "--jobs", "1", "--seed", "7",
            "--no-cache", "--quiet", "--dump-json", str(path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert json.loads(path.read_text())["engine"]["result_cache"] is None

    def test_bad_log_level_exits_two(self, capsys):
        assert main(["run", "fig4", "--log-level", "loud"]) == 2
        assert "invalid logging options" in capsys.readouterr().err
