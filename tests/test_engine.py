"""Tests for the parallel experiment engine.

Covers the satellite checklist of the engine PR: parallel-vs-sequential
determinism at a fixed seed, cache hit/miss/invalidation behaviour, task
graphs, seed derivation, and scalar-vs-batched parity for all seven
collision criteria.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.collisions import (
    COLLISION_TYPES,
    CollisionThresholds,
    collision_free_mask,
    count_collisions,
    find_collisions,
)
from repro.core.fabrication import FabricationModel
from repro.core.yield_model import detuning_sweep, simulate_yield_point, yield_vs_qubits
from repro.engine import (
    ExecutionEngine,
    ExperimentRegistry,
    ResultCache,
    Task,
    TaskGraph,
    spawn_seeds,
    stable_token,
)
from repro.engine.cache import code_version_token


# Module-level task functions: picklable for the process-pool backend.
def _square(x: int) -> int:
    return x * x


def _normal_sum(seed: int, count: int = 8) -> float:
    return float(np.random.default_rng(seed).normal(size=count).sum())


def _add(a, b=0):
    return a + b


def _boom(x):
    raise RuntimeError(f"task failed on {x}")


def _scaled_normal(scale, seed=0):
    return scale * float(np.random.default_rng(seed).normal())


class TestSeeding:
    def test_spawn_is_deterministic_and_distinct(self):
        a = spawn_seeds(42, 5)
        b = spawn_seeds(42, 5)
        assert a == b
        assert len(set(a)) == 5

    def test_spawn_depends_on_master(self):
        assert spawn_seeds(1, 3) != spawn_seeds(2, 3)

    def test_none_master_propagates(self):
        assert spawn_seeds(None, 3) == [None, None, None]


class TestEngineDeterminism:
    def test_sequential_and_parallel_runs_match(self):
        kwargs = [{"seed": s} for s in spawn_seeds(7, 6)]
        seq = ExecutionEngine(jobs=1, use_cache=False)
        par = ExecutionEngine(jobs=2, use_cache=False)
        assert seq.map_calls(_normal_sum, kwargs, name="t") == par.map_calls(
            _normal_sum, kwargs, name="t"
        )

    def test_parallel_sweep_is_bit_identical(self):
        common = dict(
            steps_ghz=(0.05, 0.06),
            sigmas_ghz=(0.014,),
            sizes=(10, 27, 40),
            batch_size=200,
            seed=7,
        )
        seq = detuning_sweep(**common)
        par = detuning_sweep(**common, executor=ExecutionEngine(jobs=2, use_cache=False))
        for key in seq:
            assert [p.num_collision_free for p in seq[key].points] == [
                p.num_collision_free for p in par[key].points
            ]

    def test_sweep_independent_of_execution_order(self):
        """A single point recomputed in isolation equals its in-sweep value."""
        curve = yield_vs_qubits(0.014, 0.06, sizes=(10, 27), batch_size=150, seed=3)
        child = spawn_seeds(3, 2)[1]
        alone = simulate_yield_point(
            sigma_ghz=0.014, step_ghz=0.06, num_qubits=27, batch_size=150, seed=child
        )
        assert alone.num_collision_free == curve.at_size(27).num_collision_free

    def test_results_preserve_submission_order(self):
        engine = ExecutionEngine(jobs=2, use_cache=False)
        values = list(range(12))
        results = engine.map_calls(_square, [{"x": v} for v in values], name="sq")
        assert results == [v * v for v in values]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_task_exceptions_propagate(self, jobs):
        engine = ExecutionEngine(jobs=jobs, use_cache=False)
        with pytest.raises(RuntimeError, match="task failed on 1"):
            engine.map_calls(_boom, [{"x": 1}, {"x": 2}], name="boom")

    def test_unpicklable_fn_falls_back_to_sequential(self):
        engine = ExecutionEngine(jobs=2, use_cache=False)
        offset = 100
        results = engine.map_calls(
            lambda x: x + offset, [{"x": 1}, {"x": 2}], name="closure"
        )
        assert results == [101, 102]

    def test_engine_backed_sweep_parameter_uses_runner_param_name(self):
        """Regression: the engine path must pass the value under the
        runner's own first parameter name, not a hardcoded keyword."""
        from repro.analysis.sweeps import sweep_parameter

        engine = ExecutionEngine(jobs=1, use_cache=False)
        pairs = sweep_parameter((3, 4), _scaled_normal, seed=11, executor=engine)
        expected = sweep_parameter((3, 4), _scaled_normal, seed=11)
        assert pairs == expected


class TestResultCache:
    def test_hit_after_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for("t", {"x": 1}, "v1")
        assert cache.get(key) is None
        cache.put(key, {"answer": 42})
        assert cache.get(key) == {"answer": 42}
        assert cache.hits == 1 and cache.misses == 1

    def test_key_sensitivity(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key_for("t", {"x": 1, "seed": 7}, "v1")
        assert cache.key_for("t", {"x": 1, "seed": 8}, "v1") != base  # seed
        assert cache.key_for("t", {"x": 2, "seed": 7}, "v1") != base  # params
        assert cache.key_for("u", {"x": 1, "seed": 7}, "v1") != base  # name
        assert cache.key_for("t", {"x": 1, "seed": 7}, "v2") != base  # code version
        assert cache.key_for("t", {"seed": 7, "x": 1}, "v1") == base  # key order

    def test_engine_uses_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = ExecutionEngine(jobs=1, cache=cache)
        kwargs = [{"x": v} for v in (1, 2, 3)]
        assert first.map_calls(_square, kwargs, name="sq") == [1, 4, 9]
        assert first.stats.tasks_executed == 3 and first.stats.cache_hits == 0
        second = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
        assert second.map_calls(_square, kwargs, name="sq") == [1, 4, 9]
        assert second.stats.cache_hits == 3 and second.stats.tasks_executed == 0

    def test_cache_cleared(self, tmp_path):
        cache = ResultCache(tmp_path)
        engine = ExecutionEngine(jobs=1, cache=cache)
        engine.map_calls(_square, [{"x": 5}, {"x": 6}], name="sq")
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0

    def test_no_cache_engine_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cachedir"))
        engine = ExecutionEngine(jobs=1, use_cache=False)
        engine.map_calls(_square, [{"x": 3}], name="sq")
        assert engine.cache is None
        assert not (tmp_path / "cachedir").exists()

    def test_stable_token_handles_arrays_and_dataclasses(self):
        a = stable_token(np.arange(4.0))
        assert a == stable_token(np.arange(4.0))
        assert a != stable_token(np.arange(5.0))
        fab = stable_token(FabricationModel(0.014))
        assert fab == stable_token(FabricationModel(0.014))
        assert fab != stable_token(FabricationModel(0.006))

    def test_code_version_tracks_source(self):
        assert code_version_token(_square) == code_version_token(_square)
        assert code_version_token(_square) != code_version_token(_normal_sum)


class TestTaskGraph:
    def test_generations_respect_dependencies(self):
        graph = TaskGraph()
        graph.add("a", Task(name="t", fn=_add, params={"a": 1}))
        graph.add("b", Task(name="t", fn=_add, params={"a": 2}))
        graph.add("c", Task(name="t", fn=_add, params={"b": 10}, inject={"a": "a"}))
        assert graph.generations() == [["a", "b"], ["c"]]

    def test_run_graph_injects_dependency_results(self):
        graph = TaskGraph()
        graph.add("a", Task(name="t", fn=_add, params={"a": 1, "b": 2}))
        graph.add("double", Task(name="t", fn=_add, params={}, inject={"a": "a", "b": "a"}))
        results = ExecutionEngine(jobs=1, use_cache=False).run_graph(graph)
        assert results == {"a": 3, "double": 6}

    def test_cycle_detection(self):
        graph = TaskGraph()
        graph.add("a", Task(name="t", fn=_add, params={"a": 1}))
        with pytest.raises(ValueError):
            graph.add("b", Task(name="t", fn=_add), deps=("missing",))

    def test_duplicate_id_rejected(self):
        graph = TaskGraph()
        graph.add("a", Task(name="t", fn=_add, params={"a": 1}))
        with pytest.raises(ValueError):
            graph.add("a", Task(name="t", fn=_add, params={"a": 2}))


class TestRegistry:
    def test_register_resolve_alias(self):
        registry = ExperimentRegistry()
        registry.register("fig0", "demo", _square, aliases=("zero",))
        assert registry.get("zero").name == "fig0"
        assert "fig0" in registry and "zero" in registry
        with pytest.raises(ValueError):
            registry.register("fig0", "again", _square)
        with pytest.raises(KeyError):
            registry.get("nope")


class TestEngineStats:
    def test_stats_accumulate(self):
        engine = ExecutionEngine(jobs=1, use_cache=False)
        engine.map_calls(_square, [{"x": v} for v in range(4)], name="sq")
        stats = engine.stats
        assert stats.tasks_total == 4
        assert stats.tasks_executed == 4
        assert stats.wall_seconds > 0
        assert "4 tasks" in stats.summary()
        assert stats.seconds_by_family["sq"] > 0


class TestCacheInvalidation:
    """The on-disk cache must miss when physics or statistics change,
    and hit across worker-count changes at a fixed seed."""

    POINT = dict(sigma_ghz=0.014, step_ghz=0.06, num_qubits=10, batch_size=80, seed=5)

    def _run(self, tmp_path, jobs=1, **overrides):
        engine = ExecutionEngine(jobs=jobs, cache=ResultCache(tmp_path))
        results = engine.map_calls(
            simulate_yield_point, [{**self.POINT, **overrides}], name="yield.point"
        )
        return engine, results[0]

    def test_thresholds_change_invalidates(self, tmp_path):
        first, _ = self._run(tmp_path)
        assert first.stats.cache_hits == 0
        repeat, _ = self._run(tmp_path)
        assert repeat.stats.cache_hits == 1
        tightened, _ = self._run(
            tmp_path, thresholds=CollisionThresholds(type1_ghz=0.02)
        )
        assert tightened.stats.cache_hits == 0
        assert tightened.stats.tasks_executed == 1

    def test_stats_parameters_invalidate(self, tmp_path):
        self._run(tmp_path)
        chunked, _ = self._run(tmp_path, chunk_size=40)
        assert chunked.stats.cache_hits == 0
        rechunked, _ = self._run(tmp_path, chunk_size=40)
        assert rechunked.stats.cache_hits == 1
        other_chunk, _ = self._run(tmp_path, chunk_size=20)
        assert other_chunk.stats.cache_hits == 0
        adaptive, _ = self._run(
            tmp_path, chunk_size=40, ci_target=0.05, max_samples=160
        )
        assert adaptive.stats.cache_hits == 0
        readaptive, _ = self._run(
            tmp_path, chunk_size=40, ci_target=0.05, max_samples=160
        )
        assert readaptive.stats.cache_hits == 1

    def test_hits_across_jobs_at_fixed_seed(self, tmp_path):
        kwargs = [
            {**self.POINT, "num_qubits": size, "chunk_size": 40}
            for size in (5, 10, 16)
        ]
        sequential = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path))
        seq_results = sequential.map_calls(
            simulate_yield_point, kwargs, name="yield.point"
        )
        assert sequential.stats.cache_hits == 0
        parallel = ExecutionEngine(jobs=2, cache=ResultCache(tmp_path))
        par_results = parallel.map_calls(
            simulate_yield_point, kwargs, name="yield.point"
        )
        assert parallel.stats.cache_hits == len(kwargs)
        assert parallel.stats.tasks_executed == 0
        assert [r.num_collision_free for r in seq_results] == [
            r.num_collision_free for r in par_results
        ]

    def test_seed_change_still_misses(self, tmp_path):
        self._run(tmp_path)
        reseeded, _ = self._run(tmp_path, seed=6)
        assert reseeded.stats.cache_hits == 0


class TestWorkersUsedStat:
    def test_parallel_batch_records_workers(self):
        engine = ExecutionEngine(jobs=2, use_cache=False)
        engine.map_calls(_square, [{"x": v} for v in range(6)], name="sq")
        # distinct worker processes actually observed: at least one, and
        # never more than the configured pool (a lazily-filled pool may
        # legitimately serve a fast batch from a single worker)
        assert 1 <= engine.stats.workers_used <= 2

    def test_sequential_batch_records_one(self):
        engine = ExecutionEngine(jobs=1, use_cache=False)
        engine.map_calls(_square, [{"x": 1}], name="sq")
        assert engine.stats.workers_used == 1

    def test_small_batch_cannot_exceed_pending(self):
        engine = ExecutionEngine(jobs=8, use_cache=False)
        engine.map_calls(_square, [{"x": 1}, {"x": 2}], name="sq")
        assert engine.stats.workers_used <= 2


class TestCollisionScalarBatchParity:
    """Scalar `find_collisions` and batched `collision_free_mask` must agree."""

    def test_random_batch_parity(self, allocation_27):
        rng = np.random.default_rng(123)
        fabrication = FabricationModel(0.08)  # wide scatter -> all types occur
        frequencies = fabrication.sample_batch(allocation_27, 250, rng)
        mask = collision_free_mask(allocation_27, frequencies)
        scalar = np.array(
            [
                find_collisions(allocation_27, frequencies[i]).is_collision_free
                for i in range(frequencies.shape[0])
            ]
        )
        assert np.array_equal(mask, scalar)

    def test_every_criterion_exercised_and_detected_by_both(self, allocation_27):
        """Across a wide-scatter batch, each of the seven criteria fires at
        least once, and whenever the scalar path reports only type-k
        collisions the batched mask flags that device too."""
        rng = np.random.default_rng(7)
        frequencies = FabricationModel(0.08).sample_batch(allocation_27, 400, rng)
        mask = collision_free_mask(allocation_27, frequencies)
        seen = {ctype: 0 for ctype in COLLISION_TYPES}
        for i in range(frequencies.shape[0]):
            counts = count_collisions(allocation_27, frequencies[i])
            for ctype, count in counts.items():
                seen[ctype] += count
            if any(counts.values()):
                assert not mask[i]
        assert all(seen[ctype] > 0 for ctype in COLLISION_TYPES), seen

    @pytest.mark.parametrize("ctype", COLLISION_TYPES)
    def test_single_criterion_parity(self, ctype):
        """A hand-crafted violation of each Table I type is caught by both
        the scalar report and the batched mask (on the same 3-qubit device
        Table I uses: control Q1 coupled to targets Q0 and Q2)."""
        from repro.core.frequencies import FrequencySpec, allocation_from_labels

        spec = FrequencySpec()
        alpha = spec.anharmonicity_ghz
        allocation = allocation_from_labels(
            np.array([0, 2, 1]), [(1, 0), (1, 2)], spec=spec
        )
        f0, f1, f2 = spec.frequencies
        violations = {
            1: np.array([f2 + 0.001, f2, f1]),
            2: np.array([f2 + alpha / 2.0, f2, f1]),
            3: np.array([f2 + alpha + 0.001, f2, f1]),
            4: np.array([f2 + 0.05, f2, f1]),
            5: np.array([f0, f2, f0 + 0.001]),
            6: np.array([f0, f2, f0 - alpha - 0.001]),
            7: np.array([2 * f2 + alpha - f1 + 0.001, f2, f1]),
        }
        frequencies = violations[ctype]
        report = find_collisions(allocation, frequencies)
        assert ctype in {t for t, _ in report.collisions}
        assert not collision_free_mask(allocation, frequencies)[0]


class TestCacheRobustness:
    """The service PR's cache fixes: poisoned entries heal themselves and
    the hit/miss counters survive concurrent readers."""

    def test_poisoned_entry_is_deleted_and_counted_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("t", {"x": 1}, "v1")
        cache.put(key, {"value": 41})
        path = cache.directory / f"{key}.pkl"
        path.write_bytes(b"\x80\x04 this is not a pickle")
        assert cache.get(key, default="fallback") == "fallback"
        assert cache.misses == 1 and cache.hits == 0
        assert not path.exists(), "poisoned entry left in place"
        assert not cache.contains(key)  # the slot can heal now
        cache.put(key, {"value": 42})
        assert cache.get(key) == {"value": 42}
        assert cache.hits == 1

    def test_truncated_entry_behaves_like_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("t", {"x": 2}, "v1")
        cache.put(key, list(range(1000)))
        path = cache.directory / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[:20])  # torn write
        assert cache.get(key) is None
        assert not path.exists()

    def test_plain_miss_still_counts_without_a_file(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_engine_recomputes_after_poisoned_entry(self, tmp_path):
        first = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path / "cache"))
        kwargs = [{"seed": 123}]
        warm = first.map_calls(_normal_sum, kwargs, name="ns")
        for path in (tmp_path / "cache").glob("*.pkl"):
            path.write_bytes(b"garbage")
        second = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path / "cache"))
        assert second.map_calls(_normal_sum, kwargs, name="ns") == warm
        assert second.stats.cache_hits == 0
        assert second.stats.tasks_executed == 1
        third = ExecutionEngine(jobs=1, cache=ResultCache(tmp_path / "cache"))
        assert third.map_calls(_normal_sum, kwargs, name="ns") == warm
        assert third.stats.cache_hits == 1  # the slot healed

    def test_hit_and_miss_counters_are_thread_safe(self, tmp_path):
        import threading

        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("t", {"x": 3}, "v1")
        cache.put(key, 7)
        rounds = 200
        workers = 8

        def hammer():
            for _ in range(rounds):
                assert cache.get(key) == 7
                cache.get("f" * 64)  # guaranteed miss

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.hits == rounds * workers
        assert cache.misses == rounds * workers

    def test_cache_survives_pickling_without_its_lock(self, tmp_path):
        import pickle

        cache = ResultCache(tmp_path / "cache")
        key = cache.key_for("t", {"x": 4}, "v1")
        cache.put(key, "value")
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get(key) == "value"  # lock was recreated, get works
        assert clone.hits == cache.hits + 1 or clone.hits == 1
