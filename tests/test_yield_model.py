"""Tests for the Monte-Carlo collision-free yield model (Fig. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fabrication import FabricationModel
from repro.core.frequencies import allocate_heavy_hex_frequencies
from repro.core.yield_model import (
    YieldCurve,
    detuning_sweep,
    simulate_yield,
    simulate_yield_with_devices,
    yield_vs_qubits,
)
from repro.topology.heavy_hex import heavy_hex_by_qubit_count


class TestSimulateYield:
    def test_zero_variation_gives_full_yield(self, allocation_27, rng):
        result = simulate_yield(allocation_27, FabricationModel(0.0), 64, rng)
        assert result.collision_free_yield == pytest.approx(1.0)

    def test_huge_variation_kills_yield(self, allocation_27, rng):
        result = simulate_yield(allocation_27, FabricationModel(0.2), 200, rng)
        assert result.collision_free_yield < 0.05

    def test_result_metadata(self, allocation_27, rng):
        result = simulate_yield(allocation_27, FabricationModel(0.014), 50, rng)
        assert result.num_qubits == 27
        assert result.batch_size == 50
        assert result.sigma_ghz == pytest.approx(0.014)
        assert 0 <= result.num_collision_free <= 50

    def test_seeded_runs_are_reproducible(self, allocation_27):
        a = simulate_yield(
            allocation_27, FabricationModel(0.014), 200, np.random.default_rng(5)
        )
        b = simulate_yield(
            allocation_27, FabricationModel(0.014), 200, np.random.default_rng(5)
        )
        assert a.num_collision_free == b.num_collision_free

    def test_paper_scale_yields(self, rng):
        """At sigma_f = 0.014 GHz the 20-qubit chiplet yields roughly 70 %."""
        lattice = heavy_hex_by_qubit_count(20)
        allocation = allocate_heavy_hex_frequencies(lattice)
        result = simulate_yield(allocation, FabricationModel(0.014), 2000, rng)
        assert 0.55 < result.collision_free_yield < 0.85

    def test_yield_decreases_with_size(self, rng):
        fabrication = FabricationModel(0.014)
        yields = []
        for size in (10, 40, 100):
            lattice = heavy_hex_by_qubit_count(size)
            allocation = allocate_heavy_hex_frequencies(lattice)
            yields.append(
                simulate_yield(allocation, fabrication, 600, rng).collision_free_yield
            )
        assert yields[0] > yields[1] > yields[2]

    def test_yield_improves_with_precision(self, allocation_27, rng):
        coarse = simulate_yield(allocation_27, FabricationModel(0.1323), 500, rng)
        fine = simulate_yield(allocation_27, FabricationModel(0.006), 500, rng)
        assert fine.collision_free_yield > coarse.collision_free_yield


class TestSimulateYieldWithDevices:
    def test_returns_only_collision_free_devices(self, allocation_27, rng):
        result, devices = simulate_yield_with_devices(
            allocation_27, FabricationModel(0.014), 300, rng
        )
        assert devices.shape == (result.num_collision_free, allocation_27.num_qubits)

    def test_survivor_frequencies_near_targets(self, allocation_27, rng):
        _, devices = simulate_yield_with_devices(
            allocation_27, FabricationModel(0.014), 300, rng
        )
        if devices.shape[0]:
            offsets = devices - allocation_27.ideal_frequencies
            assert np.abs(offsets).max() < 0.1


class TestYieldCurve:
    def test_yield_vs_qubits_curve(self):
        curve = yield_vs_qubits(0.014, 0.06, sizes=(10, 40, 100), batch_size=300, seed=3)
        assert curve.sizes == [10, 40, 100]
        assert len(curve.yields) == 3
        assert curve.yield_at(40) == curve.yields[1]

    def test_yield_at_unknown_size_raises(self):
        curve = YieldCurve(sigma_ghz=0.014, step_ghz=0.06)
        with pytest.raises(KeyError):
            curve.yield_at(99)

    def test_lattice_cache_is_filled(self):
        cache = {}
        yield_vs_qubits(0.014, 0.06, sizes=(10, 20), batch_size=50, seed=1, lattices=cache)
        assert set(cache) == {10, 20}


class TestDetuningSweep:
    def test_sweep_grid_shape(self):
        curves = detuning_sweep(
            steps_ghz=(0.05, 0.06),
            sigmas_ghz=(0.014,),
            sizes=(10, 40),
            batch_size=200,
            seed=2,
        )
        assert set(curves) == {(0.05, 0.014), (0.06, 0.014)}
        for curve in curves.values():
            assert len(curve.points) == 2

    def test_optimal_step_is_near_paper_value(self):
        """0.06 GHz should (weakly) dominate 0.04 GHz at moderate sizes."""
        curves = detuning_sweep(
            steps_ghz=(0.04, 0.06),
            sigmas_ghz=(0.014,),
            sizes=(40, 100),
            batch_size=600,
            seed=4,
        )
        total_006 = sum(curves[(0.06, 0.014)].yields)
        total_004 = sum(curves[(0.04, 0.014)].yields)
        assert total_006 >= total_004
