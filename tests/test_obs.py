"""Tests for the observability layer: tracing, metrics, export, logs.

Covers the observability PR's tentpole contract: span collection is a
strict no-op when no collector is active, span trees keep the same
shape across execution backends (worker spans are shipped home and
re-parented under the submitting task — the cross-process parity test
runs the same appsweep slice under the sequential and processes
backends and compares ``(name, parent-name)`` multisets), the metrics
registry merges worker-process deltas without double counting, the
Prometheus renderer round-trips through the bundled parser, and both
trace file formats (JSONL and Chrome trace-event JSON) survive a
write/load round trip.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.analysis.registry import EXPERIMENTS
from repro.engine import ExecutionEngine
from repro.obs import tracing
from repro.obs.export import (
    chrome_events_to_spans,
    format_summary,
    load_trace,
    spans_to_chrome_events,
    summarize,
    write_trace,
)
from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    parse_prometheus,
)


class TestTracing:
    def test_span_is_noop_without_collector(self):
        assert not tracing.is_tracing()
        assert tracing.current_span_id() is None
        with tracing.span("ignored", foo=1):
            # No collector: nothing is recorded and no id is exposed.
            assert not tracing.is_tracing()
            assert tracing.current_span_id() is None

    def test_collect_spans_records_nesting(self):
        with tracing.collect_spans() as spans:
            with tracing.span("outer"):
                outer_id = tracing.current_span_id()
                with tracing.span("inner", depth=1):
                    assert tracing.current_span_id() != outer_id
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner, outer = spans
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["attrs"] == {"depth": 1}
        assert inner["dur"] >= 0.0
        assert set(outer) >= {"name", "id", "parent", "ts", "pid", "tid", "dur"}

    def test_nested_collectors_shadow(self):
        with tracing.collect_spans() as outer_sink:
            with tracing.span("outer"):
                with tracing.collect_spans() as inner_sink:
                    with tracing.span("shadowed"):
                        pass
        assert [s["name"] for s in outer_sink] == ["outer"]
        assert [s["name"] for s in inner_sink] == ["shadowed"]
        # The inner collector starts a fresh stack: no cross-parenting.
        assert inner_sink[0]["parent"] is None

    def test_tracer_activate_and_adopt(self):
        tracer = tracing.Tracer()
        with tracer.activate():
            assert tracing.active_tracer() is tracer
            with tracing.span("root"):
                root_id = tracing.current_span_id()
                # Simulate worker spans arriving from another process.
                shipped = [
                    {"name": "task:w", "id": "aa", "parent": None,
                     "ts": 0.0, "pid": 999, "tid": 1, "dur": 0.5},
                    {"name": "phase:p", "id": "bb", "parent": "aa",
                     "ts": 0.0, "pid": 999, "tid": 1, "dur": 0.25},
                ]
                tracer.adopt(shipped, parent_id=root_id)
        assert tracing.active_tracer() is None
        spans = tracer.spans
        assert len(tracer) == 3
        by_name = {s["name"]: s for s in spans}
        # Adopt grafts shipped roots under the given parent and leaves
        # already-parented spans alone; every span gets the trace id.
        assert by_name["task:w"]["parent"] == root_id
        assert by_name["phase:p"]["parent"] == "aa"
        assert all(s["trace_id"] == tracer.trace_id for s in spans)


def _span_shape(spans):
    """Backend-invariant tree shape: sorted (name, parent-name) pairs."""
    by_id = {s["id"]: s for s in spans}
    return sorted(
        (s["name"], by_id[s["parent"]]["name"] if s["parent"] else None)
        for s in spans
    )


class TestCrossBackendParity:
    def _trace_appsweep(self, backend):
        tracer = tracing.Tracer()
        engine = ExecutionEngine(
            jobs=2, use_cache=False, backend=backend, tracer=tracer
        )
        spec = EXPERIMENTS.get("appsweep")
        spec.runner(engine, seed=3, batch_size=40, benchmarks=("bv",))
        return tracer.spans

    def test_same_span_tree_shape_sequential_vs_processes(self):
        sequential = self._trace_appsweep("sequential")
        processes = self._trace_appsweep("processes")
        assert _span_shape(sequential) == _span_shape(processes)
        # The processes run really did cross a process boundary ...
        assert len({s["pid"] for s in processes}) > 1
        # ... and every shipped span was re-parented: one batch root
        # per engine batch, no orphans.
        by_id = {s["id"]: s for s in processes}
        assert all(
            s["parent"] is None or s["parent"] in by_id for s in processes
        )
        roots = [s for s in processes if s["parent"] is None]
        assert {s["name"] for s in roots} == {"engine.batch"}

    def test_tracing_does_not_change_results(self):
        spec = EXPERIMENTS.get("appsweep")

        def run(tracer):
            engine = ExecutionEngine(
                jobs=1, use_cache=False, backend="sequential", tracer=tracer
            )
            result, _ = spec.runner(
                engine, seed=3, batch_size=40, benchmarks=("bv",)
            )
            return result

        assert run(None) == run(tracing.Tracer())


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        hits = reg.counter("c_total", "help", labels=("kind",))
        hits.inc(kind="a")
        hits.inc(2.5, kind="b")
        depth = reg.gauge("g", "help")
        depth.set(7)
        depth.dec(3)
        hist = reg.histogram("h_seconds", "help", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["c_total"]["type"] == "counter"
        assert snap["c_total"]["series"] == [
            {"labels": {"kind": "a"}, "value": 1.0},
            {"labels": {"kind": "b"}, "value": 2.5},
        ]
        assert snap["g"]["series"][0]["value"] == 4.0
        hseries = snap["h_seconds"]["series"][0]
        assert hseries["count"] == 3 and hseries["sum"] == pytest.approx(5.55)
        # One overflow observation (5.0) lives outside the bucket ladder;
        # it still shows up in ``count`` and in the +Inf bucket on render.
        assert hseries["bucket_counts"] == [1, 1]

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m", "help")
        with pytest.raises(ValueError, match="is a counter, not a gauge"):
            reg.gauge("m", "help")

    def test_delta_roundtrip_merges_without_double_count(self):
        worker = MetricsRegistry()
        c = worker.counter("tasks_total", "help", labels=("status",))
        c.inc(3, status="done")
        h = worker.histogram("t_seconds", "help")
        h.observe(0.2)
        marks = worker.checkpoint()
        c.inc(2, status="done")
        c.inc(status="failed")
        h.observe(0.4)
        delta = worker.delta_since(marks)
        assert delta is not None and delta["pid"] > 0

        home = MetricsRegistry()
        home.counter("tasks_total", "help", labels=("status",)).inc(
            10, status="done"
        )
        home.merge_delta(delta)
        snap = home.snapshot()
        done = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in snap["tasks_total"]["series"]
        }
        # Only the post-checkpoint increments land: 10 + 2, not 10 + 5.
        assert done[(("status", "done"),)] == 12.0
        assert done[(("status", "failed"),)] == 1.0
        hist = snap["t_seconds"]["series"][0]
        assert hist["count"] == 1 and hist["sum"] == pytest.approx(0.4)

    def test_delta_since_empty_is_none(self):
        reg = MetricsRegistry()
        reg.counter("m_total", "help").inc(5)
        marks = reg.checkpoint()
        assert reg.delta_since(marks) is None

    def test_prometheus_render_parse_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter", labels=("q",)).inc(4, q="xy")
        reg.gauge("g", "a gauge").set(-2.5)
        h = reg.histogram("h_seconds", "a histogram", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = reg.render_prometheus()
        assert "# HELP c_total a counter" in text
        assert "# TYPE h_seconds histogram" in text
        parsed = parse_prometheus(text)
        assert parsed["c_total"][(("q", "xy"),)] == 4.0
        assert parsed["g"][()] == -2.5
        # Buckets are cumulative and +Inf always closes the ladder.
        assert parsed["h_seconds_bucket"][(("le", "0.1"),)] == 1.0
        assert parsed["h_seconds_bucket"][(("le", "1"),)] == 2.0
        assert parsed["h_seconds_bucket"][(("le", "+Inf"),)] == 2.0
        assert parsed["h_seconds_count"][()] == 2.0

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus("what even is this line\n")

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestExport:
    def _spans(self):
        with tracing.collect_spans() as spans:
            with tracing.span("outer", answer=42):
                with tracing.span("inner"):
                    pass
        for s in spans:
            s["trace_id"] = "t1"
        return spans

    def test_jsonl_roundtrip(self, tmp_path):
        spans = self._spans()
        path = tmp_path / "trace.jsonl"
        write_trace(spans, str(path))
        loaded = load_trace(str(path))
        assert loaded == spans

    def test_chrome_roundtrip_preserves_schema(self, tmp_path):
        spans = self._spans()
        events = spans_to_chrome_events(spans)
        for event in events:
            assert event["ph"] == "X"
            assert {"name", "ph", "ts", "dur", "pid", "tid", "args"} <= set(event)
            # Chrome timestamps are microseconds.
            assert event["ts"] == pytest.approx(spans[0]["ts"] * 1e6, rel=1e-3) \
                or event["ts"] == pytest.approx(spans[1]["ts"] * 1e6, rel=1e-3)
        back = chrome_events_to_spans(events)
        key = lambda s: s["name"]  # noqa: E731
        for original, restored in zip(sorted(spans, key=key), sorted(back, key=key)):
            assert restored["id"] == original["id"]
            assert restored["parent"] == original["parent"]
            assert restored["trace_id"] == original["trace_id"]
            assert restored["dur"] == pytest.approx(original["dur"], rel=1e-6)

        path = tmp_path / "trace.json"
        write_trace(spans, str(path))
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == 2
        assert load_trace(str(path))  # and the loader accepts its own output

    def test_summarize_and_format(self):
        spans = self._spans()
        summary = summarize(spans, top=5)
        assert summary["span_count"] == 2
        assert summary["trace_ids"] == ["t1"]
        assert [entry["name"] for entry in summary["top_spans"]][0] == "outer"
        assert summary["critical_path"][0]["name"] == "outer"
        assert summary["critical_path"][1]["name"] == "inner"
        rendered = format_summary(summary)
        assert "critical path" in rendered and "outer" in rendered

    def test_load_trace_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nope": []}')
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestLogs:
    def test_configure_is_idempotent(self):
        configure_logging(level="info")
        configure_logging(level="debug")
        root = logging.getLogger("repro")
        ours = [
            h for h in root.handlers
            if getattr(h, "_repro_obs_handler", False)
        ]
        assert len(ours) == 1
        assert root.level == logging.DEBUG
        assert not root.propagate

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="loud")

    def test_json_formatter_emits_parseable_lines(self, capsys):
        import io

        stream = io.StringIO()
        configure_logging(level="info", json_format=True, stream=stream)
        try:
            get_logger("obs.test").info("hello %s", "world")
        finally:
            configure_logging(level="warning", json_format=False)
        line = stream.getvalue().strip()
        record = json.loads(line)
        assert record["message"] == "hello world"
        assert record["logger"] == "repro.obs.test"
        assert record["level"] == "INFO"
        assert isinstance(record["pid"], int)

    def test_env_default_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        configure_logging()
        try:
            assert logging.getLogger("repro").level == logging.ERROR
        finally:
            monkeypatch.delenv("REPRO_LOG_LEVEL")
            configure_logging(level="warning")
