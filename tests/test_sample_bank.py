"""The common-random-number sample bank (PR 10).

Four layers of guarantees:

* **The core NumPy contract** — ``Generator.normal(0, sigma, size)`` is
  bitwise ``sigma * standard_normal(size)`` at the same generator state,
  and the affine form ``ideal + sigma * z`` matches the historical
  ``ideal + normal(...)`` for every sigma *including zero* (where the
  raw noise arrays differ only in the sign of zero, which the add
  normalises).  Property-tested so a NumPy internals change under us
  fails loudly; CI runs this suite on the oldest supported NumPy.
* **Bank mechanics** — hits restore the post-draw generator state (the
  downstream repair stream continues bit-identically), LRU eviction
  respects the byte cap, oversize entries and contract violations fall
  back to direct sampling.
* **Pipeline parity** — banked runs equal unbanked runs equal engine
  runs at any ``--jobs``, tuned or untuned; every committed golden is
  re-checked with the bank *disabled* (the default tier-1 suite covers
  enabled).
* **Shared-draw axes** — ``share_draws`` on the sweep helpers hands
  combinations the same child seed without disturbing the historical
  derivation when off.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import test_golden_regression as golden
from repro.core.fabrication import FabricationModel
from repro.core.sample_bank import (
    SAMPLE_BANK_ENV,
    SampleBank,
    banked_standard_normal,
    clear_sample_bank,
    sample_bank_enabled,
    sample_bank_stats,
    set_sample_bank_enabled,
)
from repro.core.yield_model import (
    detuning_sweep,
    materialize_seeded_batch,
    simulate_yield_point,
)
from repro.engine.seeding import spawn_seeds

SEEDS = st.integers(min_value=0, max_value=2**63 - 1)
SIGMAS = st.floats(min_value=1e-6, max_value=16.0, allow_nan=False)
ROWS = st.integers(min_value=1, max_value=40)
COLS = st.integers(min_value=1, max_value=32)


@pytest.fixture(autouse=True)
def _fresh_bank():
    """Every test starts (and leaves) a clean, env-controlled bank."""
    clear_sample_bank()
    set_sample_bank_enabled(None)
    yield
    clear_sample_bank()
    set_sample_bank_enabled(None)


# ---------------------------------------------------------------------- #
# The NumPy contract the bank is built on
# ---------------------------------------------------------------------- #
class TestNormalScalingIdentity:
    @given(seed=SEEDS, sigma=SIGMAS, rows=ROWS, cols=COLS)
    def test_normal_is_scaled_standard_normal_bitwise(self, seed, sigma, rows, cols):
        """normal(0, sigma) == sigma * standard_normal, bytes and state."""
        a_rng = np.random.default_rng(seed)
        b_rng = np.random.default_rng(seed)
        a = a_rng.normal(0.0, sigma, size=(rows, cols))
        b = sigma * b_rng.standard_normal((rows, cols))
        assert a.tobytes() == b.tobytes()
        assert a_rng.bit_generator.state == b_rng.bit_generator.state

    @given(seed=SEEDS, sigma=st.one_of(st.just(0.0), SIGMAS), rows=ROWS, cols=COLS)
    def test_affine_form_matches_legacy_for_every_sigma(self, seed, sigma, rows, cols):
        """ideal + normal(0, sigma) == (z * sigma) += ideal, incl. sigma=0.

        At sigma=0 the raw noise arrays differ in zero sign (0.0 * z is
        -0.0 for negative z) but the add normalises it, so the fabricated
        frequencies — the only thing downstream code sees — are bitwise
        identical.
        """
        ideal = np.linspace(5.0, 5.12, cols)
        legacy_rng = np.random.default_rng(seed)
        legacy = ideal + legacy_rng.normal(0.0, sigma, size=(rows, cols))
        split_rng = np.random.default_rng(seed)
        split = split_rng.standard_normal((rows, cols)) * sigma
        split += ideal
        assert legacy.tobytes() == split.tobytes()
        assert legacy_rng.bit_generator.state == split_rng.bit_generator.state

    @given(seed=SEEDS, sigma=st.one_of(st.just(0.0), SIGMAS), rows=ROWS)
    @settings(max_examples=15)
    def test_sample_batch_matches_legacy_normal_draw(
        self, allocation_27, seed, sigma, rows
    ):
        """The refactored sample_batch reproduces the historical draw."""
        fab = FabricationModel(sigma_ghz=sigma)
        legacy_rng = np.random.default_rng(seed)
        legacy = allocation_27.ideal_frequencies[np.newaxis, :] + legacy_rng.normal(
            0.0, sigma, size=(rows, allocation_27.num_qubits)
        )
        new_rng = np.random.default_rng(seed)
        new = fab.sample_batch(allocation_27, rows, new_rng, draw_seed=seed)
        assert legacy.tobytes() == new.tobytes()
        assert legacy_rng.bit_generator.state == new_rng.bit_generator.state


# ---------------------------------------------------------------------- #
# Bank mechanics
# ---------------------------------------------------------------------- #
class TestBankMechanics:
    def test_hit_returns_same_draws_and_restores_state(self):
        bank = SampleBank(max_bytes=10**7)
        miss_rng = np.random.default_rng(42)
        z_miss = bank.standard_normal(42, (10, 7), miss_rng)
        state_after_draw = miss_rng.bit_generator.state
        tail_miss = miss_rng.standard_normal(5)

        hit_rng = np.random.default_rng(42)
        z_hit = bank.standard_normal(42, (10, 7), hit_rng)
        assert z_hit.tobytes() == z_miss.tobytes()
        assert hit_rng.bit_generator.state == state_after_draw
        tail_hit = hit_rng.standard_normal(5)
        assert tail_hit.tobytes() == tail_miss.tobytes()
        assert bank.stats() == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "bypasses": 0,
            "oversize": 0,
            "entries": 1,
            "bytes": z_miss.nbytes,
        }

    def test_banked_arrays_are_read_only(self):
        bank = SampleBank(max_bytes=10**6)
        z = bank.standard_normal(1, (4, 4), np.random.default_rng(1))
        with pytest.raises(ValueError):
            z[0, 0] = 0.0

    def test_lru_eviction_respects_byte_cap(self):
        entry_bytes = 10 * 10 * 8
        bank = SampleBank(max_bytes=3 * entry_bytes)
        for seed in (1, 2, 3):
            bank.standard_normal(seed, (10, 10), np.random.default_rng(seed))
        # Touch seed 1 so seed 2 is the least recently used.
        bank.standard_normal(1, (10, 10), np.random.default_rng(1))
        bank.standard_normal(4, (10, 10), np.random.default_rng(4))
        stats = bank.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 3
        assert stats["bytes"] == 3 * entry_bytes
        # Seed 2 was evicted (miss again); seeds 1 and 4 are resident.
        before = bank.stats()["misses"]
        bank.standard_normal(2, (10, 10), np.random.default_rng(2))
        assert bank.stats()["misses"] == before + 1
        hits_before = bank.stats()["hits"]
        bank.standard_normal(4, (10, 10), np.random.default_rng(4))
        assert bank.stats()["hits"] == hits_before + 1

    def test_oversize_draws_are_served_but_not_stored(self):
        bank = SampleBank(max_bytes=100)
        z = bank.standard_normal(7, (10, 10), np.random.default_rng(7))
        reference = np.random.default_rng(7).standard_normal((10, 10))
        assert z.tobytes() == reference.tobytes()
        stats = bank.stats()
        assert stats["oversize"] == 1
        assert stats["entries"] == 0

    def test_contract_violation_bypasses_the_bank(self):
        """A generator with history cannot be banked under its seed."""
        bank = SampleBank(max_bytes=10**6)
        rng = np.random.default_rng(3)
        rng.standard_normal(1)  # advance: rng no longer "fresh from 3"
        reference_rng = np.random.default_rng(3)
        reference_rng.standard_normal(1)
        z = bank.standard_normal(3, (4, 4), rng)
        assert z.tobytes() == reference_rng.standard_normal((4, 4)).tobytes()
        stats = bank.stats()
        assert stats["bypasses"] == 1
        assert stats["entries"] == 0

    def test_unhashable_seed_bypasses_the_bank(self):
        bank = SampleBank(max_bytes=10**6)
        seed = [1, 2]  # a valid numpy seed spec, but not content-addressable
        z = bank.standard_normal(seed, (3, 3), np.random.default_rng(seed))
        assert z.tobytes() == np.random.default_rng([1, 2]).standard_normal(
            (3, 3)
        ).tobytes()
        assert bank.stats()["bypasses"] == 1

    def test_tuple_seeds_are_banked(self):
        """Study-style tuple seeds are first-class bank keys."""
        bank = SampleBank(max_bytes=10**6)
        key = (2022, 3, 65)
        bank.standard_normal(key, (5, 5), np.random.default_rng(key))
        bank.standard_normal(key, (5, 5), np.random.default_rng(key))
        assert bank.stats()["hits"] == 1

    def test_none_seed_skips_banking(self):
        rng = np.random.default_rng(9)
        reference = np.random.default_rng(9).standard_normal((3, 3))
        z = banked_standard_normal(None, (3, 3), rng)
        assert z.tobytes() == reference.tobytes()
        assert sample_bank_stats()["entries"] == 0

    def test_env_var_disables_banking(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_BANK_ENV, "0")
        assert not sample_bank_enabled()
        banked_standard_normal(5, (3, 3), np.random.default_rng(5))
        assert sample_bank_stats()["entries"] == 0
        monkeypatch.setenv(SAMPLE_BANK_ENV, "1")
        assert sample_bank_enabled()

    def test_programmatic_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(SAMPLE_BANK_ENV, "0")
        set_sample_bank_enabled(True)
        assert sample_bank_enabled()
        set_sample_bank_enabled(None)
        assert not sample_bank_enabled()

    def test_clear_resets_counters_and_entries(self):
        banked_standard_normal(11, (4, 4), np.random.default_rng(11))
        assert sample_bank_stats()["entries"] == 1
        clear_sample_bank()
        stats = sample_bank_stats()
        assert stats["entries"] == 0
        assert stats["misses"] == 0
        assert stats["bytes"] == 0


# ---------------------------------------------------------------------- #
# Pipeline parity: banked == unbanked == parallel, goldens untouched
# ---------------------------------------------------------------------- #
SMALL_SWEEP = dict(
    steps_ghz=(0.05, 0.06),
    sigmas_ghz=(0.014, 0.1323),
    sizes=(10, 27),
    batch_size=120,
    seed=7,
)


def _flatten(curves):
    return [
        (key, p.num_qubits, p.num_collision_free, p.batch_size, p.ci_low, p.ci_high)
        for key in sorted(curves)
        for p in curves[key].points
    ]


class TestPipelineParity:
    @pytest.mark.parametrize("share_draws", [False, True])
    def test_bank_on_off_results_identical(self, share_draws):
        set_sample_bank_enabled(True)
        banked = detuning_sweep(**SMALL_SWEEP, share_draws=share_draws)
        set_sample_bank_enabled(False)
        unbanked = detuning_sweep(**SMALL_SWEEP, share_draws=share_draws)
        assert _flatten(banked) == _flatten(unbanked)

    def test_share_draws_collapses_sampling_to_one_pass_per_size(self):
        set_sample_bank_enabled(True)
        detuning_sweep(**SMALL_SWEEP, share_draws=True)
        stats = sample_bank_stats()
        num_combos = len(SMALL_SWEEP["steps_ghz"]) * len(SMALL_SWEEP["sigmas_ghz"])
        assert stats["misses"] == len(SMALL_SWEEP["sizes"])
        assert stats["hits"] == len(SMALL_SWEEP["sizes"]) * (num_combos - 1)
        assert stats["bypasses"] == 0

    @pytest.mark.parametrize(
        "backend,jobs", [("threads", 3), ("processes", 2)]
    )
    def test_cross_jobs_parity_with_bank(self, backend, jobs):
        """Engine runs at any --jobs reproduce the sequential banked sweep."""
        from repro.engine import ExecutionEngine

        set_sample_bank_enabled(True)
        sequential = detuning_sweep(**SMALL_SWEEP, share_draws=True)
        engine = ExecutionEngine(jobs=jobs, use_cache=False, backend=backend)
        parallel = detuning_sweep(**SMALL_SWEEP, share_draws=True, executor=engine)
        assert _flatten(parallel) == _flatten(sequential)

    def test_repair_stream_bit_identical_after_bank_hit(self):
        """Tuned runs: the repair rng continues identically through a hit."""
        from repro.tuning import TuningOptions

        point = dict(
            sigma_ghz=0.05,
            step_ghz=0.06,
            num_qubits=27,
            batch_size=120,
            seed=123,
            tuning=TuningOptions(),
        )
        set_sample_bank_enabled(True)
        first = simulate_yield_point(**point)  # bank miss
        second = simulate_yield_point(**point)  # bank hit, repair continues
        set_sample_bank_enabled(False)
        unbanked = simulate_yield_point(**point)
        assert first == second == unbanked
        assert first.total_tunes == unbanked.total_tunes
        assert first.num_repaired == unbanked.num_repaired

    def test_materialize_preallocated_matches_concatenated_chunks(
        self, allocation_27, fabrication
    ):
        from repro.core.yield_model import _chunk_frequencies
        from repro.stats import chunk_layout

        batch, chunk = 130, 50
        materialized = materialize_seeded_batch(
            allocation_27, fabrication, batch_size=batch, chunk_size=chunk, seed=7
        )
        chunks = [
            _chunk_frequencies(allocation_27, fabrication, length, 7, index)
            for index, length in enumerate(chunk_layout(batch, chunk))
        ]
        reference = np.concatenate(chunks, axis=0)
        assert materialized.tobytes() == reference.tobytes()
        assert materialized.flags.c_contiguous
        assert materialized.shape == (batch, allocation_27.num_qubits)

    @pytest.mark.parametrize("name", sorted(golden.GOLDEN_PARAMS))
    def test_goldens_unchanged_with_bank_disabled(self, name):
        """Every committed golden holds at 1e-9 with the bank OFF.

        The regular golden suite runs with the bank at its default
        (enabled), so together the two suites pin the acceptance
        criterion: goldens unchanged with the bank on AND off.
        """
        set_sample_bank_enabled(False)
        actual = golden._run_experiment(name)
        golden_path = golden.GOLDEN_DIR / f"{name}.json"
        assert golden_path.exists(), f"no committed golden for {name!r}"
        committed = json.loads(golden_path.read_text())
        problems = golden._drift(committed, actual)
        assert not problems, (
            f"{name} drifted with the bank disabled:\n" + "\n".join(problems[:10])
        )


# ---------------------------------------------------------------------- #
# Shared-draw axes on the sweep helpers
# ---------------------------------------------------------------------- #
def _record_runner(seed=None, **params):
    return dict(params, seed=seed)


def _value_runner(value, seed=None):
    return {"value": value, "seed": seed}


class TestSharedDrawAxes:
    def test_grid_sweep_shares_seeds_along_declared_dims(self):
        from repro.analysis.sweeps import grid_sweep

        records = grid_sweep(
            {"a": [1, 2], "b": [10, 20, 30]},
            _record_runner,
            seed=5,
            share_draws=("b",),
        )
        by_a = {}
        for record in records:
            by_a.setdefault(record["a"], set()).add(record["result"]["seed"])
        # One seed per a-value, shared across every b.
        assert all(len(seeds) == 1 for seeds in by_a.values())
        assert by_a[1] != by_a[2]
        assert sorted(s for seeds in by_a.values() for s in seeds) == sorted(
            spawn_seeds(5, 2)
        )

    def test_grid_sweep_default_matches_historical_derivation(self):
        from repro.analysis.sweeps import grid_sweep

        records = grid_sweep({"a": [1, 2], "b": [10, 20]}, _record_runner, seed=5)
        assert [r["result"]["seed"] for r in records] == spawn_seeds(5, 4)

    def test_grid_sweep_rejects_unknown_share_dim(self):
        from repro.analysis.sweeps import grid_sweep

        with pytest.raises(ValueError, match="share_draws"):
            grid_sweep({"a": [1]}, _record_runner, seed=5, share_draws=("nope",))

    def test_sweep_parameter_share_draws_single_seed(self):
        from repro.analysis.sweeps import sweep_parameter

        pairs = sweep_parameter(
            [1, 2, 3], _value_runner, seed=9, share_draws=True
        )
        seeds = {result["seed"] for _, result in pairs}
        assert seeds == {spawn_seeds(9, 1)[0]}

    def test_detuning_sweep_share_draws_defaults_off(self):
        """The historical derivation is untouched when share_draws is off."""
        baseline = detuning_sweep(**SMALL_SWEEP)
        again = detuning_sweep(**SMALL_SWEEP, share_draws=False)
        assert _flatten(baseline) == _flatten(again)


# ---------------------------------------------------------------------- #
# CLI and observability surfaces
# ---------------------------------------------------------------------- #
class TestSurfaces:
    def test_metrics_registry_carries_bank_events(self):
        from repro.obs.metrics import REGISTRY

        banked_standard_normal(21, (4, 4), np.random.default_rng(21))
        banked_standard_normal(21, (4, 4), np.random.default_rng(21))
        snapshot = REGISTRY.snapshot()
        series = snapshot["repro_sample_bank_events_total"]["series"]
        by_event = {
            labels.get("event"): value
            for labels, value in (
                (dict(entry["labels"]), entry["value"]) for entry in series
            )
        }
        assert by_event.get("miss", 0) >= 1
        assert by_event.get("hit", 0) >= 1

    def test_cli_no_sample_bank_flag_and_dump_json_block(self, tmp_path):
        from repro.__main__ import main

        dump = tmp_path / "out.json"
        try:
            rc = main(
                [
                    "run",
                    "fig6",
                    "--batch",
                    "2000",
                    "--seed",
                    "7",
                    "--jobs",
                    "1",
                    "--no-cache",
                    "--no-sample-bank",
                    "--quiet",
                    "--dump-json",
                    str(dump),
                ]
            )
            assert rc == 0
            payload = json.loads(dump.read_text())
            bank = payload["engine"]["sample_bank"]
            assert bank["enabled"] is False
            assert bank["entries"] == 0
        finally:
            os.environ.pop(SAMPLE_BANK_ENV, None)

    def test_dump_json_reports_bank_traffic_when_enabled(self, tmp_path):
        from repro.__main__ import main

        dump = tmp_path / "out.json"
        rc = main(
            [
                "run",
                "fig6",
                "--batch",
                "2000",
                "--seed",
                "7",
                "--jobs",
                "1",
                "--no-cache",
                "--quiet",
                "--dump-json",
                str(dump),
            ]
        )
        assert rc == 0
        payload = json.loads(dump.read_text())
        bank = payload["engine"]["sample_bank"]
        assert bank["enabled"] is True
        assert bank["misses"] >= 1
