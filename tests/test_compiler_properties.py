"""Property-based tests (Hypothesis) for the compiler invariants.

Four invariant families over random circuits, layouts and topologies:

* every routed two-qubit gate lies on a coupling edge (both routing
  strategies);
* layouts are injective (virtual -> physical is a bijection onto its
  image) for every layout strategy;
* decomposition preserves gate counts in the CX basis (the expansion
  arithmetic of ccx/swap/rzz/cz is exact) and is idempotent;
* the default :class:`PassPipeline` reproduces the legacy transpile
  sequence gate-for-gate on random benchmark circuits across all three
  registered topologies.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.circuits.benchmarks import BENCHMARK_NAMES, build_benchmark
from repro.circuits.circuit import QuantumCircuit
from repro.compiler.decompose import decompose_to_cx_basis
from repro.compiler.layout import choose_layout
from repro.compiler.pipeline import LAYOUT_STRATEGIES, ROUTING_STRATEGIES
from repro.compiler.transpile import transpile
from repro.core.architecture import ARCHITECTURES, get_architecture
from repro.topology.coupling import CouplingMap

from tests.test_compiler_pipeline import legacy_transpile

#: Lattice sizes per topology, big enough for every generated circuit.
DEVICE_QUBITS = 24

#: Cached coupling maps (lattice construction dominates example time).
_COUPLINGS: dict[str, CouplingMap] = {}


def coupling_for(topology: str) -> CouplingMap:
    if topology not in _COUPLINGS:
        lattice = get_architecture(topology).lattice(DEVICE_QUBITS)
        _COUPLINGS[topology] = CouplingMap.from_lattice(lattice)
    return _COUPLINGS[topology]


@st.composite
def benchmark_circuits(draw):
    """A random benchmark circuit no wider than the probe devices."""
    name = draw(st.sampled_from(BENCHMARK_NAMES))
    width = draw(st.integers(min_value=4, max_value=14))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return build_benchmark(name, width, seed=seed)


@st.composite
def random_circuits(draw):
    """A random raw circuit over the full gate alphabet."""
    num_qubits = draw(st.integers(min_value=3, max_value=10))
    circuit = QuantumCircuit(num_qubits)
    gate_count = draw(st.integers(min_value=1, max_value=30))
    for _ in range(gate_count):
        kind = draw(st.sampled_from(("h", "t", "rz", "cx", "cz", "swap", "rzz", "ccx")))
        qubits = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_qubits - 1),
                min_size=3,
                max_size=3,
                unique=True,
            )
        )
        if kind in ("h", "t"):
            circuit.add(kind, qubits[0])
        elif kind == "rz":
            circuit.rz(0.25, qubits[0])
        elif kind == "rzz":
            circuit.rzz(0.5, qubits[0], qubits[1])
        elif kind == "ccx":
            circuit.ccx(*qubits)
        else:
            circuit.add(kind, qubits[0], qubits[1])
    return circuit


@given(
    circuit=benchmark_circuits(),
    topology=st.sampled_from(tuple(ARCHITECTURES.names())),
    routing=st.sampled_from(tuple(ROUTING_STRATEGIES.names())),
)
@settings(deadline=None)
def test_routed_two_qubit_gates_lie_on_coupling_edges(circuit, topology, routing):
    coupling = coupling_for(topology)
    transpiled = transpile(circuit, coupling, routing=routing)
    edge_set = set(coupling.edges)
    for gate in transpiled.circuit:
        if gate.num_qubits == 2:
            assert (min(gate.qubits), max(gate.qubits)) in edge_set
    for u, v in transpiled.two_qubit_edges:
        assert (min(u, v), max(u, v)) in edge_set
    assert len(transpiled.two_qubit_edges) == transpiled.metrics.num_two_qubit


@given(
    circuit=benchmark_circuits(),
    topology=st.sampled_from(tuple(ARCHITECTURES.names())),
    method=st.sampled_from(tuple(LAYOUT_STRATEGIES.names())),
)
@settings(deadline=None)
def test_layouts_are_injective(circuit, topology, method):
    coupling = coupling_for(topology)
    logical = decompose_to_cx_basis(circuit)
    layout = choose_layout(logical, coupling, method=method)
    mapping = layout.mapping()
    physicals = list(mapping.values())
    assert len(set(physicals)) == len(physicals)
    assert set(mapping) == set(range(circuit.num_qubits))
    for physical in physicals:
        assert 0 <= physical < coupling.num_qubits


@given(circuit=random_circuits())
@settings(deadline=None)
def test_decompose_preserves_gate_counts_in_cx_basis(circuit):
    before = circuit.count_ops()
    decomposed = decompose_to_cx_basis(circuit)
    after = decomposed.count_ops()

    # No multi-CX-basis gate survives.
    assert not {"ccx", "swap", "rzz", "cz"} & set(after)
    # Exact expansion arithmetic: ccx -> 6 CX, swap -> 3 CX,
    # rzz -> 2 CX + 1 rz, cz -> 1 CX + 2 H.
    expected_cx = (
        before.get("cx", 0)
        + 6 * before.get("ccx", 0)
        + 3 * before.get("swap", 0)
        + 2 * before.get("rzz", 0)
        + before.get("cz", 0)
    )
    assert after.get("cx", 0) == expected_cx
    assert after.get("rz", 0) == before.get("rz", 0) + before.get("rzz", 0)
    assert decomposed.num_two_qubit_gates == expected_cx

    # Idempotence: a CX-basis circuit decomposes to itself.
    again = decompose_to_cx_basis(decomposed)
    assert again.gates == decomposed.gates


@given(
    circuit=benchmark_circuits(),
    topology=st.sampled_from(tuple(ARCHITECTURES.names())),
)
@settings(deadline=None)
def test_default_pipeline_matches_legacy_transpile(circuit, topology):
    coupling = coupling_for(topology)
    transpiled = transpile(circuit, coupling)
    physical, routed, metrics, edges = legacy_transpile(circuit, coupling)
    assert transpiled.circuit.gates == physical.gates
    assert transpiled.metrics == metrics
    assert transpiled.two_qubit_edges == edges
    assert transpiled.num_swaps == routed.num_swaps
    assert transpiled.initial_layout.mapping() == routed.initial_layout.mapping()
