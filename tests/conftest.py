"""Shared fixtures for the test suite.

Expensive objects (calibration-backed error models, chiplet designs, a small
architecture study) are built once per session so individual tests stay
fast while still exercising the real pipeline.

Hypothesis profiles
-------------------
Three profiles are registered for the property-based suites:

* ``dev`` (default) — 25 examples per property, keeps the tier-1 run fast;
* ``ci`` — 200 examples, used by the CI workflow
  (``HYPOTHESIS_PROFILE=ci``);
* ``thorough`` — 1000 examples for local deep dives.

Golden regeneration
-------------------
``pytest --regenerate-goldens`` rewrites the seeded JSON snapshots under
``tests/golden/`` instead of comparing against them.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

try:
    from hypothesis import HealthCheck, settings as hypothesis_settings

    hypothesis_settings.register_profile(
        "dev",
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.register_profile(
        "ci",
        max_examples=200,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.register_profile(
        "thorough",
        max_examples=1000,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is a test dependency
    pass


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regenerate-goldens",
        action="store_true",
        default=False,
        help="rewrite the seeded JSON goldens under tests/golden/ "
        "instead of asserting against them",
    )

from repro.analysis.study import ArchitectureStudy, StudyConfig
from repro.core.chiplet import ChipletDesign
from repro.core.fabrication import FabricationModel
from repro.core.frequencies import FrequencySpec, allocate_heavy_hex_frequencies
from repro.core.mcm import MCMDesign
from repro.device.calibration import washington_cx_model
from repro.device.noise import LinkErrorModel
from repro.topology.coupling import CouplingMap
from repro.topology.heavy_hex import heavy_hex_by_qubit_count


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator shared by tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def spec() -> FrequencySpec:
    """The paper's default frequency targets (5.0 / 5.06 / 5.12 GHz)."""
    return FrequencySpec()


@pytest.fixture(scope="session")
def lattice_27():
    """A 27-qubit (Falcon-sized) heavy-hex lattice."""
    return heavy_hex_by_qubit_count(27)


@pytest.fixture(scope="session")
def allocation_27(lattice_27, spec):
    """Frequency allocation for the 27-qubit lattice."""
    return allocate_heavy_hex_frequencies(lattice_27, spec=spec)


@pytest.fixture(scope="session")
def coupling_27(lattice_27) -> CouplingMap:
    """Coupling map of the 27-qubit lattice."""
    return CouplingMap.from_lattice(lattice_27)


@pytest.fixture(scope="session")
def cx_model():
    """Synthetic Washington-backed empirical CX error model."""
    return washington_cx_model(seed=11)


@pytest.fixture(scope="session")
def link_model() -> LinkErrorModel:
    """State-of-the-art flip-chip link error model."""
    return LinkErrorModel.from_mean_median()


@pytest.fixture(scope="session")
def fabrication() -> FabricationModel:
    """Laser-tuned fabrication precision (sigma_f = 0.014 GHz)."""
    return FabricationModel(sigma_ghz=0.014)


@pytest.fixture(scope="session")
def chiplet_20() -> ChipletDesign:
    """The paper's flagship 20-qubit chiplet."""
    return ChipletDesign.build(20)


@pytest.fixture(scope="session")
def chiplet_10() -> ChipletDesign:
    """A 10-qubit chiplet."""
    return ChipletDesign.build(10)


@pytest.fixture(scope="session")
def mcm_2x2_20(chiplet_20) -> MCMDesign:
    """An 80-qubit 2x2 MCM of 20-qubit chiplets."""
    return MCMDesign.build(chiplet_20, 2, 2)


@pytest.fixture(scope="session")
def small_study(cx_model) -> ArchitectureStudy:
    """A reduced-batch architecture study for integration tests."""
    config = StudyConfig(
        chiplet_batch_size=400,
        monolithic_batch_size=400,
        chiplet_sizes=(10, 20, 40),
        seed=99,
    )
    return ArchitectureStudy(config, cx_model=cx_model)
