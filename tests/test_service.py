"""Tests for the reproduction service: JobManager + the HTTP front-end.

Covers the service PR's tentpole contract: submission and result
retrieval, request coalescing keyed on the engine cache key (two
concurrent identical submissions observe exactly ONE computation — the
engine task counter is asserted), bounded-queue backpressure
(:class:`QueueFull` / HTTP 429), per-client token-bucket rate limiting,
cancellation of queued and running jobs (propagating into every
execution backend), the append-only event stream, and the stdlib HTTP
endpoints end-to-end on a real socket.

No ``pytest-asyncio`` in the environment: each test drives its own loop
through ``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time

import pytest

from repro.engine import ExperimentRegistry
from repro.service import (
    JobCancelled,
    JobManager,
    JobState,
    QueueFull,
    RateLimited,
    RateLimiter,
    ServiceServer,
    request,
)

#: Engine options keeping every test job fast, deterministic and diskless.
FAST_ENGINE = {"use_cache": False, "backend": "sequential", "jobs": 1}


def _cube(x):
    return x**3


def _gated_task(marker_dir: str, index: int, gate: str, timeout: float = 30.0):
    with open(os.path.join(marker_dir, f"ran-{index}"), "w"):
        pass
    gate_path = os.path.join(marker_dir, gate)
    deadline = time.time() + timeout
    while not os.path.exists(gate_path) and time.time() < deadline:
        time.sleep(0.01)
    return index


def make_counting_runner(record, started=None, release=None, tasks=5):
    """A runner that counts its invocations and computes through the engine."""

    def runner(engine, seed=None, batch_size=None, full=False, stats=None,
               topology=None, tuning=None, benchmarks=None, routing=None):
        record["runs"] += 1
        if started is not None:
            started.set()
        if release is not None:
            release.wait(timeout=30.0)
        values = engine.map_calls(
            _cube, [{"x": i} for i in range(tasks)], name="svc.cube"
        )
        total = sum(values)
        return {"total": total}, f"total={total}"

    return runner


def make_registry(*entries):
    registry = ExperimentRegistry()
    for name, runner in entries:
        registry.register(name, f"{name} (service test)", runner)
    return registry


async def poll_until(predicate, timeout=15.0, message="condition not met"):
    deadline = time.time() + timeout
    while not predicate():
        assert time.time() < deadline, message
        await asyncio.sleep(0.01)


class TestSubmitAndResult:
    def test_submit_runs_and_returns_result(self):
        record = {"runs": 0}
        registry = make_registry(("toy", make_counting_runner(record)))

        async def scenario():
            async with JobManager(
                registry, workers=2, engine_options=FAST_ENGINE
            ) as manager:
                handle = await manager.submit("toy", {"seed": 1})
                assert not handle.coalesced
                result, text = await handle.result(timeout=30)
                return handle, result, text, manager.status(handle.id), manager.stats()

        handle, result, text, status, stats = asyncio.run(scenario())
        assert record["runs"] == 1
        assert result == {"total": sum(i**3 for i in range(5))}
        assert text == f"total={sum(i ** 3 for i in range(5))}"
        assert status["state"] == "succeeded"
        assert status["attempts"] == 1
        assert status["engine"]["tasks_executed"] == 5
        assert status["finished"] >= status["started"] >= status["created"]
        assert stats["submitted"] == 1 and stats["succeeded"] == 1

    def test_unknown_experiment_has_did_you_mean(self):
        registry = make_registry(("toy", make_counting_runner({"runs": 0})))

        async def scenario():
            async with JobManager(registry, engine_options=FAST_ENGINE) as manager:
                with pytest.raises(KeyError, match="toy"):
                    await manager.submit("toyy")

        asyncio.run(scenario())

    def test_bad_params_rejected_before_queueing(self):
        registry = make_registry(("toy", make_counting_runner({"runs": 0})))

        async def scenario():
            async with JobManager(registry, engine_options=FAST_ENGINE) as manager:
                with pytest.raises(ValueError, match="sed"):
                    await manager.submit("toy", {"sed": 1})
                assert manager.stats()["jobs_known"] == 0

        asyncio.run(scenario())

    def test_wait_timeout(self):
        started = threading.Event()
        release = threading.Event()
        record = {"runs": 0}
        registry = make_registry(
            ("slow", make_counting_runner(record, started, release))
        )

        async def scenario():
            async with JobManager(registry, engine_options=FAST_ENGINE) as manager:
                handle = await manager.submit("slow")
                with pytest.raises(asyncio.TimeoutError):
                    await manager.wait(handle.id, timeout=0.05)
                release.set()
                await handle.wait(timeout=30)

        asyncio.run(scenario())


class TestCoalescing:
    def test_identical_submissions_share_one_computation(self):
        """Two concurrent identical submissions -> one job, one runner
        invocation, one engine computation (task counter asserted)."""
        started = threading.Event()
        release = threading.Event()
        record = {"runs": 0}
        registry = make_registry(
            ("slow", make_counting_runner(record, started, release, tasks=7))
        )

        async def scenario():
            async with JobManager(
                registry, workers=2, engine_options=FAST_ENGINE
            ) as manager:
                first = await manager.submit("slow", {"seed": 3}, client="a")
                await poll_until(started.is_set, message="job never started")
                second = await manager.submit("slow", {"seed": 3}, client="b")
                assert second.coalesced and not first.coalesced
                assert second.id == first.id
                assert first.job.submissions == 2
                release.set()
                result_a = await first.result(timeout=30)
                result_b = await second.result(timeout=30)
                return result_a, result_b, manager.status(first.id), manager.stats()

        result_a, result_b, status, stats = asyncio.run(scenario())
        assert record["runs"] == 1, "coalesced submission re-ran the computation"
        assert result_a == result_b
        assert status["submissions"] == 2
        # The engine task counter: exactly one computation's worth of tasks.
        assert status["engine"]["tasks_executed"] == 7
        assert stats["submitted"] == 2 and stats["coalesced"] == 1
        assert stats["succeeded"] == 1

    def test_different_params_do_not_coalesce(self):
        record = {"runs": 0}
        registry = make_registry(("toy", make_counting_runner(record)))

        async def scenario():
            async with JobManager(
                registry, workers=2, engine_options=FAST_ENGINE
            ) as manager:
                first = await manager.submit("toy", {"seed": 1})
                second = await manager.submit("toy", {"seed": 2})
                assert second.id != first.id and not second.coalesced
                await first.result(timeout=30)
                await second.result(timeout=30)

        asyncio.run(scenario())
        assert record["runs"] == 2

    def test_none_params_normalize_away(self):
        started = threading.Event()
        release = threading.Event()
        record = {"runs": 0}
        registry = make_registry(
            ("slow", make_counting_runner(record, started, release))
        )

        async def scenario():
            async with JobManager(registry, engine_options=FAST_ENGINE) as manager:
                first = await manager.submit("slow", {"seed": 5, "topology": None})
                await poll_until(started.is_set)
                second = await manager.submit("slow", {"seed": 5})
                assert second.coalesced and second.id == first.id
                release.set()
                await first.wait(timeout=30)

        asyncio.run(scenario())

    def test_completed_jobs_do_not_coalesce_new_submissions(self):
        record = {"runs": 0}
        registry = make_registry(("toy", make_counting_runner(record)))

        async def scenario():
            async with JobManager(registry, engine_options=FAST_ENGINE) as manager:
                first = await manager.submit("toy", {"seed": 1})
                await first.result(timeout=30)
                second = await manager.submit("toy", {"seed": 1})
                assert not second.coalesced and second.id != first.id
                await second.result(timeout=30)

        asyncio.run(scenario())
        assert record["runs"] == 2  # no cache in FAST_ENGINE: both computed


class TestBackpressure:
    def test_queue_full_rejects_with_backpressure(self):
        started = threading.Event()
        release = threading.Event()
        registry = make_registry(
            ("slow", make_counting_runner({"runs": 0}, started, release))
        )

        async def scenario():
            async with JobManager(
                registry, workers=1, queue_size=1, engine_options=FAST_ENGINE
            ) as manager:
                running = await manager.submit("slow", {"seed": 1})
                await poll_until(started.is_set, message="job never started")
                queued = await manager.submit("slow", {"seed": 2})
                with pytest.raises(QueueFull, match="full"):
                    await manager.submit("slow", {"seed": 3})
                assert manager.stats()["rejected_queue_full"] == 1
                # Coalescing onto live jobs still works while the queue is
                # full: it adds no queue entry.
                again = await manager.submit("slow", {"seed": 1})
                assert again.coalesced and again.id == running.id
                release.set()
                await running.result(timeout=30)
                await queued.result(timeout=30)

        asyncio.run(scenario())


class TestRateLimiting:
    def test_per_client_token_bucket(self):
        clock = {"now": 0.0}
        limiter = RateLimiter(rate=1.0, burst=2.0, clock=lambda: clock["now"])
        record = {"runs": 0}
        registry = make_registry(("toy", make_counting_runner(record)))

        async def scenario():
            async with JobManager(
                registry, workers=2, engine_options=FAST_ENGINE, limiter=limiter
            ) as manager:
                a = await manager.submit("toy", {"seed": 1}, client="alice")
                b = await manager.submit("toy", {"seed": 2}, client="alice")
                with pytest.raises(RateLimited) as excinfo:
                    await manager.submit("toy", {"seed": 3}, client="alice")
                assert excinfo.value.client == "alice"
                assert 0.0 < excinfo.value.retry_after <= 1.0
                # An independent client has its own bucket.
                c = await manager.submit("toy", {"seed": 3}, client="bob")
                # Refill: one second buys one token.
                clock["now"] = 1.0
                d = await manager.submit("toy", {"seed": 4}, client="alice")
                for handle in (a, b, c, d):
                    await handle.result(timeout=30)
                assert manager.stats()["rejected_rate_limited"] == 1

        asyncio.run(scenario())


class TestCancellation:
    def test_cancel_queued_job_never_runs(self):
        started = threading.Event()
        release = threading.Event()
        record = {"runs": 0}
        registry = make_registry(
            ("slow", make_counting_runner(record, started, release))
        )

        async def scenario():
            async with JobManager(
                registry, workers=1, queue_size=4, engine_options=FAST_ENGINE
            ) as manager:
                running = await manager.submit("slow", {"seed": 1})
                await poll_until(started.is_set)
                queued = await manager.submit("slow", {"seed": 2})
                assert await queued.cancel()
                assert queued.state is JobState.CANCELLED
                with pytest.raises(JobCancelled):
                    await queued.result(timeout=5)
                assert not await queued.cancel()  # already terminal
                release.set()
                await running.result(timeout=30)

        asyncio.run(scenario())
        assert record["runs"] == 1  # the cancelled job never executed

    @pytest.mark.parametrize(
        "backend", ("sequential", "threads", "processes", "shared-memory")
    )
    def test_cancel_running_job_stops_remaining_batches(self, backend, tmp_path):
        """Service cancel -> engine CancelToken -> every backend stops
        scheduling; the tail tasks never execute."""
        marker_dir = str(tmp_path)

        def runner(engine, seed=None, batch_size=None, full=False, stats=None,
                   topology=None, tuning=None, benchmarks=None, routing=None):
            kwargs = [
                {
                    "marker_dir": marker_dir,
                    "index": i,
                    "gate": "go-first" if i == 0 else "go-rest",
                }
                for i in range(8)
            ]
            values = engine.map_calls(_gated_task, kwargs, name="svc.gated")
            return {"values": values}, "done"

        registry = make_registry(("gated", runner))
        engine_options = {"use_cache": False, "backend": backend, "jobs": 1}

        async def scenario():
            async with JobManager(
                registry, workers=1, engine_options=engine_options
            ) as manager:
                handle = await manager.submit("gated")
                await poll_until(
                    lambda: (tmp_path / "ran-0").exists(),
                    message="first task never started",
                )
                assert await handle.cancel()
                (tmp_path / "go-first").write_text("")
                await asyncio.sleep(0.5)
                (tmp_path / "go-rest").write_text("")
                job = await handle.wait(timeout=60)
                assert job.state is JobState.CANCELLED
                with pytest.raises(JobCancelled):
                    await handle.result(timeout=5)
                return manager.status(handle.id)

        status = asyncio.run(scenario())
        assert status["state"] == "cancelled"
        assert status["attempts"] == 1  # cancellation is never retried
        ran = {int(p.name.split("-")[1]) for p in tmp_path.glob("ran-*")}
        assert 0 in ran
        assert ran.isdisjoint({4, 5, 6, 7}), f"tail tasks ran: {sorted(ran)}"

    def test_stop_cancels_live_jobs(self):
        started = threading.Event()
        release = threading.Event()
        registry = make_registry(
            ("slow", make_counting_runner({"runs": 0}, started, release))
        )

        async def scenario():
            manager = JobManager(registry, workers=1, engine_options=FAST_ENGINE)
            await manager.start()
            handle = await manager.submit("slow")
            await poll_until(started.is_set)
            release.set()
            await manager.stop()
            assert handle.job.cancel.cancelled
            assert not manager.started

        asyncio.run(scenario())


class TestEventStream:
    def test_replay_after_completion(self):
        registry = make_registry(("toy", make_counting_runner({"runs": 0})))

        async def scenario():
            async with JobManager(registry, engine_options=FAST_ENGINE) as manager:
                handle = await manager.submit("toy")
                await handle.result(timeout=30)
                events = [event async for event in manager.events(handle.id)]
                return events

        events = asyncio.run(scenario())
        kinds = [event.kind for event in events]
        states = [
            event.payload["state"] for event in events if event.kind == "state"
        ]
        assert states[0] == "queued"
        assert "running" in states
        assert states[-1] == "succeeded"
        assert "progress" in kinds  # the engine's batch snapshot arrived
        assert [event.sequence for event in events] == list(range(len(events)))

    def test_live_stream_terminates_on_terminal_state(self):
        started = threading.Event()
        release = threading.Event()
        registry = make_registry(
            ("slow", make_counting_runner({"runs": 0}, started, release))
        )

        async def scenario():
            async with JobManager(registry, engine_options=FAST_ENGINE) as manager:
                handle = await manager.submit("slow")
                await poll_until(started.is_set)

                async def consume():
                    return [event async for event in manager.events(handle.id)]

                consumer = asyncio.create_task(consume())
                await asyncio.sleep(0.05)
                release.set()
                events = await asyncio.wait_for(consumer, timeout=30)
                assert handle.job.watchers == []  # subscription cleaned up
                return events

        events = asyncio.run(scenario())
        states = [
            event.payload["state"] for event in events if event.kind == "state"
        ]
        assert states[-1] == "succeeded"
        sequences = [event.sequence for event in events]
        assert sequences == sorted(set(sequences)), "replay/live overlap leaked"


class TestHttpEndpoints:
    """End-to-end over a real socket: the stdlib server + client helper."""

    def _registry(self, started=None, release=None):
        record = {"runs": 0}
        entries = [("toy", make_counting_runner(record))]
        if started is not None:
            entries.append(("slow", make_counting_runner(record, started, release)))
        return make_registry(*entries), record

    def test_submit_result_status_roundtrip(self):
        registry, record = self._registry()

        async def scenario():
            async with JobManager(
                registry, workers=2, engine_options=FAST_ENGINE
            ) as manager:
                server = ServiceServer(manager, port=0)
                await server.start()
                try:
                    host, port = server.host, server.port
                    status, _, body = await request(host, port, "GET", "/healthz")
                    assert status == 200 and body["status"] == "ok"

                    status, _, body = await request(
                        host, port, "POST", "/jobs",
                        {"experiment": "toy", "params": {"seed": 1}},
                    )
                    assert status == 202 and body["coalesced"] is False
                    job_id = body["id"]

                    status, _, body = await request(
                        host, port, "GET", f"/jobs/{job_id}/result?wait=30"
                    )
                    assert status == 200
                    assert body["result"] == {"total": sum(i**3 for i in range(5))}
                    assert body["engine"]["tasks_executed"] == 5

                    status, _, body = await request(
                        host, port, "GET", f"/jobs/{job_id}"
                    )
                    assert status == 200 and body["state"] == "succeeded"

                    status, _, body = await request(host, port, "GET", "/jobs")
                    assert status == 200 and len(body) == 1

                    status, _, body = await request(host, port, "GET", "/experiments")
                    assert status == 200
                    assert {spec["name"] for spec in body} == {"toy"}
                finally:
                    await server.stop()

        asyncio.run(scenario())

    def test_error_statuses(self):
        registry, _ = self._registry()

        async def scenario():
            async with JobManager(
                registry, workers=1, engine_options=FAST_ENGINE
            ) as manager:
                server = ServiceServer(manager, port=0)
                await server.start()
                try:
                    host, port = server.host, server.port
                    status, _, body = await request(
                        host, port, "POST", "/jobs", {"experiment": "nope"}
                    )
                    assert status == 404 and "unknown experiment" in body["error"]

                    status, _, body = await request(
                        host, port, "POST", "/jobs",
                        {"experiment": "toy", "params": {"sed": 1}},
                    )
                    assert status == 400 and "sed" in body["error"]

                    status, _, body = await request(
                        host, port, "POST", "/jobs", {"params": {}}
                    )
                    assert status == 400

                    status, _, body = await request(
                        host, port, "GET", "/jobs/j999999"
                    )
                    assert status == 404

                    status, _, body = await request(host, port, "GET", "/nope")
                    assert status == 404
                finally:
                    await server.stop()

        asyncio.run(scenario())

    def test_queue_full_is_429_with_retry_after(self):
        started = threading.Event()
        release = threading.Event()
        registry, _ = self._registry(started, release)

        async def scenario():
            async with JobManager(
                registry, workers=1, queue_size=1, engine_options=FAST_ENGINE
            ) as manager:
                server = ServiceServer(manager, port=0)
                await server.start()
                try:
                    host, port = server.host, server.port
                    await request(
                        host, port, "POST", "/jobs",
                        {"experiment": "slow", "params": {"seed": 1}},
                    )
                    await poll_until(started.is_set)
                    await request(
                        host, port, "POST", "/jobs",
                        {"experiment": "slow", "params": {"seed": 2}},
                    )
                    status, headers, body = await request(
                        host, port, "POST", "/jobs",
                        {"experiment": "slow", "params": {"seed": 3}},
                    )
                    assert status == 429
                    assert "retry-after" in headers
                    assert "full" in body["error"]
                finally:
                    release.set()
                    await server.stop()

        asyncio.run(scenario())

    def test_cancel_via_delete_and_410_result(self):
        started = threading.Event()
        release = threading.Event()
        registry, _ = self._registry(started, release)

        async def scenario():
            async with JobManager(
                registry, workers=1, engine_options=FAST_ENGINE
            ) as manager:
                server = ServiceServer(manager, port=0)
                await server.start()
                try:
                    host, port = server.host, server.port
                    _, _, body = await request(
                        host, port, "POST", "/jobs",
                        {"experiment": "slow", "params": {"seed": 1}},
                    )
                    running_id = body["id"]
                    await poll_until(started.is_set)
                    _, _, body = await request(
                        host, port, "POST", "/jobs",
                        {"experiment": "slow", "params": {"seed": 2}},
                    )
                    queued_id = body["id"]

                    status, _, body = await request(
                        host, port, "DELETE", f"/jobs/{queued_id}"
                    )
                    assert status == 200 and body["cancelled"] is True
                    assert body["state"] == "cancelled"

                    status, _, body = await request(
                        host, port, "GET", f"/jobs/{queued_id}/result"
                    )
                    assert status == 410
                finally:
                    release.set()
                    await server.stop()

        asyncio.run(scenario())

    def test_event_stream_over_http(self):
        registry, _ = self._registry()

        async def scenario():
            async with JobManager(
                registry, workers=1, engine_options=FAST_ENGINE
            ) as manager:
                server = ServiceServer(manager, port=0)
                await server.start()
                try:
                    host, port = server.host, server.port
                    _, _, body = await request(
                        host, port, "POST", "/jobs", {"experiment": "toy"}
                    )
                    job_id = body["id"]
                    await request(host, port, "GET", f"/jobs/{job_id}/result?wait=30")
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(
                        f"GET /jobs/{job_id}/events HTTP/1.1\r\n"
                        "Host: t\r\n\r\n".encode()
                    )
                    await writer.drain()
                    raw = await asyncio.wait_for(reader.read(), timeout=30)
                    writer.close()
                    return raw


                finally:
                    await server.stop()

        raw = asyncio.run(scenario())
        assert raw.startswith(b"HTTP/1.1 200")
        assert b"text/event-stream" in raw
        frames = [
            line for line in raw.split(b"\n") if line.startswith(b"data: ")
        ]
        assert len(frames) >= 3  # queued, running, ..., succeeded
        assert b'"succeeded"' in frames[-1]


class TestMetricsEndpoint:
    """``GET /metrics``: Prometheus text covering the service series."""

    def test_metrics_scrape_parses_and_counts_jobs(self):
        from repro.obs.metrics import parse_prometheus

        registry = make_registry(("toy", make_counting_runner({"runs": 0})))

        async def scenario():
            async with JobManager(
                registry, workers=1, engine_options=FAST_ENGINE
            ) as manager:
                server = ServiceServer(manager, port=0)
                await server.start()
                try:
                    host, port = server.host, server.port
                    status, headers, body = await request(
                        host, port, "GET", "/metrics"
                    )
                    assert status == 200
                    assert "text/plain" in headers.get("content-type", "")
                    before = parse_prometheus(body)

                    _, _, submitted = await request(
                        host, port, "POST", "/jobs", {"experiment": "toy"}
                    )
                    _, _, result = await request(
                        host, port, "GET",
                        f"/jobs/{submitted['id']}/result?wait=30",
                    )
                    _, _, job_status = await request(
                        host, port, "GET", f"/jobs/{submitted['id']}"
                    )
                    _, _, after_text = await request(
                        host, port, "GET", "/metrics"
                    )
                    return before, parse_prometheus(after_text), result, job_status

                finally:
                    await server.stop()

        before, after, result, job_status = asyncio.run(scenario())

        accepted = (("outcome", "accepted"),)
        succeeded = (("state", "succeeded"),)
        # The full catalogue is pre-registered: every outcome/state shows
        # up in a scrape even before anything happens.
        submission_outcomes = {
            dict(key)["outcome"]
            for key in before["repro_service_submissions_total"]
        }
        assert submission_outcomes >= {
            "accepted", "coalesced", "rejected_queue_full", "rejected_rate_limited",
        }
        job_states = {
            dict(key)["state"] for key in before["repro_service_jobs_total"]
        }
        assert job_states >= {"succeeded", "failed", "cancelled"}
        assert any(
            name == "repro_service_retries_total" for name in before
        )
        assert () in before["repro_service_queue_depth"]

        # The registry is process-global, so compare scrapes as deltas.
        delta_accepted = (
            after["repro_service_submissions_total"][accepted]
            - before["repro_service_submissions_total"][accepted]
        )
        delta_succeeded = (
            after["repro_service_jobs_total"][succeeded]
            - before["repro_service_jobs_total"][succeeded]
        )
        assert delta_accepted == 1.0
        assert delta_succeeded == 1.0
        # Histograms materialise on first observation, so the "before"
        # scrape may not carry the series yet.
        assert (
            after["repro_service_job_seconds_count"][()]
            - before.get("repro_service_job_seconds_count", {}).get((), 0.0)
        ) == 1.0
        # Engine series moved too: the job executed real tasks.
        executed = (("status", "executed"),)
        assert (
            after["repro_engine_tasks_total"][executed]
            - before.get("repro_engine_tasks_total", {}).get(executed, 0.0)
        ) > 0

        # Per-job observability rides along in the job payloads.
        assert job_status["trace_id"]
        assert result["engine"]["trace_id"] == job_status["trace_id"]
        assert "routing_cache" in result["engine"]
        assert "result_cache" in result["engine"]
