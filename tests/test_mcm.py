"""Tests for multi-chip-module topologies."""

from __future__ import annotations

import pytest

from repro.core.chiplet import ChipletDesign, PAPER_CHIPLET_SIZES
from repro.core.collisions import has_collision
from repro.core.mcm import (
    MAX_SYSTEM_QUBITS,
    MCMDesign,
    mcm_dimensions_for,
    square_dimensions_for,
)


class TestDimensionSelection:
    def test_paper_configuration_count_is_102(self):
        total = sum(len(mcm_dimensions_for(size)) for size in PAPER_CHIPLET_SIZES)
        assert total == 102

    def test_square_factorisation_preferred(self):
        dims = mcm_dimensions_for(10)
        assert (2, 2) in dims
        assert (1, 4) not in dims

    def test_respects_qubit_budget(self):
        for size in PAPER_CHIPLET_SIZES:
            for k, m in mcm_dimensions_for(size):
                assert k * m * size <= MAX_SYSTEM_QUBITS

    def test_unique_total_sizes_per_chiplet(self):
        for size in PAPER_CHIPLET_SIZES:
            totals = [k * m * size for k, m in mcm_dimensions_for(size)]
            assert len(totals) == len(set(totals))

    def test_square_dimensions(self):
        assert square_dimensions_for(20) == [(2, 2), (3, 3), (4, 4), (5, 5)]
        assert square_dimensions_for(250) == []

    def test_rejects_bad_chiplet_size(self):
        with pytest.raises(ValueError):
            mcm_dimensions_for(0)


class TestMCMDesign:
    def test_total_qubits(self, mcm_2x2_20):
        assert mcm_2x2_20.num_qubits == 80
        assert mcm_2x2_20.num_chips == 4

    def test_links_are_inter_chip(self, mcm_2x2_20):
        qc = mcm_2x2_20.chiplet.num_qubits
        for link in mcm_2x2_20.links:
            assert link.chip_a != link.chip_b
            assert link.global_a // qc == link.chip_a
            assert link.global_b // qc == link.chip_b

    def test_link_qubits_are_distinct(self, mcm_2x2_20):
        """No qubit participates in more than one inter-chip link."""
        assert mcm_2x2_20.num_link_qubits == 2 * mcm_2x2_20.num_links

    def test_link_endpoints_have_different_labels(self, mcm_2x2_20):
        labels = mcm_2x2_20.allocation.labels
        for link in mcm_2x2_20.links:
            assert labels[link.global_a] != labels[link.global_b]

    def test_ideal_mcm_is_collision_free(self, mcm_2x2_20):
        allocation = mcm_2x2_20.allocation
        assert not has_collision(allocation, allocation.ideal_frequencies)

    def test_coupling_map_is_connected(self, mcm_2x2_20):
        coupling = mcm_2x2_20.coupling_map()
        assert coupling.is_connected()
        assert coupling.num_qubits == 80
        assert set(coupling.link_edges) == mcm_2x2_20.link_edges()

    def test_chip_slices_partition_the_module(self, mcm_2x2_20):
        covered = []
        for chip in range(mcm_2x2_20.num_chips):
            chip_slice = mcm_2x2_20.chip_slice(chip)
            covered.extend(range(chip_slice.start, chip_slice.stop))
        assert covered == list(range(mcm_2x2_20.num_qubits))

    def test_chip_offset_bounds(self, mcm_2x2_20):
        with pytest.raises(IndexError):
            mcm_2x2_20.chip_offset(4)

    def test_assemble_frequencies_concatenates(self, mcm_2x2_20):
        import numpy as np

        per_chip = [
            np.full(mcm_2x2_20.chiplet.num_qubits, 5.0 + i) for i in range(4)
        ]
        assembled = mcm_2x2_20.assemble_frequencies(per_chip)
        assert assembled.shape == (80,)
        assert assembled[0] == pytest.approx(5.0)
        assert assembled[-1] == pytest.approx(8.0)

    def test_assemble_frequencies_validates_count(self, mcm_2x2_20):
        import numpy as np

        with pytest.raises(ValueError):
            mcm_2x2_20.assemble_frequencies([np.zeros(20)] * 3)

    def test_rejects_single_chip_module(self, chiplet_20):
        with pytest.raises(ValueError):
            MCMDesign.build(chiplet_20, 1, 1)

    @pytest.mark.parametrize("size", [10, 40, 90])
    def test_non_square_modules_build(self, size):
        design = ChipletDesign.build(size)
        mcm = MCMDesign.build(design, 1, 3)
        assert mcm.num_qubits == 3 * size
        assert mcm.coupling_map().is_connected()
        assert not has_collision(mcm.allocation, mcm.allocation.ideal_frequencies)

    def test_every_adjacent_chip_pair_is_linked(self, chiplet_10):
        mcm = MCMDesign.build(chiplet_10, 3, 3)
        linked_pairs = {
            tuple(sorted((link.chip_a, link.chip_b))) for link in mcm.links
        }
        expected = set()
        for row in range(3):
            for col in range(3):
                chip = row * 3 + col
                if col < 2:
                    expected.add(tuple(sorted((chip, chip + 1))))
                if row < 2:
                    expected.add(tuple(sorted((chip, chip + 3))))
        assert expected <= linked_pairs
