"""Tests for heavy-hex lattice generation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.heavy_hex import (
    build_heavy_hex,
    bridge_columns,
    heavy_hex_by_qubit_count,
    heavy_hex_qubit_count,
)


class TestBridgeColumns:
    def test_even_bridge_rows_start_at_zero(self):
        assert bridge_columns(10, 0) == [0, 4, 8]

    def test_odd_bridge_rows_start_at_two(self):
        assert bridge_columns(10, 1) == [2, 6]

    def test_pattern_alternates_with_row(self):
        assert bridge_columns(12, 2) == bridge_columns(12, 0)
        assert bridge_columns(12, 3) == bridge_columns(12, 1)

    def test_narrow_lattice_may_have_no_bridges(self):
        assert bridge_columns(2, 1) == []


class TestQubitCount:
    def test_single_row_has_no_bridges(self):
        assert heavy_hex_qubit_count(1, 7) == 7

    def test_counts_dense_and_bridge_qubits(self):
        # 2 rows of 8 plus bridges at columns 0 and 4.
        assert heavy_hex_qubit_count(2, 8) == 18

    def test_count_matches_constructed_lattice(self):
        for rows, cols in [(2, 5), (3, 6), (4, 10), (5, 21)]:
            lattice = build_heavy_hex(rows, cols)
            assert lattice.num_qubits == heavy_hex_qubit_count(rows, cols)

    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            heavy_hex_qubit_count(0, 5)


class TestBuildHeavyHex:
    def test_small_lattice_structure(self):
        lattice = build_heavy_hex(2, 5)
        # 10 dense + 2 bridges (columns 0 and 4).
        assert lattice.num_qubits == 12
        bridges = lattice.bridge_qubits()
        assert len(bridges) == 2
        for bridge in bridges:
            assert lattice.degree(bridge) == 2

    def test_dense_row_qubits_form_chains(self):
        lattice = build_heavy_hex(1, 6)
        assert lattice.num_edges == 5
        assert lattice.max_degree() == 2

    def test_max_degree_is_three(self):
        lattice = build_heavy_hex(5, 21)
        assert lattice.max_degree() <= 3

    def test_is_connected(self):
        assert build_heavy_hex(4, 9).is_connected()

    def test_boundaries_are_dense_qubits(self):
        lattice = build_heavy_hex(3, 8)
        for qubit in lattice.boundary_right() + lattice.boundary_left():
            assert not lattice.site(qubit).is_bridge
        assert len(lattice.boundary_right()) == 3
        assert len(lattice.boundary_top()) == 8

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            build_heavy_hex(0, 3)

    def test_graph_is_cached(self):
        lattice = build_heavy_hex(2, 6)
        assert lattice.graph() is lattice.graph()

    def test_relabelled_copy(self):
        lattice = build_heavy_hex(2, 6)
        renamed = lattice.relabelled("my-chip")
        assert renamed.name == "my-chip"
        assert renamed.num_qubits == lattice.num_qubits


class TestHeavyHexByQubitCount:
    @pytest.mark.parametrize("target", [10, 20, 27, 40, 60, 65, 90, 120, 127, 160, 200, 250])
    def test_exact_qubit_count(self, target):
        lattice = heavy_hex_by_qubit_count(target)
        assert lattice.num_qubits == target

    @pytest.mark.parametrize("target", [10, 27, 65, 127, 250])
    def test_connected_and_bounded_degree(self, target):
        lattice = heavy_hex_by_qubit_count(target)
        assert lattice.is_connected()
        assert lattice.max_degree() <= 3

    def test_qubit_indices_are_contiguous(self):
        lattice = heavy_hex_by_qubit_count(33)
        assert sorted(s.index for s in lattice.sites) == list(range(33))
        for u, v in lattice.edges:
            assert 0 <= u < 33 and 0 <= v < 33

    def test_eagle_size_is_two_dimensional(self):
        lattice = heavy_hex_by_qubit_count(127)
        assert lattice.rows >= 3

    def test_custom_name(self):
        assert heavy_hex_by_qubit_count(20, name="falcon-ish").name == "falcon-ish"

    def test_rejects_tiny_targets(self):
        with pytest.raises(ValueError):
            heavy_hex_by_qubit_count(1)

    @settings(max_examples=25, deadline=None)
    @given(target=st.integers(min_value=5, max_value=220))
    def test_property_exact_connected_bounded(self, target):
        """Any requested size yields an exact, connected, degree-<=3 lattice."""
        lattice = heavy_hex_by_qubit_count(target)
        assert lattice.num_qubits == target
        assert lattice.is_connected()
        assert lattice.max_degree() <= 3
        # Edges reference valid qubits and contain no duplicates.
        edges = {tuple(sorted(e)) for e in lattice.edges}
        assert len(edges) == len(lattice.edges)

    def test_no_isolated_qubits(self):
        lattice = heavy_hex_by_qubit_count(75)
        graph = lattice.graph()
        assert min(dict(graph.degree).values()) >= 1

    def test_bridge_qubits_never_adjacent(self):
        lattice = heavy_hex_by_qubit_count(127)
        bridges = set(lattice.bridge_qubits())
        for u, v in lattice.edges:
            assert not (u in bridges and v in bridges)
