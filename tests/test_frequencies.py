"""Tests for the three-frequency heavy-hex allocation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequencies import (
    DEFAULT_STEP_GHZ,
    FrequencySpec,
    allocate_heavy_hex_frequencies,
    allocation_from_labels,
    dense_label,
    heavy_hex_labels,
)
from repro.topology.heavy_hex import build_heavy_hex, heavy_hex_by_qubit_count


class TestFrequencySpec:
    def test_default_frequencies(self):
        spec = FrequencySpec()
        assert spec.frequencies == pytest.approx((5.0, 5.06, 5.12))

    def test_custom_step(self):
        spec = FrequencySpec(step_ghz=0.04)
        assert spec.frequency_for_label(2) == pytest.approx(5.08)

    def test_rejects_unknown_label(self):
        with pytest.raises(ValueError):
            FrequencySpec().frequency_for_label(3)

    def test_anharmonicity_is_negative(self):
        assert FrequencySpec().anharmonicity_ghz < 0


class TestDenseLabel:
    def test_pattern_period_four(self):
        labels = [dense_label(0, c) for c in range(8)]
        assert labels == [1, 2, 0, 2, 1, 2, 0, 2]

    def test_odd_rows_shift_by_two(self):
        assert dense_label(1, 0) == dense_label(0, 2)

    def test_phase_shifts_pattern(self):
        assert dense_label(0, 0, phase=2) == dense_label(0, 2)


class TestHeavyHexLabels:
    def test_bridges_are_f2(self):
        lattice = build_heavy_hex(3, 9)
        labels = heavy_hex_labels(lattice)
        for bridge in lattice.bridge_qubits():
            assert labels[bridge] == 2

    def test_neighbours_never_share_labels(self):
        lattice = heavy_hex_by_qubit_count(127)
        labels = heavy_hex_labels(lattice)
        for u, v in lattice.edges:
            assert labels[u] != labels[v]

    def test_f2_targets_have_distinct_labels(self):
        """Every F2 control's neighbours carry different (F0/F1) labels."""
        lattice = heavy_hex_by_qubit_count(65)
        labels = heavy_hex_labels(lattice)
        graph = lattice.graph()
        for qubit in range(lattice.num_qubits):
            if labels[qubit] != 2:
                continue
            neighbour_labels = [labels[n] for n in graph.neighbors(qubit)]
            assert len(neighbour_labels) <= 2
            assert len(set(neighbour_labels)) == len(neighbour_labels)
            assert 2 not in neighbour_labels


class TestAllocation:
    def test_ideal_frequencies_follow_labels(self, lattice_27, spec):
        allocation = allocate_heavy_hex_frequencies(lattice_27, spec=spec)
        for index, label in enumerate(allocation.labels):
            assert allocation.ideal_frequencies[index] == pytest.approx(
                spec.frequency_for_label(int(label))
            )

    def test_control_is_higher_frequency_endpoint(self, allocation_27):
        for control, target in allocation_27.directed_edges:
            assert (
                allocation_27.ideal_frequencies[control]
                > allocation_27.ideal_frequencies[target]
            )

    def test_edge_count_preserved(self, lattice_27, allocation_27):
        assert allocation_27.num_edges == lattice_27.num_edges

    def test_control_triples_share_a_control(self, allocation_27):
        directed = {tuple(edge) for edge in allocation_27.directed_edges.tolist()}
        for control, target_a, target_b in allocation_27.control_triples:
            assert (control, target_a) in directed
            assert (control, target_b) in directed
            assert target_a != target_b

    def test_label_counts_cover_all_qubits(self, allocation_27):
        counts = allocation_27.label_counts()
        assert sum(counts.values()) == allocation_27.num_qubits
        assert set(counts) <= {0, 1, 2}

    def test_only_f2_qubits_act_as_controls(self, lattice_27, allocation_27):
        """Within a monolithic lattice every CR control carries F2."""
        for control, _ in allocation_27.directed_edges:
            assert allocation_27.labels[control] == 2

    def test_allocation_from_labels_validates_range(self):
        with pytest.raises(ValueError):
            allocation_from_labels(np.array([0, 3]), [(0, 1)])

    def test_allocation_from_labels_validates_shape(self):
        with pytest.raises(ValueError):
            allocation_from_labels(np.array([[0, 1]]), [(0, 1)])

    def test_default_step_matches_paper_optimum(self):
        assert DEFAULT_STEP_GHZ == pytest.approx(0.06)
