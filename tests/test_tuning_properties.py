"""Hypothesis property suite for the repair invariants.

Three contracts of :mod:`repro.tuning` hold for *every* input, not just
the seeds the unit tests happen to pick:

1. **Never worse** — a repaired device is never more collided than its
   as-fabricated input, for any strategy, tuner, scatter or seed.
2. **Zero budget is a no-op** — tuning with an exhausted budget (or zero
   reach) is bit-identical to the untuned path: same frequencies, same
   masks, no randomness consumed.
3. **Determinism** — repair is a pure function of (devices, options,
   seed): independent runs agree bit for bit, and the engine-parallel
   pipeline (``--jobs 4``) reproduces the sequential one (``--jobs 1``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.architecture import get_architecture
from repro.core.fabrication import FabricationModel
from repro.tuning import (
    AnnealingRepair,
    CollisionGraph,
    GreedyLocalRepair,
    TunerModel,
    TuningOptions,
    repair_batch,
)

#: Small sizes keep each Hypothesis example fast while exercising both
#: bridge and dense qubits (heavy-hex) or full plan periods (ring/square).
SIZES = (10, 16, 20, 27)

_ARCH = {name: get_architecture(name) for name in ("heavy-hex", "square", "ring")}
_ALLOCATIONS = {
    (name, size): arch.allocate(arch.lattice(size))
    for name, arch in _ARCH.items()
    for size in SIZES
}
_GRAPHS = {key: CollisionGraph(alloc) for key, alloc in _ALLOCATIONS.items()}


def _strategy_for(kind: str):
    return GreedyLocalRepair() if kind == "greedy" else AnnealingRepair(steps=120)


device_cases = st.fixed_dictionaries(
    {
        "topology": st.sampled_from(sorted(_ARCH)),
        "size": st.sampled_from(SIZES),
        "sigma": st.floats(min_value=0.001, max_value=0.15),
        "seed": st.integers(min_value=0, max_value=2**32 - 1),
        "kind": st.sampled_from(["greedy", "anneal"]),
        "max_shift": st.floats(min_value=0.0, max_value=0.4),
        "precision": st.floats(min_value=0.0, max_value=0.02),
        "budget": st.sampled_from([None, 0, 1, 2, 5]),
    }
)


@given(case=device_cases)
def test_repaired_device_never_more_collided(case):
    key = (case["topology"], case["size"])
    allocation = _ALLOCATIONS[key]
    graph = _GRAPHS[key]
    fab = FabricationModel(sigma_ghz=case["sigma"])
    freqs = fab.sample_device(allocation, np.random.default_rng(case["seed"]))
    tuner = TunerModel(
        max_shift_ghz=case["max_shift"],
        precision_sigma_ghz=case["precision"],
        max_tunes_per_qubit=case["budget"],
    )
    strategy = _strategy_for(case["kind"])
    outcome = strategy.repair(graph, freqs, tuner, np.random.default_rng(1))
    assert outcome.violations_before == graph.total_violations(freqs)
    assert outcome.violations_after <= outcome.violations_before
    assert graph.total_violations(outcome.frequencies) == outcome.violations_after


@given(case=device_cases)
def test_zero_budget_tuning_is_bit_identical_noop(case):
    key = (case["topology"], case["size"])
    allocation = _ALLOCATIONS[key]
    fab = FabricationModel(sigma_ghz=case["sigma"])
    batch = fab.sample_batch(allocation, 8, np.random.default_rng(case["seed"]))
    opts = TuningOptions(
        tuner=TunerModel(max_tunes_per_qubit=0),
        strategy=_strategy_for(case["kind"]),
    )
    rng = np.random.default_rng(3)
    state = rng.bit_generator.state
    outcome = repair_batch(allocation, batch, opts, rng)
    assert np.array_equal(outcome.frequencies, batch)
    assert np.array_equal(outcome.final_mask, outcome.as_fab_mask)
    assert outcome.num_repaired == 0 and outcome.total_tunes == 0
    assert rng.bit_generator.state == state


@given(case=device_cases)
@settings(max_examples=15)
def test_repair_batch_is_deterministic(case):
    key = (case["topology"], case["size"])
    allocation = _ALLOCATIONS[key]
    fab = FabricationModel(sigma_ghz=case["sigma"])
    batch = fab.sample_batch(allocation, 6, np.random.default_rng(case["seed"]))
    opts = TuningOptions(
        tuner=TunerModel(
            max_shift_ghz=case["max_shift"],
            precision_sigma_ghz=case["precision"],
            max_tunes_per_qubit=case["budget"],
        ),
        strategy=_strategy_for(case["kind"]),
    )
    first = repair_batch(allocation, batch, opts, np.random.default_rng(17))
    second = repair_batch(allocation, batch, opts, np.random.default_rng(17))
    assert np.array_equal(first.frequencies, second.frequencies)
    assert np.array_equal(first.final_mask, second.final_mask)
    assert first.total_tunes == second.total_tunes


class TestJobsDeterminism:
    """Repair through the CLI pipeline: ``--jobs 1`` == ``--jobs 4``."""

    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    @pytest.mark.parametrize("strategy", ["greedy", "anneal"])
    def test_tunedyield_jobs_1_vs_4(self, strategy, capsys):
        from repro.__main__ import main

        args = [
            "run", "tunedyield", "--seed", "7", "--batch", "60", "--no-cache",
            "--tuning", strategy, "--max-shift-mhz", "150",
        ]
        assert main([*args, "--jobs", "1"]) == 0
        sequential = capsys.readouterr().out
        assert main([*args, "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("[engine]")
        ]
        assert strip(sequential) == strip(parallel)
