"""Per-phase wall-clock accounting: unit semantics + engine aggregation."""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.core.architecture import get_architecture
from repro.core.collisions import count_collision_free
from repro.core.fabrication import FabricationModel
from repro.engine import ExecutionEngine, collecting, phase


class TestPhasePrimitive:
    def test_noop_without_collector(self):
        # Must be safe (and cheap) on hot paths outside the engine.
        with phase("mask"):
            pass

    def test_collects_named_buckets(self):
        with collecting() as buckets:
            with phase("sample"):
                time.sleep(0.01)
            with phase("mask"):
                time.sleep(0.01)
        assert set(buckets) == {"sample", "mask"}
        assert all(seconds > 0 for seconds in buckets.values())

    def test_nested_phase_time_is_exclusive(self):
        with collecting() as buckets:
            with phase("repair"):
                time.sleep(0.01)
                with phase("mask"):
                    time.sleep(0.05)
                time.sleep(0.01)
        assert set(buckets) == {"repair", "mask"}
        assert buckets["mask"] >= 0.04
        # The outer bucket excludes the inner stretch entirely.
        assert buckets["repair"] < buckets["mask"]

    def test_same_phase_accumulates(self):
        with collecting() as buckets:
            for _ in range(3):
                with phase("score"):
                    time.sleep(0.005)
        assert set(buckets) == {"score"}
        assert buckets["score"] >= 0.01

    def test_nested_collector_shadows_outer(self):
        # A fused super-task collects per subtask; the surrounding
        # trampoline frame must see nothing for that stretch.
        with collecting() as outer:
            with collecting() as inner:
                with phase("compile"):
                    time.sleep(0.005)
        assert "compile" in inner
        assert outer == {}

    def test_thread_isolation(self):
        seen = {}

        def worker():
            with collecting() as buckets:
                with phase("mask"):
                    time.sleep(0.005)
            seen.update(buckets)

        with collecting() as main_buckets:
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert "mask" in seen
        assert main_buckets == {}


class TestEngineAggregation:
    def _mask_kwargs(self, num_calls=3):
        arch = get_architecture(None)
        allocation = arch.allocate(arch.lattice(20))
        fab = FabricationModel(sigma_ghz=0.05)
        return [
            {
                "allocation": allocation,
                "frequencies": fab.sample_batch(
                    allocation, 50, np.random.default_rng(seed)
                ),
            }
            for seed in range(num_calls)
        ]

    def test_sequential_backend_books_mask_seconds(self):
        engine = ExecutionEngine(jobs=1, use_cache=False, backend="sequential")
        engine.map_calls(count_collision_free, self._mask_kwargs(), name="mask-task")
        assert engine.stats.seconds_by_phase.get("mask", 0.0) > 0.0

    def test_threads_backend_books_mask_seconds(self):
        engine = ExecutionEngine(jobs=2, use_cache=False, backend="threads")
        engine.map_calls(count_collision_free, self._mask_kwargs(), name="mask-task")
        assert engine.stats.seconds_by_phase.get("mask", 0.0) > 0.0

    def test_phase_seconds_bounded_by_family_seconds(self):
        engine = ExecutionEngine(jobs=1, use_cache=False, backend="sequential")
        engine.map_calls(count_collision_free, self._mask_kwargs(), name="mask-task")
        total_phase = sum(engine.stats.seconds_by_phase.values())
        total_family = sum(engine.stats.seconds_by_family.values())
        # Exclusive accounting: phases can never exceed task wall-clock.
        assert total_phase <= total_family + 1e-6

    def test_cache_hits_book_no_phase_time(self, tmp_path):
        from repro.engine import ResultCache

        kwargs = self._mask_kwargs()
        first = ExecutionEngine(
            jobs=1, cache=ResultCache(tmp_path), backend="sequential"
        )
        first.map_calls(count_collision_free, kwargs, name="mask-task")
        second = ExecutionEngine(
            jobs=1, cache=ResultCache(tmp_path), backend="sequential"
        )
        second.map_calls(count_collision_free, kwargs, name="mask-task")
        assert second.stats.cache_hits == len(kwargs)
        assert second.stats.seconds_by_phase == {}
