"""Tests for the Device abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frequencies import allocation_from_labels
from repro.device.device import Device
from repro.device.noise import LinkErrorModel
from repro.topology.coupling import CouplingMap


@pytest.fixture()
def tiny_device() -> Device:
    coupling = CouplingMap(
        num_qubits=4,
        edges=[(0, 1), (1, 2), (2, 3)],
        link_edges=frozenset({(2, 3)}),
    )
    return Device(
        name="tiny",
        coupling=coupling,
        frequencies_ghz=np.array([5.0, 5.12, 5.06, 5.12]),
        labels=np.array([0, 2, 1, 2]),
        edge_errors={(0, 1): 0.01, (1, 2): 0.02, (2, 3): 0.08},
    )


class TestDeviceValidation:
    def test_requires_error_for_every_edge(self):
        coupling = CouplingMap(num_qubits=3, edges=[(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            Device(
                name="broken",
                coupling=coupling,
                frequencies_ghz=np.zeros(3),
                labels=np.zeros(3, dtype=int),
                edge_errors={(0, 1): 0.01},
            )

    def test_requires_matching_frequency_length(self):
        coupling = CouplingMap(num_qubits=3, edges=[(0, 1)])
        with pytest.raises(ValueError):
            Device(
                name="broken",
                coupling=coupling,
                frequencies_ghz=np.zeros(2),
                labels=np.zeros(3, dtype=int),
                edge_errors={(0, 1): 0.01},
            )

    def test_edge_errors_are_normalised(self, tiny_device):
        assert tiny_device.error_for(1, 0) == pytest.approx(0.01)
        assert tiny_device.error_for(3, 2) == pytest.approx(0.08)


class TestDeviceQueries:
    def test_counts(self, tiny_device):
        assert tiny_device.num_qubits == 4
        assert tiny_device.num_edges == 3
        assert tiny_device.num_link_edges == 1

    def test_average_errors(self, tiny_device):
        assert tiny_device.average_two_qubit_error() == pytest.approx((0.01 + 0.02 + 0.08) / 3)
        assert tiny_device.average_on_chip_error() == pytest.approx(0.015)
        assert tiny_device.average_link_error() == pytest.approx(0.08)

    def test_detuning(self, tiny_device):
        assert tiny_device.detuning_for(0, 1) == pytest.approx(0.12)

    def test_best_edges(self, tiny_device):
        best = tiny_device.best_edges(2)
        assert best[0][0] == (0, 1)
        assert len(best) == 2

    def test_qubit_record(self, tiny_device):
        qubit = tiny_device.qubit(1)
        assert qubit.index == 1
        assert qubit.label == 2
        assert qubit.frequency_ghz == pytest.approx(5.12)

    def test_scaled_link_errors(self, tiny_device):
        scaled = tiny_device.with_scaled_link_errors(0.5)
        assert scaled.error_for(2, 3) == pytest.approx(0.04)
        assert scaled.error_for(0, 1) == pytest.approx(0.01)
        # Original untouched.
        assert tiny_device.error_for(2, 3) == pytest.approx(0.08)


class TestFromAllocation:
    def test_builds_device_with_sampled_errors(self, cx_model, rng):
        allocation = allocation_from_labels(
            np.array([0, 2, 1, 2, 0]), [(1, 0), (1, 2), (3, 2), (3, 4)]
        )
        frequencies = allocation.ideal_frequencies
        device = Device.from_allocation(
            "alloc-device", allocation, frequencies, cx_model, rng
        )
        assert device.num_qubits == 5
        assert device.num_edges == 4
        assert all(0 < e < 1 for e in device.edge_errors.values())

    def test_link_edges_require_link_model(self, cx_model, rng):
        allocation = allocation_from_labels(np.array([0, 2]), [(1, 0)])
        with pytest.raises(ValueError):
            Device.from_allocation(
                "bad",
                allocation,
                allocation.ideal_frequencies,
                cx_model,
                rng,
                link_edges=frozenset({(0, 1)}),
            )

    def test_link_edges_use_link_model(self, cx_model, rng):
        allocation = allocation_from_labels(
            np.array([0, 2, 1, 0]), [(1, 0), (1, 2), (2, 3)]
        )
        device = Device.from_allocation(
            "linked",
            allocation,
            allocation.ideal_frequencies,
            cx_model,
            rng,
            link_edges=frozenset({(2, 3)}),
            link_model=LinkErrorModel.from_mean_median(),
        )
        assert device.num_link_edges == 1
