"""The cross-PR perf-trend harness (``benchmarks/trend.py``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

TREND_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "trend.py"


@pytest.fixture(scope="module")
def trend():
    spec = importlib.util.spec_from_file_location("trend", TREND_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def bench_dir(tmp_path):
    (tmp_path / "BENCH_alpha.json").write_text(
        json.dumps(
            {
                "speedup": 2.5,
                "speedup_regression": False,
                "cores": 4,
                "nested": {
                    "kernel_speedup": 10.0,
                    "speedup_context": "noise floor on 1 core",
                    "rows": [{"speedup": 1.1}],
                },
                "seconds": 0.5,
            }
        )
    )
    (tmp_path / "BENCH_beta.json").write_text(
        json.dumps({"section": {"speedup": 0.8, "speedup_regression": True}})
    )
    return tmp_path


class TestCollection:
    def test_collects_speedups_flags_contexts_cores(self, trend, bench_dir):
        entry = trend.collect_file_metrics(bench_dir / "BENCH_alpha.json")
        assert entry["speedups"] == {
            "speedup": 2.5,
            "nested.kernel_speedup": 10.0,
            "nested.rows[0].speedup": 1.1,
        }
        assert entry["regressions"] == []
        assert entry["contexts"] == {
            "nested.speedup_context": "noise floor on 1 core"
        }
        assert entry["cores"] == [4]

    def test_regression_flag_paths(self, trend, bench_dir):
        entry = trend.collect_file_metrics(bench_dir / "BENCH_beta.json")
        assert entry["regressions"] == ["section.speedup_regression"]

    def test_ledger_excluded_from_snapshots(self, trend, bench_dir):
        (bench_dir / trend.TREND_FILENAME).write_text("{}")
        names = [path.name for path in trend.bench_files(bench_dir)]
        assert trend.TREND_FILENAME not in names
        assert names == ["BENCH_alpha.json", "BENCH_beta.json"]


class TestFolding:
    def test_row_contains_every_snapshot(self, trend, bench_dir):
        row = trend.build_row(bench_dir, "PR-1")
        assert set(row["files"]) == {"BENCH_alpha.json", "BENCH_beta.json"}

    def test_fold_appends_across_labels(self, trend, bench_dir):
        ledger_path = bench_dir / trend.TREND_FILENAME
        trend.fold_row(ledger_path, trend.build_row(bench_dir, "PR-1"))
        ledger = trend.fold_row(ledger_path, trend.build_row(bench_dir, "PR-2"))
        assert [row["label"] for row in ledger["rows"]] == ["PR-1", "PR-2"]

    def test_refold_same_label_is_idempotent(self, trend, bench_dir):
        ledger_path = bench_dir / trend.TREND_FILENAME
        trend.fold_row(ledger_path, trend.build_row(bench_dir, "PR-1"))
        first = ledger_path.read_text()
        trend.fold_row(ledger_path, trend.build_row(bench_dir, "PR-1"))
        assert ledger_path.read_text() == first


class TestCheck:
    def test_check_fails_naming_regressed_file(self, trend, bench_dir, capsys):
        assert trend.main(["--dir", str(bench_dir), "--check"]) == 1
        err = capsys.readouterr().err
        assert "BENCH_beta.json" in err
        assert "section.speedup_regression" in err

    def test_check_passes_without_flags(self, trend, bench_dir):
        (bench_dir / "BENCH_beta.json").write_text(json.dumps({"speedup": 1.2}))
        assert trend.main(["--dir", str(bench_dir), "--check"]) == 0

    def test_fold_mode_warns_but_succeeds(self, trend, bench_dir, capsys):
        assert trend.main(["--dir", str(bench_dir), "--label", "PR-X"]) == 0
        captured = capsys.readouterr()
        assert "WARNING" in captured.err
        ledger = json.loads((bench_dir / trend.TREND_FILENAME).read_text())
        assert [row["label"] for row in ledger["rows"]] == ["PR-X"]


class TestDefaultLabel:
    def test_next_changes_line(self, trend, tmp_path):
        (tmp_path / "CHANGES.md").write_text("- PR 1: a\n- PR 2: b\n")
        assert trend.default_label(tmp_path) == "PR-3"

    def test_without_changes_file(self, trend, tmp_path):
        assert trend.default_label(tmp_path) == "PR-1"

    def test_committed_ledger_has_this_pr_row(self, trend):
        # The repository commits the ledger; the row for the PR being
        # prepared must exist and cover every committed snapshot.
        ledger_path = TREND_PATH.parent / trend.TREND_FILENAME
        ledger = json.loads(ledger_path.read_text())
        labels = [row["label"] for row in ledger["rows"]]
        assert labels, "committed BENCH_trend.json has no rows"
        latest = ledger["rows"][-1]
        snapshot_names = {path.name for path in trend.bench_files(TREND_PATH.parent)}
        assert set(latest["files"]) == snapshot_names
