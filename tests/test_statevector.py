"""Tests for the dense statevector simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.simulation.statevector import Statevector, measurement_probabilities, simulate


class TestBasics:
    def test_initial_state_is_all_zero(self):
        state = Statevector(3)
        assert state.probability_of("000") == pytest.approx(1.0)

    def test_size_limits(self):
        with pytest.raises(ValueError):
            Statevector(0)
        with pytest.raises(ValueError):
            Statevector(25)

    def test_x_flips_qubit(self):
        circuit = QuantumCircuit(2)
        circuit.x(1)
        state = simulate(circuit)
        assert state.probability_of("01") == pytest.approx(1.0)

    def test_h_creates_superposition(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        probabilities = measurement_probabilities(circuit)
        assert probabilities == pytest.approx([0.5, 0.5])

    def test_probability_normalisation(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).rz(0.7, 1).ry(0.3, 2).cz(0, 2)
        assert np.sum(measurement_probabilities(circuit)) == pytest.approx(1.0)

    def test_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            Statevector(2).run(QuantumCircuit(3))

    def test_bitstring_validation(self):
        state = Statevector(2)
        with pytest.raises(ValueError):
            state.probability_of("0")
        with pytest.raises(ValueError):
            state.probability_of("0a")


class TestTwoQubitGates:
    def test_cx_entangles(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        state = simulate(circuit)
        assert state.probability_of("00") == pytest.approx(0.5)
        assert state.probability_of("11") == pytest.approx(0.5)

    def test_cz_phase(self):
        circuit = QuantumCircuit(2)
        circuit.x(0).x(1)
        reference = simulate(circuit).amplitudes
        circuit.cz(0, 1)
        flipped = simulate(circuit).amplitudes
        assert np.allclose(flipped, -reference) or np.allclose(flipped[3], -reference[3])

    def test_swap_moves_excitation(self):
        circuit = QuantumCircuit(2)
        circuit.x(0).swap(0, 1)
        state = simulate(circuit)
        assert state.probability_of("01") == pytest.approx(1.0)

    def test_swap_equals_three_cx(self):
        direct = QuantumCircuit(3)
        direct.h(0).ry(0.4, 1).swap(0, 1)
        decomposed = QuantumCircuit(3)
        decomposed.h(0).ry(0.4, 1).cx(0, 1).cx(1, 0).cx(0, 1)
        assert np.allclose(simulate(direct).amplitudes, simulate(decomposed).amplitudes)

    def test_rzz_is_symmetric(self):
        a = QuantumCircuit(2)
        a.h(0).h(1).rzz(0.8, 0, 1)
        b = QuantumCircuit(2)
        b.h(0).h(1).rzz(0.8, 1, 0)
        assert np.allclose(simulate(a).amplitudes, simulate(b).amplitudes)


class TestThreeQubitGates:
    def test_ccx_truth_table(self):
        for c_a, c_b, expected in [(0, 0, 0), (1, 0, 0), (0, 1, 0), (1, 1, 1)]:
            circuit = QuantumCircuit(3)
            if c_a:
                circuit.x(0)
            if c_b:
                circuit.x(1)
            circuit.ccx(0, 1, 2)
            state = simulate(circuit)
            assert state.marginal_probability(2, expected) == pytest.approx(1.0)


class TestMarginals:
    def test_marginal_probability(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        state = simulate(circuit)
        assert state.marginal_probability(0, 0) == pytest.approx(0.5)
        assert state.marginal_probability(1, 0) == pytest.approx(1.0)

    def test_rotation_angle_consistency(self):
        theta = 1.1
        circuit = QuantumCircuit(1)
        circuit.rx(theta, 0)
        state = simulate(circuit)
        assert state.marginal_probability(0, 1) == pytest.approx(np.sin(theta / 2) ** 2)
