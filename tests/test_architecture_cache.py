"""Memoisation of lattice builds and frequency allocations.

``Architecture.lattice`` and ``Architecture.allocate`` are pure given
their inputs, and the application sweeps rebuild the same handful of
(topology, num_qubits) pairs hundreds of times — so both are memoised
process-wide.  The allocation key is a *content* fingerprint (plan,
spec, lattice name/sites/edges), so a pickled lattice copy in an engine
worker hits the same entry as the original object.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.architecture import (
    ARCHITECTURES,
    clear_architecture_caches,
    get_architecture,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_architecture_caches()
    yield
    clear_architecture_caches()


class TestLatticeMemo:
    def test_same_request_returns_same_object(self):
        arch = get_architecture(None)
        assert arch.lattice(27) is arch.lattice(27)

    def test_distinct_sizes_distinct_objects(self):
        arch = get_architecture(None)
        assert arch.lattice(27) is not arch.lattice(40)

    def test_distinct_architectures_never_collide(self):
        lattices = {
            name: get_architecture(name).lattice(20) for name in ARCHITECTURES.names()
        }
        assert len({id(lat) for lat in lattices.values()}) == len(lattices)

    def test_clear_forces_rebuild(self):
        arch = get_architecture(None)
        first = arch.lattice(27)
        clear_architecture_caches()
        assert arch.lattice(27) is not first


class TestAllocationMemo:
    def test_same_lattice_returns_same_allocation(self):
        arch = get_architecture(None)
        lattice = arch.lattice(27)
        assert arch.allocate(lattice) is arch.allocate(lattice)

    def test_pickled_lattice_copy_hits_by_content(self):
        # Engine workers receive pickled copies; the content fingerprint
        # must land them on the same entry as the parent's object.
        arch = get_architecture(None)
        lattice = arch.lattice(27)
        original = arch.allocate(lattice)
        copy = pickle.loads(pickle.dumps(lattice))
        assert copy is not lattice
        assert arch.allocate(copy) is original

    def test_memoised_allocation_matches_fresh_build(self):
        arch = get_architecture(None)
        lattice = arch.lattice(27)
        memoised = arch.allocate(lattice)
        clear_architecture_caches()
        fresh = arch.allocate(arch.lattice(27))
        assert memoised is not fresh
        np.testing.assert_array_equal(
            memoised.ideal_frequencies, fresh.ideal_frequencies
        )
        np.testing.assert_array_equal(memoised.labels, fresh.labels)
        np.testing.assert_array_equal(
            memoised.directed_edges, fresh.directed_edges
        )
        np.testing.assert_array_equal(
            memoised.control_triples, fresh.control_triples
        )

    def test_cross_architecture_allocations_distinct(self):
        seen = set()
        for name in ARCHITECTURES.names():
            arch = get_architecture(name)
            seen.add(id(arch.allocate(arch.lattice(20))))
        assert len(seen) == len(ARCHITECTURES)
