"""Tests for the compiler: decomposition, layout, routing, transpilation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.benchmarks import build_benchmark, ghz
from repro.circuits.circuit import QuantumCircuit
from repro.compiler.decompose import decompose_swaps, decompose_to_cx_basis
from repro.compiler.layout import Layout, choose_layout, find_long_path, is_chain_circuit
from repro.compiler.metrics import gate_metrics
from repro.compiler.routing import route_circuit
from repro.compiler.transpile import transpile
from repro.simulation.statevector import simulate
from repro.topology.coupling import CouplingMap
from repro.topology.heavy_hex import heavy_hex_by_qubit_count


@pytest.fixture(scope="module")
def line5() -> CouplingMap:
    return CouplingMap(num_qubits=5, edges=[(0, 1), (1, 2), (2, 3), (3, 4)])


class TestDecompose:
    def test_ccx_becomes_cx_basis(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        decomposed = decompose_to_cx_basis(circuit)
        assert decomposed.count_ops().get("ccx", 0) == 0
        assert decomposed.count_ops()["cx"] == 6

    def test_ccx_decomposition_preserves_unitary(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).ry(0.3, 1).x(2).ccx(0, 1, 2)
        decomposed = decompose_to_cx_basis(circuit)
        original = simulate(circuit).amplitudes
        rebuilt = simulate(decomposed).amplitudes
        # Equal up to a global phase.
        overlap = abs(np.vdot(original, rebuilt))
        assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_swap_decomposition_preserves_unitary(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 2).swap(0, 1)
        decomposed = decompose_swaps(circuit)
        assert decomposed.count_ops().get("swap", 0) == 0
        overlap = abs(np.vdot(simulate(circuit).amplitudes, simulate(decomposed).amplitudes))
        assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_rzz_and_cz_are_rewritten(self):
        circuit = QuantumCircuit(2)
        circuit.rzz(0.4, 0, 1).cz(0, 1)
        decomposed = decompose_to_cx_basis(circuit)
        names = set(decomposed.count_ops())
        assert "rzz" not in names and "cz" not in names

    def test_keep_swaps_option(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        assert decompose_to_cx_basis(circuit, keep_swaps=True).count_ops()["swap"] == 1


class TestLayout:
    def test_layout_is_bijective(self):
        layout = Layout({0: 3, 1: 5, 2: 7})
        assert layout.physical(1) == 5
        assert layout.virtual(7) == 2
        assert layout.virtual(4) is None

    def test_layout_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Layout({0: 1, 1: 1})

    def test_swap_physical(self):
        layout = Layout({0: 1, 1: 2})
        layout.swap_physical(1, 3)
        assert layout.physical(0) == 3
        assert layout.virtual(1) is None

    def test_is_chain_circuit(self):
        assert is_chain_circuit(ghz(6))
        star = QuantumCircuit(4)
        star.cx(0, 1).cx(0, 2).cx(0, 3)
        assert not is_chain_circuit(star)

    def test_find_long_path_on_heavy_hex(self):
        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(27))
        path = find_long_path(coupling, 20)
        assert path is not None
        assert len(path) == 20
        assert len(set(path)) == 20
        for a, b in zip(path, path[1:]):
            assert coupling.has_edge(a, b)

    def test_choose_layout_chain_uses_path(self, line5):
        layout = choose_layout(ghz(5), line5, method="line")
        physical = [layout.physical(v) for v in range(5)]
        assert sorted(physical) == list(range(5))

    def test_choose_layout_dense_connected(self):
        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(40))
        circuit = build_benchmark("qaoa", 20, seed=1)
        layout = choose_layout(circuit, coupling, method="dense")
        assert len({layout.physical(v) for v in range(20)}) == 20

    def test_choose_layout_rejects_oversized_circuit(self, line5):
        with pytest.raises(ValueError):
            choose_layout(ghz(6), line5)

    def test_noise_aware_layout_uses_error_map(self):
        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(27))
        errors = {edge: 0.05 for edge in coupling.edges}
        best_edge = coupling.edges[10]
        errors[best_edge] = 0.001
        circuit = build_benchmark("qaoa", 8, seed=1)
        layout = choose_layout(circuit, coupling, method="noise", edge_errors=errors)
        assert len({layout.physical(v) for v in range(8)}) == 8


class TestRouting:
    def test_adjacent_gates_need_no_swaps(self, line5):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        routed = route_circuit(circuit, line5, Layout({0: 0, 1: 1}))
        assert routed.num_swaps == 0
        assert routed.two_qubit_edges == [(0, 1)]

    def test_distant_gates_insert_swaps(self, line5):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        routed = route_circuit(circuit, line5, Layout({0: 0, 1: 4}))
        assert routed.num_swaps == 3
        # Every emitted two-qubit gate respects the connectivity.
        for u, v in routed.two_qubit_edges:
            assert line5.has_edge(u, v)

    def test_single_qubit_gates_follow_the_mapping(self, line5):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1).h(0)
        routed = route_circuit(circuit, line5, Layout({0: 0, 1: 4}))
        h_gates = [g for g in routed.circuit if g.name == "h"]
        assert len(h_gates) == 1
        # Qubit 0 may have moved; the H must land on its current host.
        assert h_gates[0].qubits[0] == routed.final_layout.physical(0)

    def test_routing_rejects_multi_qubit_gates(self, line5):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        with pytest.raises(ValueError):
            route_circuit(circuit, line5, Layout({0: 0, 1: 1, 2: 2}))

    def test_routed_circuit_preserves_semantics(self):
        """Routing + SWAP decomposition implements the same state up to relabelling."""
        coupling = CouplingMap(num_qubits=4, edges=[(0, 1), (1, 2), (2, 3)])
        circuit = QuantumCircuit(4)
        circuit.h(0).cx(0, 3).cx(1, 2).rz(0.5, 3).cx(0, 2)
        layout = Layout({i: i for i in range(4)})
        routed = route_circuit(circuit, coupling, layout)
        physical = decompose_swaps(routed.circuit)

        original = simulate(circuit)
        mapped = simulate(physical)
        # Compare marginals through the final layout (virtual -> physical).
        for virtual in range(4):
            physical_qubit = routed.final_layout.physical(virtual)
            assert mapped.marginal_probability(physical_qubit, 1) == pytest.approx(
                original.marginal_probability(virtual, 1), abs=1e-9
            )


class TestTranspile:
    def test_transpile_respects_connectivity(self):
        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(27))
        circuit = build_benchmark("qaoa", 20, seed=2)
        transpiled = transpile(circuit, coupling)
        edge_set = set(coupling.edges)
        for gate in transpiled.circuit:
            if gate.num_qubits == 2:
                assert (min(gate.qubits), max(gate.qubits)) in edge_set

    def test_two_qubit_edge_list_matches_gate_count(self):
        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(27))
        circuit = build_benchmark("bv", 20)
        transpiled = transpile(circuit, coupling)
        assert len(transpiled.two_qubit_edges) == transpiled.metrics.num_two_qubit

    def test_chain_circuits_route_cheaply(self):
        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(65))
        transpiled = transpile(ghz(50), coupling)
        assert transpiled.metrics.num_two_qubit < 80

    def test_metrics_consistency(self):
        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(27))
        circuit = build_benchmark("adder", 20)
        transpiled = transpile(circuit, coupling)
        metrics = gate_metrics(transpiled.circuit)
        assert metrics.num_two_qubit == transpiled.metrics.num_two_qubit
        assert metrics.two_qubit_critical_path <= metrics.num_two_qubit
        assert metrics.as_row() == (
            metrics.num_one_qubit,
            metrics.num_two_qubit,
            metrics.two_qubit_critical_path,
        )

    def test_transpile_onto_device_uses_error_map(self, small_study):
        mcm = small_study.mcm_result(20, (2, 2))
        assert mcm.best_device is not None
        circuit = build_benchmark("bv", 30)
        transpiled = transpile(circuit, mcm.best_device)
        for u, v in transpiled.two_qubit_edges:
            assert (min(u, v), max(u, v)) in mcm.best_device.edge_errors
