"""Golden-regression suite: seeded numeric snapshots of every experiment.

Each experiment in :data:`repro.analysis.registry.EXPERIMENTS` is run at
a fixed seed and reduced batch size, its result object is flattened into
a JSON-able numeric summary, and that summary is compared against the
checked-in golden under ``tests/golden/``.  Any numeric drift beyond
1e-9 — a changed RNG stream, a reordered reduction, an edited model —
fails the suite with the exact path of the deviating value.

Regenerate intentionally-changed goldens with::

    PYTHONPATH=src python -m pytest tests/test_golden_regression.py \
        --regenerate-goldens

and commit the diff; CI's golden-drift job re-runs this suite against
the committed snapshots (the 1e-9 tolerance, not a byte-exact diff, so
sub-tolerance ulp changes from numpy/scipy releases don't flake it) and
fails when a registered experiment has no committed golden at all.
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.registry import EXPERIMENTS

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Absolute/relative tolerance of the drift check.
TOLERANCE = 1e-9

#: Reduced-scale parameters per experiment: (seed, batch_size).  Small
#: enough to keep the suite in tier-1 territory, large enough that every
#: code path (yield Monte-Carlo, binning, assembly, compilation) runs.
GOLDEN_PARAMS: dict[str, tuple[int, int | None]] = {
    "fig3": (11, None),
    "table1": (0, None),
    "fig4": (7, 120),
    "fig6": (7, 5000),
    "sec5c": (7, 200),
    "fig7": (11, None),
    "fig8": (2022, 200),
    "fig9": (2022, 200),
    "fig10": (2022, 200),
    "table2": (5, None),
    "topoyield": (7, 120),
    "topomcm": (7, 400),
    "tunedyield": (7, 120),
    "repairbudget": (7, 200),
    "appsweep": (7, 200),
}

#: Recursion cap for the structural summary (pathological cycles guard).
MAX_DEPTH = 14


def summarize(value, depth: int = 0):
    """Flatten an arbitrary result object into JSON-able numeric structure.

    Dataclasses recurse over their comparable fields, arrays become
    shape/moments/head digests, mappings stringify their keys (sorted),
    and anything unrecognised collapses to its type name — so the golden
    captures every number an experiment produces without pinning
    implementation details like object identity.
    """
    if depth > MAX_DEPTH:
        return f"<depth-capped:{type(value).__name__}>"
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        flat = value.ravel()
        head = [summarize(v, depth + 1) for v in flat[:16].tolist()]
        summary = {
            "__ndarray__": list(value.shape),
            "dtype": str(value.dtype),
            "head": head,
        }
        if flat.size and np.issubdtype(value.dtype, np.number):
            finite = flat[np.isfinite(flat.astype(float))]
            summary["sum"] = float(finite.sum()) if finite.size else 0.0
            summary["mean"] = float(finite.mean()) if finite.size else None
        return summary
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: summarize(getattr(value, f.name), depth + 1)
            for f in dataclasses.fields(value)
            if f.compare
        }
    if isinstance(value, dict):
        return {
            repr(k): summarize(v, depth + 1)
            for k, v in sorted(value.items(), key=lambda item: repr(item[0]))
        }
    if isinstance(value, (list, tuple)):
        return [summarize(v, depth + 1) for v in value]
    return f"<{type(value).__name__}>"


def _drift(golden, actual, path: str = "$") -> list[str]:
    """Every numeric/structural deviation between two summaries."""
    problems: list[str] = []
    if isinstance(golden, float) or isinstance(actual, float):
        if not isinstance(golden, (int, float)) or not isinstance(actual, (int, float)):
            return [f"{path}: type changed {type(golden).__name__} -> {type(actual).__name__}"]
        g, a = float(golden), float(actual)
        if math.isnan(g) or math.isnan(a):
            # nan == nan counts as stable; nan vs. a real number is drift
            # (abs(nan - x) > tol is always False, so it must not fall
            # through to the tolerance comparison).
            return [] if math.isnan(g) and math.isnan(a) else [
                f"{path}: {g!r} != {a!r}"
            ]
        if math.isinf(g) or math.isinf(a):
            return [] if g == a else [f"{path}: {g!r} != {a!r}"]
        if abs(g - a) > TOLERANCE + TOLERANCE * abs(g):
            return [f"{path}: {g!r} != {a!r} (|delta|={abs(g - a):.3e})"]
        return []
    if type(golden) is not type(actual):
        return [f"{path}: type changed {type(golden).__name__} -> {type(actual).__name__}"]
    if isinstance(golden, dict):
        for key in sorted(set(golden) | set(actual)):
            if key not in golden:
                problems.append(f"{path}.{key}: new key")
            elif key not in actual:
                problems.append(f"{path}.{key}: missing key")
            else:
                problems.extend(_drift(golden[key], actual[key], f"{path}.{key}"))
        return problems
    if isinstance(golden, list):
        if len(golden) != len(actual):
            return [f"{path}: length {len(golden)} -> {len(actual)}"]
        for index, (g, a) in enumerate(zip(golden, actual)):
            problems.extend(_drift(g, a, f"{path}[{index}]"))
        return problems
    if golden != actual:
        return [f"{path}: {golden!r} != {actual!r}"]
    return []


def _run_experiment(name: str):
    seed, batch = GOLDEN_PARAMS[name]
    spec = EXPERIMENTS.get(name)
    result, text = spec.runner(None, seed=seed, batch_size=batch, full=False)
    return {
        "experiment": name,
        "seed": seed,
        "batch_size": batch,
        "summary": summarize(result),
        "text_line_count": len(text.splitlines()),
    }


@pytest.mark.parametrize("name", sorted(GOLDEN_PARAMS))
def test_experiment_matches_golden(name, request):
    regenerate = request.config.getoption("--regenerate-goldens")
    golden_path = GOLDEN_DIR / f"{name}.json"
    actual = _run_experiment(name)

    if regenerate:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return

    assert golden_path.exists(), (
        f"no golden for {name!r}; generate it with "
        "`python -m pytest tests/test_golden_regression.py --regenerate-goldens`"
    )
    golden = json.loads(golden_path.read_text())
    problems = _drift(golden, actual)
    assert not problems, (
        f"{name}: {len(problems)} value(s) drifted beyond {TOLERANCE}:\n"
        + "\n".join(problems[:25])
    )


def test_every_registered_experiment_has_golden_params():
    """Adding an experiment to the registry must extend the golden suite."""
    assert set(EXPERIMENTS.names()) == set(GOLDEN_PARAMS)


def test_summarize_is_deterministic_and_tolerant():
    payload = {"b": np.arange(3.0), "a": (1, 2.5, float("nan"))}
    first = summarize(payload)
    second = summarize(payload)
    assert _drift(first, second) == []
    assert _drift(first, summarize({"b": np.arange(3.0), "a": (1, 2.5 + 1e-12, float("nan"))})) == []
    drift = _drift(first, summarize({"b": np.arange(3.0), "a": (1, 2.6, float("nan"))}))
    assert drift and "$.'a'[1]" in drift[0]
