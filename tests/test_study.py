"""Tests for the shared ArchitectureStudy state."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.study import ArchitectureStudy, StudyConfig


class TestStudyCaching:
    def test_chiplet_design_is_cached(self, small_study):
        assert small_study.chiplet_design(20) is small_study.chiplet_design(20)

    def test_chiplet_bin_is_cached(self, small_study):
        assert small_study.chiplet_bin(20) is small_study.chiplet_bin(20)

    def test_mcm_result_is_cached(self, small_study):
        assert small_study.mcm_result(20, (2, 2)) is small_study.mcm_result(20, (2, 2))

    def test_monolithic_result_is_cached(self, small_study):
        assert small_study.monolithic_result(40) is small_study.monolithic_result(40)


class TestChipletBins:
    def test_yields_decrease_with_chiplet_size(self, small_study):
        y10 = small_study.chiplet_bin(10).collision_free_yield
        y40 = small_study.chiplet_bin(40).collision_free_yield
        assert y10 > y40

    def test_bins_are_sorted(self, small_study):
        errors = [c.average_error for c in small_study.chiplet_bin(20).chiplets]
        assert errors == sorted(errors)


class TestMCMResults:
    def test_mcm_result_fields(self, small_study):
        result = small_study.mcm_result(20, (2, 2))
        assert result.design.num_qubits == 80
        assert result.num_mcms > 0
        assert 0 < result.post_assembly_yield <= 1
        assert result.post_assembly_yield_100x <= result.post_assembly_yield
        assert result.best_device is not None
        assert result.num_edges == result.design.coupling_map().num_edges

    def test_eavg_prefix_is_better_than_full_pool(self, small_study):
        """The best-chiplet prefix must have lower average error than the full pool."""
        result = small_study.mcm_result(20, (2, 2))
        if result.num_mcms >= 8:
            assert result.eavg(count=2) <= result.eavg() + 1e-12

    def test_eavg_link_scaling_is_monotonic(self, small_study):
        result = small_study.mcm_result(20, (2, 2))
        assert result.eavg(link_scale=0.25) < result.eavg(link_scale=1.0)

    def test_eavg_for_scenario_matches_manual_scale(self, small_study):
        result = small_study.mcm_result(20, (2, 2))
        scenario = small_study.scenarios[-1]  # elink = echip
        expected = result.eavg(link_scale=scenario.link_model.mean / result.base_link_mean)
        assert result.eavg_for_scenario(scenario) == pytest.approx(expected)

    def test_empty_prefix_clamped(self, small_study):
        result = small_study.mcm_result(20, (2, 2))
        assert np.isfinite(result.eavg(count=0))


class TestMonolithicResults:
    def test_small_monolith_has_survivors(self, small_study):
        result = small_study.monolithic_result(40)
        assert result.collision_free_yield > 0.2
        assert np.isfinite(result.eavg)
        assert result.representative_device is not None
        assert result.representative_device.num_qubits == 40

    def test_large_monolith_yield_collapses(self, small_study):
        result = small_study.monolithic_result(480)
        assert result.collision_free_yield < 0.02

    def test_representative_device_errors_cover_edges(self, small_study):
        device = small_study.monolithic_result(40).representative_device
        assert device.num_edges == len(device.edge_errors)


class TestPrefetch:
    def test_prefetch_tolerates_duplicate_requests(self, cx_model):
        from repro.engine import ExecutionEngine

        config = StudyConfig(
            chiplet_batch_size=60,
            monolithic_batch_size=60,
            chiplet_sizes=(10,),
            seed=5,
        )
        study = ArchitectureStudy(
            config, cx_model=cx_model, engine=ExecutionEngine(jobs=1, use_cache=False)
        )
        study.prefetch(
            chiplet_sizes=(10, 10),
            mcm_grids=[(10, (2, 2)), (10, (2, 2))],
            monolithic_sizes=(40, 40),
        )
        assert (10, 2, 2) in study._mcm_results
        assert 40 in study._monolithic_results

    def test_prefetch_matches_lazy_results(self, cx_model):
        from repro.engine import ExecutionEngine

        config = StudyConfig(
            chiplet_batch_size=60,
            monolithic_batch_size=60,
            chiplet_sizes=(10,),
            seed=5,
        )
        lazy = ArchitectureStudy(config, cx_model=cx_model)
        eager = ArchitectureStudy(
            config, cx_model=cx_model, engine=ExecutionEngine(jobs=2, use_cache=False)
        )
        eager.prefetch(
            chiplet_sizes=(10,),
            mcm_grids=[(10, (2, 2)), (10, (2, 3))],
            monolithic_sizes=(40,),
        )
        assert (
            eager.monolithic_result(40).collision_free_yield
            == lazy.monolithic_result(40).collision_free_yield
        )
        assert (
            eager.chiplet_bin(10).collision_free_yield
            == lazy.chiplet_bin(10).collision_free_yield
        )
        # The grouped wave-2 task must reproduce per-grid lazy assembly
        # exactly (independent rng keying per grid inside one task).
        for grid in ((2, 2), (2, 3)):
            eager_mcm = eager.mcm_result(10, grid)
            lazy_mcm = lazy.mcm_result(10, grid)
            assert eager_mcm.post_assembly_yield == lazy_mcm.post_assembly_yield
            assert np.array_equal(
                eager_mcm.on_chip_error_sums, lazy_mcm.on_chip_error_sums
            )
            assert np.array_equal(
                eager_mcm.link_error_sums, lazy_mcm.link_error_sums
            )


class TestConfig:
    def test_default_config_matches_paper(self):
        config = StudyConfig()
        assert config.sigma_ghz == pytest.approx(0.014)
        assert config.chiplet_batch_size == 10_000
        assert config.max_qubits == 500
        assert config.chiplet_sizes == (10, 20, 40, 60, 90, 120, 160, 200, 250)

    def test_study_uses_four_link_scenarios(self, small_study):
        assert [s.name for s in small_study.scenarios] == [
            "state-of-art",
            "elink=3echip",
            "elink=2echip",
            "elink=1echip",
        ]
