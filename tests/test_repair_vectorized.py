"""Vectorised greedy repair vs the scalar reference oracle.

``GreedyLocalRepair.repair`` batches its candidate screening;
``GreedyLocalRepair._repair_reference`` is the historical scalar loop
kept verbatim as the parity oracle.  The contract is bit-identity: same
accepts, same landing points, same rng consumption — checked here on
random collided batches by comparing outcomes *and* the generators'
final bit-level state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.architecture import get_architecture
from repro.core.fabrication import FabricationModel
from repro.tuning import CollisionGraph, GreedyLocalRepair, TunerModel


@pytest.fixture(scope="module")
def allocation():
    arch = get_architecture(None)
    return arch.allocate(arch.lattice(40))


@pytest.fixture(scope="module")
def graph(allocation):
    return CollisionGraph(allocation)


def collided_devices(allocation, graph, sigma, batch, seed):
    fab = FabricationModel(sigma_ghz=sigma)
    freqs = fab.sample_batch(allocation, batch, np.random.default_rng(seed))
    return [f for f in freqs if graph.total_violations(f) > 0]


TUNERS = [
    pytest.param(TunerModel(), id="default-noisy"),
    pytest.param(TunerModel(precision_sigma_ghz=0.0), id="noiseless-batch-path"),
    pytest.param(TunerModel(max_tunes_per_qubit=1), id="budget-1"),
    pytest.param(
        TunerModel(max_shift_ghz=0.05, precision_sigma_ghz=0.0), id="short-reach"
    ),
]


class TestGreedyParity:
    @pytest.mark.parametrize("tuner", TUNERS)
    @pytest.mark.parametrize("sigma,seed", [(0.05, 11), (0.014, 7)])
    def test_matches_reference_on_random_collided_batches(
        self, allocation, graph, tuner, sigma, seed
    ):
        strategy = GreedyLocalRepair()
        devices = collided_devices(allocation, graph, sigma, batch=40, seed=seed)
        assert devices, "collided sample went empty; raise sigma"
        for index, freqs in enumerate(devices):
            rng_fast = np.random.default_rng(1000 + index)
            rng_ref = np.random.default_rng(1000 + index)
            fast = strategy.repair(graph, freqs, tuner, rng_fast)
            ref = strategy._repair_reference(graph, freqs, tuner, rng_ref)
            np.testing.assert_array_equal(fast.frequencies, ref.frequencies)
            assert fast.violations_before == ref.violations_before
            assert fast.violations_after == ref.violations_after
            assert fast.tuned_qubits == ref.tuned_qubits
            assert fast.total_tunes == ref.total_tunes
            assert fast.tuned_qubit_indices == ref.tuned_qubit_indices
            # Stream parity: any divergence in *when* noise is drawn
            # would desynchronise every later device in a batch.
            assert rng_fast.bit_generator.state == rng_ref.bit_generator.state

    @pytest.mark.parametrize("tuner", TUNERS)
    def test_initial_violations_shortcut_matches(self, allocation, graph, tuner):
        strategy = GreedyLocalRepair()
        [freqs] = collided_devices(allocation, graph, 0.05, batch=8, seed=3)[:1]
        initial = graph.total_violations(freqs)
        fast = strategy.repair(
            graph, freqs, tuner, np.random.default_rng(5), initial_violations=initial
        )
        ref = strategy._repair_reference(
            graph, freqs, tuner, np.random.default_rng(5), initial_violations=initial
        )
        np.testing.assert_array_equal(fast.frequencies, ref.frequencies)
        assert fast.total_tunes == ref.total_tunes

    def test_noop_tuner_consumes_no_randomness(self, graph, allocation):
        [freqs] = collided_devices(allocation, graph, 0.05, batch=8, seed=3)[:1]
        rng = np.random.default_rng(9)
        state = rng.bit_generator.state
        outcome = GreedyLocalRepair().repair(
            graph, freqs, TunerModel(max_tunes_per_qubit=0), rng
        )
        assert outcome.frequencies is freqs
        assert rng.bit_generator.state == state


class TestConstraintNeighbors:
    def test_includes_self(self, graph):
        for qubit in range(graph.num_qubits):
            assert qubit in graph.constraint_neighbors(qubit)

    def test_symmetric(self, graph):
        for qubit in range(graph.num_qubits):
            for other in graph.constraint_neighbors(qubit):
                assert qubit in graph.constraint_neighbors(int(other))

    def test_matches_edge_and_triple_membership(self, graph):
        expected = [{q} for q in range(graph.num_qubits)]
        for u, v in zip(graph.edge_control, graph.edge_target):
            expected[int(u)].add(int(v))
            expected[int(v)].add(int(u))
        for c, a, b in zip(graph.triple_control, graph.triple_a, graph.triple_b):
            for q in (int(c), int(a), int(b)):
                expected[q].update({int(c), int(a), int(b)})
        for qubit in range(graph.num_qubits):
            assert set(graph.constraint_neighbors(qubit).tolist()) == expected[qubit]

    def test_sorted_and_stable(self, graph):
        first = graph.constraint_neighbors(0)
        assert list(first) == sorted(first)
        assert graph.constraint_neighbors(0) is first  # memoised
