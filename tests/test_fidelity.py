"""Tests for the E_avg comparison machinery and link scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fidelity import (
    EavgComparison,
    average_infidelity,
    default_link_scenarios,
    infidelity_ratio,
)
from repro.device.noise import ON_CHIP_MEAN_INFIDELITY


class TestLinkScenarios:
    def test_four_scenarios_by_default(self):
        scenarios = default_link_scenarios()
        assert len(scenarios) == 4
        assert scenarios[0].name == "state-of-art"

    def test_state_of_art_ratio(self):
        scenarios = default_link_scenarios()
        assert scenarios[0].ratio == pytest.approx(4.17, abs=0.1)

    def test_improved_scenarios_match_requested_ratio(self):
        for scenario in default_link_scenarios()[1:]:
            assert scenario.link_model.mean == pytest.approx(
                scenario.ratio * ON_CHIP_MEAN_INFIDELITY, rel=1e-9
            )

    def test_scenarios_are_ordered_by_decreasing_link_error(self):
        means = [s.link_model.mean for s in default_link_scenarios()]
        assert means == sorted(means, reverse=True)


class TestAverages:
    def test_average_infidelity(self):
        assert average_infidelity([0.01, 0.03]) == pytest.approx(0.02)

    def test_average_infidelity_empty(self):
        assert np.isnan(average_infidelity([]))

    def test_infidelity_ratio(self):
        assert infidelity_ratio(0.01, 0.02) == pytest.approx(0.5)

    def test_infidelity_ratio_zero_yield(self):
        assert np.isnan(infidelity_ratio(0.01, float("nan")))
        assert np.isnan(infidelity_ratio(0.01, 0.0))


class TestEavgComparison:
    def test_mcm_wins_flag(self):
        win = EavgComparison(20, (3, 3), 180, "state-of-art", 0.017, 0.018)
        lose = EavgComparison(10, (2, 2), 40, "state-of-art", 0.022, 0.018)
        assert win.mcm_wins
        assert win.ratio < 1
        assert not lose.mcm_wins

    def test_zero_yield_monolith_never_wins_flag(self):
        cell = EavgComparison(20, (5, 5), 500, "state-of-art", 0.017, float("nan"))
        assert np.isnan(cell.ratio)
        assert not cell.mcm_wins
