"""Tests for graph-metric helpers."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.topology.heavy_hex import heavy_hex_by_qubit_count
from repro.topology.metrics import (
    average_degree,
    degree_histogram,
    densest_connected_subgraph,
    graph_diameter,
)


class TestDegreeMetrics:
    def test_degree_histogram_path(self):
        graph = nx.path_graph(5)
        assert degree_histogram(graph) == {1: 2, 2: 3}

    def test_average_degree_cycle(self):
        graph = nx.cycle_graph(6)
        assert average_degree(graph) == pytest.approx(2.0)

    def test_average_degree_empty_graph(self):
        assert average_degree(nx.Graph()) == 0.0

    def test_heavy_hex_average_degree_below_three(self):
        lattice = heavy_hex_by_qubit_count(127)
        assert 1.5 < average_degree(lattice.graph()) < 3.0


class TestDiameter:
    def test_path_diameter(self):
        assert graph_diameter(nx.path_graph(7)) == 6

    def test_complete_graph_diameter(self):
        assert graph_diameter(nx.complete_graph(5)) == 1


class TestDensestConnectedSubgraph:
    def test_returns_requested_size(self):
        lattice = heavy_hex_by_qubit_count(65)
        nodes = densest_connected_subgraph(lattice.graph(), 40)
        assert len(nodes) == 40

    def test_subgraph_is_connected(self):
        lattice = heavy_hex_by_qubit_count(65)
        graph = lattice.graph()
        nodes = densest_connected_subgraph(graph, 52)
        assert nx.is_connected(graph.subgraph(nodes))

    def test_zero_size(self):
        assert densest_connected_subgraph(nx.path_graph(4), 0) == []

    def test_full_graph(self):
        graph = nx.path_graph(6)
        assert densest_connected_subgraph(graph, 6) == list(range(6))

    def test_rejects_oversized_request(self):
        with pytest.raises(ValueError):
            densest_connected_subgraph(nx.path_graph(3), 5)

    def test_respects_seed(self):
        graph = nx.path_graph(8)
        nodes = densest_connected_subgraph(graph, 3, seed=0)
        assert 0 in nodes
        assert nx.is_connected(graph.subgraph(nodes))
