"""Failure-injection tests for the reproduction service.

The service PR's retry contract, exercised end-to-end: a flaky runner
raising :class:`TransientServiceError` succeeds on a later attempt with
exponential-backoff delays (recorded through an injected sleeper, never
slept for real); a deterministic task exception fails fast on the first
attempt; transient failures exhaust ``max_attempts`` and record the
last error; cancellation during backoff ends the job instead of
retrying; custom classification rules reroute exceptions.  Plus unit
coverage of the classifier rules and the retry-policy arithmetic.
"""

from __future__ import annotations

import asyncio
import random
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.engine import ExecutionCancelled, ExperimentRegistry
from repro.service import (
    FailureClass,
    FailureClassifier,
    JobFailed,
    JobManager,
    JobState,
    RetryPolicy,
    TransientServiceError,
)

FAST_ENGINE = {"use_cache": False, "backend": "sequential", "jobs": 1}


def make_registry(name, runner):
    registry = ExperimentRegistry()
    registry.register(name, f"{name} (failure test)", runner)
    return registry


def _runner_raising(exc_factory, record):
    def runner(engine, seed=None, batch_size=None, full=False, stats=None,
               topology=None, tuning=None, benchmarks=None, routing=None):
        record["attempts"] += 1
        raise exc_factory()

    return runner


def _flaky_runner(record, failures, exc_factory):
    """Fail the first ``failures`` invocations, then succeed."""

    def runner(engine, seed=None, batch_size=None, full=False, stats=None,
               topology=None, tuning=None, benchmarks=None, routing=None):
        record["attempts"] += 1
        if record["attempts"] <= failures:
            raise exc_factory()
        return {"ok": record["attempts"]}, f"ok after {record['attempts']}"

    return runner


def _sleep_recorder(delays):
    async def sleep(delay):
        delays.append(delay)

    return sleep


class TestClassifierRules:
    @pytest.mark.parametrize(
        ("exc", "expected_class", "expected_rule"),
        (
            (TransientServiceError("warming up"), FailureClass.TRANSIENT, "transient-marker"),
            (BrokenProcessPool("pool died"), FailureClass.TRANSIENT, "broken-pool"),
            (ConnectionResetError("peer gone"), FailureClass.TRANSIENT, "connection"),
            (TimeoutError("too slow"), FailureClass.TRANSIENT, "timeout"),
            (ExecutionCancelled("stop"), FailureClass.CANCELLED, "cancelled"),
            (asyncio.CancelledError(), FailureClass.CANCELLED, "cancelled"),
            (ValueError("bad input"), FailureClass.DETERMINISTIC, "deterministic-default"),
            (ZeroDivisionError(), FailureClass.DETERMINISTIC, "deterministic-default"),
        ),
    )
    def test_default_rules(self, exc, expected_class, expected_rule):
        rule = FailureClassifier().classify(exc)
        assert rule.classification is expected_class
        assert rule.name == expected_rule

    def test_added_rules_outrank_defaults(self):
        classifier = FailureClassifier()
        classifier.add_rule(
            "flaky-storage", FailureClass.TRANSIENT, exception_types=(OSError,)
        )
        assert classifier.classify(OSError("disk weather")).name == "flaky-storage"
        # ConnectionError is an OSError subclass: the user rule now wins.
        assert classifier.classify(ConnectionError()).name == "flaky-storage"

    def test_predicate_rules(self):
        classifier = FailureClassifier()
        classifier.add_rule(
            "http-5xx",
            FailureClass.TRANSIENT,
            predicate=lambda exc: "503" in str(exc),
        )
        assert classifier.classify(RuntimeError("got 503")).name == "http-5xx"
        assert (
            classifier.classify(RuntimeError("got 404")).classification
            is FailureClass.DETERMINISTIC
        )

    def test_rule_needs_exactly_one_matcher(self):
        classifier = FailureClassifier()
        with pytest.raises(ValueError, match="exactly one"):
            classifier.add_rule("bad", FailureClass.TRANSIENT)
        with pytest.raises(ValueError, match="exactly one"):
            classifier.add_rule(
                "bad",
                FailureClass.TRANSIENT,
                exception_types=(OSError,),
                predicate=lambda exc: True,
            )

    def test_rules_listing_ends_with_fallback(self):
        rules = FailureClassifier().rules()
        assert rules[-1].name == "deterministic-default"
        assert rules[-1].matches(Exception("anything"))


class TestRetryPolicy:
    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, max_delay=3.0, jitter=0.0
        )
        rng = random.Random(0)
        assert [policy.delay(n, rng) for n in (1, 2, 3, 4)] == [1.0, 2.0, 3.0, 3.0]

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        delays = [policy.delay(1, random.Random(7)) for _ in range(3)]
        assert delays[0] == delays[1] == delays[2]  # same seed, same draw
        rng = random.Random(123)
        for _ in range(50):
            assert 1.0 <= policy.delay(1, rng) <= 1.5

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)


class TestRetryEndToEnd:
    def test_flaky_transient_succeeds_after_retry(self):
        record = {"attempts": 0}
        delays: list[float] = []
        registry = make_registry(
            "flaky",
            _flaky_runner(record, 2, lambda: TransientServiceError("warming up")),
        )
        retry = RetryPolicy(max_attempts=3, base_delay=0.2, multiplier=2.0, jitter=0.5)

        async def scenario():
            async with JobManager(
                registry,
                workers=1,
                engine_options=FAST_ENGINE,
                retry=retry,
                sleep=_sleep_recorder(delays),
                retry_seed=42,
            ) as manager:
                handle = await manager.submit("flaky")
                result, text = await handle.result(timeout=30)
                return result, text, manager.status(handle.id), manager.stats()

        result, text, status, stats = asyncio.run(scenario())
        assert record["attempts"] == 3
        assert result == {"ok": 3} and text == "ok after 3"
        assert status["state"] == "succeeded" and status["attempts"] == 3
        assert stats["retries"] == 2 and stats["succeeded"] == 1
        # Delays follow the seeded policy exactly: backoff doubles, jitter
        # comes from the injected seed — no wall-clock sleeping happened.
        rng = random.Random(42)
        assert delays == [retry.delay(1, rng), retry.delay(2, rng)]
        assert delays[1] > delays[0]

    def test_deterministic_exception_fails_fast(self):
        record = {"attempts": 0}
        delays: list[float] = []
        registry = make_registry(
            "broken", _runner_raising(lambda: ValueError("bad model input"), record)
        )

        async def scenario():
            async with JobManager(
                registry,
                workers=1,
                engine_options=FAST_ENGINE,
                retry=RetryPolicy(max_attempts=5),
                sleep=_sleep_recorder(delays),
            ) as manager:
                handle = await manager.submit("broken")
                with pytest.raises(JobFailed, match="bad model input"):
                    await handle.result(timeout=30)
                return manager.status(handle.id), manager.stats()

        status, stats = asyncio.run(scenario())
        assert record["attempts"] == 1, "deterministic failure was retried"
        assert delays == []
        assert status["state"] == "failed"
        assert status["error"]["classification"] == "deterministic"
        assert status["error"]["rule"] == "deterministic-default"
        assert status["error"]["type"] == "ValueError"
        assert stats["retries"] == 0 and stats["failed"] == 1

    def test_transient_failures_exhaust_attempts(self):
        record = {"attempts": 0}
        delays: list[float] = []
        registry = make_registry(
            "down", _runner_raising(lambda: ConnectionError("backend gone"), record)
        )

        async def scenario():
            async with JobManager(
                registry,
                workers=1,
                engine_options=FAST_ENGINE,
                retry=RetryPolicy(max_attempts=3),
                sleep=_sleep_recorder(delays),
            ) as manager:
                handle = await manager.submit("down")
                with pytest.raises(JobFailed, match="backend gone"):
                    await handle.result(timeout=30)
                return manager.status(handle.id), manager.stats()

        status, stats = asyncio.run(scenario())
        assert record["attempts"] == 3
        assert len(delays) == 2  # no sleep after the final attempt
        assert status["error"]["classification"] == "transient"
        assert status["error"]["rule"] == "connection"
        assert status["error"]["attempts"] == 3
        assert stats["retries"] == 2 and stats["failed"] == 1

    def test_retrying_state_is_observable_in_events(self):
        record = {"attempts": 0}
        registry = make_registry(
            "flaky",
            _flaky_runner(record, 1, lambda: TransientServiceError("blip")),
        )

        async def scenario():
            async with JobManager(
                registry,
                workers=1,
                engine_options=FAST_ENGINE,
                sleep=_sleep_recorder([]),
            ) as manager:
                handle = await manager.submit("flaky")
                await handle.result(timeout=30)
                return [event async for event in manager.events(handle.id)]

        events = asyncio.run(scenario())
        states = [
            event.payload for event in events if event.kind == "state"
        ]
        sequence = [payload["state"] for payload in states]
        assert sequence == ["queued", "running", "retrying", "running", "succeeded"]
        retrying = next(p for p in states if p["state"] == "retrying")
        assert retrying["rule"] == "transient-marker"
        assert "TransientServiceError" in retrying["failure"]
        assert retrying["delay"] > 0

    def test_custom_rule_makes_oserror_retryable(self):
        record = {"attempts": 0}
        classifier = FailureClassifier()
        classifier.add_rule(
            "flaky-storage", FailureClass.TRANSIENT, exception_types=(OSError,)
        )
        registry = make_registry(
            "io", _flaky_runner(record, 1, lambda: OSError("storage weather"))
        )

        async def scenario():
            async with JobManager(
                registry,
                workers=1,
                engine_options=FAST_ENGINE,
                classifier=classifier,
                sleep=_sleep_recorder([]),
            ) as manager:
                handle = await manager.submit("io")
                result, _ = await handle.result(timeout=30)
                return result, manager.status(handle.id)

        result, status = asyncio.run(scenario())
        assert record["attempts"] == 2 and result == {"ok": 2}
        assert status["state"] == "succeeded"

    def test_cancel_during_backoff_does_not_retry(self):
        record = {"attempts": 0}
        registry = make_registry(
            "down", _runner_raising(lambda: TransientServiceError("blip"), record)
        )
        holder: dict = {}

        async def blocking_sleep(delay):
            holder["slept"] = delay
            await holder["gate"].wait()

        async def scenario():
            holder["gate"] = asyncio.Event()
            async with JobManager(
                registry,
                workers=1,
                engine_options=FAST_ENGINE,
                retry=RetryPolicy(max_attempts=5),
                sleep=blocking_sleep,
            ) as manager:
                handle = await manager.submit("down")
                deadline = asyncio.get_running_loop().time() + 15
                while "slept" not in holder:
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.01)
                assert handle.state is JobState.RETRYING
                assert await handle.cancel()
                holder["gate"].set()
                job = await handle.wait(timeout=30)
                return job.state, manager.status(handle.id)

        state, status = asyncio.run(scenario())
        assert record["attempts"] == 1, "job retried after cancellation"
        assert state is JobState.CANCELLED
        assert status["state"] == "cancelled"

    def test_execution_cancelled_from_engine_is_not_retried(self):
        record = {"attempts": 0}
        registry = make_registry(
            "stops", _runner_raising(lambda: ExecutionCancelled("mid-batch"), record)
        )

        async def scenario():
            async with JobManager(
                registry,
                workers=1,
                engine_options=FAST_ENGINE,
                sleep=_sleep_recorder([]),
            ) as manager:
                handle = await manager.submit("stops")
                job = await handle.wait(timeout=30)
                return job.state, manager.status(handle.id)

        state, status = asyncio.run(scenario())
        assert record["attempts"] == 1
        assert state is JobState.CANCELLED
        assert status["error"]["rule"] == "cancelled"
