"""Tests for the fidelity-product (ESP) figure of merit."""

from __future__ import annotations

from math import inf, log10

import pytest

from repro.simulation.esp import fidelity_product, fidelity_ratio


class TestFidelityProduct:
    def test_simple_product(self):
        errors = {(0, 1): 0.01, (1, 2): 0.02}
        score = fidelity_product([(0, 1), (1, 2), (0, 1)], errors)
        expected = log10(0.99) + log10(0.98) + log10(0.99)
        assert score.log10_fidelity == pytest.approx(expected)
        assert score.num_two_qubit_gates == 3
        assert score.fidelity == pytest.approx(0.99 * 0.98 * 0.99)

    def test_edge_orientation_is_ignored(self):
        errors = {(1, 0): 0.05}
        score = fidelity_product([(0, 1)], errors)
        assert score.log10_fidelity == pytest.approx(log10(0.95))

    def test_empty_circuit_has_unit_fidelity(self):
        score = fidelity_product([], {})
        assert score.log10_fidelity == pytest.approx(0.0)
        assert score.fidelity == pytest.approx(1.0)

    def test_fully_depolarising_edge(self):
        score = fidelity_product([(0, 1)], {(0, 1): 1.0})
        assert score.log10_fidelity == -inf
        assert score.fidelity == 0.0

    def test_device_input(self, small_study):
        mcm = small_study.mcm_result(20, (2, 2))
        device = mcm.best_device
        edges = list(device.edge_errors)[:10]
        score = fidelity_product(edges, device)
        assert score.log10_fidelity < 0
        assert score.num_two_qubit_gates == 10

    def test_missing_edge_raises(self):
        with pytest.raises(KeyError):
            fidelity_product([(0, 2)], {(0, 1): 0.01})


class TestFidelityRatio:
    def test_ratio_in_log_space(self):
        mcm = fidelity_product([(0, 1)] * 10, {(0, 1): 0.01})
        mono = fidelity_product([(0, 1)] * 10, {(0, 1): 0.02})
        ratio = fidelity_ratio(mcm, mono)
        assert ratio == pytest.approx((0.99 / 0.98) ** 10)

    def test_zero_yield_monolith_gives_infinity(self):
        mcm = fidelity_product([(0, 1)], {(0, 1): 0.01})
        assert fidelity_ratio(mcm, None) == inf

    def test_dead_monolith_gives_infinity(self):
        mcm = fidelity_product([(0, 1)], {(0, 1): 0.01})
        mono = fidelity_product([(0, 1)], {(0, 1): 1.0})
        assert fidelity_ratio(mcm, mono) == inf

    def test_huge_difference_saturates_to_infinity(self):
        mcm = fidelity_product([], {})
        mono = fidelity_product([(0, 1)] * 200_000, {(0, 1): 0.02})
        assert fidelity_ratio(mcm, mono) == inf
