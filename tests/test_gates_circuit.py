"""Tests for the gate IR and circuit container."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_ARITY, Gate


class TestGate:
    def test_known_gate_arities(self):
        assert GATE_ARITY["h"] == 1
        assert GATE_ARITY["cx"] == 2
        assert GATE_ARITY["ccx"] == 3

    def test_rejects_unknown_gate(self):
        with pytest.raises(ValueError):
            Gate("foo", (0,))

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            Gate("cx", (0,))

    def test_rejects_duplicate_qubits(self):
        with pytest.raises(ValueError):
            Gate("cx", (1, 1))

    def test_parametric_gates_need_one_parameter(self):
        with pytest.raises(ValueError):
            Gate("rz", (0,))
        gate = Gate("rz", (0,), (0.5,))
        assert gate.params == (0.5,)

    def test_classification_properties(self):
        assert Gate("h", (0,)).is_one_qubit
        assert Gate("cx", (0, 1)).is_two_qubit
        assert not Gate("ccx", (0, 1, 2)).is_two_qubit

    def test_remapped(self):
        gate = Gate("cx", (0, 1))
        assert gate.remapped({0: 5, 1: 7}).qubits == (5, 7)


class TestQuantumCircuit:
    def test_fluent_builders(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).rz(0.3, 2).ccx(0, 1, 2)
        assert circuit.num_gates == 4
        assert circuit.count_ops() == {"h": 1, "cx": 1, "rz": 1, "ccx": 1}

    def test_gate_counting(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(1).cx(0, 1).cx(1, 2).swap(0, 2)
        assert circuit.num_one_qubit_gates == 2
        assert circuit.num_two_qubit_gates == 3

    def test_rejects_out_of_range_qubits(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).cx(0, 2)

    def test_rejects_empty_register(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_depth(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2).h(0)
        assert circuit.depth() == 3

    def test_two_qubit_depth_ignores_single_qubit_gates(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).h(0).h(0).cx(0, 1).h(1).cx(1, 2)
        assert circuit.depth(two_qubit_only=True) == 2

    def test_parallel_gates_share_a_layer(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(2, 3)
        assert circuit.depth() == 1

    def test_used_qubits(self):
        circuit = QuantumCircuit(5)
        circuit.cx(1, 3)
        assert circuit.used_qubits() == {1, 3}

    def test_interaction_graph(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1).cx(1, 2)
        graph = circuit.interaction_graph()
        assert graph[1] == {0, 2}
        assert graph[3] == set()

    def test_remapped_circuit(self):
        circuit = QuantumCircuit(2, name="tiny")
        circuit.h(0).cx(0, 1)
        mapped = circuit.remapped({0: 3, 1: 1}, num_qubits=5)
        assert mapped.num_qubits == 5
        assert mapped.gates[1].qubits == (3, 1)
        assert mapped.name == "tiny"

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        clone = circuit.copy()
        clone.x(1)
        assert circuit.num_gates == 1
        assert clone.num_gates == 2

    def test_iteration_and_len(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        assert len(circuit) == 2
        assert [g.name for g in circuit] == ["h", "cx"]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 4), st.integers(0, 4)), max_size=30))
    def test_property_depth_bounds(self, pairs):
        """Depth is always between ceil(gates/width) and the gate count."""
        circuit = QuantumCircuit(5)
        for a, b in pairs:
            if a == b:
                circuit.h(a)
            else:
                circuit.cx(a, b)
        depth = circuit.depth()
        assert depth <= circuit.num_gates
        if circuit.num_gates:
            assert depth >= 1
        assert circuit.depth(two_qubit_only=True) <= depth
