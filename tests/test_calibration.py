"""Tests for the synthetic calibration-data generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device.calibration import (
    IBM_PROCESSORS,
    SyntheticCalibrationGenerator,
)


@pytest.fixture(scope="module")
def generator() -> SyntheticCalibrationGenerator:
    return SyntheticCalibrationGenerator()


@pytest.fixture(scope="module")
def washington_dataset(generator):
    return generator.generate(127, name="Washington", seed=11)


class TestSyntheticCalibration:
    def test_processor_table(self):
        assert IBM_PROCESSORS["Auckland"]["qubits"] == 27
        assert IBM_PROCESSORS["Brooklyn"]["qubits"] == 65
        assert IBM_PROCESSORS["Washington"]["qubits"] == 127

    def test_dataset_shape(self, washington_dataset):
        assert washington_dataset.num_cycles == 15
        edges_per_cycle = {len(s.edges) for s in washington_dataset.snapshots}
        assert len(edges_per_cycle) == 1

    def test_washington_median_matches_paper(self, washington_dataset):
        assert washington_dataset.median_infidelity() == pytest.approx(0.012, abs=0.002)

    def test_washington_mean_matches_paper(self, washington_dataset):
        assert washington_dataset.mean_infidelity() == pytest.approx(0.018, abs=0.004)

    def test_infidelities_are_physical(self, washington_dataset):
        values = washington_dataset.all_infidelities()
        assert np.all(values > 0)
        assert np.all(values < 1)

    def test_median_grows_with_device_size(self, generator):
        suite = generator.generate_processor_suite(seed=11)
        medians = [suite[n].median_infidelity() for n in ("Auckland", "Brooklyn", "Washington")]
        assert medians[0] < medians[1] < medians[2]

    def test_spread_grows_with_device_size(self, generator):
        suite = generator.generate_processor_suite(seed=11)
        iqrs = [suite[n].infidelity_iqr() for n in ("Auckland", "Brooklyn", "Washington")]
        assert iqrs[0] < iqrs[2]

    def test_seeded_generation_is_reproducible(self, generator):
        a = generator.generate(27, seed=5).median_infidelity()
        b = generator.generate(27, seed=5).median_infidelity()
        assert a == pytest.approx(b)

    def test_edge_averages_one_point_per_coupling(self, washington_dataset):
        detunings, averages = washington_dataset.edge_averages()
        assert detunings.shape == averages.shape
        assert detunings.shape[0] == len(washington_dataset.snapshots[0].edges)

    def test_snapshot_median(self, washington_dataset):
        snapshot = washington_dataset.snapshots[0]
        assert snapshot.median_infidelity() == pytest.approx(np.median(snapshot.infidelities()))


class TestWashingtonCXModel:
    def test_model_statistics(self, cx_model):
        assert cx_model.median() == pytest.approx(0.012, abs=0.003)
        assert 0.012 < cx_model.mean() < 0.025

    def test_model_has_multiple_bins(self, cx_model):
        assert len(cx_model.bins) >= 3

    def test_near_null_bin_is_worst(self, cx_model):
        """Error near zero detuning exceeds error in the sweet-spot bins."""
        means = cx_model.bin_means()
        centres = sorted(means)
        assert means[centres[0]] > min(means.values()) * 0.99
