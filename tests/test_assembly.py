"""Tests for KGD binning and MCM assembly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assembly import (
    BUMPS_PER_LINK_QUBIT,
    C4_BUMP_SUCCESS_PROBABILITY,
    assemble_mcms,
    bump_bond_success_probability,
    fabricate_chiplet_bin,
    post_assembly_yield,
)
from repro.core.collisions import has_collision
from repro.core.fabrication import FabricationModel
from repro.core.mcm import MCMDesign


@pytest.fixture(scope="module")
def bin_20(cx_model, fabrication):
    from repro.core.chiplet import ChipletDesign

    design = ChipletDesign.build(20)
    rng = np.random.default_rng(77)
    return fabricate_chiplet_bin(design, fabrication, cx_model, 600, rng)


class TestFabricateChipletBin:
    def test_yield_in_expected_range(self, bin_20):
        assert 0.5 < bin_20.collision_free_yield < 0.9
        assert bin_20.num_collision_free == len(bin_20.chiplets)

    def test_bin_is_sorted_best_first(self, bin_20):
        errors = [c.average_error for c in bin_20.chiplets]
        assert errors == sorted(errors)

    def test_every_survivor_is_collision_free(self, bin_20):
        design = bin_20.design
        for chiplet in bin_20.chiplets[:25]:
            assert not has_collision(design.allocation, chiplet.frequencies_ghz)

    def test_edge_errors_cover_every_coupling(self, bin_20):
        edges = set(bin_20.design.edges())
        for chiplet in bin_20.chiplets[:10]:
            assert set(chiplet.edge_errors) == edges
            assert all(0 < e < 1 for e in chiplet.edge_errors.values())

    def test_zero_survivors_with_terrible_precision(self, cx_model):
        from repro.core.chiplet import ChipletDesign

        design = ChipletDesign.build(60)
        rng = np.random.default_rng(3)
        bad = fabricate_chiplet_bin(design, FabricationModel(0.3), cx_model, 40, rng)
        assert bad.num_collision_free <= 2


class TestBumpBondYield:
    def test_single_qubit_bond_probability(self):
        probability = bump_bond_success_probability(1)
        assert probability == pytest.approx(C4_BUMP_SUCCESS_PROBABILITY**BUMPS_PER_LINK_QUBIT)

    def test_more_link_qubits_lower_probability(self):
        assert bump_bond_success_probability(100) < bump_bond_success_probability(10)

    def test_failure_multiplier(self):
        base = bump_bond_success_probability(50)
        amplified = bump_bond_success_probability(50, failure_multiplier=100.0)
        assert amplified < base
        assert amplified > 0.9  # still a small effect, as the paper observes

    def test_zero_links_is_certain(self):
        assert bump_bond_success_probability(0) == pytest.approx(1.0)

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            bump_bond_success_probability(5, bump_success=1.5)


class TestAssembleMCMs:
    def test_assembles_collision_free_modules(self, bin_20, link_model):
        design = MCMDesign.build(bin_20.design, 2, 2)
        rng = np.random.default_rng(11)
        result = assemble_mcms(bin_20, design, link_model, rng)
        assert result.num_mcms > 0
        assert result.chiplets_used == result.num_mcms * design.num_chips
        for mcm in result.mcms[:5]:
            assert not has_collision(design.allocation, mcm.frequencies_ghz)

    def test_every_module_has_full_error_map(self, bin_20, link_model):
        design = MCMDesign.build(bin_20.design, 2, 2)
        rng = np.random.default_rng(12)
        result = assemble_mcms(bin_20, design, link_model, rng, max_mcms=3)
        coupling = design.coupling_map()
        for mcm in result.mcms:
            assert set(mcm.edge_errors) == set(coupling.edges)

    def test_link_errors_are_worse_on_average(self, bin_20, link_model):
        design = MCMDesign.build(bin_20.design, 2, 2)
        rng = np.random.default_rng(13)
        result = assemble_mcms(bin_20, design, link_model, rng, max_mcms=10)
        device = result.mcms[0].to_device()
        assert device.average_link_error() > device.average_on_chip_error()

    def test_max_mcms_cap(self, bin_20, link_model):
        design = MCMDesign.build(bin_20.design, 2, 2)
        rng = np.random.default_rng(14)
        result = assemble_mcms(bin_20, design, link_model, rng, max_mcms=2)
        assert result.num_mcms == 2

    def test_best_chiplets_are_used_first(self, bin_20, link_model):
        design = MCMDesign.build(bin_20.design, 2, 2)
        rng = np.random.default_rng(15)
        result = assemble_mcms(bin_20, design, link_model, rng)
        averages = [m.average_error for m in result.mcms]
        # The first module (built from the best chiplets) should be among the
        # best of the whole assembled population.
        assert averages[0] <= np.percentile(averages, 30)

    def test_mismatched_chiplet_size_rejected(self, bin_20, link_model, chiplet_10):
        wrong_design = MCMDesign.build(chiplet_10, 2, 2)
        with pytest.raises(ValueError):
            assemble_mcms(bin_20, wrong_design, link_model, np.random.default_rng(0))

    def test_to_device_metadata(self, bin_20, link_model):
        design = MCMDesign.build(bin_20.design, 2, 2)
        rng = np.random.default_rng(16)
        result = assemble_mcms(bin_20, design, link_model, rng, max_mcms=1)
        device = result.mcms[0].to_device("my-mcm")
        assert device.name == "my-mcm"
        assert device.metadata["chiplet_size"] == 20
        assert device.metadata["grid"] == (2, 2)
        assert device.num_link_edges == design.num_links


class TestPostAssemblyYield:
    def test_yield_below_chiplet_utilisation(self, bin_20, link_model):
        design = MCMDesign.build(bin_20.design, 2, 2)
        rng = np.random.default_rng(17)
        result = assemble_mcms(bin_20, design, link_model, rng)
        overall = post_assembly_yield(result, bin_20.batch_size)
        utilisation = result.chiplets_used / bin_20.batch_size
        assert overall <= utilisation
        assert overall == pytest.approx(utilisation, rel=1e-3)  # bonding loss is tiny

    def test_amplified_failure_lowers_yield(self, bin_20, link_model):
        design = MCMDesign.build(bin_20.design, 2, 2)
        rng = np.random.default_rng(18)
        result = assemble_mcms(bin_20, design, link_model, rng)
        base = post_assembly_yield(result, bin_20.batch_size)
        amplified = post_assembly_yield(result, bin_20.batch_size, failure_multiplier=100.0)
        assert amplified < base

    def test_rejects_bad_batch(self, bin_20, link_model):
        design = MCMDesign.build(bin_20.design, 2, 2)
        result = assemble_mcms(bin_20, design, link_model, np.random.default_rng(19), max_mcms=1)
        with pytest.raises(ValueError):
            post_assembly_yield(result, 0)
