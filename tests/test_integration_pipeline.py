"""End-to-end integration tests spanning every substrate.

These tests reproduce, at reduced batch sizes, the qualitative findings of
the paper: chiplets yield better than monoliths, carefully selected MCMs
reach lower average error, and the full fabricate -> screen -> assemble ->
compile -> score pipeline holds together.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.benchmarks import build_benchmark
from repro.compiler.transpile import transpile
from repro.core.assembly import assemble_mcms, fabricate_chiplet_bin
from repro.core.chiplet import ChipletDesign
from repro.core.fabrication import FabricationModel
from repro.core.mcm import MCMDesign
from repro.core.yield_model import simulate_yield
from repro.core.frequencies import allocate_heavy_hex_frequencies
from repro.simulation.esp import fidelity_product, fidelity_ratio
from repro.topology.heavy_hex import heavy_hex_by_qubit_count


class TestYieldStory:
    def test_chiplets_out_yield_equal_sized_monolith(self, fabrication, rng):
        """Headline claim: small dies survive collision screening far more often."""
        chiplet = ChipletDesign.build(20)
        chiplet_yield = simulate_yield(
            chiplet.allocation, fabrication, 800, rng
        ).collision_free_yield

        mono_lattice = heavy_hex_by_qubit_count(180)
        mono_allocation = allocate_heavy_hex_frequencies(mono_lattice)
        mono_yield = simulate_yield(
            mono_allocation, fabrication, 800, rng
        ).collision_free_yield

        assert chiplet_yield > 5 * max(mono_yield, 1e-3)

    def test_laser_tuning_recovers_yield(self, rng):
        """Laser tuning (sigma 0.1323 -> 0.014) boosts yields by an order of magnitude."""
        chiplet = ChipletDesign.build(20)
        raw = simulate_yield(
            chiplet.allocation, FabricationModel(0.1323), 600, rng
        ).collision_free_yield
        tuned = simulate_yield(
            chiplet.allocation, FabricationModel(0.1323).with_laser_tuning(), 600, rng
        ).collision_free_yield
        assert tuned > max(raw * 5, 0.3)


class TestFullPipeline:
    def test_fabricate_assemble_compile_score(self, cx_model, link_model, fabrication):
        """The complete pipeline produces a finite fidelity score on an MCM."""
        rng = np.random.default_rng(123)
        design = ChipletDesign.build(20)
        chiplet_bin = fabricate_chiplet_bin(design, fabrication, cx_model, 400, rng)
        assert chiplet_bin.num_collision_free > 100

        mcm_design = MCMDesign.build(design, 2, 2)
        assembly = assemble_mcms(chiplet_bin, mcm_design, link_model, rng, max_mcms=5)
        assert assembly.num_mcms == 5

        device = assembly.mcms[0].to_device()
        circuit = build_benchmark("qaoa", int(0.8 * device.num_qubits), seed=1)
        transpiled = transpile(circuit, device)
        score = fidelity_product(transpiled.two_qubit_edges, device)
        assert -300 < score.log10_fidelity < 0

    def test_best_mcm_beats_median_monolith_of_same_size(self, small_study):
        """Post-selected modular devices reach lower average two-qubit error."""
        mcm = small_study.mcm_result(40, (2, 2))
        mono = small_study.monolithic_result(160)
        if mono.representative_device is None:
            pytest.skip("monolithic yield was zero at this batch size")
        assert mcm.best_device is not None
        # The best assembled module uses the best chiplets; with the paper's
        # link quality it should at least be competitive (within 25 %).
        assert mcm.best_device.average_two_qubit_error() < 1.25 * mono.eavg

    def test_fidelity_ratio_finite_for_comparable_systems(self, small_study):
        mcm = small_study.mcm_result(20, (2, 2))
        mono = small_study.monolithic_result(80)
        circuit = build_benchmark("bv", 64)
        mcm_score = fidelity_product(
            transpile(circuit, mcm.best_device).two_qubit_edges, mcm.best_device
        )
        mono_score = fidelity_product(
            transpile(circuit, mono.representative_device).two_qubit_edges,
            mono.representative_device,
        )
        ratio = fidelity_ratio(mcm_score, mono_score)
        assert ratio > 0

    def test_link_quality_controls_mcm_average_error(self, small_study):
        """Improving links monotonically improves MCM average infidelity."""
        mcm = small_study.mcm_result(20, (3, 3))
        eavgs = [mcm.eavg_for_scenario(s) for s in small_study.scenarios]
        assert eavgs == sorted(eavgs, reverse=True)
