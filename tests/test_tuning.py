"""Unit and integration tests for the post-fabrication repair subsystem."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.architecture import get_architecture
from repro.core.assembly import assemble_mcms, fabricate_chiplet_bin
from repro.core.chiplet import ChipletDesign
from repro.core.collisions import find_collisions
from repro.core.fabrication import FabricationModel
from repro.core.mcm import MCMDesign
from repro.core.output_model import fabrication_output_from_results
from repro.core.yield_model import (
    RepairedYieldResult,
    simulate_yield,
    simulate_yield_adaptive,
    simulate_yield_chunks,
    simulate_yield_point,
    simulate_yield_streaming,
    yield_vs_qubits,
)
from repro.engine import ExecutionEngine, ResultCache, stable_token
from repro.tuning import (
    AnnealingRepair,
    CollisionGraph,
    GreedyLocalRepair,
    RepairStrategy,
    TunerModel,
    TuningOptions,
    flux_trim_tuner,
    get_strategy,
    laser_anneal_tuner,
    repair_batch,
)

SIGMA = 0.014


@pytest.fixture(scope="module")
def allocation():
    arch = get_architecture(None)
    return arch.allocate(arch.lattice(40))


@pytest.fixture(scope="module")
def graph(allocation):
    return CollisionGraph(allocation)


def _collided_batch(allocation, batch=60, seed=5):
    fab = FabricationModel(sigma_ghz=SIGMA)
    return fab.sample_batch(allocation, batch, np.random.default_rng(seed))


class TestTunerModel:
    def test_defaults_are_valid(self):
        tuner = TunerModel()
        assert tuner.max_shift_ghz > 0
        assert not tuner.is_noop

    def test_validation(self):
        with pytest.raises(ValueError):
            TunerModel(max_shift_ghz=-0.1)
        with pytest.raises(ValueError):
            TunerModel(precision_sigma_ghz=-0.1)
        with pytest.raises(ValueError):
            TunerModel(max_tunes_per_qubit=-1)

    def test_noop_conditions(self):
        assert TunerModel(max_shift_ghz=0.0).is_noop
        assert TunerModel(max_tunes_per_qubit=0).is_noop
        assert not TunerModel(max_tunes_per_qubit=1).is_noop

    def test_budget_for_unlimited_cannot_be_exhausted(self):
        assert TunerModel().budget_for(100) > 100

    def test_presets(self):
        laser = laser_anneal_tuner()
        flux = flux_trim_tuner()
        assert laser.max_shift_ghz > flux.max_shift_ghz
        assert flux.precision_sigma_ghz < laser.precision_sigma_ghz
        assert laser.max_tunes_per_qubit == 2
        assert flux.max_tunes_per_qubit is None


class TestCollisionGraph:
    def test_total_violations_matches_find_collisions(self, allocation, graph):
        for seed in range(8):
            freqs = _collided_batch(allocation, batch=1, seed=seed)[0]
            report = find_collisions(allocation, freqs)
            assert graph.total_violations(freqs) == report.num_collisions

    def test_ideal_device_has_zero_violations(self, allocation, graph):
        assert graph.total_violations(allocation.ideal_frequencies) == 0
        assert graph.violating_qubits(allocation.ideal_frequencies).size == 0

    def test_touched_covers_every_constraint(self, allocation, graph):
        edge_seen = set()
        triple_seen = set()
        for qubit in range(allocation.num_qubits):
            edge_idx, triple_idx = graph.touched(qubit)
            edge_seen.update(edge_idx.tolist())
            triple_seen.update(triple_idx.tolist())
        assert edge_seen == set(range(allocation.directed_edges.shape[0]))
        assert triple_seen == set(range(allocation.control_triples.shape[0]))

    def test_local_violations_sum_respects_membership(self, allocation, graph):
        freqs = _collided_batch(allocation, batch=1, seed=3)[0]
        report = find_collisions(allocation, freqs)
        per_qubit = graph.per_qubit_violations(freqs)
        # Each violated pair scores 2 memberships, each triple 3.
        expected = sum(len(qubits) for _, qubits in report.collisions)
        assert int(per_qubit.sum()) == expected

    def test_violating_qubits_match_report(self, allocation, graph):
        freqs = _collided_batch(allocation, batch=1, seed=7)[0]
        report = find_collisions(allocation, freqs)
        expected = sorted({q for _, qubits in report.collisions for q in qubits})
        assert graph.violating_qubits(freqs).tolist() == expected


class TestStrategies:
    def test_protocol_conformance(self):
        assert isinstance(GreedyLocalRepair(), RepairStrategy)
        assert isinstance(AnnealingRepair(), RepairStrategy)

    def test_get_strategy(self):
        assert isinstance(get_strategy("greedy"), GreedyLocalRepair)
        assert isinstance(get_strategy("anneal"), AnnealingRepair)
        with pytest.raises(KeyError, match="unknown repair strategy"):
            get_strategy("quantum")

    @pytest.mark.parametrize("strategy", [GreedyLocalRepair(), AnnealingRepair()])
    def test_never_worse_invariant(self, allocation, graph, strategy):
        tuner = TunerModel()
        rng = np.random.default_rng(11)
        for freqs in _collided_batch(allocation, batch=20, seed=2):
            before = graph.total_violations(freqs)
            outcome = strategy.repair(graph, freqs, tuner, rng)
            assert outcome.violations_before == before
            assert outcome.violations_after <= before
            assert graph.total_violations(outcome.frequencies) == outcome.violations_after

    @pytest.mark.parametrize("strategy", [GreedyLocalRepair(), AnnealingRepair()])
    def test_noop_tuner_returns_input_without_rng_draws(
        self, allocation, graph, strategy
    ):
        freqs = _collided_batch(allocation, batch=1, seed=2)[0]
        for tuner in (TunerModel(max_shift_ghz=0.0), TunerModel(max_tunes_per_qubit=0)):
            rng = np.random.default_rng(11)
            state = rng.bit_generator.state
            outcome = strategy.repair(graph, freqs, tuner, rng)
            assert outcome.frequencies is freqs
            assert outcome.total_tunes == 0
            assert rng.bit_generator.state == state

    def test_collision_free_input_is_untouched(self, allocation, graph):
        ideal = allocation.ideal_frequencies
        rng = np.random.default_rng(0)
        outcome = GreedyLocalRepair().repair(graph, ideal, TunerModel(), rng)
        assert outcome.frequencies is ideal
        assert outcome.success and not outcome.changed

    def test_greedy_respects_budget(self, allocation, graph):
        tuner = TunerModel(max_tunes_per_qubit=1)
        rng = np.random.default_rng(4)
        for freqs in _collided_batch(allocation, batch=10, seed=6):
            outcome = GreedyLocalRepair().repair(graph, freqs, tuner, rng)
            # With a 1-tune budget, accepted tunes == tuned qubits.
            assert outcome.total_tunes == outcome.tuned_qubits

    def test_greedy_repairs_most_devices_at_moderate_size(self, allocation, graph):
        tuner = TunerModel()
        rng = np.random.default_rng(9)
        batch = _collided_batch(allocation, batch=40, seed=1)
        successes = sum(
            GreedyLocalRepair().repair(graph, freqs, tuner, rng).success
            for freqs in batch
        )
        assert successes > 30

    @pytest.mark.parametrize("strategy", [GreedyLocalRepair(), AnnealingRepair()])
    def test_total_displacement_bounded_by_reach(self, allocation, graph, strategy):
        # The bound is on the displacement from the *as-fabricated*
        # frequency — re-tuning in later rounds must not walk past it.
        tuner = TunerModel(max_shift_ghz=0.05, precision_sigma_ghz=0.0)
        rng = np.random.default_rng(13)
        fab = FabricationModel(sigma_ghz=0.06)
        for freqs in fab.sample_batch(allocation, 15, np.random.default_rng(2)):
            outcome = strategy.repair(graph, freqs, tuner, rng)
            displacement = np.abs(outcome.frequencies - freqs)
            assert float(displacement.max()) <= tuner.max_shift_ghz + 1e-12

    def test_outcome_reports_tuned_qubit_indices(self, allocation, graph):
        freqs = _collided_batch(allocation, batch=1, seed=8)[0]
        outcome = GreedyLocalRepair().repair(
            graph, freqs, TunerModel(), np.random.default_rng(21)
        )
        assert len(outcome.tuned_qubit_indices) == outcome.tuned_qubits
        moved = np.flatnonzero(outcome.frequencies != freqs)
        assert set(moved.tolist()) == set(outcome.tuned_qubit_indices)

    def test_strategies_are_deterministic_at_fixed_seed(self, allocation, graph):
        freqs = _collided_batch(allocation, batch=1, seed=8)[0]
        for strategy in (GreedyLocalRepair(), AnnealingRepair()):
            first = strategy.repair(
                graph, freqs, TunerModel(), np.random.default_rng(21)
            )
            second = strategy.repair(
                graph, freqs, TunerModel(), np.random.default_rng(21)
            )
            assert np.array_equal(first.frequencies, second.frequencies)
            assert first.total_tunes == second.total_tunes


class TestRepairBatch:
    def test_counts_are_consistent(self, allocation):
        batch = _collided_batch(allocation, batch=80, seed=3)
        outcome = repair_batch(
            allocation, batch, TuningOptions(), np.random.default_rng(5)
        )
        assert outcome.num_free == outcome.num_as_fab + outcome.num_repaired
        assert outcome.num_free >= outcome.num_as_fab
        assert outcome.frequencies.shape == batch.shape
        # As-fab survivors are never touched.
        assert np.array_equal(
            outcome.frequencies[outcome.as_fab_mask], batch[outcome.as_fab_mask]
        )

    def test_input_batch_never_mutated(self, allocation):
        batch = _collided_batch(allocation, batch=30, seed=3)
        original = batch.copy()
        repair_batch(allocation, batch, TuningOptions(), np.random.default_rng(5))
        assert np.array_equal(batch, original)

    def test_zero_budget_is_bit_identical_noop(self, allocation):
        batch = _collided_batch(allocation, batch=30, seed=3)
        opts = TuningOptions(tuner=TunerModel(max_tunes_per_qubit=0))
        outcome = repair_batch(allocation, batch, opts, np.random.default_rng(5))
        assert np.array_equal(outcome.frequencies, batch)
        assert outcome.num_repaired == 0
        assert np.array_equal(outcome.final_mask, outcome.as_fab_mask)


class TestYieldModelIntegration:
    def test_tuned_result_type_and_accounting(self):
        result = simulate_yield_point(
            SIGMA, 0.06, 40, batch_size=120, seed=7, tuning=TuningOptions()
        )
        assert isinstance(result, RepairedYieldResult)
        assert result.num_collision_free == result.num_as_fab_free + result.num_repaired
        assert result.repaired_yield >= result.as_fab_yield
        assert result.ci_low <= result.estimate <= result.ci_high

    def test_untuned_point_is_plain_yield_result(self):
        result = simulate_yield_point(SIGMA, 0.06, 40, batch_size=120, seed=7)
        assert not isinstance(result, RepairedYieldResult)

    def test_as_fab_matches_untuned_run(self, allocation):
        fab = FabricationModel(sigma_ghz=SIGMA)
        untuned = simulate_yield(allocation, fab, 150, np.random.default_rng(7))
        tuned = simulate_yield(
            allocation, fab, 150, np.random.default_rng(7), tuning=TuningOptions()
        )
        assert tuned.num_as_fab_free == untuned.num_collision_free

    def test_streaming_chunks_adaptive_parity(self, allocation):
        fab = FabricationModel(sigma_ghz=SIGMA)
        opts = TuningOptions()
        streamed = simulate_yield_streaming(
            allocation, fab, batch_size=300, chunk_size=100, seed=9, tuning=opts
        )
        chunked = simulate_yield_chunks(
            SIGMA,
            allocation.spec.step_ghz,
            40,
            batch_size=300,
            chunk_size=100,
            seed=9,
            tuning=opts,
        )
        assert (streamed.num_collision_free, streamed.num_repaired) == (
            chunked.num_collision_free,
            chunked.num_repaired,
        )
        assert (streamed.tuned_qubits, streamed.total_tunes) == (
            chunked.tuned_qubits,
            chunked.total_tunes,
        )
        # The adaptive run's observed samples are a prefix of the stream.
        adaptive = simulate_yield_adaptive(
            allocation,
            fab,
            ci_target=0.5,
            max_samples=300,
            chunk_size=100,
            seed=9,
            tuning=opts,
        )
        assert isinstance(adaptive, RepairedYieldResult)
        assert adaptive.samples_used <= 300

    def test_parallel_matches_sequential_with_tuning(self, tmp_path):
        opts = TuningOptions()
        kwargs = dict(
            sigma_ghz=SIGMA,
            step_ghz=0.06,
            sizes=(20, 40),
            batch_size=100,
            seed=7,
            tuning=opts,
        )
        sequential = yield_vs_qubits(**kwargs)
        engine = ExecutionEngine(jobs=2, cache=ResultCache(tmp_path / "cache"))
        parallel = yield_vs_qubits(executor=engine, **kwargs)
        for seq_point, par_point in zip(sequential.points, parallel.points):
            assert seq_point == par_point

    def test_tuned_and_untuned_points_get_distinct_cache_keys(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        base = dict(sigma_ghz=SIGMA, step_ghz=0.06, num_qubits=20, seed=3)
        untuned_key = cache.key_for("yield.point", base)
        tuned_key = cache.key_for(
            "yield.point", {**base, "tuning": TuningOptions()}
        )
        assert untuned_key != tuned_key
        # Different tuner knobs are different cache identities too.
        other = cache.key_for(
            "yield.point",
            {**base, "tuning": TuningOptions(tuner=TunerModel(max_shift_ghz=0.1))},
        )
        assert other not in (untuned_key, tuned_key)

    def test_tuning_options_stable_token_covers_strategy(self):
        greedy = stable_token(TuningOptions())
        anneal = stable_token(TuningOptions(strategy=AnnealingRepair()))
        assert greedy != anneal


class TestAssemblyIntegration:
    def test_bin_counts_repaired_dies(self, cx_model):
        design = ChipletDesign.build(20)
        fab = FabricationModel(sigma_ghz=SIGMA)
        untuned = fabricate_chiplet_bin(
            design, fab, cx_model, batch_size=200, rng=np.random.default_rng(7)
        )
        tuned = fabricate_chiplet_bin(
            design,
            fab,
            cx_model,
            batch_size=200,
            rng=np.random.default_rng(7),
            tuning=TuningOptions(),
        )
        assert untuned.num_repaired == 0
        assert tuned.num_repaired > 0
        assert tuned.num_collision_free == untuned.num_collision_free + tuned.num_repaired
        assert tuned.as_fab_yield == untuned.collision_free_yield
        assert sum(1 for c in tuned.chiplets if c.repaired) == tuned.num_repaired

    def test_as_fab_survivors_identical_across_repair_axis(self, cx_model):
        # The repair stage draws from a spawned child stream, so the
        # as-fabricated survivors of a tuned bin carry bit-identical
        # frequencies AND error draws to the untuned bin at the same
        # seed — a tuned-vs-as-fab comparison isolates the repair
        # effect instead of resampling every coupling.
        design = ChipletDesign.build(20)
        fab = FabricationModel(sigma_ghz=SIGMA)
        untuned = fabricate_chiplet_bin(
            design, fab, cx_model, batch_size=200, rng=np.random.default_rng(7)
        )
        tuned = fabricate_chiplet_bin(
            design,
            fab,
            cx_model,
            batch_size=200,
            rng=np.random.default_rng(7),
            tuning=TuningOptions(),
        )
        assert tuned.num_repaired > 0
        by_frequencies = {
            chiplet.frequencies_ghz.tobytes(): chiplet.edge_errors
            for chiplet in untuned.chiplets
        }
        as_fab = [chiplet for chiplet in tuned.chiplets if not chiplet.repaired]
        assert len(as_fab) == len(untuned.chiplets)
        for chiplet in as_fab:
            assert by_frequencies[chiplet.frequencies_ghz.tobytes()] == chiplet.edge_errors

    def test_untuned_bin_stream_is_unchanged(self, cx_model):
        design = ChipletDesign.build(10)
        fab = FabricationModel(sigma_ghz=SIGMA)
        first = fabricate_chiplet_bin(
            design, fab, cx_model, batch_size=100, rng=np.random.default_rng(3)
        )
        second = fabricate_chiplet_bin(
            design,
            fab,
            cx_model,
            batch_size=100,
            rng=np.random.default_rng(3),
            tuning=None,
        )
        assert len(first.chiplets) == len(second.chiplets)
        for a, b in zip(first.chiplets, second.chiplets):
            assert np.array_equal(a.frequencies_ghz, b.frequencies_ghz)
            assert a.edge_errors == b.edge_errors

    def test_assembly_counts_repaired_chiplets(self, cx_model, link_model):
        design = ChipletDesign.build(20)
        mcm_design = MCMDesign.build(design, 1, 2)
        fab = FabricationModel(sigma_ghz=SIGMA)
        rng = np.random.default_rng(7)
        chiplet_bin = fabricate_chiplet_bin(
            design, fab, cx_model, batch_size=200, rng=rng, tuning=TuningOptions()
        )
        assembly = assemble_mcms(chiplet_bin, mcm_design, link_model, rng=rng)
        assert assembly.repaired_chiplets_used == sum(
            m.num_repaired_chiplets for m in assembly.mcms
        )
        repaired_module = next(
            (m for m in assembly.mcms if m.num_repaired_chiplets), None
        )
        assert repaired_module is not None, "no module used a repaired chiplet"
        device = repaired_module.to_device()
        assert "repaired_chiplets" in device.metadata
        # The tuned-qubit identities survive into the device layer.
        assert device.num_tuned_qubits > 0
        tuned_index = device.metadata["tuned_qubits"][0]
        assert device.qubit(tuned_index).tuned
        untuned = next(
            i for i in range(device.num_qubits)
            if i not in set(device.metadata["tuned_qubits"])
        )
        assert not device.qubit(untuned).tuned


class TestFabricationOutputIntegration:
    def test_repaired_fields_populated_from_tuned_results(self):
        opts = TuningOptions()
        mono = simulate_yield_point(
            SIGMA, 0.06, 40, batch_size=200, seed=7, tuning=opts
        )
        chip = simulate_yield_point(
            SIGMA, 0.06, 10, batch_size=200, seed=8, tuning=opts
        )
        output = fabrication_output_from_results(mono, chip, 2, 2)
        assert output.monolithic_repaired_yield == mono.num_repaired / 200
        assert output.chiplet_repaired_yield == chip.num_repaired / 200
        assert output.monolithic_repaired_devices == pytest.approx(
            mono.num_repaired
        )
        assert output.mcm_repaired_devices is not None

    def test_untuned_results_leave_repaired_fields_none(self):
        mono = simulate_yield_point(SIGMA, 0.06, 40, batch_size=200, seed=7)
        chip = simulate_yield_point(SIGMA, 0.06, 10, batch_size=200, seed=8)
        output = fabrication_output_from_results(mono, chip, 2, 2)
        assert output.monolithic_repaired_yield is None
        assert output.monolithic_repaired_devices is None
        assert output.mcm_repaired_devices is None


class TestTuningOptionsBuild:
    def test_build_defaults(self):
        opts = TuningOptions.build()
        assert isinstance(opts.strategy, GreedyLocalRepair)
        assert opts.tuner == TunerModel()

    def test_build_overrides(self):
        opts = TuningOptions.build(
            strategy="anneal", max_shift_ghz=0.1, max_tunes_per_qubit=3
        )
        assert isinstance(opts.strategy, AnnealingRepair)
        assert opts.tuner.max_shift_ghz == 0.1
        assert opts.tuner.max_tunes_per_qubit == 3

    def test_build_unknown_strategy(self):
        with pytest.raises(KeyError):
            TuningOptions.build(strategy="oracle")

    def test_options_pickle_roundtrip(self):
        import pickle

        opts = TuningOptions.build(strategy="anneal", max_shift_ghz=0.2)
        clone = pickle.loads(pickle.dumps(opts))
        assert clone == opts
        assert dataclasses.is_dataclass(clone.tuner)
