"""Parity, invalidation and LRU tests for the process-wide routing cache.

The cache contract (``repro.compiler.routing`` module docstring): cached
and cold noise-aware routes are bit-identical, lazily computed Dijkstra
rows equal the historical eager all-pairs rows, and any change to an
edge-error map misses into a fresh entry rather than replaying stale
trees.
"""

from __future__ import annotations

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.layout import Layout
from repro.compiler.routing import (
    ROUTING_CACHE_MAXSIZE,
    RoutingWeights,
    clear_routing_cache,
    route_circuit_noise_aware,
    routing_cache_stats,
    routing_weights,
)
from repro.topology.coupling import CouplingMap


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_routing_cache()
    yield
    clear_routing_cache()


def line(n: int) -> CouplingMap:
    return CouplingMap(num_qubits=n, edges=[(i, i + 1) for i in range(n - 1)])


@st.composite
def routing_case(draw):
    """A connected coupling map, an error map, and a CX-only circuit."""
    n = draw(st.integers(min_value=4, max_value=10))
    edges = {(i, i + 1) for i in range(n - 1)}  # spine keeps it connected
    for u, v in draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=6,
        )
    ):
        if u != v:
            edges.add((min(u, v), max(u, v)))
    edges = sorted(edges)
    errors = {
        edge: draw(st.floats(min_value=0.0, max_value=0.9, allow_nan=False))
        for edge in edges
    }
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)).filter(
                lambda ab: ab[0] != ab[1]
            ),
            min_size=1,
            max_size=8,
        )
    )
    circuit = QuantumCircuit(n)
    for a, b in pairs:
        circuit.cx(a, b)
    return CouplingMap(num_qubits=n, edges=edges), errors, circuit


def routes_equal(a, b) -> bool:
    return (
        a.circuit.gates == b.circuit.gates
        and a.two_qubit_edges == b.two_qubit_edges
        and a.num_swaps == b.num_swaps
    )


class TestCachedRoutingParity:
    @settings(max_examples=60, deadline=None)
    @given(case=routing_case())
    def test_warm_cache_routes_bit_identical_to_cold(self, case):
        coupling, errors, circuit = case
        layout = Layout({i: i for i in range(coupling.num_qubits)})
        clear_routing_cache()
        cold = route_circuit_noise_aware(circuit, coupling, layout, errors)
        assert routing_cache_stats()["misses"] == 1
        warm = route_circuit_noise_aware(circuit, coupling, layout, errors)
        stats = routing_cache_stats()
        assert stats["hits"] >= 1 and stats["misses"] == 1
        assert routes_equal(cold, warm)

    @settings(max_examples=60, deadline=None)
    @given(case=routing_case())
    def test_lazy_rows_match_eager_all_pairs(self, case):
        coupling, errors, _ = case
        clear_routing_cache()
        lazy = routing_weights(coupling, errors)
        rows = {
            source: lazy.predecessor_row(source).copy()
            for source in range(coupling.num_qubits)
        }
        clear_routing_cache()
        eager = routing_weights(coupling, errors)
        matrix = eager.predecessor_matrix()
        for source, row in rows.items():
            np.testing.assert_array_equal(row, matrix[source])

    def test_eager_route_equals_lazy_route(self):
        # Pre-filling every tree (the historical behaviour) must not
        # change what the router emits.
        coupling = line(8)
        errors = {(i, i + 1): 0.01 * (i + 1) for i in range(7)}
        circuit = QuantumCircuit(8)
        circuit.cx(0, 7)
        circuit.cx(2, 5)
        layout = Layout({i: i for i in range(8)})
        lazy = route_circuit_noise_aware(circuit, coupling, layout, errors)
        clear_routing_cache()
        routing_weights(coupling, errors).predecessor_matrix()
        eager = route_circuit_noise_aware(circuit, coupling, layout, errors)
        assert routes_equal(lazy, eager)


class TestInvalidation:
    def test_edge_error_change_misses(self):
        coupling = line(5)
        errors = {(i, i + 1): 0.01 for i in range(4)}
        first = routing_weights(coupling, errors)
        recalibrated = dict(errors)
        recalibrated[(1, 2)] = 0.5
        second = routing_weights(coupling, recalibrated)
        assert second is not first
        stats = routing_cache_stats()
        assert stats["misses"] == 2 and stats["entries"] == 2

    def test_identical_content_shares_one_entry(self):
        coupling = line(5)
        errors = {(i, i + 1): 0.01 for i in range(4)}
        first = routing_weights(coupling, errors)
        # A *different* dict object with equal content must hit.
        second = routing_weights(line(5), dict(errors))
        assert second is first
        assert routing_cache_stats()["hits"] == 1

    def test_stale_trees_never_replayed_after_recalibration(self):
        # Degrading the direct edge must reroute, not replay the old path.
        coupling = CouplingMap(num_qubits=4, edges=[(0, 1), (0, 2), (1, 3), (2, 3)])
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        layout = Layout({i: i for i in range(4)})
        clean = {(0, 1): 0.001, (0, 2): 0.001, (1, 3): 0.001, (2, 3): 0.001}
        direct = route_circuit_noise_aware(circuit, coupling, layout, clean)
        assert direct.two_qubit_edges == [(0, 1)]
        poisoned = dict(clean)
        poisoned[(0, 1)] = 0.5
        detour = route_circuit_noise_aware(circuit, coupling, layout, poisoned)
        assert (0, 1) not in detour.two_qubit_edges

    def test_clear_resets_entries_and_counters(self):
        routing_weights(line(4), {(0, 1): 0.1})
        clear_routing_cache()
        stats = routing_cache_stats()
        assert stats == {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "entries": 0,
            "sources_computed": 0,
        }


class TestLRU:
    def test_eviction_bounds_entries(self):
        coupling = line(4)
        for i in range(ROUTING_CACHE_MAXSIZE + 3):
            routing_weights(coupling, {(0, 1): 1e-4 * (i + 1)})
        stats = routing_cache_stats()
        assert stats["entries"] == ROUTING_CACHE_MAXSIZE
        assert stats["evictions"] == 3

    def test_recently_used_survives_eviction(self):
        coupling = line(4)
        hot = {(0, 1): 0.5}
        routing_weights(coupling, hot)
        for i in range(ROUTING_CACHE_MAXSIZE - 1):
            routing_weights(coupling, {(0, 1): 1e-4 * (i + 1)})
            routing_weights(coupling, hot)  # keep the hot entry fresh
        routing_weights(coupling, {(0, 1): 0.25})  # evicts the coldest
        before = routing_cache_stats()["misses"]
        routing_weights(coupling, hot)
        assert routing_cache_stats()["misses"] == before  # still cached


class TestRoutingWeights:
    def test_sources_computed_counts_lazy_rows(self):
        weights = routing_weights(line(6), {(0, 1): 0.01})
        assert weights.sources_computed == 0
        weights.predecessor_row(0)
        weights.predecessor_row(0)
        weights.predecessor_row(3)
        assert weights.sources_computed == 2
        assert routing_cache_stats()["sources_computed"] == 2

    def test_edge_cost_orientation_invariant(self):
        weights = routing_weights(line(3), {(0, 1): 0.1, (1, 2): 0.2})
        assert weights.edge_cost(0, 1) == weights.edge_cost(1, 0)
        assert weights.edge_cost(1, 2) > weights.edge_cost(0, 1)

    def test_standalone_construction_matches_cache(self):
        coupling = line(5)
        errors = {(i, i + 1): 0.05 for i in range(4)}
        cached = routing_weights(coupling, errors)
        from repro.compiler.routing import _edge_costs

        standalone = RoutingWeights(coupling.num_qubits, *_edge_costs(coupling, errors))
        np.testing.assert_array_equal(
            standalone.predecessor_matrix(), cached.predecessor_matrix()
        )
