"""Tests for the adaptive Monte-Carlo statistics layer (``repro.stats``).

Covers the interval constructions, the streaming estimator, the adaptive
stopping rule, and — the load-bearing guarantee — bit-identical parity
between the chunked/adaptive yield estimators and the materialised
monolithic batch at the same seed.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.collisions import collision_free_mask
from repro.core.fabrication import FabricationModel
from repro.core.frequencies import allocate_heavy_hex_frequencies
from repro.core.yield_model import (
    YieldResult,
    materialize_seeded_batch,
    simulate_yield,
    simulate_yield_adaptive,
    simulate_yield_chunks,
    simulate_yield_point,
    simulate_yield_streaming,
    yield_vs_qubits,
)
from repro.engine import ExecutionEngine, spawn_seed_at, spawn_seeds
from repro.stats import (
    StatsOptions,
    StreamingEstimator,
    adaptive_estimate,
    binomial_ci,
    chunk_layout,
    chunk_seed,
    jeffreys_interval,
    normal_quantile,
    samples_for_half_width,
    wilson_interval,
)
from repro.topology.heavy_hex import heavy_hex_by_qubit_count

# Module-level device shared by the parity tests (built once; hypothesis
# dislikes function-scoped fixtures, and the lattice search is not free).
_LATTICE_20 = heavy_hex_by_qubit_count(20)
_ALLOCATION_20 = allocate_heavy_hex_frequencies(_LATTICE_20)
_FABRICATION = FabricationModel(0.014)


class TestIntervals:
    def test_normal_quantile_matches_known_values(self):
        assert normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-5)
        assert normal_quantile(0.5) == pytest.approx(0.0, abs=1e-12)
        assert normal_quantile(0.025) == pytest.approx(-1.959964, abs=1e-5)

    @pytest.mark.parametrize("method", ["wilson", "jeffreys"])
    @pytest.mark.parametrize("successes,trials", [(0, 50), (50, 50), (7, 50), (1, 3)])
    def test_interval_brackets_estimate(self, method, successes, trials):
        ci = binomial_ci(successes, trials, method=method)
        assert 0.0 <= ci.low <= ci.estimate <= ci.high <= 1.0
        assert ci.estimate in ci

    def test_wilson_never_degenerates_in_the_tails(self):
        low, high = wilson_interval(0, 1000)
        assert low == 0.0 and high > 0.0
        low, high = wilson_interval(1000, 1000)
        assert high == 1.0 and low < 1.0

    def test_jeffreys_tail_conventions(self):
        assert jeffreys_interval(0, 100)[0] == 0.0
        assert jeffreys_interval(100, 100)[1] == 1.0

    def test_width_shrinks_with_samples(self):
        wide = binomial_ci(70, 100)
        narrow = binomial_ci(700, 1000)
        assert narrow.half_width < wide.half_width

    def test_width_grows_with_confidence(self):
        ci90 = binomial_ci(70, 100, confidence=0.90)
        ci99 = binomial_ci(70, 100, confidence=0.99)
        assert ci99.half_width > ci90.half_width
        assert ci99.low < ci90.low and ci99.high > ci90.high

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError):
            binomial_ci(5, 0)
        with pytest.raises(ValueError):
            binomial_ci(-1, 10)
        with pytest.raises(ValueError):
            binomial_ci(11, 10)
        with pytest.raises(ValueError):
            binomial_ci(5, 10, confidence=1.0)
        with pytest.raises(ValueError):
            binomial_ci(5, 10, method="wald")

    @given(
        trials=st.integers(1, 5000),
        frac=st.floats(0.0, 1.0),
        confidence=st.floats(0.5, 0.999),
        method=st.sampled_from(["wilson", "jeffreys"]),
    )
    def test_interval_validity_property(self, trials, frac, confidence, method):
        successes = min(trials, int(round(frac * trials)))
        ci = binomial_ci(successes, trials, confidence=confidence, method=method)
        assert 0.0 <= ci.low <= ci.estimate <= ci.high <= 1.0

    def test_samples_for_half_width_planning(self):
        n = samples_for_half_width(0.5, 0.02)
        assert 2300 <= n <= 2500  # ~ 0.25 * 1.96^2 / 0.0004

    def test_samples_for_half_width_validates(self):
        with pytest.raises(ValueError):
            samples_for_half_width(1.5, 0.02)
        with pytest.raises(ValueError):
            samples_for_half_width(0.5, 0.0)


class TestStreamingEstimator:
    def test_accumulates_and_serves_interval(self):
        estimator = StreamingEstimator()
        estimator.update(10, 50).update(20, 50)
        assert estimator.successes == 30
        assert estimator.trials == 100
        assert estimator.chunks == 2
        assert estimator.estimate == pytest.approx(0.3)
        direct = binomial_ci(30, 100)
        assert estimator.interval() == direct
        assert estimator.half_width() == direct.half_width

    def test_empty_estimator_edges(self):
        estimator = StreamingEstimator()
        assert math.isnan(estimator.estimate)
        assert estimator.half_width() == float("inf")
        with pytest.raises(ValueError):
            estimator.interval()

    def test_invalid_chunks_rejected(self):
        estimator = StreamingEstimator()
        with pytest.raises(ValueError):
            estimator.update(1, 0)
        with pytest.raises(ValueError):
            estimator.update(5, 4)

    def test_chunk_layout(self):
        assert chunk_layout(1000, 250) == [250, 250, 250, 250]
        assert chunk_layout(600, 250) == [250, 250, 100]
        assert chunk_layout(100, 250) == [100]
        with pytest.raises(ValueError):
            chunk_layout(0, 250)
        with pytest.raises(ValueError):
            chunk_layout(100, 0)

    def test_chunk_seed_prefix_stability(self):
        """Chunk i's seed never depends on how many chunks a run draws."""
        assert chunk_seed(None, 3) is None
        for n in (4, 8, 64):
            derived = spawn_seeds(42, n)
            for index in range(4):
                assert chunk_seed(42, index) == derived[index]
                assert spawn_seed_at(42, index) == derived[index]


class TestAdaptiveEstimate:
    @staticmethod
    def _binomial_draw(p: float, seed: int = 9):
        def draw(chunk_index: int, length: int) -> tuple[int, int]:
            rng = np.random.default_rng(chunk_seed(seed, chunk_index))
            return int(rng.random(length).__lt__(p).sum()), length

        return draw

    def test_stops_when_target_reached(self):
        outcome = adaptive_estimate(
            self._binomial_draw(0.0), ci_target=0.02, max_samples=10_000, chunk_size=250
        )
        assert outcome.reached_target
        assert outcome.trials == 250  # one tail chunk suffices
        assert outcome.half_width <= 0.02

    def test_respects_sample_cap(self):
        outcome = adaptive_estimate(
            self._binomial_draw(0.5), ci_target=0.001, max_samples=1000, chunk_size=250
        )
        assert not outcome.reached_target
        assert outcome.trials == 1000
        assert outcome.chunks == 4

    def test_ragged_cap_layout(self):
        outcome = adaptive_estimate(
            self._binomial_draw(0.5), ci_target=0.0, max_samples=600, chunk_size=250
        )
        assert outcome.trials == 600

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            adaptive_estimate(self._binomial_draw(0.5), ci_target=-0.1)
        with pytest.raises(ValueError):
            adaptive_estimate(self._binomial_draw(0.5), ci_target=0.1, max_samples=0)


class TestStatsOptions:
    def test_defaults_are_inert(self):
        assert StatsOptions().is_default
        assert not StatsOptions(chunk_size=100).is_default
        assert not StatsOptions(ci_target=0.02).is_default

    def test_validation(self):
        with pytest.raises(ValueError):
            StatsOptions(chunk_size=0)
        with pytest.raises(ValueError):
            StatsOptions(ci_target=-1.0)
        with pytest.raises(ValueError):
            StatsOptions(max_samples=-5)
        with pytest.raises(ValueError):
            StatsOptions(confidence=0.0)


class TestYieldResultCI:
    def test_ci_computed_on_construction(self):
        result = YieldResult(
            num_qubits=20, sigma_ghz=0.014, step_ghz=0.06,
            batch_size=1000, num_collision_free=700,
        )
        assert result.ci_low <= result.estimate <= result.ci_high
        assert result.estimate == result.collision_free_yield
        assert result.samples_used == 1000
        assert result.ci_half_width > 0.0

    def test_tail_results_keep_informative_intervals(self):
        zero = YieldResult(20, 0.014, 0.06, 1000, 0)
        full = YieldResult(20, 0.014, 0.06, 1000, 1000)
        assert zero.ci_low == 0.0 and zero.ci_high > 0.0
        assert full.ci_high == 1.0 and full.ci_low < 1.0

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            YieldResult(20, 0.014, 0.06, 0, 0)
        with pytest.raises(ValueError):
            YieldResult(20, 0.014, 0.06, 10, 11)

    def test_legacy_simulate_yield_carries_ci(self, allocation_27, rng):
        result = simulate_yield(allocation_27, FabricationModel(0.014), 200, rng)
        assert result.ci_low <= result.estimate <= result.ci_high


class TestChunkedParity:
    """The acceptance-criteria guarantee: chunked == monolithic, bit for bit."""

    def test_streaming_matches_materialized_monolith(self):
        batch = materialize_seeded_batch(
            _ALLOCATION_20, _FABRICATION, batch_size=800, chunk_size=250, seed=11
        )
        monolithic = int(collision_free_mask(_ALLOCATION_20, batch).sum())
        streamed = simulate_yield_streaming(
            _ALLOCATION_20, _FABRICATION, batch_size=800, chunk_size=250, seed=11
        )
        assert streamed.num_collision_free == monolithic
        assert streamed.batch_size == 800

    @pytest.mark.parametrize("chunk_size", [64, 250, 800, 1000])
    def test_materialized_batch_prefix_stability(self, chunk_size):
        """Same chunk partition -> same bits, regardless of reduction."""
        full = materialize_seeded_batch(
            _ALLOCATION_20, _FABRICATION, batch_size=500, chunk_size=chunk_size, seed=3
        )
        assert full.shape == (500, 20)
        again = materialize_seeded_batch(
            _ALLOCATION_20, _FABRICATION, batch_size=500, chunk_size=chunk_size, seed=3
        )
        assert np.array_equal(full, again)

    def test_adaptive_observes_a_prefix_of_the_fixed_batch(self):
        """With a zero target the adaptive run must replay the fixed batch."""
        fixed = simulate_yield_streaming(
            _ALLOCATION_20, _FABRICATION, batch_size=1000, chunk_size=250, seed=5
        )
        adaptive = simulate_yield_adaptive(
            _ALLOCATION_20, _FABRICATION, ci_target=0.0,
            max_samples=1000, chunk_size=250, seed=5,
        )
        assert adaptive.num_collision_free == fixed.num_collision_free
        assert adaptive.samples_used == fixed.samples_used

    def test_adaptive_stops_early_in_the_tail(self):
        lattice = heavy_hex_by_qubit_count(300)
        allocation = allocate_heavy_hex_frequencies(lattice)
        result = simulate_yield_adaptive(
            allocation, _FABRICATION, ci_target=0.02,
            max_samples=4000, chunk_size=250, seed=7,
        )
        assert result.samples_used == 250  # one chunk: yield ~ 0
        assert result.ci_half_width <= 0.02
        assert result.ci_low <= result.estimate <= result.ci_high

    def test_chunk_tasks_match_streaming_across_executors(self):
        streamed = simulate_yield_streaming(
            _ALLOCATION_20, _FABRICATION, batch_size=750, chunk_size=250, seed=13
        )
        serial = simulate_yield_chunks(
            0.014, 0.06, 20, batch_size=750, chunk_size=250, seed=13,
            lattice=_LATTICE_20,
        )
        parallel = simulate_yield_chunks(
            0.014, 0.06, 20, batch_size=750, chunk_size=250, seed=13,
            lattice=_LATTICE_20,
            executor=ExecutionEngine(jobs=2, use_cache=False),
        )
        assert (
            serial.num_collision_free
            == parallel.num_collision_free
            == streamed.num_collision_free
        )

    @given(
        batch_size=st.integers(10, 200),
        chunk_size=st.integers(1, 250),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_streaming_parity_property(self, batch_size, chunk_size, seed):
        """For any (batch, chunk, seed): streaming == monolithic reduce."""
        lattice = heavy_hex_by_qubit_count(5)
        allocation = allocate_heavy_hex_frequencies(lattice)
        fabrication = FabricationModel(0.05)
        batch = materialize_seeded_batch(
            allocation, fabrication, batch_size, chunk_size, seed
        )
        monolithic = int(collision_free_mask(allocation, batch).sum())
        streamed = simulate_yield_streaming(
            allocation, fabrication, batch_size, chunk_size, seed
        )
        assert streamed.num_collision_free == monolithic

    def test_point_dispatch_selects_sampler(self):
        legacy = simulate_yield_point(0.014, 0.06, 20, 500, seed=7, lattice=_LATTICE_20)
        streamed = simulate_yield_point(
            0.014, 0.06, 20, 500, seed=7, lattice=_LATTICE_20, chunk_size=125
        )
        adaptive = simulate_yield_point(
            0.014, 0.06, 20, 500, seed=7, lattice=_LATTICE_20,
            chunk_size=125, ci_target=0.1,
        )
        reference = simulate_yield_streaming(
            _ALLOCATION_20, _FABRICATION, 500, 125, seed=7
        )
        assert streamed.num_collision_free == reference.num_collision_free
        assert adaptive.samples_used <= streamed.samples_used
        # the legacy sampler is untouched: single monolithic draw
        assert legacy.batch_size == 500

    def test_sweep_accepts_stats_options(self):
        options = StatsOptions(ci_target=0.05, chunk_size=100, max_samples=600)
        curve = yield_vs_qubits(
            0.014, 0.06, sizes=(10, 100), batch_size=400, seed=3, stats=options
        )
        small, large = curve.at_size(10), curve.at_size(100)
        assert small.ci_low <= small.estimate <= small.ci_high
        # the deep-tail point stops early, the mid-yield point samples more
        assert large.samples_used <= small.samples_used
        assert large.samples_used <= 600
