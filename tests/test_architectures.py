"""Conformance suite for the pluggable architecture layer.

Every architecture registered in
:data:`repro.core.architecture.ARCHITECTURES` must satisfy the same
contract: exact-count connected lattices within the declared degree
bound, frequency labels that keep nearest neighbours and shared-control
targets distinct, and ideally fabricated devices that pass all seven
Table I criteria at every detuning step of the Fig. 4 sweep.  The suite
is parametrised over the registry, so registering a new topology
automatically subjects it to the full contract.

The golden tests pin the square and ring Fig. 4 variants the same way
``test_golden_regression.py`` pins the registry experiments (shared
``summarize``/``_drift`` helpers, 1e-9 tolerance, regenerated with
``pytest --regenerate-goldens``).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from test_golden_regression import GOLDEN_DIR, TOLERANCE, _drift, summarize

from repro.analysis.figures.topologies import (
    run_topology_mcm_comparison,
    run_topology_yield_comparison,
)
from repro.analysis.figures.fig4_yield import run_fig4_yield_sweep
from repro.core.architecture import (
    ARCHITECTURES,
    Architecture,
    ArchitectureRegistry,
    DEFAULT_TOPOLOGY,
    get_architecture,
)
from repro.core.chiplet import ChipletDesign
from repro.core.collisions import collision_free_mask, find_collisions
from repro.core.frequencies import (
    HeavyHexThreeFrequencyPlan,
    RingThreeFrequencyPlan,
    allocate_heavy_hex_frequencies,
)
from repro.core.mcm import MCMDesign
from repro.core.yield_model import simulate_yield_point, yield_vs_qubits
from repro.engine import ExecutionEngine
from repro.topology.base import Lattice
from repro.topology.heavy_hex import heavy_hex_by_qubit_count
from repro.topology.ring import build_ring

TOPOLOGIES = ARCHITECTURES.names()

#: Device sizes every topology must realise exactly.
CONFORMANCE_SIZES = (2, 5, 9, 12, 18, 20, 27, 40, 65)

#: Detuning steps of the Fig. 4 sweep; ideal devices must be clean at all.
SWEEP_STEPS = (0.04, 0.05, 0.06, 0.07)


# ---------------------------------------------------------------------- #
# Registry basics
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_three_topologies_registered(self):
        assert TOPOLOGIES == ["heavy-hex", "square", "ring"]

    def test_default_resolution(self):
        assert get_architecture(None).name == DEFAULT_TOPOLOGY
        assert get_architecture("square").name == "square"

    def test_unknown_topology_raises_with_known_set(self):
        with pytest.raises(KeyError, match="unknown topology"):
            get_architecture("kagome")

    def test_duplicate_registration_rejected(self):
        registry = ArchitectureRegistry()
        arch = Architecture(
            name="dup",
            description="",
            lattice_factory=heavy_hex_by_qubit_count,
            plan=HeavyHexThreeFrequencyPlan(),
        )
        registry.register(arch)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(arch)


# ---------------------------------------------------------------------- #
# Lattice conformance
# ---------------------------------------------------------------------- #
@pytest.mark.parametrize("topology", TOPOLOGIES)
class TestLatticeConformance:
    def test_exact_count_connected_and_bounded_degree(self, topology):
        arch = get_architecture(topology)
        for size in CONFORMANCE_SIZES:
            lattice = arch.lattice(size)
            assert isinstance(lattice, Lattice)
            assert lattice.num_qubits == size
            assert lattice.is_connected()
            assert lattice.max_degree() <= arch.max_degree

    def test_boundaries_exist_and_are_lattice_qubits(self, topology):
        lattice = get_architecture(topology).lattice(20)
        for side in ("left", "right", "top", "bottom"):
            boundary = getattr(lattice, f"boundary_{side}")()
            assert boundary, side
            assert all(0 <= q < lattice.num_qubits for q in boundary)

    def test_labels_within_plan_range(self, topology):
        arch = get_architecture(topology)
        for size in CONFORMANCE_SIZES:
            lattice = arch.lattice(size)
            labels = arch.plan.labels(lattice)
            assert labels.shape == (size,)
            assert labels.min() >= 0
            assert labels.max() < arch.plan.num_frequencies

    def test_neighbours_never_share_a_label(self, topology):
        arch = get_architecture(topology)
        for size in CONFORMANCE_SIZES:
            lattice = arch.lattice(size)
            labels = arch.plan.labels(lattice)
            for u, v in lattice.edges:
                assert labels[u] != labels[v], (topology, size, (u, v))

    def test_shared_control_targets_have_distinct_labels(self, topology):
        arch = get_architecture(topology)
        for size in CONFORMANCE_SIZES:
            lattice = arch.lattice(size)
            allocation = arch.allocate(lattice)
            targets: dict[int, list[int]] = {}
            for control, target in allocation.directed_edges:
                targets.setdefault(int(control), []).append(
                    int(allocation.labels[target])
                )
            for control, target_labels in targets.items():
                assert len(target_labels) == len(set(target_labels)), (
                    topology,
                    size,
                    control,
                )

    def test_ideal_devices_collision_free_at_every_sweep_step(self, topology):
        arch = get_architecture(topology)
        for size in CONFORMANCE_SIZES:
            lattice = arch.lattice(size)
            for step in SWEEP_STEPS:
                allocation = arch.allocate(lattice, spec=arch.spec(step_ghz=step))
                report = find_collisions(allocation, allocation.ideal_frequencies)
                assert report.is_collision_free, (
                    topology,
                    size,
                    step,
                    report.counts_by_type(),
                )
                mask = collision_free_mask(
                    allocation, allocation.ideal_frequencies[np.newaxis, :]
                )
                assert bool(mask[0])


# ---------------------------------------------------------------------- #
# Chiplets and MCMs per topology
# ---------------------------------------------------------------------- #
class TestChipletAndMCM:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_chiplet_builds_and_validates(self, topology):
        design = ChipletDesign.build(18, topology=topology)
        assert design.num_qubits == 18
        if topology == DEFAULT_TOPOLOGY:
            assert design.name == "chiplet-18"
        else:
            assert design.name == f"chiplet-{topology}-18"

    @pytest.mark.parametrize(
        "topology,grid",
        [
            ("heavy-hex", (2, 2)),
            ("square", (2, 2)),
            ("ring", (1, 2)),
            ("ring", (2, 1)),
        ],
    )
    def test_mcm_builds_connected_and_ideally_clean(self, topology, grid):
        chiplet = ChipletDesign.build(18, topology=topology)
        mcm = MCMDesign.build(chiplet, *grid)
        assert mcm.num_qubits == 18 * grid[0] * grid[1]
        assert mcm.num_links >= 1
        assert mcm.coupling_map().is_connected()
        report = find_collisions(mcm.allocation, mcm.allocation.ideal_frequencies)
        assert report.is_collision_free

    def test_closed_ring_plan_is_seam_free_at_multiples_of_three(self):
        ring = build_ring(18, closed=True)
        allocation = RingThreeFrequencyPlan().allocate(ring)
        report = find_collisions(allocation, allocation.ideal_frequencies)
        assert report.is_collision_free


# ---------------------------------------------------------------------- #
# Yield pipeline: determinism, parallelism, cache keys
# ---------------------------------------------------------------------- #
class TestYieldAcrossTopologies:
    def test_default_topology_matches_legacy_heavy_hex_path(self):
        lattice = heavy_hex_by_qubit_count(27)
        legacy = allocate_heavy_hex_frequencies(lattice)
        plugged = get_architecture(None).allocate(lattice)
        assert np.array_equal(legacy.labels, plugged.labels)
        assert np.array_equal(legacy.ideal_frequencies, plugged.ideal_frequencies)
        assert np.array_equal(legacy.directed_edges, plugged.directed_edges)
        assert np.array_equal(legacy.control_triples, plugged.control_triples)

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_point_is_seed_deterministic(self, topology):
        kwargs = dict(
            sigma_ghz=0.014, step_ghz=0.06, num_qubits=20, batch_size=150, seed=11
        )
        first = simulate_yield_point(topology=topology, **kwargs)
        second = simulate_yield_point(topology=topology, **kwargs)
        assert first.num_collision_free == second.num_collision_free

    def test_topologies_produce_distinct_streams(self):
        kwargs = dict(
            sigma_ghz=0.014, step_ghz=0.06, num_qubits=20, batch_size=300, seed=11
        )
        yields = {
            topology: simulate_yield_point(topology=topology, **kwargs).estimate
            for topology in TOPOLOGIES
        }
        assert len(set(yields.values())) > 1

    def test_denser_topologies_collapse_earlier(self):
        """The phase-transition ordering: square < heavy-hex <= ring."""
        result = run_topology_yield_comparison(
            sizes=(5, 20, 65, 200), batch_size=200, seed=7
        )
        square = sum(result.yields("square"))
        heavy = sum(result.yields("heavy-hex"))
        ring = sum(result.yields("ring"))
        assert square < heavy <= ring

    def test_square_parallel_matches_sequential_and_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        kwargs = dict(
            sigma_ghz=0.014,
            step_ghz=0.06,
            sizes=(5, 10, 20),
            batch_size=120,
            seed=7,
            topology="square",
        )
        sequential = yield_vs_qubits(**kwargs)
        engine = ExecutionEngine(jobs=2)
        parallel = yield_vs_qubits(executor=engine, **kwargs)
        assert parallel.yields == sequential.yields
        assert engine.stats.cache_hits == 0
        rerun = yield_vs_qubits(executor=ExecutionEngine(jobs=2), **kwargs)
        assert rerun.yields == sequential.yields

    def test_topology_is_part_of_the_cache_key(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        kwargs = dict(
            sigma_ghz=0.006, step_ghz=0.06, sizes=(20,), batch_size=200, seed=3
        )
        engine = ExecutionEngine(jobs=1)
        heavy = yield_vs_qubits(executor=engine, **kwargs)
        square = yield_vs_qubits(executor=engine, topology="square", **kwargs)
        assert engine.stats.cache_hits == 0
        assert heavy.yields != square.yields


# ---------------------------------------------------------------------- #
# Cross-topology experiments
# ---------------------------------------------------------------------- #
class TestComparisonExperiments:
    def test_topology_mcm_rows_cover_all_topologies(self):
        result = run_topology_mcm_comparison(batch_size=200, seed=5)
        assert [row.topology for row in result.rows] == TOPOLOGIES
        heavy = result.rows[0]
        assert heavy.num_mcms > 0
        assert 0.0 <= heavy.post_assembly_yield <= 1.0
        assert "topology" in result.format_table()

    def test_single_topology_restriction(self):
        result = run_topology_mcm_comparison(
            topologies=("ring",), batch_size=150, seed=5
        )
        assert [row.topology for row in result.rows] == ["ring"]

    def test_filtered_runs_reproduce_full_run_rows(self):
        """Child seeds key on registry position, not the filtered list."""
        full = run_topology_yield_comparison(
            seed=7, sizes=(5, 10), batch_size=150
        )
        only = run_topology_yield_comparison(
            seed=7, sizes=(5, 10), batch_size=150, topologies=("square",)
        )
        assert only.yields("square") == full.yields("square")

        m_full = run_topology_mcm_comparison(batch_size=150, seed=5)
        m_only = run_topology_mcm_comparison(
            batch_size=150, seed=5, topologies=("ring",)
        )
        ring_full = next(r for r in m_full.rows if r.topology == "ring")
        assert m_only.rows[0] == ring_full

    def test_comparison_parallel_matches_sequential(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        kwargs = dict(seed=7, sizes=(5, 10, 20), batch_size=120)
        sequential = run_topology_yield_comparison(**kwargs)
        parallel = run_topology_yield_comparison(
            engine=ExecutionEngine(jobs=2), **kwargs
        )
        for topology in TOPOLOGIES:
            assert parallel.yields(topology) == sequential.yields(topology)


# ---------------------------------------------------------------------- #
# Golden snapshots: the square and ring Fig. 4 variants
# ---------------------------------------------------------------------- #
VARIANT_PARAMS = dict(
    batch_size=120,
    seed=7,
    sizes=(5, 10, 20, 40, 65, 100, 200),
)


@pytest.mark.parametrize("topology", ["square", "ring"])
def test_fig4_variant_matches_golden(topology, request):
    regenerate = request.config.getoption("--regenerate-goldens")
    golden_path = GOLDEN_DIR / f"fig4_{topology}.json"
    result = run_fig4_yield_sweep(topology=topology, **VARIANT_PARAMS)
    actual = {
        "experiment": f"fig4-{topology}",
        "topology": topology,
        "seed": VARIANT_PARAMS["seed"],
        "batch_size": VARIANT_PARAMS["batch_size"],
        "summary": summarize(result),
    }

    if regenerate:
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        return

    assert golden_path.exists(), (
        f"no golden for the {topology} fig4 variant; generate it with "
        "`python -m pytest tests/test_architectures.py --regenerate-goldens`"
    )
    golden = json.loads(golden_path.read_text())
    problems = _drift(golden, actual)
    assert not problems, (
        f"fig4-{topology}: {len(problems)} value(s) drifted beyond {TOLERANCE}:\n"
        + "\n".join(problems[:25])
    )
