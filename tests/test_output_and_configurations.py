"""Tests for the fabrication-output model (Eq. 1) and configuration counting."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configurations import (
    configuration_curve,
    log10_configurations,
    max_assembled_mcms,
)
from repro.core.output_model import (
    compare_fabrication_output,
    mcm_output_upper_bound,
    monolithic_output,
)


class TestOutputModel:
    def test_paper_worked_example(self):
        """Section V-C: Y_m=0.11, Y_c=0.85, B=1000, 2x5 MCMs -> ~7.7x gain."""
        comparison = compare_fabrication_output(
            monolithic_yield=0.11,
            chiplet_yield=0.85,
            batch_size=1000,
            monolithic_qubits=100,
            chiplet_qubits=10,
            grid_rows=2,
            grid_cols=5,
        )
        assert comparison.monolithic_devices == pytest.approx(110)
        assert comparison.mcm_devices == pytest.approx(850)
        assert comparison.gain == pytest.approx(7.7, abs=0.05)

    def test_equation_one(self):
        assert mcm_output_upper_bound(0.85, 1000, 100, 10, 2, 5) == pytest.approx(850)

    def test_zero_monolithic_yield_gives_infinite_gain(self):
        comparison = compare_fabrication_output(0.0, 0.5, 1000, 100, 10, 2, 5)
        assert comparison.gain == float("inf")

    def test_qubit_budget_must_match(self):
        with pytest.raises(ValueError):
            compare_fabrication_output(0.1, 0.8, 1000, 100, 10, 2, 4)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            mcm_output_upper_bound(1.5, 1000, 100, 10, 2, 5)
        with pytest.raises(ValueError):
            monolithic_output(0.5, 0)

    @settings(max_examples=30, deadline=None)
    @given(
        chiplet_yield=st.floats(min_value=0.01, max_value=1.0),
        chiplet_qubits=st.sampled_from([10, 20, 25, 50]),
        grid=st.sampled_from([(2, 2), (2, 5), (1, 4)]),
    )
    def test_property_output_scales_linearly_with_yield(
        self, chiplet_yield, chiplet_qubits, grid
    ):
        monolithic_qubits = chiplet_qubits * grid[0] * grid[1]
        full = mcm_output_upper_bound(1.0, 1000, monolithic_qubits, chiplet_qubits, *grid)
        partial = mcm_output_upper_bound(
            chiplet_yield, 1000, monolithic_qubits, chiplet_qubits, *grid
        )
        assert partial == pytest.approx(full * chiplet_yield)


class TestConfigurations:
    def test_small_exact_values(self):
        # P(5, 2) = 20.
        assert 10 ** log10_configurations(5, 2) == pytest.approx(20, rel=1e-9)
        # P(4, 4) = 24.
        assert 10 ** log10_configurations(4, 4) == pytest.approx(24, rel=1e-9)

    def test_more_slots_than_chiplets(self):
        assert log10_configurations(3, 5) == float("-inf")

    def test_max_assembled_mcms(self):
        assert max_assembled_mcms(69_421, 4) == 17_355
        assert max_assembled_mcms(69_421, 49) == 1416

    def test_validation(self):
        with pytest.raises(ValueError):
            log10_configurations(-1, 2)
        with pytest.raises(ValueError):
            max_assembled_mcms(10, 0)

    def test_configuration_curve_matches_paper_setup(self):
        points = configuration_curve(chiplet_yield=0.694, batch_size=100_000)
        assert [p.grid for p in points] == [(m, m) for m in range(2, 8)]
        assert points[0].mcm_qubits == 80
        # Configurations grow factorially while assembled modules shrink.
        log_configs = [p.log10_configurations for p in points]
        assert log_configs == sorted(log_configs)
        max_mcms = [p.max_mcms for p in points]
        assert max_mcms == sorted(max_mcms, reverse=True)

    def test_configuration_curve_validation(self):
        with pytest.raises(ValueError):
            configuration_curve(chiplet_yield=1.2)

    @settings(max_examples=30, deadline=None)
    @given(
        available=st.integers(min_value=1, max_value=10_000),
        slots=st.integers(min_value=1, max_value=60),
    )
    def test_property_counts_are_consistent(self, available, slots):
        mcms = max_assembled_mcms(available, slots)
        assert mcms * slots <= available
        if slots <= available:
            assert log10_configurations(available, slots) >= 0.0
