"""Tests for the seven Table I collision criteria."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collisions import (
    COLLISION_TYPES,
    CollisionThresholds,
    collision_free_mask,
    count_collisions,
    find_collisions,
    has_collision,
)
from repro.core.frequencies import (
    FrequencySpec,
    allocate_heavy_hex_frequencies,
    allocation_from_labels,
)
from repro.topology.heavy_hex import heavy_hex_by_qubit_count


@pytest.fixture(scope="module")
def three_qubit_allocation():
    """Control Q1 (F2) coupled to targets Q0 (F0) and Q2 (F1)."""
    return allocation_from_labels(np.array([0, 2, 1]), [(1, 0), (1, 2)])


def _ideal(allocation):
    return allocation.ideal_frequencies.copy()


class TestIdealPattern:
    def test_ideal_heavy_hex_is_collision_free(self, allocation_27):
        report = find_collisions(allocation_27, allocation_27.ideal_frequencies)
        assert report.is_collision_free
        assert report.num_collisions == 0

    @pytest.mark.parametrize("step", [0.04, 0.05, 0.06, 0.07])
    def test_ideal_pattern_collision_free_across_steps(self, step):
        lattice = heavy_hex_by_qubit_count(40)
        allocation = allocate_heavy_hex_frequencies(lattice, spec=FrequencySpec(step_ghz=step))
        assert not has_collision(allocation, allocation.ideal_frequencies)

    def test_large_step_triggers_type7(self):
        """A 0.11 GHz step makes 2f_i + a = f_j + f_k hold exactly."""
        lattice = heavy_hex_by_qubit_count(40)
        allocation = allocate_heavy_hex_frequencies(lattice, spec=FrequencySpec(step_ghz=0.11))
        counts = count_collisions(allocation, allocation.ideal_frequencies)
        assert counts[7] > 0


class TestIndividualCriteria:
    def test_type1_near_null_neighbours(self, three_qubit_allocation):
        freqs = _ideal(three_qubit_allocation)
        freqs[0] = freqs[1] + 0.010  # control/target nearly resonant
        counts = count_collisions(three_qubit_allocation, freqs)
        assert counts[1] >= 1

    def test_type2_half_anharmonicity(self, three_qubit_allocation):
        freqs = _ideal(three_qubit_allocation)
        alpha = three_qubit_allocation.anharmonicities[1]
        freqs[0] = freqs[1] + alpha / 2.0  # f_i + a/2 == f_j
        counts = count_collisions(three_qubit_allocation, freqs)
        assert counts[2] >= 1

    def test_type3_anharmonicity_resonance(self, three_qubit_allocation):
        freqs = _ideal(three_qubit_allocation)
        alpha = three_qubit_allocation.anharmonicities[0]
        freqs[0] = freqs[1] + alpha  # f_i == f_j + a
        counts = count_collisions(three_qubit_allocation, freqs)
        assert counts[3] >= 1

    def test_type4_target_above_control(self, three_qubit_allocation):
        freqs = _ideal(three_qubit_allocation)
        freqs[0] = freqs[1] + 0.05  # target drifted above the control
        counts = count_collisions(three_qubit_allocation, freqs)
        assert counts[4] >= 1

    def test_type4_target_below_straddling_regime(self, three_qubit_allocation):
        freqs = _ideal(three_qubit_allocation)
        freqs[0] = freqs[1] - 0.40  # below f_i + a
        counts = count_collisions(three_qubit_allocation, freqs)
        assert counts[4] >= 1

    def test_type5_degenerate_targets(self, three_qubit_allocation):
        freqs = _ideal(three_qubit_allocation)
        freqs[2] = freqs[0] + 0.005  # the two targets become near-resonant
        counts = count_collisions(three_qubit_allocation, freqs)
        assert counts[5] >= 1

    def test_type6_target_anharmonicity_resonance(self, three_qubit_allocation):
        freqs = _ideal(three_qubit_allocation)
        alpha = three_qubit_allocation.anharmonicities[2]
        freqs[2] = freqs[0] - alpha  # f_k == f_j - a
        counts = count_collisions(three_qubit_allocation, freqs)
        assert counts[6] >= 1

    def test_type7_two_photon_resonance(self, three_qubit_allocation):
        freqs = _ideal(three_qubit_allocation)
        alpha = three_qubit_allocation.anharmonicities[1]
        freqs[0] = 2 * freqs[1] + alpha - freqs[2]
        counts = count_collisions(three_qubit_allocation, freqs)
        assert counts[7] >= 1

    def test_report_lists_participating_qubits(self, three_qubit_allocation):
        freqs = _ideal(three_qubit_allocation)
        freqs[0] = freqs[1]
        report = find_collisions(three_qubit_allocation, freqs)
        types = {ctype for ctype, _ in report.collisions}
        assert 1 in types
        for _, qubits in report.collisions:
            assert all(0 <= q < 3 for q in qubits)

    def test_counts_by_type_covers_all_types(self, three_qubit_allocation):
        counts = count_collisions(three_qubit_allocation, _ideal(three_qubit_allocation))
        assert set(counts) == set(COLLISION_TYPES)
        assert all(v == 0 for v in counts.values())


class TestThresholds:
    def test_wider_thresholds_detect_more(self, allocation_27, rng):
        freqs = allocation_27.ideal_frequencies + rng.normal(0, 0.03, allocation_27.num_qubits)
        strict = CollisionThresholds()
        loose = CollisionThresholds(type1_ghz=0.05, type5_ghz=0.05)
        strict_count = find_collisions(allocation_27, freqs, strict).num_collisions
        loose_count = find_collisions(allocation_27, freqs, loose).num_collisions
        assert loose_count >= strict_count

    def test_frequency_shape_validation(self, allocation_27):
        with pytest.raises(ValueError):
            find_collisions(allocation_27, np.zeros(3))


class TestVectorisedMask:
    def test_mask_matches_scalar_checker(self, allocation_27, rng):
        batch = allocation_27.ideal_frequencies + rng.normal(
            0, 0.02, size=(64, allocation_27.num_qubits)
        )
        mask = collision_free_mask(allocation_27, batch)
        for row in range(batch.shape[0]):
            assert mask[row] == (not has_collision(allocation_27, batch[row]))

    def test_single_device_input(self, allocation_27):
        mask = collision_free_mask(allocation_27, allocation_27.ideal_frequencies)
        assert mask.shape == (1,)
        assert bool(mask[0])

    def test_shape_validation(self, allocation_27):
        with pytest.raises(ValueError):
            collision_free_mask(allocation_27, np.zeros((4, 3)))

    @settings(max_examples=20, deadline=None)
    @given(
        scale=st.floats(min_value=0.0, max_value=0.05),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_mask_consistent_with_scalar(self, scale, seed):
        """Vectorised and scalar collision checks always agree."""
        allocation = allocation_from_labels(np.array([0, 2, 1, 2, 0]),
                                            [(1, 0), (1, 2), (3, 2), (3, 4)])
        rng = np.random.default_rng(seed)
        batch = allocation.ideal_frequencies + rng.normal(0, scale, size=(8, 5))
        mask = collision_free_mask(allocation, batch)
        scalar = np.array([not has_collision(allocation, row) for row in batch])
        assert np.array_equal(mask, scalar)

    def test_zero_noise_yields_all_collision_free(self, allocation_27):
        batch = np.tile(allocation_27.ideal_frequencies, (10, 1))
        assert collision_free_mask(allocation_27, batch).all()

    def test_huge_noise_yields_no_survivors(self, allocation_27, rng):
        batch = allocation_27.ideal_frequencies + rng.normal(
            0, 0.2, size=(50, allocation_27.num_qubits)
        )
        assert collision_free_mask(allocation_27, batch).sum() <= 2
