"""Tests for the CouplingMap abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.coupling import CouplingMap
from repro.topology.heavy_hex import heavy_hex_by_qubit_count


@pytest.fixture()
def line_map() -> CouplingMap:
    return CouplingMap(num_qubits=5, edges=[(0, 1), (1, 2), (2, 3), (3, 4)])


class TestConstruction:
    def test_edges_are_normalised_and_deduplicated(self):
        cmap = CouplingMap(num_qubits=3, edges=[(2, 0), (0, 2), (1, 0)])
        assert cmap.edges == [(0, 1), (0, 2)]
        assert cmap.num_edges == 2

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            CouplingMap(num_qubits=3, edges=[(1, 1)])

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError):
            CouplingMap(num_qubits=3, edges=[(0, 3)])

    def test_rejects_unknown_link_edges(self):
        with pytest.raises(ValueError):
            CouplingMap(num_qubits=3, edges=[(0, 1)], link_edges=frozenset({(1, 2)}))

    def test_from_lattice(self):
        lattice = heavy_hex_by_qubit_count(27)
        cmap = CouplingMap.from_lattice(lattice)
        assert cmap.num_qubits == 27
        assert cmap.num_edges == lattice.num_edges


class TestQueries:
    def test_neighbors(self, line_map):
        assert line_map.neighbors(0) == [1]
        assert sorted(line_map.neighbors(2)) == [1, 3]

    def test_has_edge(self, line_map):
        assert line_map.has_edge(1, 0)
        assert not line_map.has_edge(0, 2)

    def test_is_link(self):
        cmap = CouplingMap(
            num_qubits=4, edges=[(0, 1), (1, 2), (2, 3)], link_edges=frozenset({(2, 1)})
        )
        assert cmap.is_link(1, 2)
        assert cmap.is_link(2, 1)
        assert not cmap.is_link(0, 1)

    def test_is_connected(self, line_map):
        assert line_map.is_connected()
        disconnected = CouplingMap(num_qubits=4, edges=[(0, 1), (2, 3)])
        assert not disconnected.is_connected()


class TestDistances:
    def test_distance_matrix_shape_and_values(self, line_map):
        matrix = line_map.distance_matrix()
        assert matrix.shape == (5, 5)
        assert matrix[0, 4] == 4
        assert np.allclose(np.diag(matrix), 0)

    def test_distance_and_diameter(self, line_map):
        assert line_map.distance(0, 3) == 3
        assert line_map.diameter() == 4

    def test_distance_matrix_is_cached(self, line_map):
        assert line_map.distance_matrix() is line_map.distance_matrix()

    def test_shortest_path_endpoints(self, line_map):
        path = line_map.shortest_path(0, 4)
        assert path[0] == 0 and path[-1] == 4
        assert len(path) == 5

    def test_heavy_hex_distances_symmetric(self):
        lattice = heavy_hex_by_qubit_count(40)
        cmap = CouplingMap.from_lattice(lattice)
        matrix = cmap.distance_matrix()
        assert np.allclose(matrix, matrix.T)
        assert cmap.diameter() >= 5
