"""Tests for the fabrication-variation model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fabrication import (
    FabricationModel,
    SIGMA_AS_FABRICATED_GHZ,
    SIGMA_LASER_TUNED_GHZ,
    SIGMA_SCALING_TARGET_GHZ,
)


class TestConstants:
    def test_paper_values(self):
        assert SIGMA_AS_FABRICATED_GHZ == pytest.approx(0.1323)
        assert SIGMA_LASER_TUNED_GHZ == pytest.approx(0.014)
        assert SIGMA_SCALING_TARGET_GHZ == pytest.approx(0.006)

    def test_precision_ordering(self):
        assert SIGMA_SCALING_TARGET_GHZ < SIGMA_LASER_TUNED_GHZ < SIGMA_AS_FABRICATED_GHZ


class TestFabricationModel:
    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            FabricationModel(sigma_ghz=-0.01)

    def test_batch_shape(self, allocation_27, rng):
        model = FabricationModel(0.014)
        batch = model.sample_batch(allocation_27, 32, rng)
        assert batch.shape == (32, allocation_27.num_qubits)

    def test_single_device_shape(self, allocation_27, rng):
        model = FabricationModel(0.014)
        assert model.sample_device(allocation_27, rng).shape == (allocation_27.num_qubits,)

    def test_rejects_non_positive_batch(self, allocation_27, rng):
        with pytest.raises(ValueError):
            FabricationModel(0.014).sample_batch(allocation_27, 0, rng)

    def test_zero_sigma_reproduces_ideal(self, allocation_27, rng):
        model = FabricationModel(0.0)
        batch = model.sample_batch(allocation_27, 4, rng)
        assert np.allclose(batch, allocation_27.ideal_frequencies)

    def test_sample_statistics_match_sigma(self, allocation_27):
        rng = np.random.default_rng(0)
        sigma = 0.05
        model = FabricationModel(sigma)
        batch = model.sample_batch(allocation_27, 4000, rng)
        offsets = batch - allocation_27.ideal_frequencies
        assert abs(offsets.mean()) < 0.002
        assert offsets.std() == pytest.approx(sigma, rel=0.05)

    def test_laser_tuning_improves_precision(self):
        raw = FabricationModel(SIGMA_AS_FABRICATED_GHZ)
        tuned = raw.with_laser_tuning()
        assert tuned.sigma_ghz == pytest.approx(SIGMA_LASER_TUNED_GHZ)

    def test_laser_tuning_never_degrades(self):
        precise = FabricationModel(0.004)
        assert precise.with_laser_tuning().sigma_ghz == pytest.approx(0.004)
