"""Tests for the pass-pipeline compiler and the noise-aware router."""

from __future__ import annotations

import pytest

from repro.circuits.benchmarks import build_benchmark, ghz
from repro.circuits.circuit import QuantumCircuit
from repro.compiler.decompose import decompose_swaps, decompose_to_cx_basis
from repro.compiler.layout import Layout, choose_layout
from repro.compiler.metrics import gate_metrics
from repro.compiler.pipeline import (
    CompileContext,
    CompilerStrategy,
    DecomposePass,
    LayoutPass,
    LAYOUT_STRATEGIES,
    MetricsPass,
    Pass,
    PassPipeline,
    ROUTING_STRATEGIES,
    RoutePass,
    SwapExpandPass,
    default_pipeline,
)
from repro.compiler.routing import route_circuit, route_circuit_noise_aware
from repro.compiler.transpile import transpile
from repro.topology.coupling import CouplingMap
from repro.topology.heavy_hex import heavy_hex_by_qubit_count


def legacy_transpile(circuit, target, layout_method="auto"):
    """The seed-state transpile sequence, verbatim, as the reference."""
    from repro.device.device import Device

    coupling = target.coupling if isinstance(target, Device) else target
    edge_errors = target.edge_errors if isinstance(target, Device) else None
    logical = decompose_to_cx_basis(circuit)
    layout = choose_layout(logical, coupling, method=layout_method, edge_errors=edge_errors)
    routed = route_circuit(logical, coupling, layout)
    physical = decompose_swaps(routed.circuit)
    edges = []
    for gate, edge in zip(
        (g for g in routed.circuit if g.num_qubits == 2), routed.two_qubit_edges
    ):
        edges.extend([edge, edge, edge] if gate.name == "swap" else [edge])
    return physical, routed, gate_metrics(physical), edges


class TestRegistries:
    def test_registered_strategies(self):
        assert LAYOUT_STRATEGIES.names() == ["auto", "line", "dense", "noise"]
        assert ROUTING_STRATEGIES.names() == ["basic", "noise-aware"]

    def test_unknown_strategy_gets_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'noise-aware'"):
            ROUTING_STRATEGIES.get("noise_aware")
        with pytest.raises(KeyError, match="did you mean 'dense'"):
            LAYOUT_STRATEGIES.get("dens")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            ROUTING_STRATEGIES.register(
                CompilerStrategy(name="basic", description="dup", build=lambda: None)
            )

    def test_membership_and_len(self):
        assert "basic" in ROUTING_STRATEGIES
        assert "kagome" not in ROUTING_STRATEGIES
        assert len(ROUTING_STRATEGIES) >= 2


class TestPassProtocol:
    def test_builtin_passes_satisfy_protocol(self):
        for stage in (
            DecomposePass(), LayoutPass(), RoutePass(), SwapExpandPass(), MetricsPass()
        ):
            assert isinstance(stage, Pass)

    def test_pipeline_rejects_non_passes(self):
        with pytest.raises(TypeError, match="Pass protocol"):
            PassPipeline([DecomposePass(), object()])

    def test_custom_pass_runs_in_sequence(self):
        class CountingPass:
            name = "count"

            def run(self, context):
                context.properties["two_qubit"] = context.circuit.num_two_qubit_gates

        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(27))
        pipeline = default_pipeline(extra_passes=[CountingPass()])
        assert pipeline.pass_names() == [
            "decompose", "layout", "route", "swap-expand", "metrics", "count",
        ]
        context = pipeline.run_context(build_benchmark("qaoa", 12, seed=3), coupling)
        assert context.properties["two_qubit"] == context.metrics.num_two_qubit

    def test_route_before_layout_raises(self):
        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(27))
        pipeline = PassPipeline([DecomposePass(), RoutePass()])
        with pytest.raises(ValueError, match="layout"):
            pipeline.run_context(ghz(5), coupling)

    def test_partial_pipeline_rejected_by_run(self):
        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(27))
        pipeline = PassPipeline([DecomposePass()])
        with pytest.raises(ValueError, match="run_context"):
            pipeline.run(ghz(5), coupling)


class TestDefaultPipelineEquivalence:
    @pytest.mark.parametrize(
        "bench_name,width", [("qaoa", 16), ("bv", 20), ("adder", 14)]
    )
    def test_pipeline_matches_legacy_sequence(self, bench_name, width):
        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(27))
        circuit = build_benchmark(bench_name, width, seed=3)
        transpiled = transpile(circuit, coupling)
        physical, routed, metrics, edges = legacy_transpile(circuit, coupling)
        assert transpiled.circuit.gates == physical.gates
        assert transpiled.metrics == metrics
        assert transpiled.two_qubit_edges == edges
        assert transpiled.num_swaps == routed.num_swaps
        assert transpiled.initial_layout.mapping() == routed.initial_layout.mapping()

    def test_pipeline_matches_legacy_on_device(self, small_study):
        mcm = small_study.mcm_result(20, (2, 2))
        circuit = build_benchmark("qaoa", 50, seed=2)
        transpiled = transpile(circuit, mcm.best_device)
        physical, routed, metrics, edges = legacy_transpile(circuit, mcm.best_device)
        assert transpiled.circuit.gates == physical.gates
        assert transpiled.two_qubit_edges == edges

    def test_unknown_routing_rejected_before_compiling(self):
        with pytest.raises(KeyError, match="unknown routing"):
            default_pipeline(routing="lookahead")
        with pytest.raises(KeyError, match="unknown layout"):
            default_pipeline(layout_method="densest")

    def test_context_for_bare_coupling_has_no_errors(self):
        coupling = CouplingMap(num_qubits=3, edges=[(0, 1), (1, 2)])
        context = CompileContext.for_target(ghz(3), coupling)
        assert context.edge_errors is None


class TestNoiseAwareRouting:
    def line(self, n):
        return CouplingMap(num_qubits=n, edges=[(i, i + 1) for i in range(n - 1)])

    def test_falls_back_to_basic_without_errors(self):
        coupling = self.line(5)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        layout = Layout({0: 0, 1: 4})
        basic = route_circuit(circuit, coupling, layout)
        aware = route_circuit_noise_aware(circuit, coupling, layout, edge_errors=None)
        assert aware.circuit.gates == basic.circuit.gates
        assert aware.two_qubit_edges == basic.two_qubit_edges

    def test_detours_around_poisoned_edge(self):
        # A 2x3 grid: the direct (0,1) edge is terrible; routing 0-1
        # should detour through the clean bottom row.
        #   0 - 1    (0,1) error 0.5, every other edge 0.001
        #   |   |
        #   2 - 3
        coupling = CouplingMap(
            num_qubits=4, edges=[(0, 1), (0, 2), (1, 3), (2, 3)]
        )
        errors = {(0, 1): 0.5, (0, 2): 0.001, (1, 3): 0.001, (2, 3): 0.001}
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        layout = Layout({i: i for i in range(4)})
        basic = route_circuit(circuit, coupling, layout)
        aware = route_circuit_noise_aware(circuit, coupling, layout, errors)
        assert basic.num_swaps == 0
        assert basic.two_qubit_edges == [(0, 1)]
        # The noise-aware route pays SWAPs to avoid the poisoned edge.
        assert aware.num_swaps > 0
        assert (0, 1) not in aware.two_qubit_edges

    def test_routed_gates_respect_connectivity(self):
        coupling = CouplingMap.from_lattice(heavy_hex_by_qubit_count(27))
        errors = {edge: 0.01 + 0.001 * i for i, edge in enumerate(coupling.edges)}
        circuit = build_benchmark("qaoa", 16, seed=4)
        logical = decompose_to_cx_basis(circuit)
        layout = choose_layout(logical, coupling, method="dense")
        routed = route_circuit_noise_aware(logical, coupling, layout, errors)
        edge_set = set(coupling.edges)
        for u, v in routed.two_qubit_edges:
            assert (min(u, v), max(u, v)) in edge_set
        # Routing preserves the non-SWAP gate sequence per virtual qubit.
        assert routed.circuit.num_two_qubit_gates == (
            logical.num_two_qubit_gates + routed.num_swaps
        )

    def test_rejects_multi_qubit_gates(self):
        coupling = self.line(3)
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        with pytest.raises(ValueError, match="decomposed"):
            route_circuit_noise_aware(
                circuit, coupling, Layout({i: i for i in range(3)}), {(0, 1): 0.1}
            )

    def test_transpile_with_noise_aware_strategy(self, small_study):
        mcm = small_study.mcm_result(20, (2, 2))
        device = mcm.best_device
        circuit = build_benchmark("bv", 40)
        transpiled = transpile(circuit, device, routing="noise-aware")
        for u, v in transpiled.two_qubit_edges:
            assert (min(u, v), max(u, v)) in device.edge_errors
        assert len(transpiled.two_qubit_edges) == transpiled.metrics.num_two_qubit

    def test_device_and_mapping_paths_agree(self, small_study):
        # The Device fast path (cached edge_error_arrays) must route
        # identically to the raw-mapping path.
        device = small_study.mcm_result(20, (2, 2)).best_device
        circuit = decompose_to_cx_basis(build_benchmark("qaoa", 40, seed=2))
        layout = choose_layout(circuit, device.coupling, method="dense")
        via_device = route_circuit_noise_aware(circuit, device.coupling, layout, device)
        via_dict = route_circuit_noise_aware(
            circuit, device.coupling, layout, dict(device.edge_errors)
        )
        assert via_device.circuit.gates == via_dict.circuit.gates
        assert via_device.two_qubit_edges == via_dict.two_qubit_edges
        assert via_device.num_swaps == via_dict.num_swaps

    def test_superset_error_map_creates_no_phantom_couplings(self):
        # A device whose error map carries an extra non-coupling entry
        # must not let the router treat that entry as a routable edge.
        import numpy as np

        from repro.device.device import Device

        coupling = self.line(3)
        device = Device(
            name="superset",
            coupling=coupling,
            frequencies_ghz=np.full(3, 5.0),
            labels=np.zeros(3, dtype=int),
            edge_errors={(0, 1): 0.01, (1, 2): 0.01, (0, 2): 1e-6},
        )
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        routed = route_circuit_noise_aware(
            circuit, coupling, Layout({i: i for i in range(3)}), device
        )
        real_edges = set(coupling.edges)
        for u, v in routed.two_qubit_edges:
            assert (min(u, v), max(u, v)) in real_edges

    def test_dead_edge_still_routable(self):
        coupling = self.line(3)
        errors = {(0, 1): 1.0, (1, 2): 0.01}
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        routed = route_circuit_noise_aware(
            circuit, coupling, Layout({i: i for i in range(3)}), errors
        )
        # Only route crosses the dead edge; it must still be used.
        assert routed.two_qubit_edges
