"""Tests for the seven benchmark generators (functional correctness included)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.benchmarks import (
    BENCHMARK_NAMES,
    BENCHMARKS,
    adder_register_size,
    bernstein_vazirani,
    bit_code,
    build_benchmark,
    cuccaro_adder,
    ghz,
    qaoa_maxcut,
    quantum_primacy,
    tfim_hamiltonian,
)
from repro.simulation.statevector import simulate


class TestRegistry:
    def test_all_paper_benchmarks_present(self):
        assert set(BENCHMARK_NAMES) == set(BENCHMARKS)
        assert len(BENCHMARK_NAMES) == 7

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_build_benchmark_produces_requested_width(self, name):
        circuit = build_benchmark(name, 12, seed=1)
        assert circuit.num_qubits == 12
        assert circuit.num_gates > 0

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            build_benchmark("grover", 8)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_benchmarks_contain_entangling_gates(self, name):
        circuit = build_benchmark(name, 16, seed=0)
        assert circuit.num_two_qubit_gates + circuit.count_ops().get("ccx", 0) > 0


class TestBernsteinVazirani:
    def test_gate_structure(self):
        circuit = bernstein_vazirani(6, secret="10101")
        assert circuit.count_ops()["cx"] == 3

    def test_default_secret_is_all_ones(self):
        circuit = bernstein_vazirani(5)
        assert circuit.count_ops()["cx"] == 4

    def test_recovers_secret(self):
        secret = "1011"
        circuit = bernstein_vazirani(5, secret=secret)
        state = simulate(circuit)
        # Data qubits must read out the secret with certainty.
        for index, bit in enumerate(secret):
            assert state.marginal_probability(index, int(bit)) == pytest.approx(1.0, abs=1e-9)

    def test_secret_validation(self):
        with pytest.raises(ValueError):
            bernstein_vazirani(4, secret="11")
        with pytest.raises(ValueError):
            bernstein_vazirani(1)

    def test_random_secret_reproducible(self):
        a = bernstein_vazirani(8, seed=3).count_ops().get("cx", 0)
        b = bernstein_vazirani(8, seed=3).count_ops().get("cx", 0)
        assert a == b


class TestGHZ:
    def test_structure(self):
        circuit = ghz(8)
        assert circuit.count_ops() == {"h": 1, "cx": 7}

    def test_state_is_ghz(self):
        state = simulate(ghz(5))
        assert state.probability_of("00000") == pytest.approx(0.5, abs=1e-9)
        assert state.probability_of("11111") == pytest.approx(0.5, abs=1e-9)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ghz(1)


class TestQAOA:
    def test_layer_structure(self):
        circuit = qaoa_maxcut(8, layers=1, seed=2)
        ops = circuit.count_ops()
        assert ops["h"] == 8
        assert ops["rx"] == 8
        assert ops["cx"] == 2 * ops["rz"]

    def test_more_layers_more_gates(self):
        one = qaoa_maxcut(8, layers=1, seed=2).num_gates
        two = qaoa_maxcut(8, layers=2, seed=2).num_gates
        assert two > one

    def test_degree_reduction_for_small_graphs(self):
        circuit = qaoa_maxcut(4, degree=5, seed=1)
        assert circuit.num_qubits == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            qaoa_maxcut(3)
        with pytest.raises(ValueError):
            qaoa_maxcut(8, layers=0)


class TestAdder:
    def test_register_size(self):
        assert adder_register_size(8) == 3
        assert adder_register_size(9) == 3
        with pytest.raises(ValueError):
            adder_register_size(3)

    def test_gate_composition(self):
        circuit = cuccaro_adder(8)
        ops = circuit.count_ops()
        assert ops["ccx"] == 2 * 3  # one MAJ + one UMA per register bit
        assert "cx" in ops

    def test_addition_is_correct(self):
        """|a=7>, |b=5> on a 3-bit adder must produce b = 12 (with carry)."""
        circuit = cuccaro_adder(8)
        state = simulate(circuit)
        # Layout: [carry_in, a0, b0, a1, b1, a2, b2, carry_out]
        # Input preparation sets a = 111 (7), b bits at positions 0 and 2 -> b = 101 (5).
        # Expected sum 12 = 1100b: b0=0, b1=0, b2=1, carry_out=1; a unchanged.
        expectations = {0: 0, 1: 1, 2: 0, 3: 1, 4: 0, 5: 1, 6: 1, 7: 1}
        for qubit, value in expectations.items():
            assert state.marginal_probability(qubit, value) == pytest.approx(1.0, abs=1e-9), qubit


class TestPrimacy:
    def test_depth_controls_layers(self):
        shallow = quantum_primacy(9, depth=2, seed=0)
        deep = quantum_primacy(9, depth=6, seed=0)
        assert deep.num_two_qubit_gates > shallow.num_two_qubit_gates

    def test_every_qubit_participates(self):
        circuit = quantum_primacy(12, depth=4, seed=1)
        assert circuit.used_qubits() == set(range(12))

    def test_seed_reproducibility(self):
        a = quantum_primacy(10, depth=3, seed=7).count_ops()
        b = quantum_primacy(10, depth=3, seed=7).count_ops()
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            quantum_primacy(1)
        with pytest.raises(ValueError):
            quantum_primacy(8, depth=0)


class TestBitCode:
    def test_syndrome_structure(self):
        circuit = bit_code(7, rounds=2)
        # distance 4 data qubits -> 3 ancillas, 2 CX per ancilla per round.
        assert circuit.count_ops()["cx"] == 2 * 3 * 2

    def test_syndrome_is_trivial_for_logical_state(self):
        """Encoding |1...1> produces no syndrome flips (even parity everywhere)."""
        circuit = bit_code(5, rounds=1)
        state = simulate(circuit)
        for ancilla in (1, 3):
            assert state.marginal_probability(ancilla, 0) == pytest.approx(1.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            bit_code(2)
        with pytest.raises(ValueError):
            bit_code(5, rounds=0)


class TestHamiltonian:
    def test_trotter_structure(self):
        circuit = tfim_hamiltonian(6, steps=2)
        ops = circuit.count_ops()
        assert ops["cx"] == 2 * 5 * 2
        assert ops["rx"] == 6 * 2
        assert ops["rz"] == 5 * 2

    def test_probability_conservation(self):
        probabilities = simulate(tfim_hamiltonian(4, steps=3)).probabilities()
        assert np.sum(probabilities) == pytest.approx(1.0, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            tfim_hamiltonian(1)
        with pytest.raises(ValueError):
            tfim_hamiltonian(4, steps=0)
