"""Tests for the gate-error models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.noise import (
    EmpiricalCXModel,
    LinkErrorModel,
    LINK_MEAN_INFIDELITY,
    LINK_MEDIAN_INFIDELITY,
    ON_CHIP_MEAN_INFIDELITY,
)


@pytest.fixture(scope="module")
def simple_model() -> EmpiricalCXModel:
    detunings = np.array([0.05, 0.07, 0.02, 0.15, 0.18, 0.32, 0.35])
    errors = np.array([0.010, 0.012, 0.030, 0.008, 0.009, 0.020, 0.025])
    return EmpiricalCXModel.fit(detunings, errors)


class TestEmpiricalCXModel:
    def test_fit_builds_expected_bins(self, simple_model):
        assert set(simple_model.bins) == {0, 1, 3}
        assert simple_model.num_observations == 7

    def test_fit_validates_inputs(self):
        with pytest.raises(ValueError):
            EmpiricalCXModel.fit(np.array([0.1]), np.array([0.1, 0.2]))
        with pytest.raises(ValueError):
            EmpiricalCXModel.fit(np.array([]), np.array([]))
        with pytest.raises(ValueError):
            EmpiricalCXModel.fit(np.array([0.1]), np.array([0.01]), bin_width_ghz=0)

    def test_sample_comes_from_matching_bin(self, simple_model, rng):
        for _ in range(20):
            value = simple_model.sample(0.06, rng)
            assert value in {0.010, 0.012, 0.030}

    def test_sample_falls_back_to_nearest_bin(self, simple_model, rng):
        # Bin 2 (0.2-0.3 GHz) is empty; the nearest populated bin is used.
        value = simple_model.sample(0.25, rng)
        assert value in {0.010, 0.012, 0.030, 0.008, 0.009, 0.020, 0.025}

    def test_sample_many_shape_and_membership(self, simple_model, rng):
        detunings = np.array([[0.05, 0.15], [0.33, 0.02]])
        values = simple_model.sample_many(detunings, rng)
        assert values.shape == detunings.shape
        assert set(np.ravel(values)) <= {0.010, 0.012, 0.030, 0.008, 0.009, 0.020, 0.025}

    def test_mean_and_median(self, simple_model):
        assert simple_model.mean() == pytest.approx(np.mean([0.010, 0.012, 0.030, 0.008, 0.009, 0.020, 0.025]))
        assert simple_model.median() == pytest.approx(0.012)

    def test_mean_for_specific_bin(self, simple_model):
        assert simple_model.mean_for(0.16) == pytest.approx(np.mean([0.008, 0.009]))

    def test_bin_means_keys_are_bin_centres(self, simple_model):
        centres = sorted(simple_model.bin_means())
        assert centres == pytest.approx([0.05, 0.15, 0.35])

    def test_negative_detunings_treated_as_absolute(self, simple_model, rng):
        assert simple_model.bin_index(-0.05) == 0
        value = simple_model.sample(-0.05, rng)
        assert value in {0.010, 0.012, 0.030}


class TestLinkErrorModel:
    def test_matches_published_statistics(self, link_model):
        assert link_model.mean == pytest.approx(LINK_MEAN_INFIDELITY, rel=1e-6)
        assert link_model.median == pytest.approx(LINK_MEDIAN_INFIDELITY, rel=1e-6)

    def test_link_to_chip_ratio(self, link_model):
        assert link_model.mean / ON_CHIP_MEAN_INFIDELITY == pytest.approx(4.17, abs=0.1)

    def test_sampled_statistics(self, link_model):
        rng = np.random.default_rng(0)
        samples = link_model.sample(rng, size=40_000)
        assert np.mean(samples) == pytest.approx(link_model.mean, rel=0.05)
        assert np.median(samples) == pytest.approx(link_model.median, rel=0.05)

    def test_scalar_sampling(self, link_model, rng):
        value = link_model.sample(rng)
        assert isinstance(value, float)
        assert 0 < value <= link_model.max_infidelity

    def test_samples_are_clipped(self):
        wild = LinkErrorModel(mu=0.0, sigma=2.0, max_infidelity=0.5)
        rng = np.random.default_rng(1)
        assert np.max(wild.sample(rng, size=1000)) <= 0.5

    @settings(max_examples=20, deadline=None)
    @given(factor=st.floats(min_value=0.1, max_value=3.0))
    def test_property_scaling_preserves_shape(self, factor):
        """Rescaling to a new mean scales the median by the same factor."""
        base = LinkErrorModel.from_mean_median()
        scaled = base.scaled_to_mean(base.mean * factor)
        assert scaled.mean == pytest.approx(base.mean * factor, rel=1e-9)
        assert scaled.median == pytest.approx(base.median * factor, rel=1e-9)
        assert scaled.sigma == pytest.approx(base.sigma)

    def test_from_mean_median_validation(self):
        with pytest.raises(ValueError):
            LinkErrorModel.from_mean_median(mean=0.05, median=0.07)
        with pytest.raises(ValueError):
            LinkErrorModel.from_mean_median(mean=-1, median=0.1)

    def test_scaled_to_mean_validation(self, link_model):
        with pytest.raises(ValueError):
            link_model.scaled_to_mean(0.0)
