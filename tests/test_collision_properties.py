"""Property-based tests (Hypothesis) for the seven collision criteria.

The scalar path (:func:`find_collisions`, per-device, readable) and the
vectorised path (:func:`collision_free_mask`, per-batch, fast) implement
the same Table I semantics twice.  These properties pin them to each
other over random frequency batches, random anharmonicities and random
thresholds — far beyond the hand-crafted cases of the example-based
suite — plus the structural invariants chunked estimators rely on:
row-permutation equivariance and zero-noise ideal devices being
collision-free.

Profiles: ``dev`` (default, 25 examples/property), ``ci`` (200),
``thorough`` (1000) — see ``tests/conftest.py``.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as npst

from repro.core.collisions import (
    COLLISION_TYPES,
    CollisionThresholds,
    collision_free_mask,
    count_collisions,
    find_collisions,
    has_collision,
)
from repro.core.frequencies import (
    FrequencySpec,
    allocate_heavy_hex_frequencies,
    allocation_from_labels,
)
from repro.topology.heavy_hex import heavy_hex_by_qubit_count

# Built once at import: hypothesis re-runs test bodies hundreds of times,
# and the lattice search is not free.
_LATTICE_10 = heavy_hex_by_qubit_count(10)
_ALLOCATION_10 = allocate_heavy_hex_frequencies(_LATTICE_10)

# The Table I demonstration device: control Q1 coupled to targets Q0, Q2.
_TRIPLE_EDGES = [(1, 0), (1, 2)]


def _triple_allocation(anharmonicity: float, step: float) -> "FrequencyAllocation":
    spec = FrequencySpec(step_ghz=step, anharmonicity_ghz=anharmonicity)
    return allocation_from_labels(np.array([0, 2, 1]), _TRIPLE_EDGES, spec=spec)


def _thresholds_strategy():
    window = st.floats(0.0, 0.08, allow_nan=False, allow_infinity=False)
    return st.builds(
        CollisionThresholds,
        type1_ghz=window,
        type2_ghz=window,
        type3_ghz=window,
        type5_ghz=window,
        type6_ghz=window,
        type7_ghz=window,
    )


def _frequency_batch(num_qubits: int, max_batch: int = 6):
    return npst.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, max_batch), st.just(num_qubits)),
        elements=st.floats(4.4, 5.8, allow_nan=False, allow_infinity=False),
    )


class TestScalarBatchParityProperties:
    @given(frequencies=_frequency_batch(10), thresholds=_thresholds_strategy())
    def test_random_batches_random_thresholds(self, frequencies, thresholds):
        """Exact scalar/batched agreement on arbitrary frequency batches."""
        mask = collision_free_mask(_ALLOCATION_10, frequencies, thresholds)
        for row in range(frequencies.shape[0]):
            scalar = find_collisions(_ALLOCATION_10, frequencies[row], thresholds)
            assert mask[row] == scalar.is_collision_free

    @given(
        frequencies=_frequency_batch(3),
        thresholds=_thresholds_strategy(),
        anharmonicity=st.floats(-0.5, -0.1, allow_nan=False),
        step=st.floats(0.02, 0.09, allow_nan=False),
    )
    def test_parity_with_random_anharmonicity(
        self, frequencies, thresholds, anharmonicity, step
    ):
        """Parity holds for any (anharmonicity, step) spec, on the
        control-with-two-targets device where criteria 5-7 live."""
        allocation = _triple_allocation(anharmonicity, step)
        mask = collision_free_mask(allocation, frequencies, thresholds)
        for row in range(frequencies.shape[0]):
            report = find_collisions(allocation, frequencies[row], thresholds)
            assert mask[row] == report.is_collision_free
            assert has_collision(allocation, frequencies[row], thresholds) != mask[row]
            counts = count_collisions(allocation, frequencies[row], thresholds)
            assert set(counts) == set(COLLISION_TYPES)
            assert (sum(counts.values()) == 0) == mask[row]

    @given(
        frequencies=_frequency_batch(10, max_batch=8),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_row_permutation_equivariance(self, frequencies, seed):
        """Permuting the devices of a batch permutes the mask, nothing else."""
        permutation = np.random.default_rng(seed).permutation(frequencies.shape[0])
        mask = collision_free_mask(_ALLOCATION_10, frequencies)
        permuted = collision_free_mask(_ALLOCATION_10, frequencies[permutation])
        assert np.array_equal(permuted, mask[permutation])

    @given(frequencies=_frequency_batch(10))
    def test_batch_equals_row_by_row(self, frequencies):
        """One batched call == the same rows evaluated one at a time."""
        batched = collision_free_mask(_ALLOCATION_10, frequencies)
        rowwise = np.array(
            [
                collision_free_mask(_ALLOCATION_10, frequencies[i])[0]
                for i in range(frequencies.shape[0])
            ]
        )
        assert np.array_equal(batched, rowwise)


class TestIdealDeviceProperties:
    @given(
        size=st.sampled_from((5, 10, 16, 27)),
        step=st.floats(0.030, 0.075, allow_nan=False),
        batch=st.integers(1, 4),
    )
    @settings(max_examples=20)
    def test_zero_noise_ideal_allocation_is_collision_free(self, size, step, batch):
        """A fabricated device that hits its design targets exactly has no
        collision, for any lattice size and any paper-regime detuning step
        (the regime where 3-step and 4-step sums stay clear of the type-7
        anharmonicity window)."""
        lattice = heavy_hex_by_qubit_count(size)
        allocation = allocate_heavy_hex_frequencies(
            lattice, spec=FrequencySpec(step_ghz=step)
        )
        frequencies = np.tile(allocation.ideal_frequencies, (batch, 1))
        assert collision_free_mask(allocation, frequencies).all()
        report = find_collisions(allocation, allocation.ideal_frequencies)
        assert report.is_collision_free

    @given(thresholds=_thresholds_strategy())
    def test_zero_thresholds_only_type4_remains(self, thresholds):
        """With every window at zero, only the region-based type-4
        criterion can fire — and it never does on an ideal device."""
        zero = CollisionThresholds(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        frequencies = _ALLOCATION_10.ideal_frequencies
        assert collision_free_mask(_ALLOCATION_10, frequencies, zero)[0]
        # and widening windows can only ever flag more devices, not fewer
        rng = np.random.default_rng(1)
        batch = frequencies + rng.normal(0.0, 0.05, size=(5, 10))
        tight = collision_free_mask(_ALLOCATION_10, batch, zero)
        loose = collision_free_mask(_ALLOCATION_10, batch, thresholds)
        assert np.all(loose <= tight)


class TestThresholdMonotonicity:
    @given(
        scale_a=st.floats(0.0, 2.0, allow_nan=False),
        scale_b=st.floats(0.0, 2.0, allow_nan=False),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_wider_windows_flag_supersets(self, scale_a, scale_b, seed):
        """If every window of A is <= the matching window of B, devices
        collision-free under B are collision-free under A."""
        lo, hi = sorted((scale_a, scale_b))
        base = CollisionThresholds()
        tight = CollisionThresholds(*(getattr(base, f) * lo for f in (
            "type1_ghz", "type2_ghz", "type3_ghz", "type5_ghz", "type6_ghz", "type7_ghz"
        )))
        loose = CollisionThresholds(*(getattr(base, f) * hi for f in (
            "type1_ghz", "type2_ghz", "type3_ghz", "type5_ghz", "type6_ghz", "type7_ghz"
        )))
        rng = np.random.default_rng(seed)
        batch = _ALLOCATION_10.ideal_frequencies + rng.normal(0.0, 0.03, size=(6, 10))
        free_loose = collision_free_mask(_ALLOCATION_10, batch, loose)
        free_tight = collision_free_mask(_ALLOCATION_10, batch, tight)
        assert np.all(free_loose <= free_tight)
