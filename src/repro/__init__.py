"""repro — reproduction of "Scaling Superconducting Quantum Computers with
Chiplet Architectures" (Smith, Ravi, Baker, Chong — MICRO 2022).

The package models collision-limited yield of fixed-frequency transmon
devices, proposes heavy-hex chiplets assembled into multi-chip modules
(MCMs), and evaluates both architectures in terms of yield, average
two-qubit gate infidelity, and application-level fidelity.

Sub-packages
------------
``repro.topology``
    Pluggable lattices (heavy-hex, square grid, ring/chain), coupling
    maps and graph metrics behind the ``Lattice`` protocol.
``repro.device``
    Physical-device model, synthetic calibration data, gate-error models.
``repro.core``
    The paper's contribution: frequency-plan strategies, collision
    criteria, Monte-Carlo yield, chiplets, MCM topologies, assembly and
    fidelity comparison models — all behind the topology-pluggable
    architecture registry (``repro.core.architecture``).
``repro.circuits``
    Quantum-circuit IR and the seven-benchmark suite.
``repro.compiler``
    Layout, routing and decomposition onto restricted connectivity.
``repro.simulation``
    Statevector validation and the ESP fidelity-product figure of merit.
``repro.analysis``
    Experiment drivers regenerating every table and figure of the paper.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
