"""Trace exporters and the ``python -m repro trace`` summarizer.

Two on-disk formats, chosen by file extension in the CLI:

``*.jsonl``
    One span record per line, exactly as collected — the debuggable,
    ``grep``-able form.
``*.json`` (anything else)
    Chrome trace-event JSON (``{"traceEvents": [...]}``), loadable in
    Perfetto or ``chrome://tracing``.  Spans become complete events
    (``ph: "X"``) with microsecond timestamps; span ids and parent ids
    ride in ``args`` so the tree survives the format round trip.

The summarizer (:func:`summarize` / :func:`format_summary`) answers
"where did this run spend its time" from a flat span list: top spans by
duration, a per-name rollup (count / total / mean), and the critical
path — the chain of child spans that dominates the slowest root.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

__all__ = [
    "write_jsonl",
    "write_chrome_trace",
    "spans_to_chrome_events",
    "chrome_events_to_spans",
    "load_trace",
    "write_trace",
    "summarize",
    "format_summary",
]


def write_jsonl(spans: Iterable[dict], path: str) -> None:
    """One span per line, keys sorted for deterministic diffs."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in spans:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def spans_to_chrome_events(spans: Iterable[dict]) -> list[dict]:
    """Span records as Chrome trace-event complete events (``ph: "X"``)."""
    events = []
    for record in spans:
        args: dict[str, Any] = {"id": record["id"]}
        if record.get("parent") is not None:
            args["parent"] = record["parent"]
        if record.get("trace_id") is not None:
            args["trace_id"] = record["trace_id"]
        args.update(record.get("attrs") or {})
        events.append(
            {
                "name": record["name"],
                "ph": "X",
                "ts": record["ts"] * 1e6,  # trace-event timestamps are µs
                "dur": record.get("dur", 0.0) * 1e6,
                "pid": record.get("pid", 0),
                "tid": record.get("tid", 0),
                "args": args,
            }
        )
    return events


def chrome_events_to_spans(events: Iterable[dict]) -> list[dict]:
    """Inverse of :func:`spans_to_chrome_events` (for loading/summaries)."""
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        args = dict(event.get("args") or {})
        record: dict[str, Any] = {
            "name": event["name"],
            "id": args.pop("id", None),
            "parent": args.pop("parent", None),
            "trace_id": args.pop("trace_id", None),
            "ts": event["ts"] / 1e6,
            "dur": event.get("dur", 0.0) / 1e6,
            "pid": event.get("pid", 0),
            "tid": event.get("tid", 0),
        }
        if args:
            record["attrs"] = args
        spans.append(record)
    return spans


def write_chrome_trace(spans: Iterable[dict], path: str) -> None:
    """Perfetto/``chrome://tracing``-loadable JSON object format."""
    payload = {
        "traceEvents": spans_to_chrome_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")


def write_trace(spans: Iterable[dict], path: str) -> None:
    """Write ``path``, picking the format from its extension."""
    if path.endswith(".jsonl"):
        write_jsonl(spans, path)
    else:
        write_chrome_trace(spans, path)


def load_trace(path: str) -> list[dict]:
    """Load span records from either on-disk format."""
    if path.endswith(".jsonl"):
        spans = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(json.loads(line))
        return spans
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "traceEvents" in payload:
        return chrome_events_to_spans(payload["traceEvents"])
    raise ValueError(f"{path}: not a Chrome trace-event file (no traceEvents)")


def summarize(spans: list[dict], top: int = 10) -> dict[str, Any]:
    """Aggregate a flat span list into the ``repro trace`` report.

    Returns a JSON-able dict with:

    * ``span_count`` / ``trace_ids`` / ``processes``
    * ``top_spans`` — the ``top`` longest individual spans
    * ``by_name`` — per-name rollup sorted by total duration
    * ``critical_path`` — for the longest root span, the chain formed by
      repeatedly descending into the longest child
    """
    by_id = {record["id"]: record for record in spans if record.get("id")}
    children: dict[str | None, list[dict]] = {}
    for record in spans:
        children.setdefault(record.get("parent"), []).append(record)

    rollup: dict[str, dict[str, float]] = {}
    for record in spans:
        entry = rollup.setdefault(
            record["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
        )
        dur = float(record.get("dur", 0.0))
        entry["count"] += 1
        entry["total_s"] += dur
        entry["max_s"] = max(entry["max_s"], dur)
    by_name = [
        {
            "name": name,
            "count": entry["count"],
            "total_s": entry["total_s"],
            "mean_s": entry["total_s"] / entry["count"] if entry["count"] else 0.0,
            "max_s": entry["max_s"],
        }
        for name, entry in rollup.items()
    ]
    by_name.sort(key=lambda entry: (-entry["total_s"], entry["name"]))

    ordered = sorted(spans, key=lambda r: -float(r.get("dur", 0.0)))
    top_spans = [
        {
            "name": record["name"],
            "dur_s": float(record.get("dur", 0.0)),
            "pid": record.get("pid"),
            "id": record.get("id"),
        }
        for record in ordered[:top]
    ]

    # Roots: no parent, or a parent that never made it into this trace.
    roots = [r for r in spans if r.get("parent") not in by_id]
    critical_path: list[dict[str, Any]] = []
    if roots:
        node = max(roots, key=lambda r: float(r.get("dur", 0.0)))
        while node is not None:
            critical_path.append(
                {
                    "name": node["name"],
                    "dur_s": float(node.get("dur", 0.0)),
                    "pid": node.get("pid"),
                }
            )
            kids = children.get(node.get("id"), [])
            node = max(kids, key=lambda r: float(r.get("dur", 0.0))) if kids else None

    return {
        "span_count": len(spans),
        "trace_ids": sorted({r.get("trace_id") for r in spans if r.get("trace_id")}),
        "processes": sorted({r.get("pid") for r in spans if r.get("pid") is not None}),
        "top_spans": top_spans,
        "by_name": by_name,
        "critical_path": critical_path,
    }


def format_summary(summary: dict[str, Any], top: int = 10) -> str:
    """Human-readable rendering of :func:`summarize` for the CLI."""
    lines = [
        f"spans: {summary['span_count']}"
        f"  processes: {len(summary['processes'])}"
        f"  traces: {len(summary['trace_ids'])}",
        "",
        "top spans:",
    ]
    for entry in summary["top_spans"][:top]:
        lines.append(
            f"  {entry['dur_s'] * 1e3:10.3f} ms  {entry['name']}"
            f"  (pid {entry['pid']})"
        )
    lines.append("")
    lines.append("by name (total / count / mean):")
    for entry in summary["by_name"][:top]:
        lines.append(
            f"  {entry['total_s'] * 1e3:10.3f} ms  {entry['count']:5d}x"
            f"  {entry['mean_s'] * 1e3:9.3f} ms  {entry['name']}"
        )
    if summary["critical_path"]:
        lines.append("")
        lines.append("critical path:")
        for depth, entry in enumerate(summary["critical_path"]):
            lines.append(
                f"  {'  ' * depth}{entry['name']}"
                f"  {entry['dur_s'] * 1e3:.3f} ms (pid {entry['pid']})"
            )
    return "\n".join(lines)
