"""Span-based tracing with explicit contexts that survive process hops.

A *span* is one named, timed region of work.  Every span record carries
an explicit context — ``trace_id`` (one per traced run), ``id`` (unique
per span) and ``parent`` (the enclosing span's id, ``None`` for roots) —
so a tree can be rebuilt from a flat list no matter which process or
thread emitted each record.  That explicitness is the whole design: the
execution backends ship worker-side span lists home inside their
:class:`~repro.engine.backends.ExecutionReport` exactly like the
per-phase second buckets, and the engine re-parents each task's root
spans under the span that was active on the submitting thread.

Collection mirrors :mod:`repro.engine.phases`: state is thread-local,
:func:`collect_spans` installs a collector frame, and nested collectors
shadow outer ones (a backend trampoline collects per task; the fused
super-task trampoline collects per subtask).  Without an active
collector every entry point is a no-op costing one thread-local
attribute read — the zero-overhead-when-off invariant the goldens and
``benchmarks/bench_obs.py`` pin.

Span ids come from ``os.urandom`` — tracing records *observations*
(timings, pids), which are never part of any experiment's numbers, so
the ids do not need to be (and are not) seeded.

Timing: ``ts`` is wall-clock (``time.time``), comparable across
processes; ``dur`` is measured with ``time.perf_counter`` inside the
emitting process, so durations do not inherit wall-clock adjustments.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Iterable

__all__ = [
    "new_id",
    "span",
    "start_span",
    "end_span",
    "collect_spans",
    "is_tracing",
    "current_span_id",
    "active_tracer",
    "Tracer",
]

_STATE = threading.local()


def new_id(nbytes: int = 8) -> str:
    """A fresh random hex identifier (span ids: 8 bytes, trace ids: 16)."""
    return os.urandom(nbytes).hex()


def is_tracing() -> bool:
    """True when a span collector is active on this thread."""
    return bool(getattr(_STATE, "frames", None))


def current_span_id() -> str | None:
    """The id of the innermost open span on this thread, if any."""
    frames = getattr(_STATE, "frames", None)
    if not frames:
        return None
    stack = frames[-1][1]
    return stack[-1]["id"] if stack else None


def active_tracer() -> "Tracer | None":
    """The :class:`Tracer` activated on this thread, if any."""
    return getattr(_STATE, "tracer", None)


@contextmanager
def collect_spans():
    """Collect spans finished inside this block into the yielded list.

    Re-entrant: an inner ``collect_spans`` shadows the outer one for its
    duration, so a nested collector (a fused subtask) owns its spans and
    the surrounding frame sees nothing — the shipping layer books them
    individually, exactly like the phase collectors.
    """
    frames = getattr(_STATE, "frames", None)
    if frames is None:
        frames = _STATE.frames = []
    sink: list[dict] = []
    stack: list[dict] = []
    frames.append((sink, stack))
    try:
        yield sink
    finally:
        frames.pop()


def start_span(name: str, **attrs: Any) -> dict | None:
    """Open a span on this thread's collector; ``None`` when tracing is off.

    The returned record must be closed with :func:`end_span` (the
    :func:`span` context manager does both).  Parentage is implicit:
    the span opens under the innermost currently-open span of the same
    collector frame.
    """
    frames = getattr(_STATE, "frames", None)
    if not frames:
        return None
    sink, stack = frames[-1]
    record: dict[str, Any] = {
        "name": name,
        "id": new_id(),
        "parent": stack[-1]["id"] if stack else None,
        "ts": time.time(),
        "pid": os.getpid(),
        "tid": threading.get_ident(),
    }
    if attrs:
        record["attrs"] = attrs
    record["_perf"] = time.perf_counter()
    record["_frame"] = (sink, stack)
    stack.append(record)
    return record


def end_span(record: dict | None) -> None:
    """Close a span opened with :func:`start_span` (no-op for ``None``).

    The record lands in the collector frame that opened it, even if a
    nested collector has been installed since — each record remembers
    its frame, so shipping layers cannot steal each other's spans.
    """
    if record is None:
        return
    sink, stack = record.pop("_frame")
    record["dur"] = time.perf_counter() - record.pop("_perf")
    if stack and stack[-1] is record:
        stack.pop()
    else:  # out-of-order close (a task leaked a span): stay consistent
        try:
            stack.remove(record)
        except ValueError:
            pass
    sink.append(record)


@contextmanager
def span(name: str, **attrs: Any):
    """Trace the enclosed block as one span (no-op when tracing is off)."""
    record = start_span(name, **attrs)
    try:
        yield record
    finally:
        end_span(record)


class Tracer:
    """Owner of one trace: a ``trace_id`` plus every collected span.

    Usage (the CLI's ``--trace`` flow)::

        tracer = Tracer()
        with tracer.activate():
            with span("run:fig4"):
                ...   # engine batches adopt worker spans into the tracer

    ``activate()`` installs a collector on the calling thread and marks
    this tracer as the thread's *active tracer*, which is how the
    execution engine discovers per-batch that spans should be collected
    and shipped home from workers.  Spans finished on the thread drain
    into the tracer when the block exits; worker-side spans arrive
    earlier through :meth:`adopt`.  Thread-safe: ``adopt``/``extend``
    may be called from any thread while activated.
    """

    def __init__(self, trace_id: str | None = None):
        self.trace_id = trace_id if trace_id is not None else new_id(16)
        self._lock = threading.Lock()
        self._spans: list[dict] = []

    @contextmanager
    def activate(self):
        """Collect spans emitted on this thread into this tracer."""
        previous = getattr(_STATE, "tracer", None)
        _STATE.tracer = self
        try:
            with collect_spans() as sink:
                yield self
        finally:
            _STATE.tracer = previous
            self.extend(sink)

    def extend(self, spans: Iterable[dict]) -> None:
        """Record already-parented spans (tags them with the trace id)."""
        spans = list(spans)
        for record in spans:
            record["trace_id"] = self.trace_id
        with self._lock:
            self._spans.extend(spans)

    def adopt(self, spans: Iterable[dict], parent_id: str | None = None) -> None:
        """Record spans shipped home from a worker, re-parenting roots.

        Worker-side collectors know nothing about the submitting task,
        so their root spans carry ``parent=None``; adoption grafts those
        roots under ``parent_id`` (the span active on the submitting
        thread) and stamps every record with this trace's id.
        """
        spans = list(spans)
        for record in spans:
            if record.get("parent") is None and parent_id is not None:
                record["parent"] = parent_id
            record["trace_id"] = self.trace_id
        with self._lock:
            self._spans.extend(spans)

    @property
    def spans(self) -> list[dict]:
        """A copy of every span recorded so far."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)
