"""The structured logging spine for ``repro.*`` loggers.

Every module logs through ``get_logger(__name__)`` — a stdlib logger
namespaced under ``repro`` — and stays silent by default (WARNING to
stderr, no handler surprises for library users).  ``configure_logging``
is the single switch the CLI flags (``--log-level`` / ``--log-json``)
and the ``REPRO_LOG_LEVEL`` environment variable flip; it installs one
stream handler on the ``repro`` root logger with either a concise
human-readable line format or a JSON-per-line formatter for log
shippers.

Idempotent: repeated calls reconfigure the same handler instead of
stacking duplicates, so tests and the service can call it freely.
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time

__all__ = ["configure_logging", "get_logger", "JsonFormatter"]

_ROOT_NAME = "repro"
_HANDLER_FLAG = "_repro_obs_handler"


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
            "pid": record.process,
        }
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class _LineFormatter(logging.Formatter):
    """``HH:MM:SS.mmm LEVEL logger: message`` with local wall-clock."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S", time.localtime(record.created))
        millis = int((record.created % 1.0) * 1000)
        base = (
            f"{stamp}.{millis:03d} {record.levelname:7s} "
            f"{record.name}: {record.getMessage()}"
        )
        if record.exc_info:
            base = f"{base}\n{self.formatException(record.exc_info)}"
        return base


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (accepts any module name)."""
    if name == _ROOT_NAME or name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(
    level: str | int | None = None,
    json_format: bool = False,
    stream=None,
) -> logging.Logger:
    """Configure the ``repro`` root logger and return it.

    ``level`` defaults to the ``REPRO_LOG_LEVEL`` environment variable,
    falling back to WARNING.  Invalid level names raise ``ValueError``
    (with the valid names listed) rather than silently logging nothing.
    """
    if level is None:
        level = os.environ.get("REPRO_LOG_LEVEL") or "WARNING"
    if isinstance(level, str):
        resolved = logging.getLevelName(level.strip().upper())
        if not isinstance(resolved, int):
            valid = "DEBUG, INFO, WARNING, ERROR, CRITICAL"
            raise ValueError(f"unknown log level {level!r} (expected one of {valid})")
        level = resolved

    root = logging.getLogger(_ROOT_NAME)
    root.setLevel(level)
    root.propagate = False

    handler = None
    for existing in root.handlers:
        if getattr(existing, _HANDLER_FLAG, False):
            handler = existing
            break
    target = stream if stream is not None else sys.stderr
    if handler is None:
        handler = logging.StreamHandler(target)
        setattr(handler, _HANDLER_FLAG, True)
        root.addHandler(handler)
    elif handler.stream is not target:
        # Rebind to the *current* stderr (or the explicit stream): the
        # previously bound stream may be gone — e.g. a test harness's
        # captured stderr, closed when its test ended — and setStream's
        # flush of it would raise.
        try:
            handler.setStream(target)
        except ValueError:
            handler.stream = target
    handler.setLevel(level)
    handler.setFormatter(JsonFormatter() if json_format else _LineFormatter())
    return root
