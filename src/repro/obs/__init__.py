"""Unified observability layer: tracing, metrics, exporters, logging.

This package is the operational substrate the service-oriented layers
(engine, service, CLI) report through:

``repro.obs.tracing``
    Span-based tracing with explicit span contexts (trace id, span id,
    parent id).  Spans ride through every execution-backend trampoline
    the same way the per-phase wall-clock collectors do, so spans
    emitted inside ``threads``/``processes``/``shared-memory`` workers
    are shipped home with their task result and re-parented under the
    submitting task's span.
``repro.obs.metrics``
    A process-wide metrics registry — ``Counter``/``Gauge``/``Histogram``
    primitives with labelled series, mergeable cross-process snapshots,
    and Prometheus text-format rendering for the service's ``/metrics``
    endpoint.
``repro.obs.export``
    Trace exporters (JSONL and Chrome trace-event JSON, loadable in
    Perfetto / ``chrome://tracing``) plus the ``python -m repro trace``
    summarizer (top spans, per-name rollup, critical path).
``repro.obs.logs``
    The structured ``repro.*`` logging spine: ``configure_logging``
    (``--log-level`` / ``REPRO_LOG_LEVEL``, optional JSON formatter) and
    ``get_logger``.

Layering: stdlib-only (plus numpy nowhere), importable from every other
``repro`` package without cycles.  The hard invariant threaded through
all of it: **tracing off means zero overhead on hot paths** — without an
active collector, ``span()`` costs one thread-local attribute read, and
all 17 golden experiments are bit-identical with tracing on or off.
"""

from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    parse_prometheus,
)
from repro.obs.tracing import Tracer, collect_spans, current_span_id, is_tracing, span

__all__ = [
    "Tracer",
    "span",
    "collect_spans",
    "current_span_id",
    "is_tracing",
    "MetricsRegistry",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "parse_prometheus",
    "configure_logging",
    "get_logger",
]
