"""Process-wide metrics registry with mergeable cross-process snapshots.

Three primitive kinds, mirroring the Prometheus data model:

``Counter``
    Monotonically increasing float (task counts, cache hits, seconds).
``Gauge``
    A value that goes both ways (queue depth, live jobs).
``Histogram``
    Cumulative-bucket observation distribution (batch/job latencies).

Metrics are registered by name on a :class:`MetricsRegistry` and may
carry *labels*: ``counter.inc(phase="mask")`` books one series per label
combination.  The module-level :data:`REGISTRY` is the default sink the
engine, caches and service all write to.

Two snapshot flavours:

* :meth:`MetricsRegistry.snapshot` — a sorted, JSON-able nested dict for
  ``--dump-json`` and the service ``/stats`` endpoint (deterministic and
  diffable, see ``reporting.jsonable``);
* :meth:`MetricsRegistry.checkpoint` + :meth:`MetricsRegistry.delta_since`
  + :meth:`MetricsRegistry.merge_delta` — the cross-process channel.  A
  worker-process trampoline checkpoints before a task, computes the
  delta after, and ships it home with the result; the engine merges
  deltas whose pid differs from its own (same-process deltas are already
  in the registry — merging them would double count).  Only counters and
  histograms travel: they are additive; gauges are process-local state.

Rendering: :meth:`MetricsRegistry.render_prometheus` emits the
Prometheus text exposition format (``# HELP``/``# TYPE`` plus one line
per series) consumed by the service's ``GET /metrics``; the companion
:func:`parse_prometheus` is a minimal reader for tests and smoke checks.

Thread safety: one registry lock guards every mutation; increments from
engine threads, service workers and scrape handlers interleave safely.
"""

from __future__ import annotations

import math
import os
import threading
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "DEFAULT_BUCKETS",
    "parse_prometheus",
]

#: Default histogram buckets (seconds): spans engine batches (ms) to
#: service jobs (minutes).
DEFAULT_BUCKETS = (
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class _HistogramState:
    """Cumulative-bucket state of one histogram series."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int):
        self.bucket_counts = [0] * num_buckets  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float, buckets: tuple[float, ...]) -> None:
        for index, bound in enumerate(buckets):
            if value <= bound:
                self.bucket_counts[index] += 1
                break
        self.sum += value
        self.count += 1

    def copy(self) -> "_HistogramState":
        clone = _HistogramState(len(self.bucket_counts))
        clone.bucket_counts = list(self.bucket_counts)
        clone.sum = self.sum
        clone.count = self.count
        return clone


class _Metric:
    """Internal storage for one named metric and all its label series."""

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "series")

    def __init__(self, name, kind, help_text, label_names, buckets=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        # label-values tuple -> float (counter/gauge) or _HistogramState
        self.series: dict[tuple[str, ...], Any] = {}


def _label_values(metric: _Metric, labels: Mapping[str, Any]) -> tuple[str, ...]:
    if set(labels) != set(metric.label_names):
        raise ValueError(
            f"metric {metric.name!r} takes labels {metric.label_names}, "
            f"got {tuple(sorted(labels))}"
        )
    return tuple(str(labels[name]) for name in metric.label_names)


class _Bound:
    """A metric handle bound to one registry (the public API surface)."""

    def __init__(self, registry: "MetricsRegistry", name: str):
        self._registry = registry
        self.name = name


class Counter(_Bound):
    """Monotonically increasing metric (``inc`` only)."""

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._registry._add(self.name, "counter", amount, labels)

    def value(self, **labels: Any) -> float:
        return self._registry._value(self.name, labels)


class Gauge(_Bound):
    """Set-to-current-value metric (``set``/``inc``/``dec``)."""

    def set(self, value: float, **labels: Any) -> None:
        self._registry._set(self.name, float(value), labels)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        self._registry._add(self.name, "gauge", amount, labels)

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self._registry._add(self.name, "gauge", -amount, labels)

    def value(self, **labels: Any) -> float:
        return self._registry._value(self.name, labels)


class Histogram(_Bound):
    """Bucketed observation distribution (``observe``)."""

    def observe(self, value: float, **labels: Any) -> None:
        self._registry._observe(self.name, float(value), labels)

    def state(self, **labels: Any) -> dict[str, Any]:
        return self._registry._hist_state(self.name, labels)


class MetricsRegistry:
    """Name-keyed store of labelled metric series (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # ------------------------------------------------------------------ #
    # Registration (get-or-create, idempotent)
    # ------------------------------------------------------------------ #
    def _register(self, name, kind, help_text, label_names, buckets=None) -> _Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if metric.kind != kind:
                    raise ValueError(
                        f"metric {name!r} is a {metric.kind}, not a {kind}"
                    )
                return metric
            metric = _Metric(name, kind, help_text, label_names, buckets)
            self._metrics[name] = metric
            if not metric.label_names and kind in ("counter", "gauge"):
                metric.series[()] = 0.0  # unlabelled series expose 0 at once
            return metric

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Counter:
        self._register(name, "counter", help, labels)
        return Counter(self, name)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
        self._register(name, "gauge", help, labels)
        return Gauge(self, name)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        self._register(name, "histogram", help, labels, tuple(buckets))
        return Histogram(self, name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    # ------------------------------------------------------------------ #
    # Mutation (wrapper-facing, all under the lock)
    # ------------------------------------------------------------------ #
    def _metric(self, name: str) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            raise KeyError(f"metric {name!r} is not registered")
        return metric

    def _add(self, name, kind, amount, labels) -> None:
        with self._lock:
            metric = self._metric(name)
            key = _label_values(metric, labels)
            metric.series[key] = metric.series.get(key, 0.0) + amount

    def _set(self, name, value, labels) -> None:
        with self._lock:
            metric = self._metric(name)
            metric.series[_label_values(metric, labels)] = value

    def _observe(self, name, value, labels) -> None:
        with self._lock:
            metric = self._metric(name)
            key = _label_values(metric, labels)
            state = metric.series.get(key)
            if state is None:
                state = metric.series[key] = _HistogramState(len(metric.buckets))
            state.observe(value, metric.buckets)

    def _value(self, name, labels) -> float:
        with self._lock:
            metric = self._metric(name)
            return float(metric.series.get(_label_values(metric, labels), 0.0))

    def _hist_state(self, name, labels) -> dict[str, Any]:
        with self._lock:
            metric = self._metric(name)
            state = metric.series.get(_label_values(metric, labels))
            if state is None:
                return {"count": 0, "sum": 0.0, "bucket_counts": [0] * len(metric.buckets)}
            return {
                "count": state.count,
                "sum": state.sum,
                "bucket_counts": list(state.bucket_counts),
            }

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict[str, Any]:
        """Sorted, JSON-able view of every series (deterministic output)."""
        out: dict[str, Any] = {}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                series = []
                for key in sorted(metric.series):
                    value = metric.series[key]
                    entry: dict[str, Any] = {
                        "labels": dict(zip(metric.label_names, key)),
                    }
                    if isinstance(value, _HistogramState):
                        entry["count"] = value.count
                        entry["sum"] = value.sum
                        entry["bucket_counts"] = list(value.bucket_counts)
                    else:
                        entry["value"] = value
                    series.append(entry)
                out[name] = {
                    "type": metric.kind,
                    "help": metric.help,
                    "series": series,
                }
        return out

    def checkpoint(self) -> dict[tuple, Any]:
        """A cheap copy of current counter/histogram values, for deltas."""
        marks: dict[tuple, Any] = {}
        with self._lock:
            for name, metric in self._metrics.items():
                if metric.kind == "gauge":
                    continue
                for key, value in metric.series.items():
                    marks[(name, key)] = (
                        value.copy() if isinstance(value, _HistogramState) else value
                    )
        return marks

    def delta_since(self, marks: dict[tuple, Any]) -> dict[str, Any] | None:
        """Additive change since :meth:`checkpoint`, or ``None`` if nothing
        moved.  The delta is picklable and self-describing (it carries
        each metric's kind/help/labels/buckets) so the receiving registry
        can create missing metrics on merge."""
        entries: list[dict[str, Any]] = []
        with self._lock:
            for name, metric in self._metrics.items():
                if metric.kind == "gauge":
                    continue
                for key, value in metric.series.items():
                    base = marks.get((name, key))
                    if isinstance(value, _HistogramState):
                        if base is None:
                            base = _HistogramState(len(value.bucket_counts))
                        if value.count == base.count:
                            continue
                        payload: Any = {
                            "count": value.count - base.count,
                            "sum": value.sum - base.sum,
                            "bucket_counts": [
                                now - before
                                for now, before in zip(
                                    value.bucket_counts, base.bucket_counts
                                )
                            ],
                        }
                    else:
                        change = value - (base or 0.0)
                        if change == 0.0:
                            continue
                        payload = change
                    entries.append(
                        {
                            "name": name,
                            "kind": metric.kind,
                            "help": metric.help,
                            "label_names": metric.label_names,
                            "labels": key,
                            "buckets": metric.buckets,
                            "payload": payload,
                        }
                    )
        if not entries:
            return None
        return {"pid": os.getpid(), "entries": entries}


    def merge_delta(self, delta: dict[str, Any] | None) -> None:
        """Fold a :meth:`delta_since` dict from another process in."""
        if not delta:
            return
        for entry in delta["entries"]:
            self._register(
                entry["name"],
                entry["kind"],
                entry["help"],
                entry["label_names"],
                entry["buckets"],
            )
            with self._lock:
                metric = self._metric(entry["name"])
                key = tuple(entry["labels"])
                payload = entry["payload"]
                if entry["kind"] == "histogram":
                    state = metric.series.get(key)
                    if state is None:
                        state = metric.series[key] = _HistogramState(
                            len(metric.buckets)
                        )
                    state.count += payload["count"]
                    state.sum += payload["sum"]
                    for index, change in enumerate(payload["bucket_counts"]):
                        state.bucket_counts[index] += change
                else:
                    metric.series[key] = metric.series.get(key, 0.0) + payload

    # ------------------------------------------------------------------ #
    # Prometheus exposition
    # ------------------------------------------------------------------ #
    def render_prometheus(self) -> str:
        """The text exposition format (version 0.0.4) of every series."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(f"# HELP {name} {_escape_help(metric.help)}")
                lines.append(f"# TYPE {name} {metric.kind}")
                for key in sorted(metric.series):
                    value = metric.series[key]
                    labels = dict(zip(metric.label_names, key))
                    if isinstance(value, _HistogramState):
                        cumulative = 0
                        for bound, count in zip(metric.buckets, value.bucket_counts):
                            cumulative += count
                            lines.append(
                                f"{name}_bucket"
                                f"{_render_labels({**labels, 'le': _format(bound)})}"
                                f" {cumulative}"
                            )
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels({**labels, 'le': '+Inf'})}"
                            f" {value.count}"
                        )
                        lines.append(
                            f"{name}_sum{_render_labels(labels)} {_format(value.sum)}"
                        )
                        lines.append(
                            f"{name}_count{_render_labels(labels)} {value.count}"
                        )
                    else:
                        lines.append(
                            f"{name}{_render_labels(labels)} {_format(value)}"
                        )
        return "\n".join(lines) + "\n"


def _format(value: float) -> str:
    value = float(value)
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in labels.items()
    )
    return "{" + inner + "}"


def parse_prometheus(text: str) -> dict[str, dict[tuple, float]]:
    """Minimal exposition-format reader for tests and smoke checks.

    Returns ``{series_name: {labels_items_tuple: value}}`` where
    ``labels_items_tuple`` is a sorted tuple of ``(label, value)`` pairs
    (empty for unlabelled series).  Raises ``ValueError`` on any line
    that is neither a comment nor a well-formed sample — which is the
    parseability assertion CI's smoke scrape relies on.
    """
    series: dict[str, dict[tuple, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_part, _, value_part = rest.rpartition("}")
            labels = []
            for chunk in _split_labels(label_part):
                key, _, raw = chunk.partition("=")
                if not raw.startswith('"') or not raw.endswith('"'):
                    raise ValueError(f"malformed label in line {line!r}")
                labels.append((key.strip(), raw[1:-1]))
            key = tuple(sorted(labels))
            value_text = value_part.strip()
        else:
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"malformed sample line {line!r}")
            name, value_text = parts[0], parts[1]
            key = ()
        name = name.strip()
        if not name:
            raise ValueError(f"malformed sample line {line!r}")
        value_text = value_text.split()[0]
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)  # ValueError propagates: unparseable
        series.setdefault(name, {})[key] = value
    return series


def _split_labels(label_part: str) -> list[str]:
    """Split ``a="x",b="y,z"`` on commas outside quotes."""
    chunks: list[str] = []
    current = []
    in_quotes = False
    escaped = False
    for char in label_part:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            chunks.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        chunks.append("".join(current))
    return [chunk for chunk in (c.strip() for c in chunks) if chunk]


#: The process-wide default registry the engine, caches and service use.
REGISTRY = MetricsRegistry()
