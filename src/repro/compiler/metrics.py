"""Compiled-circuit metrics (the quantities reported in the paper's Table II).

For every compiled benchmark the paper reports the single-qubit gate count,
the two-qubit gate count and the length of the two-qubit critical path.
:func:`gate_metrics` extracts all three from a physical circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.circuit import QuantumCircuit

__all__ = ["GateMetrics", "gate_metrics"]


@dataclass(frozen=True)
class GateMetrics:
    """Gate-count summary of a compiled circuit.

    Attributes
    ----------
    num_one_qubit:
        Single-qubit gate count.
    num_two_qubit:
        Two-qubit gate count (after SWAP decomposition).
    two_qubit_critical_path:
        Longest chain of dependent two-qubit gates.
    depth:
        Full circuit depth.
    """

    num_one_qubit: int
    num_two_qubit: int
    two_qubit_critical_path: int
    depth: int

    def as_row(self) -> tuple[int, int, int]:
        """The ``1q / 2q / 2q critical`` triple used in Table II."""
        return (self.num_one_qubit, self.num_two_qubit, self.two_qubit_critical_path)


def gate_metrics(circuit: QuantumCircuit) -> GateMetrics:
    """Compute Table II-style metrics for a compiled circuit."""
    return GateMetrics(
        num_one_qubit=circuit.num_one_qubit_gates,
        num_two_qubit=circuit.num_two_qubit_gates,
        two_qubit_critical_path=circuit.depth(two_qubit_only=True),
        depth=circuit.depth(),
    )
