"""Compiler substrate: pass pipeline, decomposition, layout, routing."""

from repro.compiler.decompose import decompose_swaps, decompose_to_cx_basis
from repro.compiler.layout import Layout, choose_layout, find_long_path, is_chain_circuit
from repro.compiler.metrics import GateMetrics, gate_metrics
from repro.compiler.pipeline import (
    CompileContext,
    CompilerStrategy,
    LAYOUT_STRATEGIES,
    Pass,
    PassPipeline,
    ROUTING_STRATEGIES,
    default_pipeline,
)
from repro.compiler.routing import RoutedCircuit, route_circuit, route_circuit_noise_aware
from repro.compiler.transpile import TranspiledCircuit, transpile

__all__ = [
    "decompose_swaps",
    "decompose_to_cx_basis",
    "Layout",
    "choose_layout",
    "find_long_path",
    "is_chain_circuit",
    "GateMetrics",
    "gate_metrics",
    "CompileContext",
    "CompilerStrategy",
    "LAYOUT_STRATEGIES",
    "Pass",
    "PassPipeline",
    "ROUTING_STRATEGIES",
    "default_pipeline",
    "RoutedCircuit",
    "route_circuit",
    "route_circuit_noise_aware",
    "TranspiledCircuit",
    "transpile",
]
