"""Compiler substrate: decomposition, layout, routing, transpilation."""

from repro.compiler.decompose import decompose_swaps, decompose_to_cx_basis
from repro.compiler.layout import Layout, choose_layout, find_long_path, is_chain_circuit
from repro.compiler.metrics import GateMetrics, gate_metrics
from repro.compiler.routing import RoutedCircuit, route_circuit
from repro.compiler.transpile import TranspiledCircuit, transpile

__all__ = [
    "decompose_swaps",
    "decompose_to_cx_basis",
    "Layout",
    "choose_layout",
    "find_long_path",
    "is_chain_circuit",
    "GateMetrics",
    "gate_metrics",
    "RoutedCircuit",
    "route_circuit",
    "TranspiledCircuit",
    "transpile",
]
