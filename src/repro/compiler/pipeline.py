"""The pass-pipeline compiler: composable stages over a shared context.

The seed-state :func:`repro.compiler.transpile.transpile` hardwired one
pass order (decompose -> layout -> route -> swap-expand) and one routing
strategy.  This module turns that fixed sequence into data:

* :class:`CompileContext` — the mutable state a circuit accumulates on
  its way to hardware: the working circuit, the target coupling map and
  error map, the chosen layout, the routed intermediate, the two-qubit
  edge trace and the final gate metrics.
* :class:`Pass` — the (runtime-checkable) protocol every stage
  implements: a ``name`` and a ``run(context)`` that advances the
  context in place.
* :class:`PassPipeline` — an ordered pass list with a
  :meth:`~PassPipeline.run` entry point producing a
  :class:`TranspiledCircuit`.
* :data:`LAYOUT_STRATEGIES` / :data:`ROUTING_STRATEGIES` — name-keyed
  strategy registries mirroring
  :data:`repro.core.architecture.ARCHITECTURES`, so layout and routing
  choices travel the CLI / registry / cache-key plumbing as plain
  strings.

``transpile()`` is now a thin wrapper over
:func:`default_pipeline` — bit-identical to the historical monolith at
the default strategies (the ``fig10`` golden pins this).

Adding a routing strategy is one registration::

    ROUTING_STRATEGIES.register(CompilerStrategy(
        name="lookahead",
        description="depth-2 lookahead SWAP selection",
        build=my_lookahead_router,   # (circuit, coupling, layout, edge_errors=None) -> RoutedCircuit
    ))

after which ``transpile(..., routing="lookahead")``,
``python -m repro run fig10 --routing lookahead`` and the appsweep
experiment all pick it up without further changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Protocol, Sequence, runtime_checkable

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.decompose import decompose_swaps, decompose_to_cx_basis
from repro.compiler.layout import Layout, choose_layout
from repro.compiler.metrics import GateMetrics, gate_metrics
from repro.compiler.routing import (
    RoutedCircuit,
    route_circuit,
    route_circuit_noise_aware,
)
from repro.engine.registry import did_you_mean
from repro.topology.coupling import CouplingMap

__all__ = [
    "CompileContext",
    "CompilerStrategy",
    "DEFAULT_LAYOUT",
    "DEFAULT_ROUTING",
    "DecomposePass",
    "LayoutPass",
    "LAYOUT_STRATEGIES",
    "MetricsPass",
    "Pass",
    "PassPipeline",
    "ROUTING_STRATEGIES",
    "RoutePass",
    "StrategyRegistry",
    "SwapExpandPass",
    "TranspiledCircuit",
    "default_pipeline",
]

#: Default strategy names — the seed-state behaviour.
DEFAULT_LAYOUT = "auto"
DEFAULT_ROUTING = "basic"


# ---------------------------------------------------------------------- #
# Strategy registries
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CompilerStrategy:
    """One named layout or routing strategy.

    Attributes
    ----------
    name:
        Registry key (``"basic"``, ``"noise-aware"``, ``"dense"``, ...).
    description:
        One-line summary shown by ``python -m repro list``.
    build:
        The strategy callable.  Layout strategies take
        ``(circuit, coupling, edge_errors=None) -> Layout``; routing
        strategies take
        ``(circuit, coupling, layout, edge_errors=None) -> RoutedCircuit``.
    """

    name: str
    description: str
    build: Callable[..., Any] = field(compare=False)


class StrategyRegistry:
    """Mutable name -> :class:`CompilerStrategy` mapping.

    Mirrors :class:`repro.core.architecture.ArchitectureRegistry`:
    registration order is preserved, duplicates raise, and lookups of
    unknown names raise ``KeyError`` with a did-you-mean suggestion (the
    CLI turns that into an exit-2 diagnostic).
    """

    def __init__(self, kind: str) -> None:
        self._kind = kind
        self._strategies: dict[str, CompilerStrategy] = {}

    def register(self, strategy: CompilerStrategy) -> CompilerStrategy:
        """Register a strategy; raises on duplicate names."""
        if strategy.name in self._strategies:
            raise ValueError(
                f"{self._kind} strategy {strategy.name!r} already registered"
            )
        self._strategies[strategy.name] = strategy
        return strategy

    def get(self, name: str) -> CompilerStrategy:
        """Resolve a strategy name; raises ``KeyError`` with suggestions."""
        if name not in self._strategies:
            known = ", ".join(self._strategies)
            suggestion = did_you_mean(name, self._strategies)
            raise KeyError(
                f"unknown {self._kind} strategy {name!r}{suggestion} "
                f"(known: {known})"
            )
        return self._strategies[name]

    def names(self) -> list[str]:
        """Registered strategy names, in registration order."""
        return list(self._strategies)

    def specs(self) -> list[CompilerStrategy]:
        """Every registered strategy, in registration order."""
        return list(self._strategies.values())

    def __contains__(self, name: str) -> bool:
        return name in self._strategies

    def __len__(self) -> int:
        return len(self._strategies)


#: Initial-layout strategies (thin registry over ``choose_layout``).
LAYOUT_STRATEGIES = StrategyRegistry("layout")

#: SWAP-insertion routing strategies.
ROUTING_STRATEGIES = StrategyRegistry("routing")


def _layout_strategy(method: str):
    def build(
        circuit: QuantumCircuit,
        coupling: CouplingMap,
        edge_errors: dict[tuple[int, int], float] | None = None,
    ) -> Layout:
        return choose_layout(circuit, coupling, method=method, edge_errors=edge_errors)

    build.__name__ = f"layout_{method}"
    return build


LAYOUT_STRATEGIES.register(
    CompilerStrategy(
        name="auto",
        description="line for chain circuits, dense otherwise (the default)",
        build=_layout_strategy("auto"),
    )
)
LAYOUT_STRATEGIES.register(
    CompilerStrategy(
        name="line",
        description="embed along a long simple path (zero-SWAP chains)",
        build=_layout_strategy("line"),
    )
)
LAYOUT_STRATEGIES.register(
    CompilerStrategy(
        name="dense",
        description="densest connected region, interaction-BFS placement",
        build=_layout_strategy("dense"),
    )
)
LAYOUT_STRATEGIES.register(
    CompilerStrategy(
        name="noise",
        description="dense, seeded at the lowest-error qubit of the device",
        build=_layout_strategy("noise"),
    )
)


def _basic_routing(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout: Layout,
    edge_errors: dict[tuple[int, int], float] | None = None,
) -> RoutedCircuit:
    return route_circuit(circuit, coupling, layout)


ROUTING_STRATEGIES.register(
    CompilerStrategy(
        name="basic",
        description="greedy hop-shortest SWAP chains (the paper's router)",
        build=_basic_routing,
    )
)
ROUTING_STRATEGIES.register(
    CompilerStrategy(
        name="noise-aware",
        description="SWAPs along -log10(1-e) error-weighted shortest paths",
        build=route_circuit_noise_aware,
    )
)


# ---------------------------------------------------------------------- #
# Context and passes
# ---------------------------------------------------------------------- #
@dataclass
class CompileContext:
    """Mutable state threaded through every pass of a pipeline.

    Attributes
    ----------
    circuit:
        The working circuit; passes rewrite it in place of themselves
        (logical at first, physical after routing).
    coupling:
        Target connectivity.
    edge_errors:
        Target per-coupling infidelity map (``None`` when compiling onto
        a bare :class:`CouplingMap`); consumed by the noise layout seed
        and the noise-aware router.
    device:
        The target device itself when one was supplied (``None`` for a
        bare coupling map); the routing pass hands it to strategies so
        they can reuse its cached edge-error arrays.
    layout:
        Virtual -> physical placement chosen by the layout pass.
    routed:
        The routing pass's full result (final layout, SWAP count,
        per-gate edge trace).
    two_qubit_edges:
        Physical coupling of every two-qubit gate in program order after
        SWAP expansion (the fidelity-product input).
    metrics:
        Table II-style gate metrics of the final physical circuit.
    properties:
        Free-form scratch space for custom passes (analysis results,
        diagnostics); the built-in passes never touch it.
    """

    circuit: QuantumCircuit
    coupling: CouplingMap
    edge_errors: dict[tuple[int, int], float] | None = None
    device: Any = None
    layout: Layout | None = None
    routed: RoutedCircuit | None = None
    two_qubit_edges: list[tuple[int, int]] = field(default_factory=list)
    metrics: GateMetrics | None = None
    properties: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def for_target(cls, circuit: QuantumCircuit, target) -> "CompileContext":
        """Build a context for a :class:`Device` or bare coupling map."""
        from repro.device.device import Device

        if isinstance(target, Device):
            return cls(
                circuit=circuit,
                coupling=target.coupling,
                edge_errors=target.edge_errors,
                device=target,
            )
        return cls(circuit=circuit, coupling=target)


@runtime_checkable
class Pass(Protocol):
    """One compilation stage: advances a :class:`CompileContext` in place."""

    name: str

    def run(self, context: CompileContext) -> None:
        """Apply the pass to the context."""
        ...  # pragma: no cover - protocol body


class DecomposePass:
    """Rewrite the working circuit into the {1-qubit, CX} basis."""

    name = "decompose"

    def run(self, context: CompileContext) -> None:
        context.circuit = decompose_to_cx_basis(context.circuit)


class LayoutPass:
    """Choose the initial layout with a registered layout strategy."""

    name = "layout"

    def __init__(self, method: str = DEFAULT_LAYOUT):
        self.method = method

    def run(self, context: CompileContext) -> None:
        strategy = LAYOUT_STRATEGIES.get(self.method)
        context.layout = strategy.build(
            context.circuit, context.coupling, edge_errors=context.edge_errors
        )


class RoutePass:
    """Insert SWAPs with a registered routing strategy."""

    name = "route"

    def __init__(self, strategy: str = DEFAULT_ROUTING):
        self.strategy = strategy

    def run(self, context: CompileContext) -> None:
        if context.layout is None:
            raise ValueError("routing requires a layout pass to have run")
        strategy = ROUTING_STRATEGIES.get(self.strategy)
        # Hand strategies the device itself when one is available so the
        # noise-aware router reuses its cached edge-error arrays.
        errors = context.device if context.device is not None else context.edge_errors
        routed = strategy.build(
            context.circuit,
            context.coupling,
            context.layout,
            edge_errors=errors,
        )
        context.routed = routed
        context.circuit = routed.circuit


class SwapExpandPass:
    """Expand SWAPs into 3 CX and record the per-gate edge trace."""

    name = "swap-expand"

    def run(self, context: CompileContext) -> None:
        routed = context.routed
        if routed is None:
            raise ValueError("SWAP expansion requires a routing pass to have run")
        # Each SWAP decomposes into three CX on the same coupling, so its
        # edge appears three times in the fidelity-product trace.
        edges: list[tuple[int, int]] = []
        for gate, edge in zip(
            (g for g in routed.circuit if g.num_qubits == 2), routed.two_qubit_edges
        ):
            edges.extend([edge, edge, edge] if gate.name == "swap" else [edge])
        context.two_qubit_edges = edges
        context.circuit = decompose_swaps(routed.circuit)


class MetricsPass:
    """Compute Table II-style gate metrics of the physical circuit."""

    name = "metrics"

    def run(self, context: CompileContext) -> None:
        context.metrics = gate_metrics(context.circuit)


# ---------------------------------------------------------------------- #
# The pipeline
# ---------------------------------------------------------------------- #
@dataclass
class TranspiledCircuit:
    """A benchmark mapped onto physical hardware.

    Attributes
    ----------
    circuit:
        Physical circuit in the {1-qubit, CX} basis.
    initial_layout:
        Virtual -> physical placement chosen by the layout pass.
    num_swaps:
        SWAPs inserted by routing (each contributes 3 CX to the counts).
    metrics:
        Table II-style gate metrics of the physical circuit.
    two_qubit_edges:
        Physical coupling used by each two-qubit gate, in program order,
        with SWAP gates expanded to three entries.
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    num_swaps: int
    metrics: GateMetrics
    two_qubit_edges: list[tuple[int, int]] = field(default_factory=list)

    @property
    def num_two_qubit_gates(self) -> int:
        """Two-qubit gate count of the physical circuit."""
        return self.metrics.num_two_qubit


class PassPipeline:
    """An ordered sequence of passes compiling circuits onto hardware.

    Parameters
    ----------
    passes:
        The stages, run in order.  :func:`default_pipeline` builds the
        seed-state sequence (decompose, layout, route, swap-expand,
        metrics); callers may interleave custom :class:`Pass`
        implementations anywhere in the list.
    """

    def __init__(self, passes: Iterable[Pass]):
        self.passes: list[Pass] = list(passes)
        for stage in self.passes:
            if not isinstance(stage, Pass):
                raise TypeError(
                    f"{stage!r} does not implement the Pass protocol "
                    "(a `name` attribute and a `run(context)` method)"
                )

    def pass_names(self) -> list[str]:
        """The pass names, in execution order."""
        return [stage.name for stage in self.passes]

    def run_context(self, circuit: QuantumCircuit, target) -> CompileContext:
        """Run every pass and return the full final context."""
        context = CompileContext.for_target(circuit, target)
        for stage in self.passes:
            stage.run(context)
        return context

    def run(self, circuit: QuantumCircuit, target) -> TranspiledCircuit:
        """Compile ``circuit`` onto ``target`` and package the result.

        ``target`` is a :class:`repro.device.device.Device` or a bare
        :class:`CouplingMap`.  Requires the pipeline to contain (at
        least) layout, route, swap-expand and metrics stages; pipelines
        that stop earlier should use :meth:`run_context` instead.
        """
        context = self.run_context(circuit, target)
        if context.routed is None or context.metrics is None:
            raise ValueError(
                "pipeline did not produce a routed, measured circuit; "
                "use run_context() for partial pipelines"
            )
        return TranspiledCircuit(
            circuit=context.circuit,
            initial_layout=context.routed.initial_layout,
            num_swaps=context.routed.num_swaps,
            metrics=context.metrics,
            two_qubit_edges=context.two_qubit_edges,
        )


def default_pipeline(
    layout_method: str = DEFAULT_LAYOUT,
    routing: str = DEFAULT_ROUTING,
    extra_passes: Sequence[Pass] = (),
) -> PassPipeline:
    """The seed-state pass sequence with pluggable strategies.

    Parameters
    ----------
    layout_method:
        Registered layout strategy name (see :data:`LAYOUT_STRATEGIES`).
    routing:
        Registered routing strategy name (see :data:`ROUTING_STRATEGIES`).
    extra_passes:
        Additional passes appended after the metrics stage (analysis /
        diagnostic hooks).

    Unknown strategy names raise ``KeyError`` (with a did-you-mean
    suggestion) here, before any compilation work starts.
    """
    LAYOUT_STRATEGIES.get(layout_method)
    ROUTING_STRATEGIES.get(routing)
    return PassPipeline(
        [
            DecomposePass(),
            LayoutPass(layout_method),
            RoutePass(routing),
            SwapExpandPass(),
            MetricsPass(),
            *extra_passes,
        ]
    )
