"""Initial-layout selection for benchmark compilation.

The paper compiles benchmarks sized at 80 % of the device, so the layout
pass has to pick a *connected region* of physical qubits and map virtual
qubits onto it.  Three strategies are provided:

* ``"line"`` — embed the circuit along a long simple path of the coupling
  graph; ideal for chain-structured circuits (GHZ, TFIM) which then route
  with zero SWAP overhead.
* ``"dense"`` — place the circuit on a densely-connected subgraph, ordering
  virtual qubits by a BFS of their interaction graph so frequently
  interacting qubits land close together.
* ``"noise"`` — like ``"dense"`` but seeded at the physical qubit whose
  incident couplings have the lowest error (requires a device error map).
"""

from __future__ import annotations

import networkx as nx

from repro.circuits.circuit import QuantumCircuit
from repro.topology.coupling import CouplingMap
from repro.topology.metrics import densest_connected_subgraph

__all__ = ["Layout", "choose_layout", "find_long_path", "is_chain_circuit"]


class Layout:
    """A bijective virtual -> physical qubit assignment."""

    def __init__(self, virtual_to_physical: dict[int, int]):
        self._v2p = dict(virtual_to_physical)
        self._p2v = {p: v for v, p in self._v2p.items()}
        if len(self._p2v) != len(self._v2p):
            raise ValueError("layout maps two virtual qubits to the same physical qubit")

    @property
    def size(self) -> int:
        """Number of mapped virtual qubits."""
        return len(self._v2p)

    def physical(self, virtual: int) -> int:
        """Physical qubit hosting ``virtual``."""
        return self._v2p[virtual]

    def virtual(self, physical: int) -> int | None:
        """Virtual qubit hosted on ``physical`` (``None`` when empty)."""
        return self._p2v.get(physical)

    def mapping(self) -> dict[int, int]:
        """Copy of the virtual -> physical mapping."""
        return dict(self._v2p)

    def swap_physical(self, p_a: int, p_b: int) -> None:
        """Exchange the virtual qubits held by two physical qubits."""
        v_a = self._p2v.get(p_a)
        v_b = self._p2v.get(p_b)
        if v_a is not None:
            self._v2p[v_a] = p_b
        if v_b is not None:
            self._v2p[v_b] = p_a
        if v_a is not None:
            self._p2v[p_b] = v_a
        elif p_b in self._p2v:
            del self._p2v[p_b]
        if v_b is not None:
            self._p2v[p_a] = v_b
        elif p_a in self._p2v:
            del self._p2v[p_a]

    def copy(self) -> "Layout":
        """Deep copy of the layout."""
        return Layout(self._v2p)


def is_chain_circuit(circuit: QuantumCircuit) -> bool:
    """True when the circuit's interaction graph is a simple path.

    Chain circuits (GHZ, 1D TFIM, the repetition code) can be embedded along
    a path of the device and routed without SWAPs.
    """
    adjacency = circuit.interaction_graph()
    active = {q for q, neighbours in adjacency.items() if neighbours}
    if not active:
        return True
    degrees = [len(adjacency[q]) for q in active]
    if any(d > 2 for d in degrees):
        return False
    endpoints = sum(1 for d in degrees if d == 1)
    if endpoints != 2:
        return False
    graph = nx.Graph(
        (a, b) for a, neighbours in adjacency.items() for b in neighbours if a < b
    )
    return nx.is_connected(graph)


def find_long_path(
    coupling: CouplingMap,
    length: int,
    attempts: int = 12,
    step_budget: int = 200_000,
) -> list[int] | None:
    """Backtracking search for a simple path visiting ``length`` qubits.

    Heavy-hex lattices contain long snaking paths, but a pure greedy walk
    tends to strand itself; a depth-first search with backtracking and a
    low-degree-first expansion order finds them quickly in practice.  The
    search is bounded by ``step_budget`` expansion steps per starting node,
    and returns ``None`` when no sufficiently long path was found.
    """
    graph = coupling.graph()
    if length <= 0:
        return []
    if length > graph.number_of_nodes():
        return None
    nodes = sorted(graph.nodes, key=lambda n: (graph.degree[n], n))
    starts = nodes[:attempts]

    for start in starts:
        path = [start]
        on_path = {start}
        # Iterator stack: candidates still to try from each path position.
        stack = [iter(sorted(graph.neighbors(start), key=lambda n: (graph.degree[n], n)))]
        steps = 0
        while stack and steps < step_budget:
            steps += 1
            try:
                candidate = next(stack[-1])
            except StopIteration:
                stack.pop()
                on_path.discard(path.pop())
                continue
            if candidate in on_path:
                continue
            path.append(candidate)
            on_path.add(candidate)
            if len(path) >= length:
                return path
            stack.append(
                iter(sorted(graph.neighbors(candidate), key=lambda n: (graph.degree[n], n)))
            )
    return None


def _interaction_order(circuit: QuantumCircuit) -> list[int]:
    """Virtual qubits ordered by a BFS over the interaction graph."""
    adjacency = circuit.interaction_graph()
    order: list[int] = []
    seen: set[int] = set()
    pending = sorted(adjacency, key=lambda q: -len(adjacency[q]))
    for root in pending:
        if root in seen:
            continue
        queue = [root]
        seen.add(root)
        while queue:
            node = queue.pop(0)
            order.append(node)
            for neighbour in sorted(adjacency[node]):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
    return order


def choose_layout(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    method: str = "auto",
    edge_errors: dict[tuple[int, int], float] | None = None,
) -> Layout:
    """Pick an initial layout for a circuit on a coupling map.

    Parameters
    ----------
    circuit:
        Circuit to place (its width must not exceed the device size).
    coupling:
        Device connectivity.
    method:
        ``"auto"``, ``"line"``, ``"dense"`` or ``"noise"``.  ``"auto"``
        selects ``"line"`` for chain circuits and ``"dense"`` otherwise.
    edge_errors:
        Per-coupling error map used by the ``"noise"`` strategy.
    """
    width = circuit.num_qubits
    if width > coupling.num_qubits:
        raise ValueError(
            f"circuit needs {width} qubits but the device only has {coupling.num_qubits}"
        )
    if method == "auto":
        method = "line" if is_chain_circuit(circuit) else "dense"

    if method == "line":
        path = find_long_path(coupling, width)
        if path is not None:
            order = _interaction_order(circuit)
            order += [q for q in range(width) if q not in set(order)]
            return Layout({virtual: path[i] for i, virtual in enumerate(order)})
        method = "dense"

    graph = coupling.graph()
    seed = None
    if method == "noise":
        if edge_errors:
            incident: dict[int, list[float]] = {}
            for (u, v), error in edge_errors.items():
                incident.setdefault(u, []).append(error)
                incident.setdefault(v, []).append(error)
            seed = min(
                incident,
                key=lambda q: sum(incident[q]) / len(incident[q]) - 0.001 * len(incident[q]),
            )
        method = "dense"
    if method != "dense":
        raise ValueError(f"unknown layout method {method!r}")

    region = densest_connected_subgraph(graph, width, seed=seed)
    sub = graph.subgraph(region)
    # Physical placement order: BFS from the highest-degree node of the region.
    start = max(region, key=lambda n: sub.degree[n])
    physical_order = list(nx.bfs_tree(sub, start))
    physical_order += [n for n in region if n not in set(physical_order)]
    virtual_order = _interaction_order(circuit)
    virtual_order += [q for q in range(width) if q not in set(virtual_order)]
    return Layout(
        {virtual: physical_order[i] for i, virtual in enumerate(virtual_order)}
    )
