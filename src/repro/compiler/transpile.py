"""End-to-end transpilation: a thin wrapper over the default pass pipeline.

:func:`transpile` is the single entry point the evaluation harness uses to
map a logical benchmark onto a :class:`~repro.device.device.Device` (or a
bare coupling map).  The actual work happens in
:mod:`repro.compiler.pipeline`, which composes the decompose -> layout ->
route -> swap-expand -> metrics stages as individual passes with
name-keyed strategy registries; this module keeps the historical
signature (plus a ``routing`` strategy selector) and re-exports
:class:`TranspiledCircuit` for existing importers.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.pipeline import (
    DEFAULT_LAYOUT,
    DEFAULT_ROUTING,
    TranspiledCircuit,
    default_pipeline,
)
from repro.device.device import Device
from repro.engine.phases import phase
from repro.topology.coupling import CouplingMap

__all__ = ["TranspiledCircuit", "transpile"]


def transpile(
    circuit: QuantumCircuit,
    target: Device | CouplingMap,
    layout_method: str = DEFAULT_LAYOUT,
    routing: str = DEFAULT_ROUTING,
) -> TranspiledCircuit:
    """Map a logical circuit onto a device.

    Parameters
    ----------
    circuit:
        Logical circuit (may contain ``ccx``, ``swap``, ``rzz``, ``cz``).
    target:
        Device or coupling map to compile onto.
    layout_method:
        Registered initial-layout strategy
        (see :data:`repro.compiler.pipeline.LAYOUT_STRATEGIES`).
    routing:
        Registered routing strategy
        (see :data:`repro.compiler.pipeline.ROUTING_STRATEGIES`);
        ``"basic"`` reproduces the seed-state router bit-identically,
        ``"noise-aware"`` detours SWAP traffic around high-error
        couplings using the device's error map.
    """
    with phase("compile"):
        return default_pipeline(layout_method=layout_method, routing=routing).run(
            circuit, target
        )
