"""End-to-end transpilation: decompose -> layout -> route -> decompose SWAPs.

:func:`transpile` is the single entry point the evaluation harness uses to
map a logical benchmark onto a :class:`~repro.device.device.Device` (or a
bare coupling map), returning the physical circuit together with the
metrics and the list of physical couplings every two-qubit gate executes on
(the input to the fidelity-product figure of merit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.decompose import decompose_to_cx_basis, decompose_swaps
from repro.compiler.layout import Layout, choose_layout
from repro.compiler.metrics import GateMetrics, gate_metrics
from repro.compiler.routing import route_circuit
from repro.device.device import Device
from repro.topology.coupling import CouplingMap

__all__ = ["TranspiledCircuit", "transpile"]


@dataclass
class TranspiledCircuit:
    """A benchmark mapped onto physical hardware.

    Attributes
    ----------
    circuit:
        Physical circuit in the {1-qubit, CX} basis.
    initial_layout:
        Virtual -> physical placement chosen by the layout pass.
    num_swaps:
        SWAPs inserted by routing (each contributes 3 CX to the counts).
    metrics:
        Table II-style gate metrics of the physical circuit.
    two_qubit_edges:
        Physical coupling used by each two-qubit gate, in program order,
        with SWAP gates expanded to three entries.
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    num_swaps: int
    metrics: GateMetrics
    two_qubit_edges: list[tuple[int, int]] = field(default_factory=list)

    @property
    def num_two_qubit_gates(self) -> int:
        """Two-qubit gate count of the physical circuit."""
        return self.metrics.num_two_qubit


def _coupling_of(target: Device | CouplingMap) -> CouplingMap:
    if isinstance(target, Device):
        return target.coupling
    return target


def _edge_errors_of(target: Device | CouplingMap) -> dict[tuple[int, int], float] | None:
    if isinstance(target, Device):
        return target.edge_errors
    return None


def transpile(
    circuit: QuantumCircuit,
    target: Device | CouplingMap,
    layout_method: str = "auto",
) -> TranspiledCircuit:
    """Map a logical circuit onto a device.

    Parameters
    ----------
    circuit:
        Logical circuit (may contain ``ccx``, ``swap``, ``rzz``, ``cz``).
    target:
        Device or coupling map to compile onto.
    layout_method:
        Initial-layout strategy (see :func:`repro.compiler.layout.choose_layout`).
    """
    coupling = _coupling_of(target)
    logical = decompose_to_cx_basis(circuit)
    layout = choose_layout(
        logical, coupling, method=layout_method, edge_errors=_edge_errors_of(target)
    )
    routed = route_circuit(logical, coupling, layout)
    physical = decompose_swaps(routed.circuit)

    # Expand SWAP edges: each SWAP contributes three CX on the same coupling.
    edges: list[tuple[int, int]] = []
    for gate, edge in zip(
        (g for g in routed.circuit if g.num_qubits == 2), routed.two_qubit_edges
    ):
        edges.extend([edge, edge, edge] if gate.name == "swap" else [edge])

    return TranspiledCircuit(
        circuit=physical,
        initial_layout=routed.initial_layout,
        num_swaps=routed.num_swaps,
        metrics=gate_metrics(physical),
        two_qubit_edges=edges,
    )
