"""SWAP-insertion routing onto restricted connectivity.

The router walks the circuit in program order.  Single-qubit gates are
emitted directly on the physical qubit currently hosting their virtual
qubit.  For a two-qubit gate whose operands are not adjacent, SWAPs are
inserted along a shortest path between the two hosts, moving from the
cheaper end and stopping one hop short so the final CX executes on a real
coupling.  SWAP selection uses the pre-computed all-pairs distance matrix,
so routing a circuit with tens of thousands of gates onto a 500-qubit MCM
stays fast.

This is intentionally a greedy router (in the spirit of the lookahead-free
baseline of SABRE); the paper's conclusions depend on relative gate counts
between architectures compiled identically, not on squeezing out the last
few SWAPs.

:func:`route_circuit_noise_aware` is the error-weighted variant: instead
of hop-shortest SWAP chains it walks weighted shortest paths where each
coupling costs ``-log10(1 - e(edge))`` — the log-fidelity the gates
executed on it will pay — so SWAP traffic detours around the worst
couplings of a fabricated device.  With no error map it degrades to the
hop metric.

Routing cache
-------------
The weighted shortest-path structure is the noise-aware router's only
expensive input, and application sweeps compile the *same* device dozens
of times (every benchmark x width x circuit seed shares it).  It is
therefore memoised process-wide in an LRU keyed on content — the qubit
count, the coupling's edge list and the resolved per-edge costs — so any
two calls that would route over identical weights share one
:class:`RoutingWeights`, no matter how many distinct ``Device`` objects
(or pickled copies in an engine worker) carry that content.  Fused engine
super-tasks running several :func:`repro.analysis.appeval.compile_and_score`
subtasks in one worker hit the same cache for free.

Within one :class:`RoutingWeights`, Dijkstra trees are computed *lazily
per source*: scipy's Dijkstra is per-source independent, so computing
only the rows the router actually queries is bit-identical to the
historical eager all-pairs run while letting a small circuit on a big
MCM pay for a handful of sources instead of all of them.  Routes are
bit-identical either way — same weights, same tie-breaks.

``edge_errors`` content is hashed into the key, so recalibrating or
scaling a device's error map can never replay a stale tree — it simply
misses into a fresh entry (see ``tests/test_routing_cache.py``).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.compiler.layout import Layout
from repro.obs.metrics import REGISTRY
from repro.topology.coupling import CouplingMap

__all__ = [
    "RoutedCircuit",
    "RoutingWeights",
    "route_circuit",
    "route_circuit_noise_aware",
    "routing_weights",
    "routing_cache_stats",
    "clear_routing_cache",
    "ROUTING_CACHE_MAXSIZE",
]

#: Weight assigned to a fully-depolarising coupling (error >= 1): large
#: enough that any finite-fidelity detour wins, finite so a graph whose
#: only route crosses a dead edge still routes (the fidelity product
#: then reports -inf, as it should).
DEAD_EDGE_WEIGHT = 1.0e9

#: Additive per-hop cost so that between equal-error alternatives the
#: shorter SWAP chain wins deterministically, and near-zero-error regions
#: are not traversed "for free" by absurdly long chains.
HOP_PENALTY = 1.0e-9

#: Distinct (coupling, error-map) weight structures kept alive at once.
#: Application sweeps touch a handful of devices per worker; 64 covers a
#: full appsweep ensemble with room to spare while bounding memory.
ROUTING_CACHE_MAXSIZE = 64


@dataclass
class RoutedCircuit:
    """Result of routing a circuit onto a coupling map.

    Attributes
    ----------
    circuit:
        Physical circuit (gates address physical qubits; ``swap`` gates are
        still explicit and can be decomposed later).
    initial_layout, final_layout:
        Virtual -> physical assignment before and after execution.
    num_swaps:
        Number of SWAPs inserted.
    two_qubit_edges:
        The physical coupling used by every two-qubit gate, in emission
        order (SWAPs contribute their edge once; after decomposition into
        3 CX the edge is counted three times by the fidelity analysis).
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int = 0
    two_qubit_edges: list[tuple[int, int]] = field(default_factory=list)


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout: Layout,
) -> RoutedCircuit:
    """Route a (CX-basis) circuit onto the coupling map.

    Parameters
    ----------
    circuit:
        Logical circuit containing only one- and two-qubit gates.
    coupling:
        Physical connectivity.
    layout:
        Initial virtual -> physical placement (will not be mutated).
    """
    distance = coupling.distance_matrix()
    working = layout.copy()
    physical = QuantumCircuit(num_qubits=coupling.num_qubits, name=circuit.name)
    routed = RoutedCircuit(
        circuit=physical,
        initial_layout=layout.copy(),
        final_layout=working,
    )

    for gate in circuit:
        if gate.num_qubits == 1:
            physical.append(
                Gate(gate.name, (working.physical(gate.qubits[0]),), gate.params)
            )
            continue
        if gate.num_qubits != 2:
            raise ValueError(
                f"gate {gate.name!r} must be decomposed to the CX basis before routing"
            )
        virtual_a, virtual_b = gate.qubits
        p_a = working.physical(virtual_a)
        p_b = working.physical(virtual_b)
        # Bring the two operands adjacent by swapping along a shortest path.
        # Both endpoints are considered as the "mover" and the swap that
        # shrinks the remaining distance the most (ties broken towards the
        # lower qubit index) is applied.
        while distance[p_a, p_b] > 1:
            best_a = min(coupling.neighbors(p_a), key=lambda n: (distance[n, p_b], n))
            best_b = min(coupling.neighbors(p_b), key=lambda n: (distance[n, p_a], n))
            if distance[best_a, p_b] <= distance[best_b, p_a]:
                mover, step = p_a, best_a
            else:
                mover, step = p_b, best_b
            physical.swap(mover, step)
            routed.num_swaps += 1
            routed.two_qubit_edges.append((min(mover, step), max(mover, step)))
            working.swap_physical(mover, step)
            p_a = working.physical(virtual_a)
            p_b = working.physical(virtual_b)
        physical.append(Gate(gate.name, (p_a, p_b), gate.params))
        routed.two_qubit_edges.append((min(p_a, p_b), max(p_a, p_b)))

    return routed


def _edge_costs(coupling: CouplingMap, edge_errors):
    """Resolve the per-coupling routing costs for the error metric.

    Returns ``(edge_u, edge_v, costs)`` aligned arrays — one entry per
    coupling, endpoints normalised ``u < v``.  ``edge_errors`` is a
    :class:`~repro.device.device.Device` — whose cached
    ``edge_error_arrays()`` feed one vectorised cost computation — or a
    raw mapping, walked per edge (couplings missing from the map cost
    only the hop penalty: they are treated as ideal).
    """
    from repro.device.device import Device

    n = coupling.num_qubits
    is_device = isinstance(edge_errors, Device)
    # The array fast path requires the error map to be exactly the
    # coupling's edge set.  Device.__post_init__ already forbids missing
    # couplings, so the only way out is a map carrying *extra* edges —
    # those must not become routable, so such devices (and raw
    # mappings) take the per-edge walk over coupling.edges instead.
    if is_device and len(edge_errors.edge_errors) == coupling.num_edges:
        keys, errors = edge_errors.edge_error_arrays()
        edge_u = keys // n
        edge_v = keys % n
        safe = np.clip(1.0 - errors, 1e-300, None)
        costs = HOP_PENALTY - np.log10(safe)
        costs[errors >= 1.0] = DEAD_EDGE_WEIGHT
    else:
        if is_device:
            edge_errors = edge_errors.edge_errors
        pairs = []
        cost_list = []
        for u, v in coupling.edges:
            error = float(edge_errors.get((u, v), edge_errors.get((v, u), 0.0)))
            if error < 1.0:
                cost_list.append(HOP_PENALTY - np.log10(1.0 - error))
            else:
                cost_list.append(DEAD_EDGE_WEIGHT)
            pairs.append((u, v))
        edge_u = np.asarray([u for u, _ in pairs], dtype=np.int64)
        edge_v = np.asarray([v for _, v in pairs], dtype=np.int64)
        costs = np.asarray(cost_list)

    return edge_u, edge_v, costs


class RoutingWeights:
    """Error-weighted shortest-path structure with lazy per-source trees.

    Wraps the sparse symmetric cost matrix of one (coupling, error-map)
    pair.  Dijkstra predecessor rows are computed on first query per
    source and memoised — scipy's Dijkstra treats sources independently,
    so a lazily-filled row is bit-identical to the same row of the
    historical eager all-pairs run (:meth:`predecessor_matrix` pins
    this in the parity suite).  Endpoint costs for the router's
    mover tie-break come from a per-edge dict instead of the old dense
    ``(n, n)`` weight matrix, dropping the O(n^2) allocation entirely.

    Instances are shared through the module cache and may be queried
    from several engine worker threads at once; row computation is
    double-checked under a lock.
    """

    def __init__(
        self,
        num_qubits: int,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
        costs: np.ndarray,
    ):
        self.num_qubits = num_qubits
        self._matrix = csr_matrix(
            (
                np.concatenate([costs, costs]),
                (np.concatenate([edge_u, edge_v]), np.concatenate([edge_v, edge_u])),
            ),
            shape=(num_qubits, num_qubits),
        )
        self._cost = {
            (int(u), int(v)): float(c) for u, v, c in zip(edge_u, edge_v, costs)
        }
        self._pred: dict[int, np.ndarray] = {}
        self._lock = threading.Lock()

    @property
    def sources_computed(self) -> int:
        """Number of source rows whose Dijkstra tree has been built."""
        return len(self._pred)

    def edge_cost(self, u: int, v: int) -> float:
        """Routing cost of the coupling between ``u`` and ``v``."""
        return self._cost[(u, v) if u < v else (v, u)]

    def predecessor_row(self, source: int) -> np.ndarray:
        """The Dijkstra predecessor row for one source, computed lazily."""
        row = self._pred.get(source)
        if row is None:
            with self._lock:
                row = self._pred.get(source)
                if row is None:
                    _, pred = shortest_path(
                        self._matrix,
                        method="D",
                        directed=False,
                        indices=[source],
                        return_predecessors=True,
                    )
                    row = pred[0]
                    self._pred[source] = row
        return row

    def predecessor_matrix(self) -> np.ndarray:
        """Eagerly compute every source's tree in one batched call.

        This is the historical all-pairs behaviour; the benchmark's
        legacy-cost emulation and the lazy-vs-eager parity tests use it.
        The rows replace (identically) any lazily computed ones.
        """
        _, pred = shortest_path(
            self._matrix, method="D", directed=False, return_predecessors=True
        )
        with self._lock:
            for source in range(self.num_qubits):
                self._pred[source] = pred[source]
        return pred


_CACHE: OrderedDict[tuple, RoutingWeights] = OrderedDict()
_CACHE_LOCK = threading.Lock()
_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}

#: Mirror of ``_CACHE_STATS`` on the process metrics registry — worker
#: processes increment their local registry and the engine merges the
#: shipped deltas, so ``/metrics`` sees routing traffic from every
#: process, which the dict above (engine-process-only) cannot.
_CACHE_EVENTS = REGISTRY.counter(
    "repro_routing_cache_events_total",
    "Routing weights cache traffic by outcome (hit, miss, eviction)",
    labels=("event",),
)


def _weights_key(num_qubits: int, edge_u, edge_v, costs) -> tuple:
    """Content digest of one resolved weight structure.

    Keyed on the *resolved* costs (not the raw error map), so two error
    maps that induce identical weights share one entry — and any change
    to a device's edge errors changes the digest and misses.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.int64(num_qubits).tobytes())
    digest.update(np.ascontiguousarray(edge_u, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(edge_v, dtype=np.int64).tobytes())
    digest.update(np.ascontiguousarray(costs, dtype=np.float64).tobytes())
    return (num_qubits, digest.hexdigest())


def routing_weights(coupling: CouplingMap, edge_errors) -> RoutingWeights:
    """The (cached) weight structure for one coupling + error map.

    Resolving the per-edge costs and hashing them is O(edges) — cheap
    against even a single-source Dijkstra — so every call pays the
    digest and repeated compiles of the same device share the trees.
    """
    edge_u, edge_v, costs = _edge_costs(coupling, edge_errors)
    key = _weights_key(coupling.num_qubits, edge_u, edge_v, costs)
    with _CACHE_LOCK:
        weights = _CACHE.get(key)
        if weights is not None:
            _CACHE.move_to_end(key)
            _CACHE_STATS["hits"] += 1
            _CACHE_EVENTS.inc(event="hit")
            return weights
        _CACHE_STATS["misses"] += 1
        _CACHE_EVENTS.inc(event="miss")
        weights = RoutingWeights(coupling.num_qubits, edge_u, edge_v, costs)
        _CACHE[key] = weights
        while len(_CACHE) > ROUTING_CACHE_MAXSIZE:
            _CACHE.popitem(last=False)
            _CACHE_STATS["evictions"] += 1
            _CACHE_EVENTS.inc(event="eviction")
    return weights


def routing_cache_stats() -> dict:
    """Counters + occupancy of the process-wide routing cache."""
    with _CACHE_LOCK:
        return {
            **_CACHE_STATS,
            "entries": len(_CACHE),
            "sources_computed": sum(w.sources_computed for w in _CACHE.values()),
        }


def clear_routing_cache() -> None:
    """Drop every cached weight structure and reset the counters."""
    with _CACHE_LOCK:
        _CACHE.clear()
        for counter in _CACHE_STATS:
            _CACHE_STATS[counter] = 0


def _weighted_path(predecessors: np.ndarray, source: int, target: int) -> list[int]:
    """Reconstruct one weighted shortest path from a predecessor row."""
    path = [target]
    node = target
    while node != source:
        node = int(predecessors[node])
        if node < 0:
            raise ValueError(
                f"qubits {source} and {target} are not connected in the coupling map"
            )
        path.append(node)
    path.reverse()
    return path


def route_circuit_noise_aware(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout: Layout,
    edge_errors: dict[tuple[int, int], float] | None = None,
) -> RoutedCircuit:
    """Route a (CX-basis) circuit along error-weighted shortest paths.

    Like :func:`route_circuit`, but SWAP chains follow the path that
    minimises the summed log-infidelity of the couplings they traverse
    (each edge costing ``-log10(1 - e(edge))`` plus a tiny hop penalty),
    and the final CX also executes on the last edge of that path — so a
    gate between graph-adjacent qubits may still detour when the direct
    coupling is bad enough that two SWAPs over clean couplings cost less.
    The walk consumes the weighted path from whichever end's next step is
    cheaper (ties towards the lower physical index), mirroring the basic
    router's mover selection.

    The weighted shortest-path structure comes from the process-wide
    :func:`routing_weights` cache with lazy per-source Dijkstra trees
    (see the module docstring); routes are bit-identical to the
    historical per-call eager all-pairs computation.

    Parameters
    ----------
    circuit:
        Logical circuit containing only one- and two-qubit gates.
    coupling:
        Physical connectivity.
    layout:
        Initial virtual -> physical placement (will not be mutated).
    edge_errors:
        A :class:`~repro.device.device.Device` (its cached
        ``edge_error_arrays()`` feed the weight construction) or a raw
        per-coupling infidelity map.  ``None`` or an empty map falls
        back to :func:`route_circuit`'s hop metric.
    """
    if not edge_errors:
        return route_circuit(circuit, coupling, layout)

    weights = routing_weights(coupling, edge_errors)
    working = layout.copy()
    physical = QuantumCircuit(num_qubits=coupling.num_qubits, name=circuit.name)
    routed = RoutedCircuit(
        circuit=physical,
        initial_layout=layout.copy(),
        final_layout=working,
    )

    for gate in circuit:
        if gate.num_qubits == 1:
            physical.append(
                Gate(gate.name, (working.physical(gate.qubits[0]),), gate.params)
            )
            continue
        if gate.num_qubits != 2:
            raise ValueError(
                f"gate {gate.name!r} must be decomposed to the CX basis before routing"
            )
        virtual_a, virtual_b = gate.qubits
        p_a = working.physical(virtual_a)
        p_b = working.physical(virtual_b)
        # Walk the weighted shortest path inward from both ends until the
        # operands sit on its final edge.  Each SWAP shortens the path by
        # one hop (subpaths of shortest paths are shortest), so the loop
        # terminates after len(path) - 2 swaps.
        path = _weighted_path(weights.predecessor_row(p_a), p_a, p_b)
        while len(path) > 2:
            cost_a = weights.edge_cost(path[0], path[1])
            cost_b = weights.edge_cost(path[-1], path[-2])
            if (cost_a, path[0]) <= (cost_b, path[-1]):
                mover, step = path[0], path[1]
                path = path[1:]
            else:
                mover, step = path[-1], path[-2]
                path = path[:-1]
            physical.swap(mover, step)
            routed.num_swaps += 1
            routed.two_qubit_edges.append((min(mover, step), max(mover, step)))
            working.swap_physical(mover, step)
        p_a, p_b = working.physical(virtual_a), working.physical(virtual_b)
        physical.append(Gate(gate.name, (p_a, p_b), gate.params))
        routed.two_qubit_edges.append((min(p_a, p_b), max(p_a, p_b)))

    return routed
