"""SWAP-insertion routing onto restricted connectivity.

The router walks the circuit in program order.  Single-qubit gates are
emitted directly on the physical qubit currently hosting their virtual
qubit.  For a two-qubit gate whose operands are not adjacent, SWAPs are
inserted along a shortest path between the two hosts, moving from the
cheaper end and stopping one hop short so the final CX executes on a real
coupling.  SWAP selection uses the pre-computed all-pairs distance matrix,
so routing a circuit with tens of thousands of gates onto a 500-qubit MCM
stays fast.

This is intentionally a greedy router (in the spirit of the lookahead-free
baseline of SABRE); the paper's conclusions depend on relative gate counts
between architectures compiled identically, not on squeezing out the last
few SWAPs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.compiler.layout import Layout
from repro.topology.coupling import CouplingMap

__all__ = ["RoutedCircuit", "route_circuit"]


@dataclass
class RoutedCircuit:
    """Result of routing a circuit onto a coupling map.

    Attributes
    ----------
    circuit:
        Physical circuit (gates address physical qubits; ``swap`` gates are
        still explicit and can be decomposed later).
    initial_layout, final_layout:
        Virtual -> physical assignment before and after execution.
    num_swaps:
        Number of SWAPs inserted.
    two_qubit_edges:
        The physical coupling used by every two-qubit gate, in emission
        order (SWAPs contribute their edge once; after decomposition into
        3 CX the edge is counted three times by the fidelity analysis).
    """

    circuit: QuantumCircuit
    initial_layout: Layout
    final_layout: Layout
    num_swaps: int = 0
    two_qubit_edges: list[tuple[int, int]] = field(default_factory=list)


def route_circuit(
    circuit: QuantumCircuit,
    coupling: CouplingMap,
    layout: Layout,
) -> RoutedCircuit:
    """Route a (CX-basis) circuit onto the coupling map.

    Parameters
    ----------
    circuit:
        Logical circuit containing only one- and two-qubit gates.
    coupling:
        Physical connectivity.
    layout:
        Initial virtual -> physical placement (will not be mutated).
    """
    distance = coupling.distance_matrix()
    working = layout.copy()
    physical = QuantumCircuit(num_qubits=coupling.num_qubits, name=circuit.name)
    routed = RoutedCircuit(
        circuit=physical,
        initial_layout=layout.copy(),
        final_layout=working,
    )

    for gate in circuit:
        if gate.num_qubits == 1:
            physical.append(
                Gate(gate.name, (working.physical(gate.qubits[0]),), gate.params)
            )
            continue
        if gate.num_qubits != 2:
            raise ValueError(
                f"gate {gate.name!r} must be decomposed to the CX basis before routing"
            )
        virtual_a, virtual_b = gate.qubits
        p_a = working.physical(virtual_a)
        p_b = working.physical(virtual_b)
        # Bring the two operands adjacent by swapping along a shortest path.
        # Both endpoints are considered as the "mover" and the swap that
        # shrinks the remaining distance the most (ties broken towards the
        # lower qubit index) is applied.
        while distance[p_a, p_b] > 1:
            best_a = min(coupling.neighbors(p_a), key=lambda n: (distance[n, p_b], n))
            best_b = min(coupling.neighbors(p_b), key=lambda n: (distance[n, p_a], n))
            if distance[best_a, p_b] <= distance[best_b, p_a]:
                mover, step = p_a, best_a
            else:
                mover, step = p_b, best_b
            physical.swap(mover, step)
            routed.num_swaps += 1
            routed.two_qubit_edges.append((min(mover, step), max(mover, step)))
            working.swap_physical(mover, step)
            p_a = working.physical(virtual_a)
            p_b = working.physical(virtual_b)
        physical.append(Gate(gate.name, (p_a, p_b), gate.params))
        routed.two_qubit_edges.append((min(p_a, p_b), max(p_a, p_b)))

    return routed
