"""Gate-decomposition passes.

Near-term transmon hardware natively supports single-qubit rotations and a
single two-qubit entangling gate (CX, generated from the Cross-Resonance
interaction).  Before routing, every higher-level gate is rewritten into
that basis:

* ``ccx`` (Toffoli) -> 6 CX plus single-qubit gates (standard textbook
  decomposition),
* ``swap`` -> 3 CX,
* ``rzz`` -> CX - RZ - CX,
* ``cz``  -> H - CX - H.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit

__all__ = ["decompose_to_cx_basis", "decompose_swaps"]


def _decompose_ccx(circuit: QuantumCircuit, a: int, b: int, target: int) -> None:
    """Standard 6-CX Toffoli decomposition."""
    circuit.h(target)
    circuit.cx(b, target)
    circuit.tdg(target)
    circuit.cx(a, target)
    circuit.t(target)
    circuit.cx(b, target)
    circuit.tdg(target)
    circuit.cx(a, target)
    circuit.t(b)
    circuit.t(target)
    circuit.h(target)
    circuit.cx(a, b)
    circuit.t(a)
    circuit.tdg(b)
    circuit.cx(a, b)


def _decompose_swap(circuit: QuantumCircuit, a: int, b: int) -> None:
    circuit.cx(a, b)
    circuit.cx(b, a)
    circuit.cx(a, b)


def decompose_to_cx_basis(circuit: QuantumCircuit, keep_swaps: bool = False) -> QuantumCircuit:
    """Rewrite a circuit into the {1-qubit, CX} basis.

    Parameters
    ----------
    circuit:
        Circuit to rewrite.
    keep_swaps:
        When ``True``, ``swap`` gates are passed through unchanged (useful
        before routing, which treats them natively); otherwise they are
        expanded into 3 CX.
    """
    result = QuantumCircuit(num_qubits=circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        if gate.name == "ccx":
            _decompose_ccx(result, *gate.qubits)
        elif gate.name == "swap" and not keep_swaps:
            _decompose_swap(result, *gate.qubits)
        elif gate.name == "rzz":
            a, b = gate.qubits
            result.cx(a, b)
            result.rz(gate.params[0], b)
            result.cx(a, b)
        elif gate.name == "cz":
            a, b = gate.qubits
            result.h(b)
            result.cx(a, b)
            result.h(b)
        else:
            result.append(gate)
    return result


def decompose_swaps(circuit: QuantumCircuit) -> QuantumCircuit:
    """Expand every ``swap`` into 3 CX, leaving other gates untouched."""
    result = QuantumCircuit(num_qubits=circuit.num_qubits, name=circuit.name)
    for gate in circuit:
        if gate.name == "swap":
            _decompose_swap(result, *gate.qubits)
        else:
            result.append(gate)
    return result
