"""Tuner models: what a post-fabrication frequency-repair tool can do.

Real fabs do not re-fabricate a collided die — they *repair* it.  After
cryogenic (or room-temperature resistance) measurement reveals each
qubit's actual frequency, a tuning tool shifts selected qubits to break
specific Table I collisions:

* **laser annealing** (LASIQ-style) trims the Josephson junction of a
  selected transmon, shifting its frequency by up to a few hundred MHz
  with a per-shot precision of a few MHz.  The junction can realistically
  be annealed only once or twice before the trim saturates.
* **flux trimming** (weakly tunable transmons / trim coils) applies a
  small in-situ bias: a much tighter shift range, but with excellent
  precision, and re-adjustable at will.

:class:`TunerModel` captures the three knobs every such tool shares — a
bounded maximum shift, a Gaussian actuation imprecision, and an optional
per-qubit tune-count budget — without committing to a mechanism.  The
repair strategies (:mod:`repro.tuning.strategies`) consume the model;
the yield pipeline threads it through :class:`repro.tuning.TuningOptions`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "TunerModel",
    "laser_anneal_tuner",
    "flux_trim_tuner",
    "DEFAULT_MAX_SHIFT_GHZ",
    "DEFAULT_TUNER_SIGMA_GHZ",
]

#: Default bounded tuning range (GHz) — a laser-anneal-like reach.
DEFAULT_MAX_SHIFT_GHZ = 0.300

#: Default actuation imprecision (GHz) of a single tuning shot.
DEFAULT_TUNER_SIGMA_GHZ = 0.005


@dataclass(frozen=True)
class TunerModel:
    """Capabilities of one post-fabrication frequency-tuning tool.

    Attributes
    ----------
    max_shift_ghz:
        Largest intended frequency shift (GHz) the tool can apply to one
        qubit, in either direction, measured from the qubit's
        *as-fabricated* frequency.  ``0`` disables tuning entirely.
    precision_sigma_ghz:
        Standard deviation of the Gaussian actuation error: a shot aimed
        at shift ``s`` lands at ``s + N(0, sigma)``.  The realised shift
        may therefore overshoot ``max_shift_ghz`` slightly — the bound
        constrains the *intent*, the noise models the tool.
    max_tunes_per_qubit:
        Optional per-qubit tune-count budget: how many accepted shifts a
        single qubit may receive.  ``None`` means unlimited; ``0`` makes
        every repair strategy a strict no-op (the CLI's
        ``--repair-budget 0`` baseline).
    """

    max_shift_ghz: float = DEFAULT_MAX_SHIFT_GHZ
    precision_sigma_ghz: float = DEFAULT_TUNER_SIGMA_GHZ
    max_tunes_per_qubit: int | None = None

    def __post_init__(self) -> None:
        if self.max_shift_ghz < 0:
            raise ValueError("max_shift_ghz must be non-negative")
        if self.precision_sigma_ghz < 0:
            raise ValueError("precision_sigma_ghz must be non-negative")
        if self.max_tunes_per_qubit is not None and self.max_tunes_per_qubit < 0:
            raise ValueError("max_tunes_per_qubit must be non-negative or None")

    @property
    def is_noop(self) -> bool:
        """True when no repair strategy can move any frequency."""
        return self.max_shift_ghz == 0.0 or self.max_tunes_per_qubit == 0

    def budget_for(self, num_qubits: int) -> int:
        """Effective per-qubit tune budget (``num_qubits`` caps unlimited).

        An unlimited budget is returned as a finite number large enough
        that no strategy implemented here can exhaust it, so strategy
        code never branches on ``None``.
        """
        if self.max_tunes_per_qubit is None:
            return max(num_qubits, 1) * 16
        return self.max_tunes_per_qubit


def laser_anneal_tuner(
    max_shift_ghz: float = DEFAULT_MAX_SHIFT_GHZ,
    precision_sigma_ghz: float = DEFAULT_TUNER_SIGMA_GHZ,
    max_tunes_per_qubit: int | None = 2,
) -> TunerModel:
    """A LASIQ-like junction annealer: long reach, few shots per qubit."""
    return TunerModel(
        max_shift_ghz=max_shift_ghz,
        precision_sigma_ghz=precision_sigma_ghz,
        max_tunes_per_qubit=max_tunes_per_qubit,
    )


def flux_trim_tuner(
    max_shift_ghz: float = 0.040,
    precision_sigma_ghz: float = 0.001,
    max_tunes_per_qubit: int | None = None,
) -> TunerModel:
    """A flux-trim-like tuner: short reach, tight precision, re-adjustable."""
    return TunerModel(
        max_shift_ghz=max_shift_ghz,
        precision_sigma_ghz=precision_sigma_ghz,
        max_tunes_per_qubit=max_tunes_per_qubit,
    )
