"""Batch repair driver and the pipeline-facing :class:`TuningOptions`.

This is the seam between the tuning subsystem and the Monte-Carlo
pipeline.  The yield model fabricates a ``(batch, num_qubits)`` array,
screens it with :func:`repro.core.collisions.collision_free_mask`, and —
when a :class:`TuningOptions` is supplied — hands the batch to
:func:`repair_batch`, which walks only the *collided* devices in batch
order and applies the configured strategy to each.  Devices that were
collision-free as fabricated are never touched, so enabling tuning can
only add yield, never subtract it.

Determinism contract: :func:`repair_batch` consumes randomness from a
single generator in device order.  The yield model's chunked estimators
call it once per spawn-seeded chunk with that chunk's own generator
(after fabrication sampling), so a chunk repairs identically whether it
runs in the calling process or a worker — parallel == sequential stays
bit-identical, and zero-budget tuning reproduces the untuned counts
exactly (no-op strategies consume no randomness at all).
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass, field

import numpy as np

from repro.core.collisions import CollisionThresholds, collision_free_mask
from repro.core.frequencies import FrequencyAllocation
from repro.engine.phases import phase
from repro.tuning.graph import CollisionGraph
from repro.tuning.models import TunerModel
from repro.tuning.strategies import GreedyLocalRepair, RepairStrategy, get_strategy

__all__ = ["TuningOptions", "BatchRepairOutcome", "repair_batch"]


@dataclass(frozen=True)
class TuningOptions:
    """Post-fabrication repair configuration threaded through the pipeline.

    A frozen dataclass of frozen dataclasses, so it pickles to engine
    workers and renders stably under the engine's content-addressed
    cache keys — a tuned sweep point and its untuned twin can never
    share a cache entry, while sweeps that pass no options keep their
    historical parameter sets (and cache identities) untouched.

    Attributes
    ----------
    tuner:
        The tuning tool's capabilities (reach, precision, budget).
    strategy:
        The repair strategy instance; defaults to greedy local repair.
    """

    tuner: TunerModel = field(default_factory=TunerModel)
    strategy: RepairStrategy = field(default_factory=GreedyLocalRepair)

    @classmethod
    def build(
        cls,
        strategy: str = "greedy",
        max_shift_ghz: float | None = None,
        precision_sigma_ghz: float | None = None,
        max_tunes_per_qubit: int | None = None,
    ) -> "TuningOptions":
        """CLI-friendly constructor: strategy by name, tuner knobs by value.

        ``None`` keeps a knob at its :class:`TunerModel` default — note
        this means an unlimited budget cannot be *restored* through this
        constructor (it already is the default).
        """
        overrides = {
            name: value
            for name, value in {
                "max_shift_ghz": max_shift_ghz,
                "precision_sigma_ghz": precision_sigma_ghz,
                "max_tunes_per_qubit": max_tunes_per_qubit,
            }.items()
            if value is not None
        }
        return cls(
            tuner=dataclasses.replace(TunerModel(), **overrides),
            strategy=get_strategy(strategy),
        )


@dataclass
class BatchRepairOutcome:
    """Aggregate result of repairing one fabricated batch.

    Attributes
    ----------
    frequencies:
        The batch with repaired devices' rows replaced (input rows for
        devices that were not touched).
    as_fab_mask, final_mask:
        Collision-free masks before and after repair; ``final_mask`` is
        recomputed with the authoritative batched evaluator, and
        ``final_mask & ~as_fab_mask`` marks the dies repair recovered.
    tuned_qubits, total_tunes:
        Accepted-shift bookkeeping summed over the batch.
    tuned_qubit_indices:
        Per-device identity of the accepted shifts: device index ->
        sorted qubit indices that were shifted (devices repair never
        changed are absent).
    """

    frequencies: np.ndarray
    as_fab_mask: np.ndarray
    final_mask: np.ndarray
    tuned_qubits: int = 0
    total_tunes: int = 0
    tuned_qubit_indices: dict[int, tuple[int, ...]] = field(default_factory=dict)

    @property
    def num_as_fab(self) -> int:
        """Devices collision-free straight out of fabrication."""
        return int(self.as_fab_mask.sum())

    @property
    def num_free(self) -> int:
        """Collision-free devices after repair (as-fab survivors included)."""
        return int(self.final_mask.sum())

    @property
    def num_repaired(self) -> int:
        """Devices that are collision-free *only* thanks to repair."""
        return int((self.final_mask & ~self.as_fab_mask).sum())

    @property
    def repaired_mask(self) -> np.ndarray:
        """Mask of the dies repair recovered."""
        return self.final_mask & ~self.as_fab_mask


def repair_batch(
    allocation: FrequencyAllocation,
    frequencies: np.ndarray,
    tuning: TuningOptions,
    rng: np.random.Generator,
    thresholds: CollisionThresholds | None = None,
) -> BatchRepairOutcome:
    """Apply the configured repair strategy to every collided device.

    Parameters
    ----------
    allocation:
        Frequency plan shared by the batch (defines the collision graph).
    frequencies:
        ``(batch, num_qubits)`` as-fabricated frequencies.  Never
        modified; repaired devices are written into a copy.
    tuning:
        Tuner model + strategy.
    rng:
        Randomness for actuation noise and stochastic strategies,
        consumed in device order (see the module docstring).
    thresholds:
        Collision windows; defaults to the Table I values.
    """
    frequencies = np.asarray(frequencies, dtype=float)
    as_fab_mask = collision_free_mask(allocation, frequencies, thresholds)
    if as_fab_mask.all() or tuning.tuner.is_noop:
        return BatchRepairOutcome(
            frequencies=frequencies,
            as_fab_mask=as_fab_mask,
            final_mask=as_fab_mask.copy(),
        )

    graph = CollisionGraph(allocation, thresholds)
    repaired = frequencies.copy()
    tuned_qubits = 0
    total_tunes = 0
    tuned_indices: dict[int, tuple[int, ...]] = {}
    collided = np.flatnonzero(~as_fab_mask)
    # Device-major screening: one vectorised pass hands every strategy
    # its device's violated-criteria count, replacing the per-die
    # Python-level evaluation each repair() call used to open with.
    # Third-party strategies that predate the keyword still work.
    with phase("repair"):
        initials = graph.batch_total_violations(frequencies[collided])
        takes_initial = "initial_violations" in inspect.signature(
            tuning.strategy.repair
        ).parameters
        for position, index in enumerate(collided):
            if takes_initial:
                outcome = tuning.strategy.repair(
                    graph,
                    frequencies[index],
                    tuning.tuner,
                    rng,
                    initial_violations=int(initials[position]),
                )
            else:
                outcome = tuning.strategy.repair(
                    graph, frequencies[index], tuning.tuner, rng
                )
            if outcome.changed:
                repaired[index] = outcome.frequencies
                tuned_qubits += outcome.tuned_qubits
                total_tunes += outcome.total_tunes
                tuned_indices[int(index)] = outcome.tuned_qubit_indices
    # Only rows a strategy actually changed can differ from the as-fab
    # screening, so the authoritative final recheck runs on that subset
    # (bit-identical to rechecking the full batch, severalfold cheaper
    # when repair touches few dies).
    final_mask = as_fab_mask.copy()
    if tuned_indices:
        changed = np.fromiter(sorted(tuned_indices), dtype=np.int64)
        final_mask[changed] = collision_free_mask(
            allocation, repaired[changed], thresholds
        )
    return BatchRepairOutcome(
        frequencies=repaired,
        as_fab_mask=as_fab_mask,
        final_mask=final_mask,
        tuned_qubits=tuned_qubits,
        total_tunes=total_tunes,
        tuned_qubit_indices=tuned_indices,
    )
