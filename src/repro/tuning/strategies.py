"""Repair strategies: how a tuner's shifts are chosen for one device.

Every strategy implements the :class:`RepairStrategy` protocol::

    strategy.repair(graph, frequencies, tuner, rng) -> RepairOutcome

with the contract that the outcome's frequencies are **never more
collided than the input** (``violations_after <= violations_before``),
and that a no-op tuner (zero shift range or zero budget) returns the
input array bit-identically without consuming any randomness.  Both
guarantees are load-bearing: the first is the repair invariant the
property suite pins, the second is what makes zero-budget tuning
indistinguishable from the untuned pipeline.

Determinism: a strategy's only source of randomness is the ``rng`` it is
handed.  The batch driver (:func:`repro.tuning.repair.repair_batch`)
walks devices in batch order with one generator, and the yield model
derives that generator from each chunk's spawn seed — so a parallel
chunked run repairs literally the same devices with the same shots as a
sequential one.

Two strategies ship:

:class:`GreedyLocalRepair`
    Retune the most-collided qubits toward their design frequency,
    accepting each shot only when the violated criteria among the
    *touched* constraints strictly decrease (everything untouched is
    invariant, so the device total strictly decreases too).  Vectorised:
    the full device is scored in one pass per round and every candidate
    re-check evaluates only the incident edge/triple subsets.

:class:`AnnealingRepair`
    Seeded simulated annealing over bounded per-qubit shifts with a
    Metropolis acceptance rule and geometric cooling; returns the best
    state visited, which keeps the repair invariant even though the walk
    itself may pass through worse states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.tuning.graph import CollisionGraph
from repro.tuning.models import TunerModel

__all__ = [
    "RepairOutcome",
    "RepairStrategy",
    "GreedyLocalRepair",
    "AnnealingRepair",
    "STRATEGIES",
    "get_strategy",
]


@dataclass(frozen=True)
class RepairOutcome:
    """What one repair attempt did to one device.

    Attributes
    ----------
    frequencies:
        Post-repair qubit frequencies (the input array, untouched, when
        nothing was tuned).
    violations_before, violations_after:
        Violated Table I criteria counts; ``after <= before`` always.
    tuned_qubits:
        Number of distinct qubits that received at least one accepted
        shift.
    total_tunes:
        Accepted shifts across the device (each consumes one unit of the
        per-qubit budget).
    tuned_qubit_indices:
        Sorted indices of the qubits that received at least one accepted
        shift (``len(...) == tuned_qubits``); carried through the
        chiplet bin and MCM assembly into ``Device`` metadata.
    """

    frequencies: np.ndarray
    violations_before: int
    violations_after: int
    tuned_qubits: int
    total_tunes: int
    tuned_qubit_indices: tuple[int, ...] = ()

    @property
    def success(self) -> bool:
        """True when the repaired device is collision-free."""
        return self.violations_after == 0

    @property
    def changed(self) -> bool:
        """True when at least one shift was accepted."""
        return self.total_tunes > 0


def _noop(frequencies: np.ndarray, violations: int) -> RepairOutcome:
    return RepairOutcome(
        frequencies=frequencies,
        violations_before=violations,
        violations_after=violations,
        tuned_qubits=0,
        total_tunes=0,
    )


@runtime_checkable
class RepairStrategy(Protocol):
    """The pluggable repair contract (see the module docstring)."""

    name: str

    def repair(
        self,
        graph: CollisionGraph,
        frequencies: np.ndarray,
        tuner: TunerModel,
        rng: np.random.Generator,
        initial_violations: int | None = None,
    ) -> RepairOutcome:
        """Repair one device; must uphold the never-worse invariant.

        ``initial_violations``, when given, is the device's precomputed
        violated-criteria count (the batch driver screens every collided
        die in one vectorised pass) — strategies must treat it exactly
        like their own ``graph.total_violations(frequencies)``.
        """
        ...


@dataclass(frozen=True)
class GreedyLocalRepair:
    """Deterministic-order greedy repair with local re-checks.

    Each round ranks the collided qubits (most violations first, ties by
    index) and aims one shot per qubit at its design frequency — the
    point the frequency plan certified collision-free.  The *total*
    displacement from the as-fabricated frequency is clipped to the
    tuner's reach (re-tuning a qubit in a later round re-aims from the
    as-fab baseline, it never walks past the bound) and each shot is
    blurred by the actuation noise.  A shot is kept only when the
    violated criteria among the qubit's touched constraints strictly
    decrease; rounds repeat while they help, up to ``max_rounds``.

    The candidate screen is staged: every round scores all qubits'
    touched criteria in one vectorised ``per_qubit_violations`` pass
    (and, for noiseless tuners, batches every candidate's "after" count
    through one ``batch_total_violations`` call), falling back to scalar
    re-checks only for qubits whose criteria an earlier accept in the
    same round has dirtied.  Accepts, landing points and rng consumption
    are bit-identical to the scalar reference loop
    (:meth:`_repair_reference`), which the parity suite pins.

    Attributes
    ----------
    max_rounds:
        Upper bound on repair rounds per device (each round is one pass
        over the currently collided qubits).
    name:
        Registry/CLI identifier (a dataclass field so serialised
        options stay attributable to their strategy).
    """

    max_rounds: int = 3
    name: str = "greedy"

    def repair(
        self,
        graph: CollisionGraph,
        frequencies: np.ndarray,
        tuner: TunerModel,
        rng: np.random.Generator,
        initial_violations: int | None = None,
    ) -> RepairOutcome:
        initial = (
            initial_violations
            if initial_violations is not None
            else graph.total_violations(frequencies)
        )
        if initial == 0 or tuner.is_noop:
            return _noop(frequencies, initial)

        budget = tuner.budget_for(graph.num_qubits)
        as_fab = frequencies.astype(float, copy=True)
        repaired = as_fab.copy()
        tunes = np.zeros(graph.num_qubits, dtype=np.int64)
        total = initial
        sigma = tuner.precision_sigma_ghz
        reach = tuner.max_shift_ghz
        # Deterministic landing points before actuation noise: aim every
        # qubit at its design frequency with the total displacement from
        # the as-fabricated baseline clipped to the tuner's reach.  The
        # scalar reference computes exactly these values one at a time.
        targets = as_fab + np.clip(graph.ideal - as_fab, -reach, reach)

        for _ in range(self.max_rounds):
            # Staged screen: one vectorised pass scores every qubit's
            # touched criteria for the round.  per_qubit[q] equals the
            # scalar loop's per-candidate "before" re-check as long as no
            # accepted shift has touched one of q's criteria yet, so the
            # walk below only falls back to a scalar re-check for qubits
            # dirtied by an earlier accept in the same round.
            per_qubit = graph.per_qubit_violations(repaired)
            order = np.argsort(-per_qubit, kind="stable")
            ranked = order[per_qubit[order] > 0]
            after_screen = None
            if sigma <= 0 and ranked.size:
                # Noiseless actuation: every candidate's landing point is
                # known up front, so the "after" counts batch into one
                # device-major pass too.  Row i scores round-start state
                # with ranked[i] moved to its target; subtracting the
                # round-start total isolates the touched-criteria delta
                # (untouched criteria cancel), which is what the scalar
                # reference measures.
                candidates = np.repeat(repaired[np.newaxis, :], ranked.size, axis=0)
                candidates[np.arange(ranked.size), ranked] = targets[ranked]
                after_screen = (
                    graph.batch_total_violations(candidates) - total + per_qubit[ranked]
                )
            improved = False
            dirty = np.zeros(graph.num_qubits, dtype=bool)
            for position, qubit in enumerate(ranked):
                qubit = int(qubit)
                if tunes[qubit] >= budget:
                    continue
                is_dirty = bool(dirty[qubit])
                if is_dirty:
                    edge_idx, triple_idx = graph.touched(qubit)
                    before = graph.edge_violations(
                        repaired, edge_idx
                    ) + graph.triple_violations(repaired, triple_idx)
                else:
                    before = int(per_qubit[qubit])
                if before == 0:
                    continue  # already fixed by an earlier shift this round
                # The actuation-noise draw must stay a per-candidate
                # scalar in exactly this position: the reference draws
                # conditioned on the evolving before > 0 check, and the
                # rng stream is pinned bit-identical by the parity suite.
                noise = rng.normal(0.0, sigma) if sigma > 0 else 0.0
                if after_screen is not None and not is_dirty:
                    after = int(after_screen[position])
                    accepted = after < before
                    if accepted:
                        repaired[qubit] = targets[qubit]
                else:
                    if not is_dirty:
                        edge_idx, triple_idx = graph.touched(qubit)
                    previous = repaired[qubit]
                    repaired[qubit] = targets[qubit] + noise
                    after = graph.edge_violations(
                        repaired, edge_idx
                    ) + graph.triple_violations(repaired, triple_idx)
                    accepted = after < before
                    if not accepted:
                        repaired[qubit] = previous
                if accepted:
                    tunes[qubit] += 1
                    total += after - before
                    improved = True
                    dirty[graph.constraint_neighbors(qubit)] = True
                    if total == 0:
                        break
            if total == 0 or not improved:
                break

        if not tunes.any():
            return _noop(frequencies, initial)
        return RepairOutcome(
            frequencies=repaired,
            violations_before=initial,
            violations_after=graph.total_violations(repaired),
            tuned_qubits=int((tunes > 0).sum()),
            total_tunes=int(tunes.sum()),
            tuned_qubit_indices=tuple(np.flatnonzero(tunes > 0).tolist()),
        )

    def _repair_reference(
        self,
        graph: CollisionGraph,
        frequencies: np.ndarray,
        tuner: TunerModel,
        rng: np.random.Generator,
        initial_violations: int | None = None,
    ) -> RepairOutcome:
        """The historical scalar loop, kept verbatim as the parity oracle.

        ``repair`` must match this qubit-for-qubit: same accepts, same
        landing points, same rng stream.  The parity suite drives both
        over random collided batches and compares outcomes *and* final
        generator states.
        """
        initial = (
            initial_violations
            if initial_violations is not None
            else graph.total_violations(frequencies)
        )
        if initial == 0 or tuner.is_noop:
            return _noop(frequencies, initial)

        budget = tuner.budget_for(graph.num_qubits)
        as_fab = frequencies.astype(float, copy=True)
        repaired = as_fab.copy()
        tunes = np.zeros(graph.num_qubits, dtype=np.int64)
        total = initial
        sigma = tuner.precision_sigma_ghz
        reach = tuner.max_shift_ghz

        for _ in range(self.max_rounds):
            per_qubit = graph.per_qubit_violations(repaired)
            order = np.argsort(-per_qubit, kind="stable")
            improved = False
            for qubit in order:
                qubit = int(qubit)
                if per_qubit[qubit] == 0:
                    break  # descending order: the rest are collision-free
                if tunes[qubit] >= budget:
                    continue
                edge_idx, triple_idx = graph.touched(qubit)
                before = graph.edge_violations(
                    repaired, edge_idx
                ) + graph.triple_violations(repaired, triple_idx)
                if before == 0:
                    continue  # already fixed by an earlier shift this round
                # Aim at the design frequency; the tuner bounds the total
                # intended displacement from the as-fabricated frequency
                # and its actuation noise blurs the landing point.
                intended_total = float(
                    np.clip(graph.ideal[qubit] - as_fab[qubit], -reach, reach)
                )
                noise = rng.normal(0.0, sigma) if sigma > 0 else 0.0
                previous = repaired[qubit]
                repaired[qubit] = as_fab[qubit] + intended_total + noise
                after = graph.edge_violations(
                    repaired, edge_idx
                ) + graph.triple_violations(repaired, triple_idx)
                if after < before:
                    tunes[qubit] += 1
                    total += after - before
                    improved = True
                    if total == 0:
                        break
                else:
                    repaired[qubit] = previous
            if total == 0 or not improved:
                break

        if not tunes.any():
            return _noop(frequencies, initial)
        return RepairOutcome(
            frequencies=repaired,
            violations_before=initial,
            violations_after=graph.total_violations(repaired),
            tuned_qubits=int((tunes > 0).sum()),
            total_tunes=int(tunes.sum()),
            tuned_qubit_indices=tuple(np.flatnonzero(tunes > 0).tolist()),
        )


@dataclass(frozen=True)
class AnnealingRepair:
    """Seeded simulated annealing over bounded per-qubit shifts.

    Each step picks a uniformly random collided qubit with remaining
    budget, proposes a fresh total shift uniform in the tuner's reach
    (so the cumulative displacement from the as-fabricated frequency
    stays bounded by construction), blurs it with the actuation noise,
    and accepts by the Metropolis rule on the violated-criteria delta of
    the touched constraints.  The temperature cools geometrically, and
    the best state ever visited is returned — accepting uphill moves
    during the walk can escape local minima the greedy strategy gets
    stuck in, without ever handing back a device worse than its input.

    Attributes
    ----------
    steps:
        Proposal budget per device.
    initial_temperature:
        Metropolis temperature at step 0, in violated-criteria units.
    cooling:
        Geometric cooling factor applied after every step.
    name:
        Registry/CLI identifier (a dataclass field, see
        :class:`GreedyLocalRepair`).
    """

    steps: int = 300
    initial_temperature: float = 1.5
    cooling: float = 0.985
    name: str = "anneal"

    def repair(
        self,
        graph: CollisionGraph,
        frequencies: np.ndarray,
        tuner: TunerModel,
        rng: np.random.Generator,
        initial_violations: int | None = None,
    ) -> RepairOutcome:
        initial = (
            initial_violations
            if initial_violations is not None
            else graph.total_violations(frequencies)
        )
        if initial == 0 or tuner.is_noop:
            return _noop(frequencies, initial)

        budget = tuner.budget_for(graph.num_qubits)
        as_fab = frequencies.astype(float, copy=True)
        work = as_fab.copy()
        tunes = np.zeros(graph.num_qubits, dtype=np.int64)
        energy = initial
        best = None
        best_energy = initial
        best_tunes = None
        sigma = tuner.precision_sigma_ghz
        reach = tuner.max_shift_ghz
        temperature = self.initial_temperature

        for _ in range(self.steps):
            if energy == 0:
                break
            candidates = graph.violating_qubits(work)
            candidates = candidates[tunes[candidates] < budget]
            if candidates.size == 0:
                break
            qubit = int(candidates[rng.integers(candidates.size)])
            shift = rng.uniform(-reach, reach)
            noise = rng.normal(0.0, sigma) if sigma > 0 else 0.0
            edge_idx, triple_idx = graph.touched(qubit)
            before = graph.edge_violations(
                work, edge_idx
            ) + graph.triple_violations(work, triple_idx)
            previous = work[qubit]
            work[qubit] = as_fab[qubit] + shift + noise
            after = graph.edge_violations(
                work, edge_idx
            ) + graph.triple_violations(work, triple_idx)
            delta = after - before
            if delta <= 0 or rng.random() < np.exp(-delta / max(temperature, 1e-9)):
                tunes[qubit] += 1
                energy += delta
                if energy < best_energy:
                    best_energy = energy
                    best = work.copy()
                    best_tunes = tunes.copy()
            else:
                work[qubit] = previous
            temperature *= self.cooling

        if best is None:
            return _noop(frequencies, initial)
        return RepairOutcome(
            frequencies=best,
            violations_before=initial,
            violations_after=int(best_energy),
            tuned_qubits=int((best_tunes > 0).sum()),
            total_tunes=int(best_tunes.sum()),
            tuned_qubit_indices=tuple(np.flatnonzero(best_tunes > 0).tolist()),
        )


#: Registered strategies by CLI name.
STRATEGIES: dict[str, type] = {
    GreedyLocalRepair.name: GreedyLocalRepair,
    AnnealingRepair.name: AnnealingRepair,
}


def get_strategy(name: str) -> RepairStrategy:
    """Instantiate a registered strategy by name (defaults applied)."""
    if name not in STRATEGIES:
        known = ", ".join(sorted(STRATEGIES))
        raise KeyError(f"unknown repair strategy {name!r}; known: {known}")
    return STRATEGIES[name]()
