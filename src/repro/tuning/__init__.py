"""Post-fabrication frequency-repair subsystem.

The paper's only lever against collision-limited yield collapse is
tighter as-fabricated precision (a global sigma shrink).  Real fabs add
a second lever: *repair* — measure each die, then selectively shift
individual qubit frequencies within a bounded tuning range to break the
specific criteria that fired.  This package models that lever as a new
pipeline stage between fabrication and yield evaluation:

:mod:`repro.tuning.models`
    :class:`TunerModel` — bounded max shift, actuation precision,
    optional per-qubit tune-count budget; laser-anneal-like and
    flux-trim-like presets.
:mod:`repro.tuning.graph`
    :class:`CollisionGraph` — maps violated Table I criteria onto the
    qubits/edges involved, with per-qubit incidence so a shift re-checks
    only the criteria it can change.
:mod:`repro.tuning.strategies`
    The :class:`RepairStrategy` protocol and two implementations:
    vectorised greedy local repair and seeded simulated annealing.
:mod:`repro.tuning.repair`
    :class:`TuningOptions` (the object the yield model, sweeps, CLI and
    cache keys thread through) and :func:`repair_batch` (the batch
    driver with the parallel==sequential determinism contract).

See the README's "Post-fabrication repair" section for how to add a
strategy.
"""

from repro.tuning.graph import CollisionGraph
from repro.tuning.models import (
    DEFAULT_MAX_SHIFT_GHZ,
    DEFAULT_TUNER_SIGMA_GHZ,
    TunerModel,
    flux_trim_tuner,
    laser_anneal_tuner,
)
from repro.tuning.repair import BatchRepairOutcome, TuningOptions, repair_batch
from repro.tuning.strategies import (
    STRATEGIES,
    AnnealingRepair,
    GreedyLocalRepair,
    RepairOutcome,
    RepairStrategy,
    get_strategy,
)

__all__ = [
    "AnnealingRepair",
    "BatchRepairOutcome",
    "CollisionGraph",
    "DEFAULT_MAX_SHIFT_GHZ",
    "DEFAULT_TUNER_SIGMA_GHZ",
    "GreedyLocalRepair",
    "RepairOutcome",
    "RepairStrategy",
    "STRATEGIES",
    "TunerModel",
    "TuningOptions",
    "flux_trim_tuner",
    "get_strategy",
    "laser_anneal_tuner",
    "repair_batch",
]
