"""Collision-graph extraction: from violated criteria to repairable qubits.

Repairing a device is a *local* optimisation problem: shifting one
qubit's frequency can only change the Table I criteria whose edge or
control-triple contains that qubit.  :class:`CollisionGraph` precomputes
that incidence structure once per :class:`FrequencyAllocation` — the
edge indices and triple indices touching every qubit — so a repair
strategy can

1. evaluate the full device once (vectorised over all edges/triples),
2. locate the qubits participating in violated criteria, and
3. after each candidate shift, re-check **only the touched criteria**
   instead of the whole device.

The per-criterion formulas are the same as
:func:`repro.core.collisions.collision_free_mask` — the graph counts one
violation per (criterion type, edge/triple) pair, exactly like
:meth:`repro.core.collisions.CollisionReport.num_collisions` — so a
device the graph scores at zero violations is collision-free under the
authoritative batched mask.
"""

from __future__ import annotations

import numpy as np

from repro.core.collisions import CollisionThresholds
from repro.core.frequencies import FrequencyAllocation

__all__ = ["CollisionGraph"]

_EMPTY = np.zeros(0, dtype=np.int64)


class CollisionGraph:
    """Incidence structure of the seven criteria over one allocation.

    Parameters
    ----------
    allocation:
        The frequency plan whose directed edges / control triples define
        the criteria.  The graph is device-independent: one instance
        serves every sampled device of a batch.
    thresholds:
        Criterion windows; defaults to the paper's Table I values.
    """

    def __init__(
        self,
        allocation: FrequencyAllocation,
        thresholds: CollisionThresholds | None = None,
    ):
        self.allocation = allocation
        self.thresholds = thresholds or CollisionThresholds()
        self.ideal = allocation.ideal_frequencies
        self.alpha = allocation.anharmonicities
        self.num_qubits = allocation.num_qubits

        edges = allocation.directed_edges
        triples = allocation.control_triples
        self.edge_control = edges[:, 0] if edges.shape[0] else _EMPTY
        self.edge_target = edges[:, 1] if edges.shape[0] else _EMPTY
        self.triple_control = triples[:, 0] if triples.shape[0] else _EMPTY
        self.triple_a = triples[:, 1] if triples.shape[0] else _EMPTY
        self.triple_b = triples[:, 2] if triples.shape[0] else _EMPTY

        edge_lists: list[list[int]] = [[] for _ in range(self.num_qubits)]
        for index in range(edges.shape[0]):
            edge_lists[int(edges[index, 0])].append(index)
            edge_lists[int(edges[index, 1])].append(index)
        triple_lists: list[list[int]] = [[] for _ in range(self.num_qubits)]
        for index in range(triples.shape[0]):
            for qubit in triples[index]:
                triple_lists[int(qubit)].append(index)
        self._edges_by_qubit = [np.asarray(l, dtype=np.int64) for l in edge_lists]
        self._triples_by_qubit = [np.asarray(l, dtype=np.int64) for l in triple_lists]
        self._neighbors_by_qubit: list[np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # Criterion evaluation (single device, vectorised over constraints)
    # ------------------------------------------------------------------ #
    def edge_violations(
        self, frequencies: np.ndarray, edge_indices: np.ndarray | None = None
    ) -> int:
        """Violated pair criteria (types 1-4) over selected edges.

        ``edge_indices`` restricts the check to a subset (the touched
        edges of a candidate shift); ``None`` checks every edge.
        """
        control = self.edge_control
        target = self.edge_target
        if edge_indices is not None:
            control = control[edge_indices]
            target = target[edge_indices]
        if control.shape[0] == 0:
            return 0
        th = self.thresholds
        fi = frequencies[control]
        fj = frequencies[target]
        ai = self.alpha[control]
        aj = self.alpha[target]
        type1 = np.abs(fi - fj) < th.type1_ghz
        type2 = np.abs(fi + ai / 2.0 - fj) < th.type2_ghz
        type3 = (np.abs(fi - (fj + aj)) < th.type3_ghz) | (
            np.abs(fj - (fi + ai)) < th.type3_ghz
        )
        type4 = (fj < fi + ai) | (fi < fj)
        return int(type1.sum() + type2.sum() + type3.sum() + type4.sum())

    def triple_violations(
        self, frequencies: np.ndarray, triple_indices: np.ndarray | None = None
    ) -> int:
        """Violated shared-control criteria (types 5-7) over selected triples."""
        control = self.triple_control
        t_a = self.triple_a
        t_b = self.triple_b
        if triple_indices is not None:
            control = control[triple_indices]
            t_a = t_a[triple_indices]
            t_b = t_b[triple_indices]
        if control.shape[0] == 0:
            return 0
        th = self.thresholds
        fi = frequencies[control]
        fj = frequencies[t_a]
        fk = frequencies[t_b]
        ai = self.alpha[control]
        aj = self.alpha[t_a]
        ak = self.alpha[t_b]
        type5 = np.abs(fj - fk) < th.type5_ghz
        type6 = (np.abs(fj - (fk + ak)) < th.type6_ghz) | (
            np.abs(fk - (fj + aj)) < th.type6_ghz
        )
        type7 = np.abs(2.0 * fi + ai - (fj + fk)) < th.type7_ghz
        return int(type5.sum() + type6.sum() + type7.sum())

    def total_violations(self, frequencies: np.ndarray) -> int:
        """Violated criteria over the whole device (0 == collision-free)."""
        return self.edge_violations(frequencies) + self.triple_violations(frequencies)

    # ------------------------------------------------------------------ #
    # Criterion evaluation (device-major: whole batch, one pass)
    # ------------------------------------------------------------------ #
    def batch_total_violations(self, frequencies: np.ndarray) -> np.ndarray:
        """Per-device violated-criteria counts for a ``(batch, num_qubits)``
        array — every criterion extracted across the batch dimension in one
        vectorised pass.

        Row ``i`` equals ``total_violations(frequencies[i])`` exactly (the
        same comparisons summed in a different order over integers), so
        the batch repair driver can screen every collided device up front
        instead of paying one Python-level evaluation per die.
        """
        freqs = np.asarray(frequencies, dtype=float)
        if freqs.ndim == 1:
            freqs = freqs[np.newaxis, :]
        counts = np.zeros(freqs.shape[0], dtype=np.int64)
        th = self.thresholds
        if self.edge_control.shape[0]:
            fi = freqs[:, self.edge_control]
            fj = freqs[:, self.edge_target]
            ai = self.alpha[self.edge_control][np.newaxis, :]
            aj = self.alpha[self.edge_target][np.newaxis, :]
            counts += (np.abs(fi - fj) < th.type1_ghz).sum(axis=1)
            counts += (np.abs(fi + ai / 2.0 - fj) < th.type2_ghz).sum(axis=1)
            counts += (
                (np.abs(fi - (fj + aj)) < th.type3_ghz)
                | (np.abs(fj - (fi + ai)) < th.type3_ghz)
            ).sum(axis=1)
            counts += ((fj < fi + ai) | (fi < fj)).sum(axis=1)
        if self.triple_control.shape[0]:
            fi = freqs[:, self.triple_control]
            fj = freqs[:, self.triple_a]
            fk = freqs[:, self.triple_b]
            ai = self.alpha[self.triple_control][np.newaxis, :]
            aj = self.alpha[self.triple_a][np.newaxis, :]
            ak = self.alpha[self.triple_b][np.newaxis, :]
            counts += (np.abs(fj - fk) < th.type5_ghz).sum(axis=1)
            counts += (
                (np.abs(fj - (fk + ak)) < th.type6_ghz)
                | (np.abs(fk - (fj + aj)) < th.type6_ghz)
            ).sum(axis=1)
            counts += (np.abs(2.0 * fi + ai - (fj + fk)) < th.type7_ghz).sum(axis=1)
        return counts

    # ------------------------------------------------------------------ #
    # Locality
    # ------------------------------------------------------------------ #
    def touched(self, qubit: int) -> tuple[np.ndarray, np.ndarray]:
        """``(edge_indices, triple_indices)`` containing ``qubit``.

        These are exactly the criteria a shift of ``qubit`` can change;
        everything else is invariant under the shift.
        """
        return self._edges_by_qubit[qubit], self._triples_by_qubit[qubit]

    def constraint_neighbors(self, qubit: int) -> np.ndarray:
        """Sorted qubits sharing a criterion with ``qubit`` (incl. itself).

        Shifting any of these invalidates a precomputed evaluation of
        ``qubit``'s touched criteria; shifting anything else cannot.
        The greedy strategy's staged screen uses this as its dirty set.
        Built lazily in one pass and cached on the graph.
        """
        if self._neighbors_by_qubit is None:
            members: list[set[int]] = [{q} for q in range(self.num_qubits)]
            for u, v in zip(self.edge_control, self.edge_target):
                members[int(u)].add(int(v))
                members[int(v)].add(int(u))
            for c, a, b in zip(self.triple_control, self.triple_a, self.triple_b):
                triple = (int(c), int(a), int(b))
                for q in triple:
                    members[q].update(triple)
            self._neighbors_by_qubit = [
                np.fromiter(sorted(s), count=len(s), dtype=np.int64) for s in members
            ]
        return self._neighbors_by_qubit[qubit]

    def local_violations(self, frequencies: np.ndarray, qubit: int) -> int:
        """Violated criteria among the constraints touching ``qubit``."""
        edge_idx, triple_idx = self.touched(qubit)
        return self.edge_violations(frequencies, edge_idx) + self.triple_violations(
            frequencies, triple_idx
        )

    def per_qubit_violations(self, frequencies: np.ndarray) -> np.ndarray:
        """Number of violated criteria each qubit participates in.

        Computed in one vectorised pass: every violated edge scores both
        endpoints, every violated triple all three members.
        """
        counts = np.zeros(self.num_qubits, dtype=np.int64)
        th = self.thresholds
        if self.edge_control.shape[0]:
            fi = frequencies[self.edge_control]
            fj = frequencies[self.edge_target]
            ai = self.alpha[self.edge_control]
            aj = self.alpha[self.edge_target]
            per_edge = (
                (np.abs(fi - fj) < th.type1_ghz).astype(np.int64)
                + (np.abs(fi + ai / 2.0 - fj) < th.type2_ghz)
                + (
                    (np.abs(fi - (fj + aj)) < th.type3_ghz)
                    | (np.abs(fj - (fi + ai)) < th.type3_ghz)
                )
                + ((fj < fi + ai) | (fi < fj))
            )
            np.add.at(counts, self.edge_control, per_edge)
            np.add.at(counts, self.edge_target, per_edge)
        if self.triple_control.shape[0]:
            fi = frequencies[self.triple_control]
            fj = frequencies[self.triple_a]
            fk = frequencies[self.triple_b]
            ai = self.alpha[self.triple_control]
            aj = self.alpha[self.triple_a]
            ak = self.alpha[self.triple_b]
            per_triple = (
                (np.abs(fj - fk) < th.type5_ghz).astype(np.int64)
                + (
                    (np.abs(fj - (fk + ak)) < th.type6_ghz)
                    | (np.abs(fk - (fj + aj)) < th.type6_ghz)
                )
                + (np.abs(2.0 * fi + ai - (fj + fk)) < th.type7_ghz)
            )
            np.add.at(counts, self.triple_control, per_triple)
            np.add.at(counts, self.triple_a, per_triple)
            np.add.at(counts, self.triple_b, per_triple)
        return counts

    def violating_qubits(self, frequencies: np.ndarray) -> np.ndarray:
        """Sorted indices of qubits participating in a violated criterion."""
        return np.flatnonzero(self.per_qubit_violations(frequencies) > 0)
