"""Physical-qubit record used by the device model.

The paper's modelling only needs a qubit's actual frequency, its ideal
(design) frequency label and its anharmonicity, but real calibration data
also reports coherence times, so the record carries optional T1/T2 fields
for use by extended noise models.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PhysicalQubit"]


@dataclass(frozen=True)
class PhysicalQubit:
    """One physical transmon qubit.

    Attributes
    ----------
    index:
        Position of the qubit in its device.
    frequency_ghz:
        Actual (post-fabrication) |0>-|1> transition frequency.
    ideal_frequency_ghz:
        Design-target frequency (one of F0/F1/F2).
    label:
        Frequency label: 0, 1 or 2.
    anharmonicity_ghz:
        Transmon anharmonicity (negative).
    t1_us, t2_us:
        Optional relaxation / dephasing times in microseconds.
    tuned:
        True when the qubit's frequency was shifted by a
        post-fabrication tuner (see :mod:`repro.tuning`); the frequency
        fields then describe the *post-repair* device.
    """

    index: int
    frequency_ghz: float
    ideal_frequency_ghz: float
    label: int
    anharmonicity_ghz: float = -0.330
    t1_us: float | None = None
    t2_us: float | None = None
    tuned: bool = False

    @property
    def frequency_offset_ghz(self) -> float:
        """Deviation of the actual frequency from its design target."""
        return self.frequency_ghz - self.ideal_frequency_ghz
