"""Gate-error models: detuning-binned empirical CX errors and link errors.

Two models feed the architecture evaluation:

* :class:`EmpiricalCXModel` — the paper's Section VI-A on-chip model.  CX
  infidelities observed on a (synthetic) Washington-class calibration
  dataset are binned by qubit-qubit detuning (0.1 GHz bins); assigning an
  error to a fabricated coupling means sampling from the bin matching its
  actual detuning.
* :class:`LinkErrorModel` — the Section VI-B inter-chip model.  The
  published flip-chip experiments report an average two-qubit link fidelity
  of 92.5 % (median 94.4 %); a log-normal distribution matched to those two
  statistics stands in for the unavailable raw data.  Scaled variants model
  the improved-link scenarios of Fig. 9 (e_link / e_chip of 3, 2 and 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import log, sqrt

import numpy as np

__all__ = [
    "EmpiricalCXModel",
    "LinkErrorModel",
    "DEFAULT_BIN_WIDTH_GHZ",
    "LINK_MEAN_INFIDELITY",
    "LINK_MEDIAN_INFIDELITY",
    "ON_CHIP_MEAN_INFIDELITY",
    "ON_CHIP_MEDIAN_INFIDELITY",
]

#: Detuning bin width used in the paper's Fig. 7 (GHz).
DEFAULT_BIN_WIDTH_GHZ = 0.1

#: Published statistics the models are matched against.
LINK_MEAN_INFIDELITY = 0.075     # 1 - 92.5 % coherence-limited fidelity
LINK_MEDIAN_INFIDELITY = 0.056   # 1 - 94.4 %
ON_CHIP_MEAN_INFIDELITY = 0.018  # IBM Washington average CX infidelity
ON_CHIP_MEDIAN_INFIDELITY = 0.012


@dataclass
class EmpiricalCXModel:
    """Detuning-binned empirical two-qubit gate error model.

    Attributes
    ----------
    bin_width_ghz:
        Width of each detuning bin.
    bins:
        Mapping from bin index (``int(|detuning| / bin_width)``) to the array
        of infidelity samples observed in that bin.
    """

    bin_width_ghz: float = DEFAULT_BIN_WIDTH_GHZ
    bins: dict[int, np.ndarray] = field(default_factory=dict)

    @classmethod
    def fit(
        cls,
        detunings_ghz: np.ndarray,
        infidelities: np.ndarray,
        bin_width_ghz: float = DEFAULT_BIN_WIDTH_GHZ,
    ) -> "EmpiricalCXModel":
        """Build the model from paired (detuning, infidelity) observations."""
        detunings = np.abs(np.asarray(detunings_ghz, dtype=float))
        errors = np.asarray(infidelities, dtype=float)
        if detunings.shape != errors.shape:
            raise ValueError("detunings and infidelities must have the same shape")
        if detunings.size == 0:
            raise ValueError("cannot fit an empirical model to zero observations")
        if bin_width_ghz <= 0:
            raise ValueError("bin_width_ghz must be positive")
        indices = np.floor(detunings / bin_width_ghz).astype(int)
        bins = {
            int(index): errors[indices == index]
            for index in np.unique(indices)
        }
        return cls(bin_width_ghz=bin_width_ghz, bins=bins)

    def _all_samples(self) -> np.ndarray:
        return np.concatenate(list(self.bins.values()))

    @property
    def num_observations(self) -> int:
        """Total number of observations behind the model."""
        return int(sum(v.size for v in self.bins.values()))

    def bin_index(self, detuning_ghz: float) -> int:
        """Bin index a detuning falls into."""
        return int(abs(detuning_ghz) // self.bin_width_ghz)

    def _bin_samples(self, detuning_ghz: float) -> np.ndarray:
        index = self.bin_index(detuning_ghz)
        if index in self.bins:
            return self.bins[index]
        # Fall back to the nearest populated bin, then to the global pool.
        populated = sorted(self.bins)
        if populated:
            nearest = min(populated, key=lambda b: abs(b - index))
            return self.bins[nearest]
        return self._all_samples()

    def sample(self, detuning_ghz: float, rng: np.random.Generator) -> float:
        """Draw one infidelity for a coupling with the given detuning."""
        samples = self._bin_samples(detuning_ghz)
        return float(rng.choice(samples))

    def sample_many(
        self, detunings_ghz: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw one infidelity per detuning in the input array.

        The sampling is vectorised per detuning bin, so characterising the
        couplings of thousands of fabricated chiplets stays cheap.
        """
        detunings = np.abs(np.asarray(detunings_ghz, dtype=float))
        flat = np.ravel(detunings)
        indices = np.floor(flat / self.bin_width_ghz).astype(int)
        populated = np.asarray(sorted(self.bins), dtype=int)
        if populated.size == 0:
            raise ValueError("empirical model has no observations")
        # Snap every requested bin to the nearest populated bin.
        nearest = populated[
            np.argmin(np.abs(indices[:, np.newaxis] - populated[np.newaxis, :]), axis=1)
        ]
        output = np.empty(flat.shape, dtype=float)
        for bin_index in np.unique(nearest):
            mask = nearest == bin_index
            samples = self.bins[int(bin_index)]
            output[mask] = rng.choice(samples, size=int(mask.sum()))
        return output.reshape(np.shape(detunings_ghz))

    def mean_for(self, detuning_ghz: float) -> float:
        """Mean infidelity of the bin matching the detuning."""
        return float(self._bin_samples(detuning_ghz).mean())

    def median(self) -> float:
        """Median infidelity over every observation."""
        return float(np.median(self._all_samples()))

    def mean(self) -> float:
        """Mean infidelity over every observation."""
        return float(self._all_samples().mean())

    def bin_means(self) -> dict[float, float]:
        """Mapping from bin centre (GHz) to the mean infidelity of the bin."""
        return {
            (index + 0.5) * self.bin_width_ghz: float(samples.mean())
            for index, samples in sorted(self.bins.items())
        }


@dataclass(frozen=True)
class LinkErrorModel:
    """Log-normal model of inter-chip (flip-chip) two-qubit gate error.

    Attributes
    ----------
    mu, sigma:
        Parameters of the underlying log-normal distribution: the median is
        ``exp(mu)`` and the mean ``exp(mu + sigma**2 / 2)``.
    max_infidelity:
        Samples are clipped to this value so pathological draws cannot
        exceed a completely depolarising gate.
    """

    mu: float
    sigma: float
    max_infidelity: float = 0.5

    @classmethod
    def from_mean_median(
        cls,
        mean: float = LINK_MEAN_INFIDELITY,
        median: float = LINK_MEDIAN_INFIDELITY,
    ) -> "LinkErrorModel":
        """Match a log-normal to a published (mean, median) pair."""
        if median <= 0 or mean <= 0:
            raise ValueError("mean and median must be positive")
        if mean < median:
            raise ValueError("a log-normal requires mean >= median")
        mu = log(median)
        sigma = sqrt(2.0 * log(mean / median))
        return cls(mu=mu, sigma=sigma)

    @property
    def mean(self) -> float:
        """Mean link infidelity."""
        return float(np.exp(self.mu + self.sigma**2 / 2.0))

    @property
    def median(self) -> float:
        """Median link infidelity."""
        return float(np.exp(self.mu))

    def scaled_to_mean(self, target_mean: float) -> "LinkErrorModel":
        """Multiplicatively rescale the distribution to a new mean.

        Used for the Fig. 9 link-improvement scenarios where
        ``e_link = r * e_chip`` for r in {3, 2, 1}.
        """
        if target_mean <= 0:
            raise ValueError("target_mean must be positive")
        shift = log(target_mean / self.mean)
        return LinkErrorModel(
            mu=self.mu + shift, sigma=self.sigma, max_infidelity=self.max_infidelity
        )

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw link infidelities (scalar when ``size`` is ``None``)."""
        draws = np.exp(rng.normal(self.mu, self.sigma, size=size))
        clipped = np.clip(draws, 0.0, self.max_infidelity)
        if size is None:
            return float(clipped)
        return clipped
