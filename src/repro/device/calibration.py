"""Synthetic IBM-style calibration data (substitute for real backend data).

The paper consumes real IBM Quantum calibration data in two places:

* Fig. 3(b): box plots of CX infidelity over 15 calibration cycles for the
  27-qubit Auckland (Falcon), 65-qubit Brooklyn (Hummingbird) and 127-qubit
  Washington (Eagle) processors — showing that median error and error
  spread grow with device size.
* Fig. 7 / Section VI-A: per-edge average CX infidelity vs. qubit-qubit
  detuning for Washington (median 1.2 %, mean 1.8 %), binned at 0.1 GHz,
  which seeds the empirical on-chip error model.

Real backend data is not available offline, so this module generates a
synthetic substitute that reproduces exactly the statistics the paper's
models consume: a detuning-dependent error landscape with excess error near
the collision conditions (near-null, half-anharmonicity and anharmonicity
detunings), multiplicative log-normal calibration noise, cycle-to-cycle
drift, and a device-size-dependent error scale matched to the published
Washington median/mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.architecture import get_architecture
from repro.core.fabrication import SIGMA_AS_FABRICATED_GHZ
from repro.device.noise import (
    EmpiricalCXModel,
    ON_CHIP_MEAN_INFIDELITY,
    ON_CHIP_MEDIAN_INFIDELITY,
)
from repro.topology.base import Lattice

__all__ = [
    "EdgeCalibration",
    "CalibrationSnapshot",
    "CalibrationDataset",
    "SyntheticCalibrationGenerator",
    "IBM_PROCESSORS",
    "washington_cx_model",
]

#: The three IBM processors analysed in Fig. 3 of the paper.
IBM_PROCESSORS = {
    "Auckland": {"qubits": 27, "family": "Falcon"},
    "Brooklyn": {"qubits": 65, "family": "Hummingbird"},
    "Washington": {"qubits": 127, "family": "Eagle"},
}

#: Number of calibration cycles gathered by the paper.
DEFAULT_NUM_CYCLES = 15


@dataclass(frozen=True)
class EdgeCalibration:
    """Calibration record of one two-qubit gate direction.

    Attributes
    ----------
    edge:
        Physical coupling as a ``(low, high)`` pair.
    detuning_ghz:
        Absolute qubit-qubit frequency detuning.
    cx_infidelity:
        Reported CX gate error for the cycle.
    """

    edge: tuple[int, int]
    detuning_ghz: float
    cx_infidelity: float


@dataclass
class CalibrationSnapshot:
    """All edge calibrations of one device for one calibration cycle."""

    cycle: int
    edges: list[EdgeCalibration] = field(default_factory=list)

    def infidelities(self) -> np.ndarray:
        """CX infidelities of every edge in the snapshot."""
        return np.asarray([e.cx_infidelity for e in self.edges], dtype=float)

    def median_infidelity(self) -> float:
        """Median CX infidelity of the snapshot."""
        return float(np.median(self.infidelities()))


@dataclass
class CalibrationDataset:
    """Multi-cycle calibration history of one device.

    Attributes
    ----------
    device_name:
        Identifier (e.g. ``"Washington"``).
    num_qubits:
        Device size.
    snapshots:
        One :class:`CalibrationSnapshot` per calibration cycle.
    """

    device_name: str
    num_qubits: int
    snapshots: list[CalibrationSnapshot] = field(default_factory=list)

    @property
    def num_cycles(self) -> int:
        """Number of calibration cycles in the dataset."""
        return len(self.snapshots)

    def all_infidelities(self) -> np.ndarray:
        """Every CX infidelity observation across all cycles."""
        return np.concatenate([s.infidelities() for s in self.snapshots])

    def median_infidelity(self) -> float:
        """Median CX infidelity over every cycle and edge."""
        return float(np.median(self.all_infidelities()))

    def mean_infidelity(self) -> float:
        """Mean CX infidelity over every cycle and edge."""
        return float(self.all_infidelities().mean())

    def infidelity_iqr(self) -> float:
        """Inter-quartile range of the CX infidelity distribution."""
        values = self.all_infidelities()
        q75, q25 = np.percentile(values, [75, 25])
        return float(q75 - q25)

    def edge_averages(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-edge (detuning, mean infidelity) averaged over cycles.

        This is exactly the data plotted in the paper's Fig. 7: one point per
        coupling, averaging the gate error over every calibration cycle.
        """
        by_edge: dict[tuple[int, int], list[float]] = {}
        detuning: dict[tuple[int, int], float] = {}
        for snapshot in self.snapshots:
            for record in snapshot.edges:
                by_edge.setdefault(record.edge, []).append(record.cx_infidelity)
                detuning[record.edge] = record.detuning_ghz
        edges = sorted(by_edge)
        detunings = np.asarray([detuning[e] for e in edges], dtype=float)
        averages = np.asarray([float(np.mean(by_edge[e])) for e in edges], dtype=float)
        return detunings, averages


@dataclass(frozen=True)
class SyntheticCalibrationGenerator:
    """Generator of synthetic IBM-style calibration datasets.

    The error landscape is built as ``shape(detuning) * drift * noise`` and
    then rescaled so the whole-device median matches a size-dependent target
    anchored at the published Washington statistics.  The ``shape`` term adds
    excess error near the Table I collision detunings (0, |a|/2 and |a|),
    which is what gives Fig. 7 its structure.

    Attributes
    ----------
    anharmonicity_ghz:
        Transmon anharmonicity controlling where the error peaks sit.
    frequency_spread_ghz:
        Scatter of actual frequencies around the topology's ideal pattern;
        the paper quotes ~0.1 GHz spreads for as-fabricated devices, which
        is what produces detunings spanning several bins.
    noise_sigma:
        Log-normal sigma of the per-edge, per-cycle calibration noise.
    median_at_washington, mean_to_median_ratio:
        Calibration anchors: the 127-qubit device is matched to the
        published 1.2 % median; other sizes scale linearly in size around
        that anchor with slope ``median_slope_per_qubit``.
    """

    anharmonicity_ghz: float = -0.330
    frequency_spread_ghz: float = SIGMA_AS_FABRICATED_GHZ
    noise_sigma: float = 0.55
    median_at_washington: float = ON_CHIP_MEDIAN_INFIDELITY
    mean_to_median_ratio: float = ON_CHIP_MEAN_INFIDELITY / ON_CHIP_MEDIAN_INFIDELITY
    median_slope_per_qubit: float = 3.0e-5
    cycle_drift_sigma: float = 0.12

    def _median_target(self, num_qubits: int) -> float:
        washington = IBM_PROCESSORS["Washington"]["qubits"]
        return self.median_at_washington + self.median_slope_per_qubit * (
            num_qubits - washington
        )

    def _shape(self, detuning: np.ndarray) -> np.ndarray:
        """Relative error landscape as a function of |detuning| (GHz)."""
        alpha = abs(self.anharmonicity_ghz)
        near_null = 4.0 * np.exp(-0.5 * (detuning / 0.025) ** 2)
        half_anharm = 1.8 * np.exp(-0.5 * ((detuning - alpha / 2.0) / 0.02) ** 2)
        anharm = 2.5 * np.exp(-0.5 * ((detuning - alpha) / 0.03) ** 2)
        baseline = 1.0 + 0.6 * detuning
        return baseline + near_null + half_anharm + anharm

    def generate(
        self,
        num_qubits: int,
        name: str | None = None,
        num_cycles: int = DEFAULT_NUM_CYCLES,
        seed: int | None = 11,
        lattice: Lattice | None = None,
        topology: str | None = None,
    ) -> CalibrationDataset:
        """Generate a calibration history for a device of any topology.

        Parameters
        ----------
        num_qubits:
            Device size in qubits.
        name:
            Dataset label; defaults to ``"synthetic-<n>"``.
        num_cycles:
            Number of calibration cycles to emit (the paper uses 15).
        seed:
            Random seed (``None`` for non-deterministic output).
        lattice:
            Optional pre-built lattice to reuse.
        topology:
            Registered topology name (heavy-hex when omitted).
        """
        rng = np.random.default_rng(seed)
        arch = get_architecture(topology)
        lattice = lattice or arch.lattice(num_qubits)
        allocation = arch.allocate(lattice)
        frequencies = allocation.ideal_frequencies + rng.normal(
            0.0, self.frequency_spread_ghz, size=allocation.num_qubits
        )

        edges = [tuple(sorted(map(int, edge))) for edge in lattice.edges]
        detunings = np.asarray(
            [abs(frequencies[u] - frequencies[v]) for u, v in edges], dtype=float
        )
        shape = self._shape(detunings)

        # Per-edge static quality factor plus per-cycle drift and noise.
        edge_quality = np.exp(rng.normal(0.0, self.noise_sigma, size=len(edges)))
        raw_cycles = []
        for _ in range(num_cycles):
            drift = np.exp(rng.normal(0.0, self.cycle_drift_sigma))
            noise = np.exp(rng.normal(0.0, self.noise_sigma / 2.0, size=len(edges)))
            raw_cycles.append(shape * edge_quality * drift * noise)
        raw = np.asarray(raw_cycles)

        # Rescale so the device median matches the size-dependent target.
        target_median = self._median_target(num_qubits)
        scale = target_median / float(np.median(raw))
        infidelities = np.clip(raw * scale, 1e-4, 0.9)

        dataset = CalibrationDataset(
            device_name=name or f"synthetic-{num_qubits}",
            num_qubits=num_qubits,
        )
        for cycle in range(num_cycles):
            snapshot = CalibrationSnapshot(cycle=cycle)
            for index, edge in enumerate(edges):
                snapshot.edges.append(
                    EdgeCalibration(
                        edge=edge,
                        detuning_ghz=float(detunings[index]),
                        cx_infidelity=float(infidelities[cycle, index]),
                    )
                )
            dataset.snapshots.append(snapshot)
        return dataset

    def generate_processor_suite(
        self, num_cycles: int = DEFAULT_NUM_CYCLES, seed: int | None = 11
    ) -> dict[str, CalibrationDataset]:
        """Generate the Fig. 3 trio: Auckland, Brooklyn and Washington."""
        suite = {}
        for offset, (name, info) in enumerate(IBM_PROCESSORS.items()):
            suite[name] = self.generate(
                num_qubits=info["qubits"],
                name=name,
                num_cycles=num_cycles,
                seed=None if seed is None else seed + offset,
            )
        return suite


def washington_cx_model(
    seed: int | None = 11,
    generator: SyntheticCalibrationGenerator | None = None,
) -> EmpiricalCXModel:
    """The Section VI-A empirical CX model, fit to a Washington-like dataset.

    Edge infidelities are averaged over the calibration cycles (one point
    per coupling, exactly as in Fig. 7) and then binned by detuning.
    """
    generator = generator or SyntheticCalibrationGenerator()
    dataset = generator.generate(
        IBM_PROCESSORS["Washington"]["qubits"], name="Washington", seed=seed
    )
    detunings, averages = dataset.edge_averages()
    return EmpiricalCXModel.fit(detunings, averages)
