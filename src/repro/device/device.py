"""The physical-device abstraction used by the evaluation pipeline.

A :class:`Device` bundles a coupling map, per-qubit frequencies and per-edge
two-qubit gate infidelities.  Both fabricated monolithic chips and assembled
multi-chip modules are represented by the same class; MCMs simply flag some
couplings as inter-chip links (carrying link-quality error rates).

The compiler consumes the coupling map; the fidelity and application
analyses consume the error map.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.frequencies import FrequencyAllocation
from repro.device.noise import EmpiricalCXModel, LinkErrorModel
from repro.device.qubit import PhysicalQubit
from repro.topology.coupling import CouplingMap

__all__ = ["Device"]


def _normalise_edge(edge: tuple[int, int]) -> tuple[int, int]:
    u, v = edge
    return (min(u, v), max(u, v))


@dataclass
class Device:
    """A quantum device ready for compilation and fidelity analysis.

    Attributes
    ----------
    name:
        Human-readable identifier.
    coupling:
        Qubit connectivity (including inter-chip link flags for MCMs).
    frequencies_ghz:
        Actual per-qubit frequencies.
    labels:
        Per-qubit frequency labels (0/1/2).
    edge_errors:
        Two-qubit gate infidelity for every coupling.
    metadata:
        Free-form details (chiplet size, MCM dimensions, ...).
    """

    name: str
    coupling: CouplingMap
    frequencies_ghz: np.ndarray
    labels: np.ndarray
    edge_errors: dict[tuple[int, int], float]
    metadata: dict = field(default_factory=dict)
    _edge_arrays: tuple[np.ndarray, np.ndarray] | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.frequencies_ghz = np.asarray(self.frequencies_ghz, dtype=float)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.frequencies_ghz.shape[0] != self.coupling.num_qubits:
            raise ValueError("frequency array does not match the qubit count")
        if self.labels.shape[0] != self.coupling.num_qubits:
            raise ValueError("label array does not match the qubit count")
        self.edge_errors = {
            _normalise_edge(edge): float(error)
            for edge, error in self.edge_errors.items()
        }
        missing = set(self.coupling.edges) - set(self.edge_errors)
        if missing:
            raise ValueError(f"missing error rates for couplings: {sorted(missing)[:5]}")

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_allocation(
        cls,
        name: str,
        allocation: FrequencyAllocation,
        frequencies_ghz: np.ndarray,
        cx_model: EmpiricalCXModel,
        rng: np.random.Generator,
        link_edges: frozenset[tuple[int, int]] = frozenset(),
        link_model: LinkErrorModel | None = None,
        metadata: dict | None = None,
    ) -> "Device":
        """Build a device by assigning errors from the empirical models.

        On-chip couplings draw their infidelity from the detuning-matched
        bin of ``cx_model``; inter-chip links (if any) draw from
        ``link_model``.
        """
        edges = [
            (int(min(c, t)), int(max(c, t))) for c, t in allocation.directed_edges
        ]
        coupling = CouplingMap(
            num_qubits=allocation.num_qubits, edges=edges, link_edges=link_edges
        )
        frequencies = np.asarray(frequencies_ghz, dtype=float)
        errors: dict[tuple[int, int], float] = {}
        for edge in coupling.edges:
            u, v = edge
            if coupling.is_link(u, v):
                if link_model is None:
                    raise ValueError("link_model is required when link edges exist")
                errors[edge] = float(link_model.sample(rng))
            else:
                detuning = abs(frequencies[u] - frequencies[v])
                errors[edge] = cx_model.sample(detuning, rng)
        return cls(
            name=name,
            coupling=coupling,
            frequencies_ghz=frequencies,
            labels=allocation.labels.copy(),
            edge_errors=errors,
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def num_qubits(self) -> int:
        """Number of physical qubits."""
        return self.coupling.num_qubits

    @property
    def num_edges(self) -> int:
        """Number of couplings."""
        return self.coupling.num_edges

    @property
    def num_link_edges(self) -> int:
        """Number of inter-chip link couplings (0 for monolithic devices)."""
        return len(self.coupling.link_edges)

    def qubit(self, index: int) -> PhysicalQubit:
        """Return a :class:`PhysicalQubit` record for one qubit.

        Devices that went through the post-fabrication repair stage list
        their shifted qubits under the ``"tuned_qubits"`` metadata key;
        the record's ``tuned`` flag reflects membership.
        """
        label = int(self.labels[index])
        return PhysicalQubit(
            index=index,
            frequency_ghz=float(self.frequencies_ghz[index]),
            ideal_frequency_ghz=float(self.frequencies_ghz[index]),
            label=label,
            tuned=index in set(self.metadata.get("tuned_qubits", ())),
        )

    @property
    def num_tuned_qubits(self) -> int:
        """Qubits shifted by post-fabrication repair (0 when untuned)."""
        return len(set(self.metadata.get("tuned_qubits", ())))

    def edge_error_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached array view of the normalised edge-error map.

        Returns ``(keys, errors)`` where ``keys`` is the sorted
        ``int64`` array encoding each normalised coupling ``(u, v)``
        (``u < v``) as ``u * num_qubits + v`` and ``errors`` holds the
        matching infidelities.  Computed once per device and reused by
        the vectorised fidelity product and the noise-aware router, so
        hot scoring loops never rebuild a per-call edge dict.
        """
        if self._edge_arrays is None:
            n = self.coupling.num_qubits
            items = sorted(self.edge_errors.items())
            keys = np.asarray([u * n + v for (u, v), _ in items], dtype=np.int64)
            errors = np.asarray([error for _, error in items], dtype=float)
            self._edge_arrays = (keys, errors)
        return self._edge_arrays

    def error_for(self, u: int, v: int) -> float:
        """Two-qubit gate infidelity of the coupling between ``u`` and ``v``."""
        return self.edge_errors[_normalise_edge((u, v))]

    def detuning_for(self, u: int, v: int) -> float:
        """Absolute frequency detuning between two coupled qubits."""
        return abs(float(self.frequencies_ghz[u] - self.frequencies_ghz[v]))

    def average_two_qubit_error(self) -> float:
        """Average infidelity over every coupling (the paper's ``E_avg``)."""
        return float(np.mean(list(self.edge_errors.values())))

    def average_on_chip_error(self) -> float:
        """Average infidelity over intra-chip couplings only."""
        values = [
            error
            for edge, error in self.edge_errors.items()
            if not self.coupling.is_link(*edge)
        ]
        return float(np.mean(values)) if values else 0.0

    def average_link_error(self) -> float:
        """Average infidelity over inter-chip link couplings only."""
        values = [
            error
            for edge, error in self.edge_errors.items()
            if self.coupling.is_link(*edge)
        ]
        return float(np.mean(values)) if values else 0.0

    def best_edges(self, count: int) -> list[tuple[tuple[int, int], float]]:
        """The ``count`` lowest-error couplings as ``(edge, error)`` pairs."""
        ranked = sorted(self.edge_errors.items(), key=lambda item: item[1])
        return ranked[:count]

    def with_scaled_link_errors(self, factor: float) -> "Device":
        """Return a copy with every link error multiplied by ``factor``.

        Convenience for the Fig. 9 link-improvement scenarios.
        """
        errors = {
            edge: error * factor if self.coupling.is_link(*edge) else error
            for edge, error in self.edge_errors.items()
        }
        return Device(
            name=self.name,
            coupling=self.coupling,
            frequencies_ghz=self.frequencies_ghz.copy(),
            labels=self.labels.copy(),
            edge_errors=errors,
            metadata=dict(self.metadata),
        )
