"""Physical-device substrate: qubits, devices, calibration data, noise models."""

from repro.device.calibration import (
    CalibrationDataset,
    CalibrationSnapshot,
    EdgeCalibration,
    IBM_PROCESSORS,
    SyntheticCalibrationGenerator,
    washington_cx_model,
)
from repro.device.device import Device
from repro.device.noise import (
    EmpiricalCXModel,
    LinkErrorModel,
    LINK_MEAN_INFIDELITY,
    LINK_MEDIAN_INFIDELITY,
    ON_CHIP_MEAN_INFIDELITY,
    ON_CHIP_MEDIAN_INFIDELITY,
)
from repro.device.qubit import PhysicalQubit

__all__ = [
    "CalibrationDataset",
    "CalibrationSnapshot",
    "EdgeCalibration",
    "IBM_PROCESSORS",
    "SyntheticCalibrationGenerator",
    "washington_cx_model",
    "Device",
    "EmpiricalCXModel",
    "LinkErrorModel",
    "LINK_MEAN_INFIDELITY",
    "LINK_MEDIAN_INFIDELITY",
    "ON_CHIP_MEAN_INFIDELITY",
    "ON_CHIP_MEDIAN_INFIDELITY",
    "PhysicalQubit",
]
