"""Simulation substrate: statevector validation and the ESP fidelity product."""

from repro.simulation.esp import FidelityScore, fidelity_product, fidelity_ratio
from repro.simulation.statevector import Statevector, measurement_probabilities, simulate

__all__ = [
    "FidelityScore",
    "fidelity_product",
    "fidelity_ratio",
    "Statevector",
    "measurement_probabilities",
    "simulate",
]
