"""Small dense statevector simulator.

The evaluation of the paper never simulates full quantum dynamics (the
studied systems are far beyond classical simulability); the simulator here
exists so the test suite can verify functional correctness of the circuit
IR, the benchmark generators and the compiler (a routed/decomposed circuit
must implement the same unitary as the logical one, up to qubit relabelling).

It supports every gate in :data:`repro.circuits.gates.GATE_ARITY` on up to
roughly 16 qubits.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

__all__ = ["Statevector", "simulate", "measurement_probabilities"]

_SQRT2 = np.sqrt(2.0)

_FIXED_1Q = {
    "id": np.eye(2, dtype=complex),
    "h": np.array([[1, 1], [1, -1]], dtype=complex) / _SQRT2,
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, np.exp(-1j * np.pi / 4)]], dtype=complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
}


def _rotation(name: str, theta: float) -> np.ndarray:
    half = theta / 2.0
    if name == "rx":
        return np.array(
            [[np.cos(half), -1j * np.sin(half)], [-1j * np.sin(half), np.cos(half)]],
            dtype=complex,
        )
    if name == "ry":
        return np.array(
            [[np.cos(half), -np.sin(half)], [np.sin(half), np.cos(half)]], dtype=complex
        )
    if name == "rz":
        return np.array(
            [[np.exp(-1j * half), 0], [0, np.exp(1j * half)]], dtype=complex
        )
    raise ValueError(f"unknown rotation gate {name!r}")


class Statevector:
    """Dense statevector over ``num_qubits`` qubits (qubit 0 is the LSB)."""

    MAX_QUBITS = 20

    def __init__(self, num_qubits: int):
        if num_qubits < 1:
            raise ValueError("need at least one qubit")
        if num_qubits > self.MAX_QUBITS:
            raise ValueError(
                f"statevector simulation limited to {self.MAX_QUBITS} qubits"
            )
        self.num_qubits = num_qubits
        self.amplitudes = np.zeros(2**num_qubits, dtype=complex)
        self.amplitudes[0] = 1.0

    # ------------------------------------------------------------------ #
    # Gate application
    # ------------------------------------------------------------------ #
    def _apply_1q(self, matrix: np.ndarray, qubit: int) -> None:
        state = self.amplitudes.reshape([2] * self.num_qubits)
        axis = self.num_qubits - 1 - qubit
        state = np.moveaxis(state, axis, 0)
        state = np.tensordot(matrix, state, axes=([1], [0]))
        self.amplitudes = np.moveaxis(state, 0, axis).reshape(-1)

    def _apply_cx(self, control: int, target: int) -> None:
        indices = np.arange(self.amplitudes.size)
        control_mask = (indices >> control) & 1
        flipped = indices ^ (1 << target)
        new = self.amplitudes.copy()
        selected = control_mask == 1
        new[indices[selected]] = self.amplitudes[flipped[selected]]
        self.amplitudes = new

    def _apply_cz(self, control: int, target: int) -> None:
        indices = np.arange(self.amplitudes.size)
        both = ((indices >> control) & 1) & ((indices >> target) & 1)
        self.amplitudes = np.where(both == 1, -self.amplitudes, self.amplitudes)

    def _apply_swap(self, a: int, b: int) -> None:
        indices = np.arange(self.amplitudes.size)
        bit_a = (indices >> a) & 1
        bit_b = (indices >> b) & 1
        swapped = indices ^ ((bit_a ^ bit_b) << a) ^ ((bit_a ^ bit_b) << b)
        self.amplitudes = self.amplitudes[swapped]

    def _apply_ccx(self, c_a: int, c_b: int, target: int) -> None:
        indices = np.arange(self.amplitudes.size)
        both = ((indices >> c_a) & 1) & ((indices >> c_b) & 1)
        flipped = indices ^ (1 << target)
        new = self.amplitudes.copy()
        selected = both == 1
        new[indices[selected]] = self.amplitudes[flipped[selected]]
        self.amplitudes = new

    def apply(self, gate: Gate) -> None:
        """Apply one gate to the state."""
        name = gate.name
        if name in _FIXED_1Q:
            self._apply_1q(_FIXED_1Q[name], gate.qubits[0])
        elif name in ("rx", "ry", "rz"):
            self._apply_1q(_rotation(name, gate.params[0]), gate.qubits[0])
        elif name == "cx":
            self._apply_cx(*gate.qubits)
        elif name == "cz":
            self._apply_cz(*gate.qubits)
        elif name == "swap":
            self._apply_swap(*gate.qubits)
        elif name == "rzz":
            a, b = gate.qubits
            self._apply_cx(a, b)
            self._apply_1q(_rotation("rz", gate.params[0]), b)
            self._apply_cx(a, b)
        elif name == "ccx":
            self._apply_ccx(*gate.qubits)
        else:
            raise ValueError(f"unsupported gate {name!r}")

    def run(self, circuit: QuantumCircuit) -> "Statevector":
        """Apply every gate of a circuit and return ``self``."""
        if circuit.num_qubits != self.num_qubits:
            raise ValueError("circuit width does not match the statevector")
        for gate in circuit:
            self.apply(gate)
        return self

    # ------------------------------------------------------------------ #
    # Measurement helpers
    # ------------------------------------------------------------------ #
    def probabilities(self) -> np.ndarray:
        """Probability of each computational-basis outcome."""
        return np.abs(self.amplitudes) ** 2

    def probability_of(self, bitstring: str) -> float:
        """Probability of the outcome described by ``bitstring``.

        The string is ordered with qubit 0 leftmost (``bitstring[q]`` is the
        value of qubit ``q``).
        """
        if len(bitstring) != self.num_qubits:
            raise ValueError("bitstring length does not match the register size")
        index = 0
        for qubit, bit in enumerate(bitstring):
            if bit == "1":
                index |= 1 << qubit
            elif bit != "0":
                raise ValueError("bitstring must contain only 0 and 1")
        return float(np.abs(self.amplitudes[index]) ** 2)

    def marginal_probability(self, qubit: int, value: int) -> float:
        """Probability that one qubit is measured in ``value``."""
        indices = np.arange(self.amplitudes.size)
        mask = ((indices >> qubit) & 1) == value
        return float(np.sum(np.abs(self.amplitudes[mask]) ** 2))


def simulate(circuit: QuantumCircuit) -> Statevector:
    """Run a circuit on the all-zeros initial state."""
    return Statevector(circuit.num_qubits).run(circuit)


def measurement_probabilities(circuit: QuantumCircuit) -> np.ndarray:
    """Convenience wrapper returning the final outcome distribution."""
    return simulate(circuit).probabilities()
