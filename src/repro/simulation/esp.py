"""Fidelity-product figure of merit (estimated success probability).

The architectures evaluated in the paper exceed classical simulability, so
benchmark quality is scored with the fidelity product of all two-qubit
gates — the dominant term of the estimated-success-probability (ESP) metric
used throughout the NISQ compilation literature:

    F = prod over two-qubit gates g of (1 - e(edge(g)))

where ``e(edge)`` is the infidelity of the physical coupling the gate runs
on.  Because compiled benchmarks contain thousands of gates, the product is
accumulated in log space; ratios between architectures are formed from the
log values to avoid underflow.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf, log10
from typing import Iterable, Mapping

from repro.device.device import Device

__all__ = ["FidelityScore", "fidelity_product", "fidelity_ratio"]


@dataclass(frozen=True)
class FidelityScore:
    """Fidelity product of one compiled benchmark on one device.

    Attributes
    ----------
    log10_fidelity:
        log10 of the two-qubit-gate fidelity product (``-inf`` if any gate
        runs on a fully-depolarising coupling).
    num_two_qubit_gates:
        Number of two-qubit gates contributing to the product.
    """

    log10_fidelity: float
    num_two_qubit_gates: int

    @property
    def fidelity(self) -> float:
        """The raw fidelity product (may underflow to 0.0 for deep circuits)."""
        return 10.0**self.log10_fidelity if self.log10_fidelity > -inf else 0.0


def fidelity_product(
    two_qubit_edges: Iterable[tuple[int, int]],
    edge_errors: Device | Mapping[tuple[int, int], float],
) -> FidelityScore:
    """Fidelity product of a sequence of two-qubit gates.

    Parameters
    ----------
    two_qubit_edges:
        Physical coupling used by each two-qubit gate (as produced by
        :class:`repro.compiler.transpile.TranspiledCircuit`).
    edge_errors:
        Device (or raw mapping) providing per-coupling infidelity.
    """
    if isinstance(edge_errors, Device):
        errors = edge_errors.edge_errors
    else:
        errors = {
            (min(u, v), max(u, v)): float(e) for (u, v), e in edge_errors.items()
        }
    total = 0.0
    count = 0
    for u, v in two_qubit_edges:
        error = errors[(min(u, v), max(u, v))]
        count += 1
        fidelity = 1.0 - error
        if fidelity <= 0.0:
            return FidelityScore(log10_fidelity=-inf, num_two_qubit_gates=count)
        total += log10(fidelity)
    return FidelityScore(log10_fidelity=total, num_two_qubit_gates=count)


def fidelity_ratio(mcm: FidelityScore, monolithic: FidelityScore | None) -> float:
    """``F_MCM / F_Mono`` computed in log space.

    Returns ``inf`` when the monolithic architecture is unavailable (zero
    collision-free yield), mirroring the red-X points in the paper's Fig. 10.
    """
    if monolithic is None or monolithic.log10_fidelity == -inf:
        return inf
    difference = mcm.log10_fidelity - monolithic.log10_fidelity
    if difference > 300:
        return inf
    return 10.0**difference
