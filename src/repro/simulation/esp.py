"""Fidelity-product figure of merit (estimated success probability).

The architectures evaluated in the paper exceed classical simulability, so
benchmark quality is scored with the fidelity product of all two-qubit
gates — the dominant term of the estimated-success-probability (ESP) metric
used throughout the NISQ compilation literature:

    F = prod over two-qubit gates g of (1 - e(edge(g)))

where ``e(edge)`` is the infidelity of the physical coupling the gate runs
on.  Because compiled benchmarks contain thousands of gates, the product is
accumulated in log space; ratios between architectures are formed from the
log values to avoid underflow.

The product is computed in one numpy pass over integer edge indices:
gate edges are encoded as ``u * num_qubits + v`` and matched against the
device's cached sorted key array
(:meth:`repro.device.device.Device.edge_error_arrays`) with a single
``searchsorted``, so scoring a compiled benchmark costs one vectorised
lookup + one ``log10`` reduction instead of a Python loop per gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Iterable, Mapping

import numpy as np

from repro.device.device import Device
from repro.engine.phases import phase

__all__ = ["FidelityScore", "fidelity_product", "fidelity_ratio"]


@dataclass(frozen=True)
class FidelityScore:
    """Fidelity product of one compiled benchmark on one device.

    Attributes
    ----------
    log10_fidelity:
        log10 of the two-qubit-gate fidelity product (``-inf`` if any gate
        runs on a fully-depolarising coupling).
    num_two_qubit_gates:
        Number of two-qubit gates contributing to the product.
    """

    log10_fidelity: float
    num_two_qubit_gates: int

    @property
    def fidelity(self) -> float:
        """The raw fidelity product (may underflow to 0.0 for deep circuits)."""
        return 10.0**self.log10_fidelity if self.log10_fidelity > -inf else 0.0


def fidelity_product(
    two_qubit_edges: Iterable[tuple[int, int]],
    edge_errors: Device | Mapping[tuple[int, int], float],
) -> FidelityScore:
    """Fidelity product of a sequence of two-qubit gates.

    Parameters
    ----------
    two_qubit_edges:
        Physical coupling used by each two-qubit gate (as produced by
        :class:`repro.compiler.transpile.TranspiledCircuit`).
    edge_errors:
        Device (or raw mapping) providing per-coupling infidelity.  The
        device path reuses the cached
        :meth:`~repro.device.device.Device.edge_error_arrays`; a raw
        mapping is normalised (and array-ised) per call.
    """
    with phase("score"):
        return _fidelity_product_impl(two_qubit_edges, edge_errors)


def _fidelity_product_impl(
    two_qubit_edges: Iterable[tuple[int, int]],
    edge_errors: Device | Mapping[tuple[int, int], float],
) -> FidelityScore:
    edges = np.asarray(list(two_qubit_edges), dtype=np.int64).reshape(-1, 2)
    count = edges.shape[0]
    if count == 0:
        return FidelityScore(log10_fidelity=0.0, num_two_qubit_gates=0)
    gate_u = np.minimum(edges[:, 0], edges[:, 1])
    gate_v = np.maximum(edges[:, 0], edges[:, 1])

    if isinstance(edge_errors, Device):
        base = edge_errors.coupling.num_qubits
        keys, errors = edge_errors.edge_error_arrays()
    else:
        normalised = {
            (min(u, v), max(u, v)): float(e) for (u, v), e in edge_errors.items()
        }
        items = sorted(normalised.items())
        largest = max((v for _, v in normalised), default=0)
        base = max(int(gate_v.max()), largest) + 1
        keys = np.asarray([u * base + v for (u, v), _ in items], dtype=np.int64)
        errors = np.asarray([error for _, error in items], dtype=float)

    gate_keys = gate_u * base + gate_v
    positions = np.minimum(np.searchsorted(keys, gate_keys), max(keys.size - 1, 0))
    valid = (keys[positions] == gate_keys) if keys.size else np.zeros(count, dtype=bool)
    gate_errors = errors[positions] if keys.size else np.zeros(count)
    fidelities = 1.0 - gate_errors
    dead = (fidelities <= 0.0) & valid

    # Preserve the sequential semantics: a fully-depolarising coupling
    # short-circuits the walk (count = gates up to and including it), so
    # it wins over a missing edge appearing later in program order.
    first_dead = int(np.argmax(dead)) if dead.any() else count
    first_missing = int(np.argmax(~valid)) if not valid.all() else count
    if first_dead < first_missing:
        return FidelityScore(log10_fidelity=-inf, num_two_qubit_gates=first_dead + 1)
    if first_missing < count:
        raise KeyError((int(gate_u[first_missing]), int(gate_v[first_missing])))

    total = float(np.log10(fidelities).sum())
    return FidelityScore(log10_fidelity=total, num_two_qubit_gates=count)


def fidelity_ratio(mcm: FidelityScore, monolithic: FidelityScore | None) -> float:
    """``F_MCM / F_Mono`` computed in log space.

    Returns ``inf`` when the monolithic architecture is unavailable (zero
    collision-free yield), mirroring the red-X points in the paper's Fig. 10.
    """
    if monolithic is None or monolithic.log10_fidelity == -inf:
        return inf
    difference = mcm.log10_fidelity - monolithic.log10_fidelity
    if difference > 300:
        return inf
    return 10.0**difference
