"""Quantum-circuit substrate: gate IR, circuit container, benchmark suite."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_ARITY, Gate, ONE_QUBIT_GATES, THREE_QUBIT_GATES, TWO_QUBIT_GATES
from repro.circuits.benchmarks import BENCHMARK_NAMES, BENCHMARKS, build_benchmark

__all__ = [
    "QuantumCircuit",
    "Gate",
    "GATE_ARITY",
    "ONE_QUBIT_GATES",
    "TWO_QUBIT_GATES",
    "THREE_QUBIT_GATES",
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "build_benchmark",
]
