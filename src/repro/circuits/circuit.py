"""A minimal, compiler-friendly quantum-circuit container.

:class:`QuantumCircuit` is an ordered list of :class:`~repro.circuits.gates.Gate`
applications on ``num_qubits`` virtual qubits, with convenience emitters for
the common gates and the metrics the paper's Table II reports (one-qubit
count, two-qubit count and the two-qubit critical path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.circuits.gates import Gate

__all__ = ["QuantumCircuit"]


@dataclass
class QuantumCircuit:
    """An ordered sequence of gates on ``num_qubits`` qubits.

    Attributes
    ----------
    num_qubits:
        Number of (virtual or physical) qubits addressed by the circuit.
    name:
        Optional identifier, e.g. the benchmark name.
    gates:
        Gate applications in program order.
    """

    num_qubits: int
    name: str = "circuit"
    gates: list[Gate] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise ValueError("a circuit needs at least one qubit")
        for gate in self.gates:
            self._check_gate(gate)

    # ------------------------------------------------------------------ #
    # Gate emission
    # ------------------------------------------------------------------ #
    def _check_gate(self, gate: Gate) -> None:
        for qubit in gate.qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(
                    f"gate {gate.name!r} addresses qubit {qubit} outside the "
                    f"{self.num_qubits}-qubit register"
                )

    def append(self, gate: Gate) -> "QuantumCircuit":
        """Append a pre-built gate (validated against the register size)."""
        self._check_gate(gate)
        self.gates.append(gate)
        return self

    def add(self, name: str, *qubits: int, params: tuple[float, ...] = ()) -> "QuantumCircuit":
        """Append a gate by name."""
        return self.append(Gate(name=name, qubits=tuple(qubits), params=params))

    def h(self, q: int) -> "QuantumCircuit":
        """Hadamard gate."""
        return self.add("h", q)

    def x(self, q: int) -> "QuantumCircuit":
        """Pauli-X gate."""
        return self.add("x", q)

    def y(self, q: int) -> "QuantumCircuit":
        """Pauli-Y gate."""
        return self.add("y", q)

    def z(self, q: int) -> "QuantumCircuit":
        """Pauli-Z gate."""
        return self.add("z", q)

    def s(self, q: int) -> "QuantumCircuit":
        """Phase gate."""
        return self.add("s", q)

    def t(self, q: int) -> "QuantumCircuit":
        """T gate."""
        return self.add("t", q)

    def tdg(self, q: int) -> "QuantumCircuit":
        """Inverse T gate."""
        return self.add("tdg", q)

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        """X-axis rotation."""
        return self.add("rx", q, params=(float(theta),))

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        """Y-axis rotation."""
        return self.add("ry", q, params=(float(theta),))

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        """Z-axis rotation."""
        return self.add("rz", q, params=(float(theta),))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-NOT gate."""
        return self.add("cx", control, target)

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z gate."""
        return self.add("cz", control, target)

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """SWAP gate."""
        return self.add("swap", a, b)

    def rzz(self, theta: float, a: int, b: int) -> "QuantumCircuit":
        """ZZ interaction rotation."""
        return self.add("rzz", a, b, params=(float(theta),))

    def ccx(self, control_a: int, control_b: int, target: int) -> "QuantumCircuit":
        """Toffoli gate."""
        return self.add("ccx", control_a, control_b, target)

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        """Append a sequence of gates."""
        for gate in gates:
            self.append(gate)
        return self

    # ------------------------------------------------------------------ #
    # Introspection and transformation
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    def __len__(self) -> int:
        return len(self.gates)

    @property
    def num_gates(self) -> int:
        """Total gate count."""
        return len(self.gates)

    @property
    def num_one_qubit_gates(self) -> int:
        """Number of single-qubit gates."""
        return sum(1 for g in self.gates if g.is_one_qubit)

    @property
    def num_two_qubit_gates(self) -> int:
        """Number of two-qubit gates."""
        return sum(1 for g in self.gates if g.is_two_qubit)

    def count_ops(self) -> dict[str, int]:
        """Histogram of gate names."""
        counts: dict[str, int] = {}
        for gate in self.gates:
            counts[gate.name] = counts.get(gate.name, 0) + 1
        return counts

    def used_qubits(self) -> set[int]:
        """Qubits touched by at least one gate."""
        used: set[int] = set()
        for gate in self.gates:
            used.update(gate.qubits)
        return used

    def depth(self, two_qubit_only: bool = False) -> int:
        """Circuit depth (longest dependency chain of gates).

        With ``two_qubit_only`` the depth counts only two-or-more-qubit
        gates, which is the "2q critical path" reported in the paper's
        Table II.
        """
        frontier = [0] * self.num_qubits
        for gate in self.gates:
            counts = 0 if (two_qubit_only and gate.num_qubits < 2) else 1
            level = max(frontier[q] for q in gate.qubits) + counts
            for q in gate.qubits:
                frontier[q] = level
        return max(frontier) if frontier else 0

    def interaction_graph(self) -> dict[int, set[int]]:
        """Adjacency of the multi-qubit interaction graph."""
        adjacency: dict[int, set[int]] = {q: set() for q in range(self.num_qubits)}
        for gate in self.gates:
            if gate.num_qubits < 2:
                continue
            for a in gate.qubits:
                for b in gate.qubits:
                    if a != b:
                        adjacency[a].add(b)
        return adjacency

    def remapped(self, mapping: dict[int, int], num_qubits: int | None = None) -> "QuantumCircuit":
        """Return a copy with every qubit ``q`` replaced by ``mapping[q]``."""
        target_size = num_qubits if num_qubits is not None else self.num_qubits
        remapped = QuantumCircuit(num_qubits=target_size, name=self.name)
        for gate in self.gates:
            remapped.append(gate.remapped(mapping))
        return remapped

    def copy(self) -> "QuantumCircuit":
        """Shallow copy of the circuit (gates are immutable)."""
        return QuantumCircuit(num_qubits=self.num_qubits, name=self.name, gates=list(self.gates))
