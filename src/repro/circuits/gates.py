"""Gate primitives for the lightweight quantum-circuit IR.

The evaluation pipeline only needs gate *accounting* (how many one- and
two-qubit operations run on which physical couplings), plus enough unitary
semantics for the small statevector simulator used in the test suite.  A
gate is therefore an immutable ``(name, qubits, params)`` record; the known
gate names and their arities live in :data:`GATE_ARITY`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Gate", "GATE_ARITY", "ONE_QUBIT_GATES", "TWO_QUBIT_GATES", "THREE_QUBIT_GATES"]

#: Supported gate names mapped to the number of qubits they act on.
GATE_ARITY: dict[str, int] = {
    # One-qubit gates.
    "id": 1,
    "h": 1,
    "x": 1,
    "y": 1,
    "z": 1,
    "s": 1,
    "sdg": 1,
    "t": 1,
    "tdg": 1,
    "sx": 1,
    "rx": 1,
    "ry": 1,
    "rz": 1,
    # Two-qubit gates.
    "cx": 2,
    "cz": 2,
    "swap": 2,
    "rzz": 2,
    # Three-qubit gates (decomposed before routing).
    "ccx": 3,
}

ONE_QUBIT_GATES = frozenset(name for name, arity in GATE_ARITY.items() if arity == 1)
TWO_QUBIT_GATES = frozenset(name for name, arity in GATE_ARITY.items() if arity == 2)
THREE_QUBIT_GATES = frozenset(name for name, arity in GATE_ARITY.items() if arity == 3)

#: Gates whose single parameter is a rotation angle.
_PARAMETRIC_GATES = frozenset({"rx", "ry", "rz", "rzz"})


@dataclass(frozen=True)
class Gate:
    """One quantum gate application.

    Attributes
    ----------
    name:
        Lower-case gate name (must appear in :data:`GATE_ARITY`).
    qubits:
        Qubit indices the gate acts on, in application order (control first
        for controlled gates).
    params:
        Rotation angles for parametric gates.
    """

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.name not in GATE_ARITY:
            raise ValueError(f"unknown gate {self.name!r}")
        expected = GATE_ARITY[self.name]
        if len(self.qubits) != expected:
            raise ValueError(
                f"gate {self.name!r} expects {expected} qubits, got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"gate {self.name!r} applied to duplicate qubits {self.qubits}")
        if self.name in _PARAMETRIC_GATES and len(self.params) != 1:
            raise ValueError(f"gate {self.name!r} requires exactly one parameter")

    @property
    def num_qubits(self) -> int:
        """Number of qubits the gate acts on."""
        return len(self.qubits)

    @property
    def is_one_qubit(self) -> bool:
        """True for single-qubit gates."""
        return self.num_qubits == 1

    @property
    def is_two_qubit(self) -> bool:
        """True for two-qubit gates."""
        return self.num_qubits == 2

    def remapped(self, mapping: dict[int, int]) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for every qubit ``q``."""
        return Gate(
            name=self.name,
            qubits=tuple(mapping[q] for q in self.qubits),
            params=self.params,
        )
