"""Transverse-field Ising model (TFIM) Hamiltonian-simulation benchmark.

First-order Trotterised time evolution of a 1D TFIM chain: each step applies
a ZZ interaction (CX - RZ - CX) on every nearest-neighbour pair followed by
an RX field rotation on every qubit.  This is the paper's "Hamiltonian"
workload for probing static properties of quantum materials.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit

__all__ = ["tfim_hamiltonian"]


def tfim_hamiltonian(
    num_qubits: int,
    steps: int = 1,
    coupling: float = 1.0,
    field: float = 0.8,
    dt: float = 0.1,
) -> QuantumCircuit:
    """Build a Trotterised 1D TFIM evolution circuit.

    Parameters
    ----------
    num_qubits:
        Chain length (>= 2).
    steps:
        Number of Trotter steps.
    coupling, field:
        Ising coupling ``J`` and transverse field ``h``.
    dt:
        Trotter time step.
    """
    if num_qubits < 2:
        raise ValueError("the TFIM chain needs at least 2 qubits")
    if steps < 1:
        raise ValueError("steps must be positive")

    circuit = QuantumCircuit(num_qubits=num_qubits, name="hamiltonian")
    zz_angle = 2.0 * coupling * dt
    x_angle = 2.0 * field * dt
    for _ in range(steps):
        for qubit in range(num_qubits - 1):
            circuit.cx(qubit, qubit + 1)
            circuit.rz(zz_angle, qubit + 1)
            circuit.cx(qubit, qubit + 1)
        for qubit in range(num_qubits):
            circuit.rx(x_angle, qubit)
    return circuit
