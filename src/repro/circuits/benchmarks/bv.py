"""Bernstein-Vazirani benchmark (paper Section VII-A).

The algorithm recovers a hidden bit-string with a single oracle query.  On
``n`` qubits the circuit uses ``n - 1`` data qubits plus one ancilla; every
``1`` bit of the secret contributes one CX onto the ancilla, which is what
makes the benchmark communication-heavy on sparse topologies.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit

__all__ = ["bernstein_vazirani"]


def bernstein_vazirani(
    num_qubits: int,
    secret: str | None = None,
    seed: int | None = None,
) -> QuantumCircuit:
    """Build a Bernstein-Vazirani circuit on ``num_qubits`` qubits.

    Parameters
    ----------
    num_qubits:
        Total width including the ancilla (must be >= 2).
    secret:
        Hidden bit-string of length ``num_qubits - 1``.  Defaults to the
        all-ones string, the worst case for communication.
    seed:
        When given (and ``secret`` is ``None``), draw a random secret.
    """
    if num_qubits < 2:
        raise ValueError("Bernstein-Vazirani needs at least 2 qubits")
    data = num_qubits - 1
    if secret is None:
        if seed is None:
            secret = "1" * data
        else:
            rng = np.random.default_rng(seed)
            secret = "".join(rng.choice(["0", "1"], size=data))
    if len(secret) != data or set(secret) - {"0", "1"}:
        raise ValueError(f"secret must be a {data}-bit string")

    circuit = QuantumCircuit(num_qubits=num_qubits, name="bv")
    ancilla = num_qubits - 1

    for qubit in range(data):
        circuit.h(qubit)
    circuit.x(ancilla)
    circuit.h(ancilla)

    for qubit, bit in enumerate(secret):
        if bit == "1":
            circuit.cx(qubit, ancilla)

    for qubit in range(data):
        circuit.h(qubit)
    circuit.h(ancilla)
    return circuit
