"""Cuccaro ripple-carry adder benchmark (paper Section VII-A).

The in-place ripple-carry adder of Cuccaro, Draper, Kutin and Moulton adds
two ``n``-bit registers using one carry-in and one carry-out ancilla
(``2n + 2`` qubits total).  Each bit position applies a MAJ block on the way
up and an UMA block on the way down; the Toffoli gates involved are emitted
directly (the compiler decomposes them into CX + single-qubit gates).
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit

__all__ = ["cuccaro_adder", "adder_register_size"]


def adder_register_size(num_qubits: int) -> int:
    """Largest register width ``n`` such that ``2n + 2 <= num_qubits``."""
    if num_qubits < 4:
        raise ValueError("the ripple-carry adder needs at least 4 qubits")
    return (num_qubits - 2) // 2


def _maj(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    circuit.cx(a, b)
    circuit.cx(a, c)
    circuit.ccx(c, b, a)


def _uma(circuit: QuantumCircuit, c: int, b: int, a: int) -> None:
    circuit.ccx(c, b, a)
    circuit.cx(a, c)
    circuit.cx(c, b)


def cuccaro_adder(num_qubits: int) -> QuantumCircuit:
    """Build a Cuccaro ripple-carry adder fitting within ``num_qubits``.

    The circuit uses ``2n + 2`` qubits where ``n`` is the largest register
    width that fits; any remaining qubits are left idle.  Qubit layout:
    ``[carry_in, a_0, b_0, a_1, b_1, ..., carry_out]``.
    """
    register = adder_register_size(num_qubits)
    used = 2 * register + 2
    circuit = QuantumCircuit(num_qubits=num_qubits, name="adder")

    carry_in = 0
    a_bits = [1 + 2 * i for i in range(register)]
    b_bits = [2 + 2 * i for i in range(register)]
    carry_out = used - 1

    # Prepare a representative non-trivial input (|a> = |1...1>, |b> = |01...>).
    for qubit in a_bits:
        circuit.x(qubit)
    for qubit in b_bits[::2]:
        circuit.x(qubit)

    previous = carry_in
    for i in range(register):
        _maj(circuit, previous, b_bits[i], a_bits[i])
        previous = a_bits[i]
    circuit.cx(a_bits[-1], carry_out)
    for i in reversed(range(register)):
        lower = carry_in if i == 0 else a_bits[i - 1]
        _uma(circuit, lower, b_bits[i], a_bits[i])
    return circuit
