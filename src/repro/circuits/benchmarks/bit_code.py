"""Bit-flip repetition-code syndrome-measurement benchmark.

The circuit interleaves data and syndrome (ancilla) qubits of a distance-d
repetition code and performs ``rounds`` rounds of parity extraction: each
ancilla receives CX gates from its two neighbouring data qubits.  The local
structure mirrors the error-correction workloads heavy-hex lattices are
designed for.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit

__all__ = ["bit_code"]


def bit_code(num_qubits: int, rounds: int = 1) -> QuantumCircuit:
    """Build a repetition-code syndrome-extraction circuit.

    Parameters
    ----------
    num_qubits:
        Total width; the circuit uses the largest odd number of qubits that
        fits (``d`` data qubits interleaved with ``d - 1`` ancillas).
    rounds:
        Number of syndrome-measurement rounds.
    """
    if num_qubits < 3:
        raise ValueError("the bit code needs at least 3 qubits")
    if rounds < 1:
        raise ValueError("rounds must be positive")

    used = num_qubits if num_qubits % 2 else num_qubits - 1
    distance = (used + 1) // 2
    data = [2 * i for i in range(distance)]
    ancilla = [2 * i + 1 for i in range(distance - 1)]

    circuit = QuantumCircuit(num_qubits=num_qubits, name="bitcode")
    # Encode a representative logical |1>.
    for qubit in data:
        circuit.x(qubit)
    for _ in range(rounds):
        for index, anc in enumerate(ancilla):
            circuit.cx(data[index], anc)
            circuit.cx(data[index + 1], anc)
    return circuit
