"""Greenberger-Horne-Zeilinger (GHZ) state preparation benchmark.

A Hadamard followed by a chain of CX gates prepares the maximally-entangled
``(|00...0> + |11...1>) / sqrt(2)`` state.  The linear entangling chain makes
GHZ the most topology-friendly of the paper's benchmarks.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit

__all__ = ["ghz"]


def ghz(num_qubits: int) -> QuantumCircuit:
    """Build a GHZ-state preparation circuit on ``num_qubits`` qubits."""
    if num_qubits < 2:
        raise ValueError("a GHZ state needs at least 2 qubits")
    circuit = QuantumCircuit(num_qubits=num_qubits, name="ghz")
    circuit.h(0)
    for qubit in range(num_qubits - 1):
        circuit.cx(qubit, qubit + 1)
    return circuit
