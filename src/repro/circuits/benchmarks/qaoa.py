"""QAOA MaxCut benchmark (paper Section VII-A).

One QAOA layer on a random 3-regular graph: a ZZ phase-separation term per
graph edge (compiled as CX - RZ - CX) followed by an RX mixer on every
qubit.  The random-regular interaction graph makes the benchmark moderately
communication-bound.
"""

from __future__ import annotations

import networkx as nx

from repro.circuits.circuit import QuantumCircuit

__all__ = ["qaoa_maxcut"]


def qaoa_maxcut(
    num_qubits: int,
    layers: int = 1,
    degree: int = 3,
    seed: int | None = 0,
    gamma: float = 0.7,
    beta: float = 0.3,
) -> QuantumCircuit:
    """Build a QAOA MaxCut circuit on a random regular graph.

    Parameters
    ----------
    num_qubits:
        Number of graph vertices / qubits (>= 4).
    layers:
        Number of QAOA layers ``p``.
    degree:
        Regularity of the random problem graph (reduced automatically when
        ``num_qubits`` is too small or parity forbids it).
    seed:
        Seed for the problem-graph sampler.
    gamma, beta:
        Phase-separation and mixer angles (fixed representative values).
    """
    if num_qubits < 4:
        raise ValueError("QAOA MaxCut needs at least 4 qubits")
    if layers < 1:
        raise ValueError("QAOA needs at least one layer")
    effective_degree = min(degree, num_qubits - 1)
    if (num_qubits * effective_degree) % 2:
        effective_degree -= 1
    graph = nx.random_regular_graph(effective_degree, num_qubits, seed=seed)

    circuit = QuantumCircuit(num_qubits=num_qubits, name="qaoa")
    for qubit in range(num_qubits):
        circuit.h(qubit)
    for layer in range(layers):
        angle = gamma * (layer + 1)
        for u, v in sorted(graph.edges()):
            circuit.cx(u, v)
            circuit.rz(2.0 * angle, v)
            circuit.cx(u, v)
        for qubit in range(num_qubits):
            circuit.rx(2.0 * beta * (layer + 1), qubit)
    return circuit
