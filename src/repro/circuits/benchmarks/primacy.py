"""Quantum-primacy (random circuit sampling) benchmark.

Random circuits of alternating single-qubit rotation layers and two-qubit
entangling layers over a virtual 2D grid, in the style of the circuits used
for quantum-supremacy / primacy demonstrations.  The entangling pattern
cycles through the four grid directions so every qubit participates in
two-qubit gates at a high rate.
"""

from __future__ import annotations

import numpy as np

from repro.circuits.circuit import QuantumCircuit

__all__ = ["quantum_primacy"]

_SINGLE_QUBIT_CHOICES = ("rx", "ry", "rz")


def _grid_shape(num_qubits: int) -> tuple[int, int]:
    rows = int(np.floor(np.sqrt(num_qubits)))
    rows = max(rows, 1)
    cols = int(np.ceil(num_qubits / rows))
    return rows, cols


def quantum_primacy(
    num_qubits: int,
    depth: int = 8,
    seed: int | None = 0,
) -> QuantumCircuit:
    """Build a random quantum-primacy circuit.

    Parameters
    ----------
    num_qubits:
        Circuit width (>= 2).
    depth:
        Number of (single-qubit layer, entangling layer) rounds.
    seed:
        Seed for the random gate choices.
    """
    if num_qubits < 2:
        raise ValueError("quantum primacy circuits need at least 2 qubits")
    if depth < 1:
        raise ValueError("depth must be positive")

    rng = np.random.default_rng(seed)
    rows, cols = _grid_shape(num_qubits)
    circuit = QuantumCircuit(num_qubits=num_qubits, name="primacy")

    def qubit_at(r: int, c: int) -> int | None:
        index = r * cols + c
        return index if index < num_qubits else None

    patterns = []
    # Horizontal pairs, even then odd columns; vertical pairs, even then odd rows.
    for parity in (0, 1):
        pairs = []
        for r in range(rows):
            for c in range(parity, cols - 1, 2):
                a, b = qubit_at(r, c), qubit_at(r, c + 1)
                if a is not None and b is not None:
                    pairs.append((a, b))
        patterns.append(pairs)
    for parity in (0, 1):
        pairs = []
        for r in range(parity, rows - 1, 2):
            for c in range(cols):
                a, b = qubit_at(r, c), qubit_at(r + 1, c)
                if a is not None and b is not None:
                    pairs.append((a, b))
        patterns.append(pairs)
    patterns = [p for p in patterns if p]

    for qubit in range(num_qubits):
        circuit.h(qubit)
    for layer in range(depth):
        for qubit in range(num_qubits):
            gate = str(rng.choice(_SINGLE_QUBIT_CHOICES))
            circuit.add(gate, qubit, params=(float(rng.uniform(0, 2 * np.pi)),))
        for a, b in patterns[layer % len(patterns)]:
            circuit.cz(a, b)
    return circuit
