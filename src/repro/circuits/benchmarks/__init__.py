"""The paper's seven-benchmark suite (Section VII-A).

:data:`BENCHMARKS` maps the short names used throughout the evaluation to
builder callables of signature ``builder(num_qubits, seed=None)``; the
mapping covers Bernstein-Vazirani, QAOA, GHZ, the ripple-carry adder,
quantum-primacy random circuits, the bit-flip code and TFIM Hamiltonian
simulation.  :func:`build_benchmark` is the convenience entry point.
"""

from __future__ import annotations

from typing import Callable

from repro.circuits.benchmarks.adder import adder_register_size, cuccaro_adder
from repro.circuits.benchmarks.bit_code import bit_code
from repro.circuits.benchmarks.bv import bernstein_vazirani
from repro.circuits.benchmarks.ghz import ghz
from repro.circuits.benchmarks.hamiltonian import tfim_hamiltonian
from repro.circuits.benchmarks.primacy import quantum_primacy
from repro.circuits.benchmarks.qaoa import qaoa_maxcut
from repro.circuits.circuit import QuantumCircuit
from repro.engine.registry import did_you_mean

__all__ = [
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "build_benchmark",
    "bernstein_vazirani",
    "ghz",
    "qaoa_maxcut",
    "cuccaro_adder",
    "adder_register_size",
    "quantum_primacy",
    "bit_code",
    "tfim_hamiltonian",
]

BENCHMARKS: dict[str, Callable[..., QuantumCircuit]] = {
    "bv": lambda n, seed=None: bernstein_vazirani(n),
    "qaoa": lambda n, seed=None: qaoa_maxcut(n, seed=0 if seed is None else seed),
    "ghz": lambda n, seed=None: ghz(n),
    "adder": lambda n, seed=None: cuccaro_adder(n),
    "primacy": lambda n, seed=None: quantum_primacy(n, seed=0 if seed is None else seed),
    "bitcode": lambda n, seed=None: bit_code(n),
    "hamiltonian": lambda n, seed=None: tfim_hamiltonian(n),
}

#: Benchmark names in the order the paper lists them.
BENCHMARK_NAMES = ("bv", "qaoa", "ghz", "adder", "primacy", "bitcode", "hamiltonian")


def build_benchmark(name: str, num_qubits: int, seed: int | None = None) -> QuantumCircuit:
    """Build one of the paper's benchmarks by name.

    Parameters
    ----------
    name:
        One of :data:`BENCHMARK_NAMES`.
    num_qubits:
        Circuit width (the paper sizes benchmarks at 80 % of the device).
    seed:
        Seed for the randomised benchmarks (QAOA, primacy).
    """
    if name not in BENCHMARKS:
        suggestion = did_you_mean(name, BENCHMARKS)
        raise KeyError(
            f"unknown benchmark {name!r}{suggestion}; known: {sorted(BENCHMARKS)}"
        )
    return BENCHMARKS[name](num_qubits, seed=seed)
