"""Per-client token-bucket rate limiting for the service front door.

Each client identifier owns a :class:`TokenBucket` refilled continuously
at ``rate`` tokens per second up to ``burst`` capacity; a submission
costs one token.  An empty bucket rejects with :class:`RateLimited`,
which carries the seconds until the next token so HTTP responses can set
a ``Retry-After`` header (429).

The clock is injectable so tests drive time explicitly instead of
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["RateLimited", "TokenBucket", "RateLimiter"]


class RateLimited(RuntimeError):
    """A client exceeded its token-bucket rate."""

    def __init__(self, client: str, retry_after: float):
        super().__init__(
            f"client {client!r} is rate-limited; retry in {retry_after:.2f}s"
        )
        self.client = client
        self.retry_after = retry_after


class TokenBucket:
    """Continuously-refilled token bucket (not thread-safe by itself;
    the manager only touches it from the event loop)."""

    def __init__(
        self,
        rate: float,
        capacity: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if rate < 0:
            raise ValueError("rate must be non-negative")
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._clock = clock
        self._tokens = float(capacity)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        if now > self._updated and self.rate > 0:
            self._tokens = min(
                self.capacity, self._tokens + (now - self._updated) * self.rate
            )
        self._updated = now

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; False (and no spend) otherwise."""
        self._refill()
        if self._tokens + 1e-12 >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (inf at rate 0)."""
        self._refill()
        missing = tokens - self._tokens
        if missing <= 0:
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return missing / self.rate


class RateLimiter:
    """One token bucket per client identifier."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}

    def bucket(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = self._buckets[client] = TokenBucket(
                self.rate, self.burst, clock=self._clock
            )
        return bucket

    def acquire(self, client: str) -> None:
        """Spend one token for ``client`` or raise :class:`RateLimited`."""
        bucket = self.bucket(client)
        if not bucket.try_acquire():
            raise RateLimited(client, bucket.retry_after())
