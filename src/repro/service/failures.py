"""Failure classification and retry policy for service jobs.

The job manager never retries blindly: every exception a worker task
raises is first classified by a :class:`FailureClassifier` into one of
three :class:`FailureClass` buckets.

* ``TRANSIENT`` — infrastructure weather (a broken process pool, a
  connection reset, a timeout, or anything raising the explicit
  :class:`TransientServiceError` marker).  Retried with exponential
  backoff and jitter, up to :attr:`RetryPolicy.max_attempts`.
* ``DETERMINISTIC`` — the task itself is wrong (bad parameters, a
  ``ValueError`` deep in a model).  Re-running would fail identically,
  so the job fails fast on the first attempt and records the error.
* ``CANCELLED`` — the computation was asked to stop
  (:class:`~repro.engine.backends.ExecutionCancelled`); never retried.

Rules are matched first-to-last and user rules are prepended, so a
deployment can reclassify — e.g. treat a flaky storage backend's
``OSError`` subclass as transient — without touching the defaults (see
the README's "adding a failure class" how-to).
"""

from __future__ import annotations

import asyncio
import random
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Iterable

from repro.engine.backends import ExecutionCancelled

__all__ = [
    "FailureClass",
    "FailureRule",
    "FailureClassifier",
    "TransientServiceError",
    "RetryPolicy",
]


class FailureClass(str, Enum):
    """What a worker-task exception means for the job's future."""

    TRANSIENT = "transient"
    DETERMINISTIC = "deterministic"
    CANCELLED = "cancelled"


class TransientServiceError(RuntimeError):
    """Explicit marker for failures the raiser knows are retryable.

    Task code that detects its own transient conditions (a resource
    momentarily missing, a dependency warming up) raises this to opt
    into the retry-with-backoff path regardless of the default rules.
    """


@dataclass(frozen=True)
class FailureRule:
    """A named predicate mapping exceptions to a :class:`FailureClass`."""

    name: str
    matches: Callable[[BaseException], bool]
    classification: FailureClass


def _type_rule(name: str, types: tuple, classification: FailureClass) -> FailureRule:
    return FailureRule(
        name=name,
        matches=lambda exc, _types=types: isinstance(exc, _types),
        classification=classification,
    )


#: Built-in rules, matched in order; the catch-all deterministic rule is
#: appended by the classifier itself and always matches last.
DEFAULT_RULES: tuple[FailureRule, ...] = (
    _type_rule(
        "cancelled",
        (ExecutionCancelled, asyncio.CancelledError),
        FailureClass.CANCELLED,
    ),
    _type_rule("transient-marker", (TransientServiceError,), FailureClass.TRANSIENT),
    _type_rule("broken-pool", (BrokenProcessPool,), FailureClass.TRANSIENT),
    _type_rule("connection", (ConnectionError,), FailureClass.TRANSIENT),
    _type_rule("timeout", (TimeoutError,), FailureClass.TRANSIENT),
)

#: Final fallback: an unrecognised exception is the task's own fault.
FALLBACK_RULE = FailureRule(
    name="deterministic-default",
    matches=lambda exc: True,
    classification=FailureClass.DETERMINISTIC,
)


class FailureClassifier:
    """Ordered rule list; first matching rule wins."""

    def __init__(self, rules: Iterable[FailureRule] | None = None):
        self._rules: list[FailureRule] = list(
            rules if rules is not None else DEFAULT_RULES
        )

    def add_rule(
        self,
        name: str,
        classification: FailureClass,
        *,
        exception_types: tuple | None = None,
        predicate: Callable[[BaseException], bool] | None = None,
    ) -> FailureRule:
        """Prepend a rule (user rules outrank the defaults).

        Exactly one of ``exception_types`` / ``predicate`` is required.
        """
        if (exception_types is None) == (predicate is None):
            raise ValueError("pass exactly one of exception_types or predicate")
        if exception_types is not None:
            rule = _type_rule(name, tuple(exception_types), classification)
        else:
            rule = FailureRule(name=name, matches=predicate, classification=classification)
        self._rules.insert(0, rule)
        return rule

    def rules(self) -> list[FailureRule]:
        return [*self._rules, FALLBACK_RULE]

    def classify(self, exc: BaseException) -> FailureRule:
        """The first rule matching ``exc`` (never returns ``None``)."""
        for rule in self._rules:
            if rule.matches(exc):
                return rule
        return FALLBACK_RULE


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for transient failures.

    The delay after failed attempt ``n`` (1-based) is::

        min(base_delay * multiplier**(n-1), max_delay) * (1 + jitter * u)

    with ``u`` drawn uniformly from [0, 1) — full deterministic testing
    is possible by seeding the ``random.Random`` the manager passes in.
    Jitter de-synchronises retry herds: coalesced clients that all hit
    the same transient failure must not retry in lockstep.
    """

    max_attempts: int = 3
    base_delay: float = 0.2
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff delay after failed attempt number ``attempt`` (1-based)."""
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        return raw * (1.0 + self.jitter * rng.random())
