"""Asyncio HTTP/1.1 front-end over :class:`~repro.service.manager.JobManager`.

Pure standard library (``asyncio.start_server`` + hand-rolled request
parsing): the service must not add hard dependencies.  One request per
connection (``Connection: close``), JSON bodies throughout, except the
event stream which speaks ``text/event-stream``.

Endpoints
---------
``GET  /healthz``              liveness + queue occupancy
``GET  /stats``                manager counters
``GET  /metrics``              Prometheus text exposition of the process
                               metrics registry (engine, cache, routing
                               and service series — see ``repro.obs``)
``GET  /experiments``          registered experiments (name, description)
``POST /jobs``                 submit ``{"experiment": .., "params": {..},
                               "client": ..}`` -> 202 job snapshot with
                               ``coalesced`` flag; 404 unknown experiment,
                               400 bad params, 429 queue full / rate
                               limited (with ``Retry-After``)
``GET  /jobs``                 all job snapshots
``GET  /jobs/{id}``            one job snapshot
``GET  /jobs/{id}/result``     ``{"result": .., "text": ..}``; long-polls
                               up to ``?wait=SECONDS``; 409 while
                               unfinished, 410 cancelled, 500 failed
``DELETE /jobs/{id}``          cancel -> ``{"cancelled": bool}``
``GET  /jobs/{id}/events``     server-sent events: replay then live
                               stream until the job is terminal
"""

from __future__ import annotations

import asyncio
import json
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.obs.logs import get_logger
from repro.obs.metrics import REGISTRY
from repro.service.jobs import JobEvent
from repro.service.manager import JobManager, QueueFull, UnknownJob
from repro.service.ratelimit import RateLimited

__all__ = ["ServiceServer", "request"]

_log = get_logger("service.http")

#: Request-line + headers size guard (a service, not a general proxy).
_MAX_HEADER_BYTES = 32 * 1024
#: JSON body size guard.
_MAX_BODY_BYTES = 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    410: "Gone",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    """Routed straight to an error response."""

    def __init__(self, status: int, message: str, headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


def _event_payload(event: JobEvent) -> dict[str, Any]:
    return {
        "sequence": event.sequence,
        "kind": event.kind,
        "payload": event.payload,
        "timestamp": event.timestamp,
    }


class ServiceServer:
    """The reproduction service's HTTP listener."""

    def __init__(self, manager: JobManager, host: str = "127.0.0.1", port: int = 8151):
        self.manager = manager
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start accepting connections (``port=0`` picks a free
        port; ``self.port`` is updated to the bound one)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._respond_error(writer, exc)
                return
            try:
                if path.startswith("/jobs/") and path.endswith("/events"):
                    await self._stream_events(writer, path.split("/")[2])
                    return
                if path == "/metrics" and method == "GET":
                    await self._respond_text(
                        writer,
                        200,
                        REGISTRY.render_prometheus(),
                        content_type="text/plain; version=0.0.4; charset=utf-8",
                    )
                    return
                status, payload, headers = await self._route(method, path, query, body)
            except _HttpError as exc:
                await self._respond_error(writer, exc)
                return
            except Exception as exc:  # noqa: BLE001 - last-resort 500
                _log.warning("%s %s -> 500 (%s: %s)", method, path, type(exc).__name__, exc)
                await self._respond_error(
                    writer, _HttpError(500, f"{type(exc).__name__}: {exc}")
                )
                return
            await self._respond_json(writer, status, payload, headers)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict, Any]:
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "request head too large") from None
        except asyncio.IncompleteReadError as exc:
            raise _HttpError(400, "truncated request") from exc
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(413, "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, f"malformed request line {lines[0]!r}")
        method, target, _version = parts
        split = urlsplit(target)
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        body: Any = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise _HttpError(400, f"request body is not valid JSON: {exc}") from exc
        return method.upper(), split.path, query, body

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _route(
        self, method: str, path: str, query: dict, body: Any
    ) -> tuple[int, Any, dict]:
        manager = self.manager
        if path == "/healthz" and method == "GET":
            return 200, {"status": "ok", **manager.stats()}, {}
        if path == "/stats" and method == "GET":
            return 200, manager.stats(), {}
        if path == "/experiments" and method == "GET":
            return 200, [
                {"name": spec.name, "description": spec.description}
                for spec in manager.registry.specs()
            ], {}
        if path == "/jobs" and method == "POST":
            return await self._submit(body)
        if path == "/jobs" and method == "GET":
            return 200, [manager.status(job.id) for job in manager.jobs()], {}
        if path.startswith("/jobs/"):
            segments = [s for s in path.split("/") if s]
            job_id = segments[1]
            try:
                if len(segments) == 2 and method == "GET":
                    return 200, manager.status(job_id), {}
                if len(segments) == 2 and method == "DELETE":
                    cancelled = await manager.cancel(job_id)
                    return 200, {
                        "cancelled": cancelled,
                        "state": manager.status(job_id)["state"],
                    }, {}
                if len(segments) == 3 and segments[2] == "result" and method == "GET":
                    return await self._result(job_id, query)
            except UnknownJob as exc:
                raise _HttpError(404, str(exc.args[0])) from None
        raise _HttpError(404, f"no route for {method} {path}")

    async def _submit(self, body: Any) -> tuple[int, Any, dict]:
        if not isinstance(body, dict) or "experiment" not in body:
            raise _HttpError(400, 'body must be {"experiment": .., "params": {..}}')
        params = body.get("params") or {}
        if not isinstance(params, dict):
            raise _HttpError(400, '"params" must be an object')
        try:
            handle = await self.manager.submit(
                body["experiment"], params, client=body.get("client")
            )
        except KeyError as exc:
            raise _HttpError(404, str(exc.args[0])) from None
        except ValueError as exc:
            raise _HttpError(400, str(exc)) from None
        except RateLimited as exc:
            retry_after = exc.retry_after
            header = "60" if retry_after == float("inf") else f"{retry_after:.3f}"
            raise _HttpError(429, str(exc), {"Retry-After": header}) from None
        except QueueFull as exc:
            raise _HttpError(429, str(exc), {"Retry-After": "1"}) from None
        snapshot = handle.status()
        snapshot["coalesced"] = handle.coalesced
        return 202, snapshot, {}

    async def _result(self, job_id: str, query: dict) -> tuple[int, Any, dict]:
        from repro.analysis.reporting import jsonable

        manager = self.manager
        wait = float(query.get("wait", "0") or "0")
        if wait > 0:
            try:
                await manager.wait(job_id, timeout=wait)
            except asyncio.TimeoutError:
                pass
        status = manager.status(job_id)
        state = status["state"]
        if state in ("queued", "running", "retrying"):
            raise _HttpError(409, f"job {job_id} is not finished (state: {state})")
        if state == "cancelled":
            raise _HttpError(410, f"job {job_id} was cancelled")
        if state == "failed":
            raise _HttpError(
                500, f"job {job_id} failed: {(status['error'] or {}).get('message')}"
            )
        job = manager._get(job_id)  # noqa: SLF001 - same package
        return 200, {
            "id": job.id,
            "experiment": job.experiment,
            "text": job.text,
            "result": jsonable(job.result),
            "engine": job.engine_stats,
        }, {}

    # ------------------------------------------------------------------ #
    # Responses
    # ------------------------------------------------------------------ #
    async def _respond_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Any,
        headers: dict | None = None,
    ) -> None:
        data = json.dumps(payload).encode()
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(data)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + data)
        await writer.drain()

    async def _respond_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        data = text.encode()
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(data)}",
            "Connection: close",
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + data)
        await writer.drain()

    async def _respond_error(self, writer: asyncio.StreamWriter, exc: _HttpError) -> None:
        await self._respond_json(
            writer, exc.status, {"error": exc.message}, exc.headers
        )

    async def _stream_events(self, writer: asyncio.StreamWriter, job_id: str) -> None:
        try:
            stream = self.manager.events(job_id)
            # Validate the id before committing to a 200 stream header.
            self.manager.status(job_id)
        except UnknownJob as exc:
            await self._respond_error(writer, _HttpError(404, str(exc.args[0])))
            return
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode())
        await writer.drain()
        async for event in stream:
            frame = f"data: {json.dumps(_event_payload(event))}\n\n"
            writer.write(frame.encode())
            await writer.drain()


async def request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: Any = None,
    timeout: float = 30.0,
) -> tuple[int, dict[str, str], Any]:
    """Minimal asyncio HTTP client for tests and the smoke script.

    Returns ``(status, headers, body)`` — the body parsed as JSON for
    ``application/json`` responses and returned as text for everything
    else (``/metrics`` speaks the Prometheus exposition format).
    Streams are not supported (read the socket directly for ``/events``).
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b"" if body is None else json.dumps(body).encode()
        head = [
            f"{method.upper()} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            "Connection: close",
        ]
        if payload:
            head.append("Content-Type: application/json")
            head.append(f"Content-Length: {len(payload)}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass
    head_bytes, _, body_bytes = raw.partition(b"\r\n\r\n")
    lines = head_bytes.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ")[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    parsed: Any = None
    if body_bytes:
        if "application/json" in headers.get("content-type", ""):
            parsed = json.loads(body_bytes)
        else:
            parsed = body_bytes.decode("utf-8", errors="replace")
    return status, headers, parsed
