"""Reproduction-as-a-service: an async job API over the execution engine.

The package splits into four layers:

* :mod:`repro.service.jobs` — job records, states, events, handles;
* :mod:`repro.service.failures` — failure classification + retry policy;
* :mod:`repro.service.ratelimit` — per-client token buckets;
* :mod:`repro.service.manager` — the in-process :class:`JobManager`
  (coalescing, bounded queue, warm worker pool, cancellation);
* :mod:`repro.service.http` — the stdlib asyncio HTTP front-end behind
  ``python -m repro serve``.
"""

from repro.service.failures import (
    FailureClass,
    FailureClassifier,
    FailureRule,
    RetryPolicy,
    TransientServiceError,
)
from repro.service.http import ServiceServer, request
from repro.service.jobs import Job, JobEvent, JobHandle, JobState
from repro.service.manager import (
    JobCancelled,
    JobFailed,
    JobManager,
    QueueFull,
    UnknownJob,
)
from repro.service.ratelimit import RateLimited, RateLimiter, TokenBucket

__all__ = [
    "FailureClass",
    "FailureClassifier",
    "FailureRule",
    "RetryPolicy",
    "TransientServiceError",
    "ServiceServer",
    "request",
    "Job",
    "JobEvent",
    "JobHandle",
    "JobState",
    "JobCancelled",
    "JobFailed",
    "JobManager",
    "QueueFull",
    "UnknownJob",
    "RateLimited",
    "RateLimiter",
    "TokenBucket",
]
