"""The in-process job manager: coalescing, backpressure, retries, cancellation.

:class:`JobManager` is the service's brain, usable directly from tests
and wrapped by the HTTP front-end (:mod:`repro.service.http`).  It owns:

* a **bounded** ``asyncio.Queue`` of accepted jobs — a full queue rejects
  with :class:`QueueFull` (HTTP 429) instead of growing without limit;
* a **warm, persistent worker pool**: N asyncio worker loops, each
  running jobs on a long-lived ``ThreadPoolExecutor`` thread so the
  event loop stays responsive while an experiment crunches;
* **request coalescing**: the coalescing key reuses the engine cache's
  content-addressing recipe — ``(experiment name, normalized params,
  code version)`` through :meth:`repro.engine.cache.ResultCache.key_for`
  — so two submissions that would compute identical numbers share one
  job and both observe its result;
* **failure classification + retry** with exponential backoff and jitter
  (:mod:`repro.service.failures`): transient infrastructure failures
  retry up to ``retry.max_attempts``, deterministic task exceptions fail
  fast and are recorded on the job;
* **cancellation**: each job carries a
  :class:`~repro.engine.backends.CancelToken` threaded into its
  ``ExecutionEngine``, so ``cancel()`` stops the scheduling of remaining
  batches inside every execution backend;
* optional **per-client token-bucket rate limiting**
  (:mod:`repro.service.ratelimit`).

Single-threaded discipline: all manager state is mutated on the event
loop only.  Worker threads report engine progress through
``loop.call_soon_threadsafe``, which is the sole cross-thread touchpoint.
"""

from __future__ import annotations

import asyncio
import random
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, AsyncIterator, Callable

from repro.compiler.routing import routing_cache_stats
from repro.core.sample_bank import sample_bank_stats
from repro.engine.cache import ResultCache, code_version_token
from repro.engine.runner import ExecutionEngine
from repro.obs.logs import get_logger
from repro.obs.metrics import REGISTRY
from repro.service.failures import FailureClass, FailureClassifier, RetryPolicy
from repro.service.jobs import TERMINAL_STATES, Job, JobEvent, JobHandle, JobState
from repro.service.ratelimit import RateLimiter

__all__ = [
    "JobManager",
    "QueueFull",
    "JobFailed",
    "JobCancelled",
    "UnknownJob",
]

_log = get_logger("service.manager")

# Service activity on the process metrics registry.  Every label series
# /metrics should always expose is pre-registered at zero below — a
# scrape right after startup sees the full catalogue, not just the
# series that happened to fire already.
_MET_SUBMISSIONS = REGISTRY.counter(
    "repro_service_submissions_total",
    "Job submissions by outcome (accepted, coalesced, rejected_queue_full, "
    "rejected_rate_limited)",
    labels=("outcome",),
)
_MET_JOBS = REGISTRY.counter(
    "repro_service_jobs_total",
    "Finished jobs by terminal state",
    labels=("state",),
)
_MET_RETRIES = REGISTRY.counter(
    "repro_service_retries_total",
    "Retry attempts by failure classification",
    labels=("classification",),
)
_MET_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_service_queue_depth",
    "Jobs currently waiting in the bounded queue",
)
_MET_JOB_SECONDS = REGISTRY.histogram(
    "repro_service_job_seconds",
    "Wall-clock seconds from job start to terminal state",
)
for _outcome in ("accepted", "coalesced", "rejected_queue_full", "rejected_rate_limited"):
    _MET_SUBMISSIONS.inc(0, outcome=_outcome)
for _state in ("succeeded", "failed", "cancelled"):
    _MET_JOBS.inc(0, state=_state)
for _class in FailureClass:
    _MET_RETRIES.inc(0, classification=_class.value)


class QueueFull(RuntimeError):
    """The bounded job queue rejected a submission (backpressure)."""


class JobFailed(RuntimeError):
    """Awaited job ended FAILED; carries the recorded error."""

    def __init__(self, job_id: str, error: dict[str, Any] | None):
        message = (error or {}).get("message", "job failed")
        super().__init__(f"job {job_id} failed: {message}")
        self.job_id = job_id
        self.error = error


class JobCancelled(RuntimeError):
    """Awaited job ended CANCELLED."""

    def __init__(self, job_id: str):
        super().__init__(f"job {job_id} was cancelled")
        self.job_id = job_id


class UnknownJob(KeyError):
    """No job with the given id exists."""

    def __init__(self, job_id: str):
        super().__init__(f"unknown job {job_id!r}")
        self.job_id = job_id


def _error_record(exc: BaseException, rule_name: str, classification: str, attempts: int) -> dict[str, Any]:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "rule": rule_name,
        "classification": classification,
        "attempts": attempts,
    }


class JobManager:
    """Async job API over the experiment registry and execution engine.

    Parameters
    ----------
    registry:
        Experiment registry (defaults to the analysis layer's
        ``EXPERIMENTS``); tests inject a private registry of fast fakes.
    workers:
        Concurrent jobs; also the size of the warm thread pool.
    queue_size:
        Bounded-queue capacity — queued jobs beyond the ones currently
        running.  Submissions past it raise :class:`QueueFull`.
    retry:
        :class:`RetryPolicy` for transient failures.
    classifier:
        :class:`FailureClassifier`; defaults to the built-in rules.
    limiter:
        Optional :class:`RateLimiter`; when set, every submission spends
        one token for its client (``None`` clients share "anonymous").
    engine_options:
        Keyword arguments for each job's ``ExecutionEngine`` — ``jobs``,
        ``backend``, ``use_cache``, ``fuse``.  Each attempt gets a fresh
        engine (per-job stats stay clean) sharing one ``ResultCache``.
    normalize:
        Params canonicaliser; defaults to
        :func:`repro.analysis.registry.normalize_runner_params`.
    sleep:
        Backoff sleeper (defaults to ``asyncio.sleep``); tests inject a
        recorder to assert delays without waiting.
    retry_seed:
        Seed for the jitter RNG — seeded tests get reproducible delays.
    """

    def __init__(
        self,
        registry=None,
        *,
        workers: int = 2,
        queue_size: int = 32,
        retry: RetryPolicy | None = None,
        classifier: FailureClassifier | None = None,
        limiter: RateLimiter | None = None,
        engine_options: dict[str, Any] | None = None,
        normalize: Callable[[dict | None], dict] | None = None,
        sleep: Callable[[float], Any] | None = None,
        retry_seed: int | None = None,
    ):
        if registry is None:
            from repro.analysis.registry import EXPERIMENTS as registry
        if normalize is None:
            from repro.analysis.registry import normalize_runner_params as normalize
        self.registry = registry
        self.workers = max(1, workers)
        self.queue_size = max(1, queue_size)
        self.retry = retry if retry is not None else RetryPolicy()
        self.classifier = classifier if classifier is not None else FailureClassifier()
        self.limiter = limiter
        self.engine_options = dict(engine_options or {})
        self.normalize = normalize
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._retry_rng = random.Random(retry_seed)
        # One cache instance shared by every job's engine: its on-disk
        # store is the second coalescing layer (identical re-submissions
        # after completion replay results instead of recomputing).
        self._cache = (
            ResultCache() if self.engine_options.get("use_cache", True) else None
        )
        self._keyer = self._cache if self._cache is not None else ResultCache()

        self._jobs: dict[str, Job] = {}
        self._active: dict[str, Job] = {}  # coalescing key -> live job
        self._queue: asyncio.Queue[Job] | None = None
        self._worker_tasks: list[asyncio.Task] = []
        self._pool: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._next_id = 0
        self.metrics: dict[str, int] = {
            "submitted": 0,
            "coalesced": 0,
            "succeeded": 0,
            "failed": 0,
            "cancelled": 0,
            "retries": 0,
            "rejected_queue_full": 0,
            "rejected_rate_limited": 0,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        return self._queue is not None

    async def start(self) -> None:
        """Create the queue and spin up the warm worker pool."""
        if self.started:
            return
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-job"
        )
        self._worker_tasks = [
            asyncio.create_task(self._worker(), name=f"repro-worker-{i}")
            for i in range(self.workers)
        ]

    async def stop(self) -> None:
        """Cancel live jobs, stop the workers, drop the thread pool."""
        if not self.started:
            return
        for job in list(self._active.values()):
            job.cancel.cancel()
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._queue = None

    async def __aenter__(self) -> "JobManager":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def coalescing_key(self, experiment: str, params: dict | None = None) -> str:
        """The content-addressed identity of one submission.

        Same recipe as the engine cache — name + normalized params +
        code version — so the key changes exactly when the computed
        numbers could.
        """
        spec = self.registry.get(experiment)  # KeyError carries did-you-mean
        normalized = self.normalize(params)
        return self._keyer.key_for(
            f"service.{spec.name}", normalized, code_version_token()
        )

    async def submit(
        self,
        experiment: str,
        params: dict | None = None,
        *,
        client: str | None = None,
    ) -> JobHandle:
        """Accept, coalesce, or reject one job submission.

        Raises ``KeyError`` (unknown experiment), ``ValueError`` (bad
        params), :class:`~repro.service.ratelimit.RateLimited`, or
        :class:`QueueFull`.
        """
        if not self.started:
            raise RuntimeError("JobManager.start() has not been called")
        spec = self.registry.get(experiment)
        normalized = self.normalize(params)
        if self.limiter is not None:
            try:
                self.limiter.acquire(client or "anonymous")
            except Exception:
                self.metrics["rejected_rate_limited"] += 1
                _MET_SUBMISSIONS.inc(outcome="rejected_rate_limited")
                _log.warning(
                    "submission rejected (rate limited): %s client=%s",
                    spec.name,
                    client or "anonymous",
                )
                raise
        key = self._keyer.key_for(
            f"service.{spec.name}", normalized, code_version_token()
        )
        self.metrics["submitted"] += 1

        existing = self._active.get(key)
        if existing is not None:
            existing.submissions += 1
            self.metrics["coalesced"] += 1
            _MET_SUBMISSIONS.inc(outcome="coalesced")
            self._emit(existing, "coalesced", {"submissions": existing.submissions})
            return JobHandle(self, existing, coalesced=True)

        self._next_id += 1
        job = Job(
            id=f"j{self._next_id:06d}",
            experiment=spec.name,
            params=normalized,
            key=key,
            client=client,
            done=asyncio.Event(),
        )
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            self.metrics["rejected_queue_full"] += 1
            _MET_SUBMISSIONS.inc(outcome="rejected_queue_full")
            _log.warning(
                "submission rejected (queue full, %d waiting): %s",
                self.queue_size,
                spec.name,
            )
            raise QueueFull(
                f"job queue is full ({self.queue_size} waiting); retry later"
            ) from None
        self._jobs[job.id] = job
        self._active[key] = job
        _MET_SUBMISSIONS.inc(outcome="accepted")
        _MET_QUEUE_DEPTH.set(self._queue.qsize())
        _log.info(
            "job %s accepted: %s trace_id=%s", job.id, spec.name, job.trace_id
        )
        self._set_state(job, JobState.QUEUED)
        return JobHandle(self, job, coalesced=False)

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #
    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            _MET_QUEUE_DEPTH.set(self._queue.qsize())
            try:
                if job.state is not JobState.CANCELLED:  # cancelled while queued
                    await self._run_job(job)
            finally:
                self._active.pop(job.key, None)
                self._queue.task_done()

    def _build_engine(self, job: Job) -> ExecutionEngine:
        options = dict(self.engine_options)
        use_cache = options.pop("use_cache", True)
        options.pop("cache", None)

        def report(snapshot: dict, _job=job) -> None:
            # Runs on the worker thread; hop to the loop.  The loop can
            # be gone during shutdown — drop the event, not the thread.
            try:
                self._loop.call_soon_threadsafe(
                    self._emit,
                    _job,
                    "progress",
                    {**snapshot, "trace_id": _job.trace_id},
                )
            except RuntimeError:
                pass

        return ExecutionEngine(
            use_cache=use_cache,
            cache=self._cache if use_cache else None,
            cancel=job.cancel,
            progress=report,
            **options,
        )

    @staticmethod
    def _invoke_runner(spec, engine: ExecutionEngine, params: dict) -> tuple[Any, str]:
        return spec.runner(engine, **params)

    def _engine_snapshot(
        self,
        engine: ExecutionEngine,
        routing_base: dict[str, Any] | None = None,
        cache_base: dict[str, int] | None = None,
        trace_id: str | None = None,
        bank_base: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """Per-job engine stats plus the cache traffic the job caused.

        The routing cache, the sample bank and the result cache are
        shared process-wide (that sharing is the point), so their
        counters are cumulative; the baselines captured at job start
        turn them into per-job deltas.  Concurrent jobs overlap in those
        deltas — they measure what happened *during* the job, which for
        capacity questions is the honest number.  Occupancy fields
        (``entries``, ``sources_computed``, ``bytes``) stay absolute.
        """
        stats = engine.stats
        snapshot = {
            "jobs": stats.jobs,
            "backend": stats.backend,
            "workers_used": stats.workers_used,
            "tasks_total": stats.tasks_total,
            "tasks_executed": stats.tasks_executed,
            "tasks_fused": stats.tasks_fused,
            "cache_hits": stats.cache_hits,
            "wall_seconds": stats.wall_seconds,
            "seconds_by_phase": dict(stats.seconds_by_phase),
        }
        routing_now = routing_cache_stats()
        snapshot["routing_cache"] = {
            key: (
                value - routing_base.get(key, 0)
                if routing_base is not None and key in ("hits", "misses", "evictions")
                else value
            )
            for key, value in routing_now.items()
        }
        bank_now = sample_bank_stats()
        bank_delta_keys = ("hits", "misses", "evictions", "bypasses", "oversize")
        snapshot["sample_bank"] = {
            key: (
                value - bank_base.get(key, 0)
                if bank_base is not None and key in bank_delta_keys
                else value
            )
            for key, value in bank_now.items()
        }
        if self._cache is not None:
            cache_now = self._cache.stats()
            snapshot["result_cache"] = {
                key: value - (cache_base or {}).get(key, 0)
                for key, value in cache_now.items()
            }
        else:
            snapshot["result_cache"] = None
        if trace_id is not None:
            snapshot["trace_id"] = trace_id
        return snapshot

    async def _run_job(self, job: Job) -> None:
        spec = self.registry.get(job.experiment)
        job.started = time.time()
        # Shared-cache counters are cumulative across jobs; capture them
        # now so the job's snapshot reports its own delta (satellite of
        # the unified observability work — see _engine_snapshot).
        routing_base = routing_cache_stats()
        bank_base = sample_bank_stats()
        cache_base = self._cache.stats() if self._cache is not None else None
        attempt = 0
        while True:
            attempt += 1
            job.attempts = attempt
            self._set_state(job, JobState.RUNNING, attempt=attempt)
            engine = self._build_engine(job)
            try:
                result, text = await self._loop.run_in_executor(
                    self._pool,
                    partial(self._invoke_runner, spec, engine, job.params),
                )
            except asyncio.CancelledError:
                # The worker task itself was cancelled (manager.stop());
                # mark the job and let the cancellation propagate.
                job.cancel.cancel()
                job.engine_stats = self._engine_snapshot(
                    engine,
                    routing_base,
                    cache_base,
                    trace_id=job.trace_id,
                    bank_base=bank_base,
                )
                self._finish(job, JobState.CANCELLED)
                raise
            except BaseException as exc:  # noqa: BLE001 - classified below
                rule = self.classifier.classify(exc)
                job.engine_stats = self._engine_snapshot(
                    engine,
                    routing_base,
                    cache_base,
                    trace_id=job.trace_id,
                    bank_base=bank_base,
                )
                error = _error_record(exc, rule.name, rule.classification.value, attempt)
                if (
                    rule.classification is FailureClass.CANCELLED
                    or job.cancel.cancelled
                ):
                    self._finish(job, JobState.CANCELLED, error=error)
                    return
                if (
                    rule.classification is FailureClass.TRANSIENT
                    and attempt < self.retry.max_attempts
                ):
                    delay = self.retry.delay(attempt, self._retry_rng)
                    self.metrics["retries"] += 1
                    _MET_RETRIES.inc(classification=rule.classification.value)
                    _log.warning(
                        "job %s attempt %d failed (%s), retrying in %.2fs: %s",
                        job.id,
                        attempt,
                        rule.name,
                        delay,
                        exc,
                    )
                    self._set_state(
                        job,
                        JobState.RETRYING,
                        attempt=attempt,
                        delay=delay,
                        rule=rule.name,
                        failure=f"{type(exc).__name__}: {exc}",
                    )
                    await self._sleep(delay)
                    if job.cancel.cancelled:  # cancelled during backoff
                        self._finish(job, JobState.CANCELLED, error=error)
                        return
                    continue
                self._finish(job, JobState.FAILED, error=error)
                return
            else:
                job.result = result
                job.text = text
                job.engine_stats = self._engine_snapshot(
                    engine,
                    routing_base,
                    cache_base,
                    trace_id=job.trace_id,
                    bank_base=bank_base,
                )
                self._finish(job, JobState.SUCCEEDED)
                return

    # ------------------------------------------------------------------ #
    # State/event plumbing (event-loop thread only)
    # ------------------------------------------------------------------ #
    def _emit(self, job: Job, kind: str, payload: dict[str, Any]) -> None:
        event = JobEvent(
            sequence=len(job.events),
            kind=kind,
            payload=payload,
            timestamp=time.time(),
        )
        job.events.append(event)
        for queue in list(job.watchers):
            queue.put_nowait(event)

    def _set_state(self, job: Job, state: JobState, **payload: Any) -> None:
        job.state = state
        self._emit(job, "state", {"state": state.value, **payload})

    def _finish(
        self, job: Job, state: JobState, error: dict[str, Any] | None = None
    ) -> None:
        if job.terminal:
            return
        job.finished = time.time()
        if error is not None:
            job.error = error
        counter = {
            JobState.SUCCEEDED: "succeeded",
            JobState.FAILED: "failed",
            JobState.CANCELLED: "cancelled",
        }[state]
        self.metrics[counter] += 1
        _MET_JOBS.inc(state=counter)
        if job.started is not None:
            _MET_JOB_SECONDS.observe(job.finished - job.started)
        log = _log.info if state is JobState.SUCCEEDED else _log.warning
        log(
            "job %s %s after %d attempt(s) trace_id=%s%s",
            job.id,
            counter,
            job.attempts,
            job.trace_id,
            f" ({(error or {}).get('message')})" if error else "",
        )
        self._active.pop(job.key, None)
        self._set_state(job, state, **({"error": error} if error else {}))
        if job.done is not None:
            job.done.set()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def _get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id)
        return job

    def jobs(self) -> list[Job]:
        """Every job this manager has accepted, in submission order."""
        return list(self._jobs.values())

    def status(self, job_id: str) -> dict[str, Any]:
        """JSON-ready snapshot of one job."""
        from repro.analysis.reporting import jsonable

        job = self._get(job_id)
        return {
            "id": job.id,
            "experiment": job.experiment,
            "params": jsonable(job.params),
            "trace_id": job.trace_id,
            "state": job.state.value,
            "submissions": job.submissions,
            "attempts": job.attempts,
            "created": job.created,
            "started": job.started,
            "finished": job.finished,
            "error": job.error,
            "engine": job.engine_stats,
            "events": len(job.events),
        }

    async def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job is terminal (``asyncio.TimeoutError`` after
        ``timeout`` seconds)."""
        job = self._get(job_id)
        if not job.terminal:
            await asyncio.wait_for(job.done.wait(), timeout)
        return job

    async def result(
        self, job_id: str, timeout: float | None = None
    ) -> tuple[Any, str]:
        """The job's ``(result, text)``; raises :class:`JobFailed` /
        :class:`JobCancelled` on the unhappy endings."""
        job = await self.wait(job_id, timeout=timeout)
        if job.state is JobState.SUCCEEDED:
            return job.result, job.text
        if job.state is JobState.CANCELLED:
            raise JobCancelled(job.id)
        raise JobFailed(job.id, job.error)

    async def cancel(self, job_id: str) -> bool:
        """Request cancellation; True when the job was still live.

        Queued jobs finish immediately; running jobs stop at the next
        batch/call boundary inside the engine and settle CANCELLED from
        the worker loop.
        """
        job = self._get(job_id)
        if job.terminal:
            return False
        job.cancel.cancel()
        if job.state is JobState.QUEUED:
            self._finish(job, JobState.CANCELLED)
        else:
            self._emit(job, "cancel-requested", {})
        return True

    async def events(self, job_id: str) -> AsyncIterator[JobEvent]:
        """Replay a job's event log, then stream live until terminal."""
        job = self._get(job_id)
        queue: asyncio.Queue[JobEvent] = asyncio.Queue()
        job.watchers.append(queue)
        try:
            seen = 0
            for event in list(job.events):
                yield event
                seen = event.sequence + 1
            if job.terminal:
                return
            while True:
                event = await queue.get()
                if event.sequence < seen:
                    continue  # duplicated by the replay above
                yield event
                if event.kind == "state" and event.payload.get("state") in {
                    state.value for state in TERMINAL_STATES
                }:
                    return
        finally:
            job.watchers.remove(queue)

    def stats(self) -> dict[str, Any]:
        """Service-level counters plus queue occupancy.

        ``seconds_by_phase`` aggregates the per-phase wall-clock buckets
        (see :mod:`repro.engine.phases`) over every job the manager still
        knows about, so ``/stats`` can attribute service time to
        sample/mask/repair/compile/score without walking individual jobs.
        ``sample_bank`` is the process-wide common-random-number bank
        (:mod:`repro.core.sample_bank`): lifetime counters plus current
        occupancy, complementing the per-job deltas each job snapshot
        carries.
        """
        seconds_by_phase: dict[str, float] = {}
        for job in self._jobs.values():
            snapshot = job.engine_stats or {}
            for name, seconds in (snapshot.get("seconds_by_phase") or {}).items():
                seconds_by_phase[name] = seconds_by_phase.get(name, 0.0) + seconds
        return {
            **self.metrics,
            "jobs_known": len(self._jobs),
            "jobs_active": len(self._active),
            "queue_size": self.queue_size,
            "queue_used": self._queue.qsize() if self._queue is not None else 0,
            "workers": self.workers,
            "seconds_by_phase": seconds_by_phase,
            "sample_bank": sample_bank_stats(),
        }
