"""Job records for the reproduction service.

A :class:`Job` is one experiment computation owned by the
:class:`~repro.service.manager.JobManager`: it carries the normalized
runner parameters, the coalescing key, the lifecycle state machine
(``QUEUED -> RUNNING [-> RETRYING -> RUNNING]* -> SUCCEEDED | FAILED |
CANCELLED``), an append-only event log that the streaming endpoints
replay, and the :class:`~repro.engine.backends.CancelToken` that
propagates cancellation down into the execution backends.

A :class:`JobHandle` is what ``submit()`` returns: a thin client-side
view of a job.  Several handles may share one job — that is request
coalescing — and each handle remembers whether *its* submission started
the computation or attached to an in-flight one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Any

from repro.engine.backends import CancelToken
from repro.obs.tracing import new_id

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    import asyncio

    from repro.service.manager import JobManager

__all__ = ["JobState", "JobEvent", "Job", "JobHandle", "TERMINAL_STATES"]


class JobState(str, Enum):
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    RETRYING = "retrying"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves once entered.
TERMINAL_STATES = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED}
)


@dataclass(frozen=True)
class JobEvent:
    """One entry of a job's append-only event log.

    ``sequence`` is the position in the log (dense, starting at 0) so
    stream consumers that replay history and then switch to live events
    can deduplicate at the boundary.
    """

    sequence: int
    kind: str  # "state" | "progress" | "coalesced" | "cancel-requested"
    payload: dict[str, Any]
    timestamp: float


@dataclass
class Job:
    """One experiment computation and everything observed about it."""

    id: str
    experiment: str
    params: dict[str, Any]
    key: str  # coalescing key (content-addressed, see JobManager)
    #: Correlation id for this job's computation: surfaced in status
    #: snapshots, SSE progress events and log lines, so one job's
    #: activity can be stitched together across endpoints and processes.
    trace_id: str = field(default_factory=lambda: new_id(16))
    client: str | None = None
    state: JobState = JobState.QUEUED
    submissions: int = 1  # submitters sharing this computation
    attempts: int = 0
    created: float = field(default_factory=time.time)
    started: float | None = None
    finished: float | None = None
    result: Any = None
    text: str | None = None
    error: dict[str, Any] | None = None
    engine_stats: dict[str, Any] | None = None
    events: list[JobEvent] = field(default_factory=list)
    cancel: CancelToken = field(default_factory=CancelToken)
    #: Live event-stream subscribers (one asyncio.Queue per watcher).
    watchers: list = field(default_factory=list)
    #: Set exactly once, when the job reaches a terminal state.
    done: "asyncio.Event | None" = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class JobHandle:
    """A submitter's view of a (possibly shared) job."""

    def __init__(self, manager: "JobManager", job: Job, coalesced: bool):
        self._manager = manager
        self._job = job
        self.coalesced = coalesced

    @property
    def id(self) -> str:
        return self._job.id

    @property
    def state(self) -> JobState:
        return self._job.state

    @property
    def job(self) -> Job:
        return self._job

    def status(self) -> dict[str, Any]:
        """JSON-ready snapshot of the job (see ``JobManager.status``)."""
        return self._manager.status(self._job.id)

    async def wait(self, timeout: float | None = None) -> Job:
        """Block until the job reaches a terminal state."""
        return await self._manager.wait(self._job.id, timeout=timeout)

    async def result(self, timeout: float | None = None) -> tuple[Any, str]:
        """The job's ``(result, text)``; raises on failure/cancellation."""
        return await self._manager.result(self._job.id, timeout=timeout)

    async def cancel(self) -> bool:
        """Request cancellation; True when the job was still cancellable."""
        return await self._manager.cancel(self._job.id)
