"""Graph metrics for qubit topologies.

Helpers used by the evaluation harness to characterise lattices and MCMs:
degree histograms, diameters, and connected-subgraph extraction for
benchmark layout (the paper sizes benchmarks at 80 % device utilisation, so
the compiler needs a connected region of that size).
"""

from __future__ import annotations

from collections import Counter

import networkx as nx

__all__ = [
    "degree_histogram",
    "average_degree",
    "graph_diameter",
    "densest_connected_subgraph",
]


def degree_histogram(graph: nx.Graph) -> dict[int, int]:
    """Map degree -> number of nodes with that degree."""
    return dict(Counter(dict(graph.degree).values()))


def average_degree(graph: nx.Graph) -> float:
    """Mean node degree of the graph (0.0 for an empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    return 2.0 * graph.number_of_edges() / graph.number_of_nodes()


def graph_diameter(graph: nx.Graph) -> int:
    """Diameter of a connected graph (raises for disconnected graphs)."""
    return nx.diameter(graph)


def densest_connected_subgraph(graph: nx.Graph, size: int, seed: int | None = None) -> list[int]:
    """Greedy connected subgraph of ``size`` nodes with many internal edges.

    Starting from the highest-degree node (or a seed node), repeatedly add the
    frontier node with the most neighbours already inside the subgraph.  This
    is the structure the layout pass uses to place a benchmark that occupies a
    fraction of the device.

    Parameters
    ----------
    graph:
        Connected coupling graph.
    size:
        Number of nodes requested (must not exceed the graph order).
    seed:
        Optional start node; defaults to a maximum-degree node.
    """
    if size > graph.number_of_nodes():
        raise ValueError("requested subgraph is larger than the graph")
    if size <= 0:
        return []

    if seed is None:
        seed = max(graph.nodes, key=lambda n: (graph.degree[n], -n))
    chosen = {seed}
    frontier = set(graph.neighbors(seed))
    while len(chosen) < size:
        if not frontier:
            # Disconnected remainder: jump to the best unchosen node.
            remaining = [n for n in graph.nodes if n not in chosen]
            if not remaining:
                break
            best = max(remaining, key=lambda n: graph.degree[n])
            chosen.add(best)
            frontier.update(set(graph.neighbors(best)) - chosen)
            continue
        best = max(
            frontier,
            key=lambda n: (sum(1 for m in graph.neighbors(n) if m in chosen), graph.degree[n], -n),
        )
        frontier.discard(best)
        chosen.add(best)
        frontier.update(set(graph.neighbors(best)) - chosen)
    return sorted(chosen)
