"""Parametric heavy-hexagon lattice generation.

The heavy-hexagon ("heavy-hex") lattice is the qubit topology used by IBM's
fixed-frequency transmon processors (Falcon, Hummingbird, Eagle) and by the
chiplet designs of the paper.  Qubits sit both on the vertices and on the
edges of a hexagonal tiling, which keeps the maximum qubit degree at three
and makes the lattice three-colourable with the F0/F1/F2 frequency pattern.
It is the *default* topology of this reproduction, registered alongside the
square-grid and ring alternatives in
:data:`repro.core.architecture.ARCHITECTURES`.

The construction used here mirrors the IBM layout:

* *dense rows* — horizontal chains of qubits connected to their left/right
  neighbours,
* *bridge qubits* — single qubits placed between two consecutive dense rows
  that connect vertically, one bridge every four columns, with the column
  offset alternating between 0 and 2 from one bridge row to the next.

``HeavyHexLattice`` is an immutable description of one such lattice,
implementing the :class:`repro.topology.base.Lattice` protocol.  The
factory :func:`heavy_hex_by_qubit_count` searches the (rows, columns) space
and, when necessary, trims non-articulation qubits so that the returned
lattice contains *exactly* the requested number of qubits while remaining
connected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.topology.base import LatticeOps, QubitSite

__all__ = [
    "QubitSite",
    "HeavyHexLattice",
    "build_heavy_hex",
    "heavy_hex_qubit_count",
    "heavy_hex_by_qubit_count",
    "bridge_columns",
]

#: Column offset of the bridge qubits in even- and odd-indexed bridge rows.
_BRIDGE_OFFSETS = (0, 2)

#: Spacing (in columns) between two bridge qubits within a bridge row.
_BRIDGE_PERIOD = 4


def bridge_columns(cols: int, bridge_row: int) -> list[int]:
    """Columns that host a bridge qubit for the given bridge row.

    Parameters
    ----------
    cols:
        Number of columns in the dense rows.
    bridge_row:
        Index of the bridge row (0 is the row between dense rows 0 and 1).
    """
    offset = _BRIDGE_OFFSETS[bridge_row % 2]
    return list(range(offset, cols, _BRIDGE_PERIOD))


def heavy_hex_qubit_count(rows: int, cols: int) -> int:
    """Total number of qubits of an *untrimmed* ``rows x cols`` lattice."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    total = rows * cols
    for bridge_row in range(rows - 1):
        total += len(bridge_columns(cols, bridge_row))
    return total


@dataclass
class HeavyHexLattice(LatticeOps):
    """A heavy-hexagon qubit lattice.

    Instances are normally created through :func:`build_heavy_hex` or
    :func:`heavy_hex_by_qubit_count` rather than directly.

    Attributes
    ----------
    rows, cols:
        Dense-row count and dense-row length of the generating lattice.
    sites:
        One :class:`QubitSite` per qubit, indexed by qubit number.
    edges:
        Undirected couplings as ``(low, high)`` qubit-index pairs.
    name:
        Human readable identifier (useful when lattices represent chiplets).
    """

    rows: int
    cols: int
    sites: list[QubitSite]
    edges: list[tuple[int, int]]
    name: str = "heavy-hex"
    _graph: nx.Graph | None = field(default=None, repr=False, compare=False)

    def relabelled(self, name: str) -> "HeavyHexLattice":
        """Return a copy of the lattice under a different name."""
        return HeavyHexLattice(
            rows=self.rows,
            cols=self.cols,
            sites=list(self.sites),
            edges=list(self.edges),
            name=name,
        )


def build_heavy_hex(rows: int, cols: int, name: str = "heavy-hex") -> HeavyHexLattice:
    """Construct an untrimmed heavy-hex lattice.

    Parameters
    ----------
    rows:
        Number of dense rows (each a horizontal chain of qubits).
    cols:
        Number of qubits per dense row.
    name:
        Optional identifier stored on the lattice.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")

    sites: list[QubitSite] = []
    edges: list[tuple[int, int]] = []
    dense_index: dict[tuple[int, int], int] = {}

    counter = 0
    for row in range(rows):
        # Dense row qubits and their horizontal couplings.
        for col in range(cols):
            sites.append(QubitSite(counter, "dense", row, col))
            dense_index[(row, col)] = counter
            if col > 0:
                edges.append((counter - 1, counter))
            counter += 1
        # Bridge qubits between this dense row and the previous one.
        if row > 0:
            for col in bridge_columns(cols, row - 1):
                sites.append(QubitSite(counter, "bridge", row - 1, col))
                edges.append((dense_index[(row - 1, col)], counter))
                edges.append((counter, dense_index[(row, col)]))
                counter += 1

    lattice = HeavyHexLattice(rows=rows, cols=cols, sites=sites, edges=edges, name=name)
    return lattice


def _trim_to_count(lattice: HeavyHexLattice, target: int) -> HeavyHexLattice | None:
    """Remove non-articulation qubits (highest index first) down to ``target``.

    Returns ``None`` when the lattice cannot be trimmed to the target while
    staying connected.
    """
    graph = lattice.graph().copy()
    while graph.number_of_nodes() > target:
        articulation = set(nx.articulation_points(graph))
        candidates = [n for n in sorted(graph.nodes, reverse=True) if n not in articulation]
        if not candidates:
            return None
        graph.remove_node(candidates[0])

    keep = sorted(graph.nodes)
    relabel = {old: new for new, old in enumerate(keep)}
    sites = [
        QubitSite(relabel[s.index], s.kind, s.row, s.col)
        for s in lattice.sites
        if s.index in relabel
    ]
    edges = [
        (min(relabel[u], relabel[v]), max(relabel[u], relabel[v]))
        for u, v in lattice.edges
        if u in relabel and v in relabel
    ]
    return HeavyHexLattice(
        rows=lattice.rows,
        cols=lattice.cols,
        sites=sites,
        edges=edges,
        name=lattice.name,
    )


def _candidate_shapes(target: int) -> Iterable[tuple[int, int, int]]:
    """Yield (excess, rows, cols) candidates able to cover ``target`` qubits."""
    for rows in range(1, 40):
        for cols in range(2, 80):
            count = heavy_hex_qubit_count(rows, cols)
            if count < target:
                continue
            excess = count - target
            if excess > max(8, target // 4):
                # Far too big: trimming this much would distort the lattice.
                if cols > 2 and heavy_hex_qubit_count(rows, cols - 1) >= target:
                    continue
                if excess > max(12, target // 3):
                    continue
            yield excess, rows, cols
            break  # Smallest adequate cols for this row count.


def heavy_hex_by_qubit_count(
    num_qubits: int, name: str | None = None
) -> HeavyHexLattice:
    """Build a connected heavy-hex lattice with exactly ``num_qubits`` qubits.

    The search prefers exact (untrimmed) matches, then the smallest trim, and
    among equals the most "square" aspect ratio, which minimises the topology
    diameter in line with the paper's MCM-dimension selection rule.

    Parameters
    ----------
    num_qubits:
        Exact number of qubits the lattice must contain (>= 2).
    name:
        Optional identifier; defaults to ``"heavy-hex-<n>"``.
    """
    if num_qubits < 2:
        raise ValueError("a heavy-hex lattice needs at least 2 qubits")

    label = name or f"heavy-hex-{num_qubits}"
    # Rank candidates by an estimate of the topology diameter (cols + 2*rows,
    # since travelling between dense rows costs two hops through a bridge)
    # plus a penalty for every trimmed qubit.  This keeps lattices "square",
    # mirroring the paper's preference for low-diameter devices, while still
    # hitting the exact qubit count.
    candidates = sorted(
        _candidate_shapes(num_qubits),
        key=lambda item: (item[2] + 2 * item[1] + 2 * item[0], item[0]),
    )
    for excess, rows, cols in candidates:
        lattice = build_heavy_hex(rows, cols, name=label)
        if not lattice.is_connected():
            # Degenerate shapes (e.g. two-column lattices missing a bridge
            # row) are skipped outright.
            continue
        if excess == 0:
            return lattice
        trimmed = _trim_to_count(lattice, num_qubits)
        if trimmed is not None and trimmed.is_connected():
            return trimmed
    raise ValueError(f"could not construct a heavy-hex lattice with {num_qubits} qubits")
