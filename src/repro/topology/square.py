"""Square (grid) lattice generation.

The square lattice is the workhorse topology of tunable-coupler
superconducting processors (e.g. Google's Sycamore) and of the surface
code: qubits on the vertices of a regular grid, each coupled to its four
nearest neighbours.  At degree four it is strictly denser than heavy-hex
(degree three), so fixed-frequency devices on it face *more* simultaneous
collision constraints per qubit — the yield-vs-size curves collapse
earlier, exposing the sharper phase-transition behaviour the denser
constraint graph implies.  Avoiding ideal collisions needs five
frequencies instead of heavy-hex's three (see
:class:`repro.core.frequencies.SquareFiveFrequencyPlan`).

:func:`square_by_qubit_count` hits an *exact* qubit count by filling an
(approximately square) grid in row-major order and simply stopping after
``num_qubits`` sites; a partially filled last row keeps the lattice
connected because every site attaches to its left or upper neighbour.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.topology.base import LatticeOps, QubitSite

__all__ = ["SquareLattice", "build_square", "square_by_qubit_count"]


@dataclass
class SquareLattice(LatticeOps):
    """A square-grid qubit lattice (degree <= 4).

    Attributes
    ----------
    rows, cols:
        Grid dimensions of the generating (possibly partially filled)
        lattice.
    sites:
        One :class:`QubitSite` per qubit, row-major.
    edges:
        Undirected couplings as ``(low, high)`` qubit-index pairs.
    name:
        Human readable identifier.
    """

    rows: int
    cols: int
    sites: list[QubitSite]
    edges: list[tuple[int, int]]
    name: str = "square"
    _graph: nx.Graph | None = field(default=None, repr=False, compare=False)

    def relabelled(self, name: str) -> "SquareLattice":
        """Return a copy of the lattice under a different name."""
        return SquareLattice(
            rows=self.rows,
            cols=self.cols,
            sites=list(self.sites),
            edges=list(self.edges),
            name=name,
        )


def build_square(
    rows: int, cols: int, num_qubits: int | None = None, name: str = "square"
) -> SquareLattice:
    """Construct a square lattice, optionally truncated in row-major order.

    Parameters
    ----------
    rows, cols:
        Grid dimensions.
    num_qubits:
        When given, keep only the first ``num_qubits`` sites in row-major
        order (the last row may be partially filled); defaults to the
        full ``rows * cols`` grid.
    name:
        Optional identifier stored on the lattice.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be positive")
    total = rows * cols
    if num_qubits is None:
        num_qubits = total
    if not 1 <= num_qubits <= total:
        raise ValueError(f"num_qubits must lie in [1, {total}]")

    sites: list[QubitSite] = []
    edges: list[tuple[int, int]] = []
    for index in range(num_qubits):
        row, col = divmod(index, cols)
        sites.append(QubitSite(index, "dense", row, col))
        if col > 0:
            edges.append((index - 1, index))
        if row > 0:
            edges.append((index - cols, index))
    return SquareLattice(rows=rows, cols=cols, sites=sites, edges=edges, name=name)


def square_by_qubit_count(num_qubits: int, name: str | None = None) -> SquareLattice:
    """Build a connected square lattice with exactly ``num_qubits`` qubits.

    The grid is the most square shape covering the count
    (``rows = floor(sqrt(n))``, ``cols = ceil(n / rows)``) filled
    row-major, so the result is always connected and the aspect ratio
    stays close to one — the same low-diameter preference the heavy-hex
    factory applies.

    Parameters
    ----------
    num_qubits:
        Exact number of qubits the lattice must contain (>= 2).
    name:
        Optional identifier; defaults to ``"square-<n>"``.
    """
    if num_qubits < 2:
        raise ValueError("a square lattice needs at least 2 qubits")
    rows = max(1, int(num_qubits**0.5))
    cols = -(-num_qubits // rows)  # ceil division
    return build_square(
        rows=-(-num_qubits // cols),
        cols=cols,
        num_qubits=num_qubits,
        name=name or f"square-{num_qubits}",
    )
