"""Ring / linear-chain lattice generation.

The one-dimensional chain is the sparsest connected topology a device
can have (degree <= 2) and the natural lower anchor of the scenario
space: fewer couplings mean fewer collision constraints per qubit, so
yield-vs-size curves decay markedly slower than on heavy-hex or square
lattices.  Chains are also the topology of early fixed-frequency
multi-qubit demonstrations and of ion-trap-style shuttling layouts.

Two variants exist:

* an **open chain** (the default, and what the registered ``ring``
  architecture builds) — sites ``0..n-1`` coupled consecutively;
* a **closed ring** (``build_ring(..., closed=True)``) — the chain plus
  the wrap-around coupling.

The registered architecture uses open chains deliberately: under the
three-frequency period-3 plan every *interior* control already drives
one target of each other label, so the Type-5 criterion (two same-label
targets on one control) leaves a closed ring with no valid inter-chip
link site at all, while an open chain whose length is a multiple of
three ends on a label-2 qubit with a free target slot — exactly what
end-to-end MCM chaining needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.topology.base import LatticeOps, QubitSite

__all__ = ["RingLattice", "build_ring", "ring_by_qubit_count"]


@dataclass
class RingLattice(LatticeOps):
    """A one-dimensional qubit lattice: an open chain or a closed ring.

    Attributes
    ----------
    closed:
        True when the wrap-around coupling is present.
    sites:
        One :class:`QubitSite` per qubit, all in row 0, ``col == index``.
    edges:
        Undirected couplings as ``(low, high)`` qubit-index pairs.
    name:
        Human readable identifier.
    """

    closed: bool
    sites: list[QubitSite]
    edges: list[tuple[int, int]]
    name: str = "ring"
    _graph: nx.Graph | None = field(default=None, repr=False, compare=False)

    def relabelled(self, name: str) -> "RingLattice":
        """Return a copy of the lattice under a different name."""
        return RingLattice(
            closed=self.closed,
            sites=list(self.sites),
            edges=list(self.edges),
            name=name,
        )


def build_ring(num_qubits: int, closed: bool = False, name: str = "ring") -> RingLattice:
    """Construct a chain (``closed=False``) or ring (``closed=True``).

    Parameters
    ----------
    num_qubits:
        Number of qubits (>= 2; a closed ring needs >= 3).
    closed:
        Add the wrap-around coupling between the last and first qubit.
    name:
        Optional identifier stored on the lattice.
    """
    if num_qubits < 2:
        raise ValueError("a ring lattice needs at least 2 qubits")
    if closed and num_qubits < 3:
        raise ValueError("a closed ring needs at least 3 qubits")
    sites = [QubitSite(i, "dense", 0, i) for i in range(num_qubits)]
    edges = [(i, i + 1) for i in range(num_qubits - 1)]
    if closed:
        edges.append((0, num_qubits - 1))
    return RingLattice(closed=closed, sites=sites, edges=edges, name=name)


def ring_by_qubit_count(num_qubits: int, name: str | None = None) -> RingLattice:
    """Build the registered ``ring`` scenario: an open chain of exact size.

    Open rather than closed by design — see the module docstring for why
    the period-3 frequency plan forbids inter-chip links on closed
    rings.  Explicit closed rings remain available via
    :func:`build_ring`.

    Parameters
    ----------
    num_qubits:
        Exact number of qubits the chain must contain (>= 2).
    name:
        Optional identifier; defaults to ``"ring-<n>"``.
    """
    return build_ring(num_qubits, closed=False, name=name or f"ring-{num_qubits}")
