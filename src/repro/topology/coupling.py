"""Coupling maps: the device-level view of qubit-qubit connectivity.

A :class:`CouplingMap` wraps an undirected coupling graph together with the
all-pairs shortest-path distance matrix that the compiler's layout and
routing passes need.  It is deliberately independent of frequencies and
error rates so it can describe both monolithic lattices and assembled
multi-chip modules (where some couplings are inter-chip links).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path

__all__ = ["CouplingMap"]


@dataclass
class CouplingMap:
    """Undirected qubit connectivity with cached distances.

    Attributes
    ----------
    num_qubits:
        Number of physical qubits.
    edges:
        Undirected couplings as ``(low, high)`` index pairs.
    link_edges:
        Subset of ``edges`` that cross a chiplet boundary (empty for
        monolithic devices).
    """

    num_qubits: int
    edges: list[tuple[int, int]]
    link_edges: frozenset[tuple[int, int]] = frozenset()
    _distance: np.ndarray | None = field(default=None, repr=False, compare=False)
    _graph: nx.Graph | None = field(default=None, repr=False, compare=False)
    _neighbors: list[list[int]] | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        normalised = []
        for u, v in self.edges:
            if u == v:
                raise ValueError("self-coupling is not allowed")
            if not (0 <= u < self.num_qubits and 0 <= v < self.num_qubits):
                raise ValueError(f"edge ({u}, {v}) references an unknown qubit")
            normalised.append((min(u, v), max(u, v)))
        self.edges = sorted(set(normalised))
        self.link_edges = frozenset(
            (min(u, v), max(u, v)) for u, v in self.link_edges
        )
        unknown = self.link_edges - set(self.edges)
        if unknown:
            raise ValueError(f"link edges not present in coupling map: {sorted(unknown)}")

    @classmethod
    def from_lattice(cls, lattice) -> "CouplingMap":
        """Build a coupling map from a :class:`HeavyHexLattice`."""
        return cls(num_qubits=lattice.num_qubits, edges=list(lattice.edges))

    @property
    def num_edges(self) -> int:
        """Number of couplings."""
        return len(self.edges)

    def graph(self) -> nx.Graph:
        """Return (and cache) the coupling graph."""
        if self._graph is None:
            graph = nx.Graph()
            graph.add_nodes_from(range(self.num_qubits))
            graph.add_edges_from(self.edges)
            self._graph = graph
        return self._graph

    def neighbors(self, qubit: int) -> list[int]:
        """Neighbouring qubits of ``qubit``."""
        if self._neighbors is None:
            adjacency: list[list[int]] = [[] for _ in range(self.num_qubits)]
            for u, v in self.edges:
                adjacency[u].append(v)
                adjacency[v].append(u)
            self._neighbors = adjacency
        return self._neighbors[qubit]

    def is_connected(self) -> bool:
        """True when the coupling graph is connected."""
        return nx.is_connected(self.graph())

    def has_edge(self, u: int, v: int) -> bool:
        """True when qubits ``u`` and ``v`` are directly coupled."""
        return (min(u, v), max(u, v)) in self._edge_set()

    def _edge_set(self) -> set[tuple[int, int]]:
        return set(self.edges)

    def is_link(self, u: int, v: int) -> bool:
        """True when the coupling between ``u`` and ``v`` is an inter-chip link."""
        return (min(u, v), max(u, v)) in self.link_edges

    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distances (hops), cached."""
        if self._distance is None:
            rows, cols, data = [], [], []
            for u, v in self.edges:
                rows.extend((u, v))
                cols.extend((v, u))
                data.extend((1, 1))
            matrix = csr_matrix(
                (data, (rows, cols)), shape=(self.num_qubits, self.num_qubits)
            )
            self._distance = shortest_path(matrix, method="D", unweighted=True)
        return self._distance

    def distance(self, u: int, v: int) -> int:
        """Shortest-path distance (hops) between two qubits."""
        return int(self.distance_matrix()[u, v])

    def diameter(self) -> int:
        """Graph diameter (largest shortest-path distance)."""
        matrix = self.distance_matrix()
        finite = matrix[np.isfinite(matrix)]
        return int(finite.max()) if finite.size else 0

    def shortest_path(self, u: int, v: int) -> list[int]:
        """One shortest path between two qubits, as a list of qubit indices."""
        return nx.shortest_path(self.graph(), u, v)
