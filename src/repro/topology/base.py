"""The topology plugin contract: the ``Lattice`` protocol and shared ops.

Everything downstream of this package — frequency allocation, collision
screening, chiplet design, MCM stitching, calibration synthesis, the
yield Monte-Carlo — consumes qubit topologies exclusively through the
:class:`Lattice` protocol defined here.  A topology plugin therefore
needs only three things:

1. a dataclass whose ``sites``/``edges``/``name`` fields describe the
   lattice and which inherits :class:`LatticeOps` for the derived
   operations (graph view, degrees, connectivity, boundaries);
2. a ``<topology>_by_qubit_count`` factory building a connected lattice
   with an exact qubit count;
3. a :class:`repro.core.frequencies.FrequencyPlan` assigning collision-
   avoiding frequency labels, registered together with the factory in
   :data:`repro.core.architecture.ARCHITECTURES`.

Sites carry integer ``(row, col)`` coordinates.  They are geometric
hints, not physics: the boundary helpers use them to decide which qubits
can host inter-chip links (leftmost/rightmost per row, topmost/
bottommost per column), and frequency plans may use them to lay out
periodic label patterns.  One-dimensional topologies simply put every
site in row 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import networkx as nx

__all__ = ["QubitSite", "Lattice", "LatticeOps"]


@dataclass(frozen=True)
class QubitSite:
    """Geometric description of one qubit in a lattice.

    Attributes
    ----------
    index:
        Integer identifier of the qubit within its lattice.
    kind:
        Topology-specific site class.  ``"dense"`` marks ordinary
        (link-capable) sites; ``"bridge"`` marks heavy-hex vertical
        bridge qubits, which are excluded from chiplet boundaries.
    row:
        Row coordinate.  For heavy-hex bridge qubits this is the index
        of the dense row *above* the bridge.
    col:
        Column coordinate within the row.
    """

    index: int
    kind: str
    row: int
    col: int

    @property
    def is_bridge(self) -> bool:
        """True when the qubit is a heavy-hex vertical bridge qubit."""
        return self.kind == "bridge"


@runtime_checkable
class Lattice(Protocol):
    """Structural contract every topology implementation satisfies.

    The pipeline only ever touches this surface, so any object carrying
    these attributes/methods (in practice: a dataclass inheriting
    :class:`LatticeOps`) plugs into chiplets, MCMs, calibration and the
    yield Monte-Carlo unchanged.
    """

    name: str
    sites: list[QubitSite]
    edges: list[tuple[int, int]]

    @property
    def num_qubits(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    def site(self, index: int) -> QubitSite: ...

    def graph(self) -> nx.Graph: ...

    def degree(self, index: int) -> int: ...

    def max_degree(self) -> int: ...

    def is_connected(self) -> bool: ...

    def boundary_left(self) -> list[int]: ...

    def boundary_right(self) -> list[int]: ...

    def boundary_top(self) -> list[int]: ...

    def boundary_bottom(self) -> list[int]: ...


class LatticeOps:
    """Shared :class:`Lattice` operations derived from ``sites``/``edges``.

    Mixed into each topology dataclass (which declares the ``sites``,
    ``edges``, ``name`` and ``_graph`` fields itself, keeping its
    constructor signature explicit).  All methods are pure functions of
    the declared fields, so every topology gets identical semantics.
    """

    @property
    def num_qubits(self) -> int:
        """Number of qubits in the lattice."""
        return len(self.sites)

    @property
    def num_edges(self) -> int:
        """Number of qubit-qubit couplings in the lattice."""
        return len(self.edges)

    def site(self, index: int) -> QubitSite:
        """Return the :class:`QubitSite` for a qubit index."""
        return self.sites[index]

    def graph(self) -> nx.Graph:
        """Return (and cache) the lattice as a :class:`networkx.Graph`."""
        if self._graph is None:
            graph = nx.Graph()
            graph.add_nodes_from(site.index for site in self.sites)
            graph.add_edges_from(self.edges)
            self._graph = graph
        return self._graph

    def degree(self, index: int) -> int:
        """Degree of a qubit in the coupling graph."""
        return self.graph().degree[index]

    def max_degree(self) -> int:
        """Largest qubit degree in the lattice."""
        return max(dict(self.graph().degree).values())

    def is_connected(self) -> bool:
        """True when every qubit can reach every other qubit."""
        return nx.is_connected(self.graph())

    def dense_qubits(self) -> list[int]:
        """Indices of the link-capable (non-bridge) qubits."""
        return [site.index for site in self.sites if not site.is_bridge]

    def bridge_qubits(self) -> list[int]:
        """Indices of the bridge qubits (empty for most topologies)."""
        return [site.index for site in self.sites if site.is_bridge]

    # ------------------------------------------------------------------ #
    # Boundaries (inter-chip link sites)
    # ------------------------------------------------------------------ #
    def _linkable_sites(self) -> list[QubitSite]:
        return [s for s in self.sites if not s.is_bridge]

    def boundary_right(self) -> list[int]:
        """Link-capable qubits on the right boundary (one per row)."""
        result = []
        linkable = self._linkable_sites()
        for row in sorted({s.row for s in linkable}):
            row_sites = [s for s in linkable if s.row == row]
            result.append(max(row_sites, key=lambda s: s.col).index)
        return result

    def boundary_left(self) -> list[int]:
        """Link-capable qubits on the left boundary (one per row)."""
        result = []
        linkable = self._linkable_sites()
        for row in sorted({s.row for s in linkable}):
            row_sites = [s for s in linkable if s.row == row]
            result.append(min(row_sites, key=lambda s: s.col).index)
        return result

    def boundary_bottom(self) -> list[int]:
        """Link-capable qubits in the last row, ordered by column."""
        linkable = self._linkable_sites()
        last_row = max(s.row for s in linkable)
        return [
            s.index
            for s in sorted(linkable, key=lambda s: s.col)
            if s.row == last_row
        ]

    def boundary_top(self) -> list[int]:
        """Link-capable qubits in the first row, ordered by column."""
        linkable = self._linkable_sites()
        first_row = min(s.row for s in linkable)
        return [
            s.index
            for s in sorted(linkable, key=lambda s: s.col)
            if s.row == first_row
        ]
