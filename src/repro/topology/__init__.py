"""Qubit-topology substrate: heavy-hex lattices, coupling maps, graph metrics."""

from repro.topology.coupling import CouplingMap
from repro.topology.heavy_hex import (
    HeavyHexLattice,
    QubitSite,
    build_heavy_hex,
    heavy_hex_by_qubit_count,
    heavy_hex_qubit_count,
)
from repro.topology.metrics import (
    average_degree,
    degree_histogram,
    densest_connected_subgraph,
    graph_diameter,
)

__all__ = [
    "CouplingMap",
    "HeavyHexLattice",
    "QubitSite",
    "build_heavy_hex",
    "heavy_hex_by_qubit_count",
    "heavy_hex_qubit_count",
    "average_degree",
    "degree_histogram",
    "densest_connected_subgraph",
    "graph_diameter",
]
