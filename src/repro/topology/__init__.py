"""Qubit-topology substrate: pluggable lattices, coupling maps, metrics.

The :class:`~repro.topology.base.Lattice` protocol is the plugin
contract; :mod:`~repro.topology.heavy_hex` (the paper's default),
:mod:`~repro.topology.square` and :mod:`~repro.topology.ring` implement
it.  New topologies pair a lattice module here with a frequency plan in
:mod:`repro.core.frequencies` and one registration in
:data:`repro.core.architecture.ARCHITECTURES`.
"""

from repro.topology.base import Lattice, LatticeOps, QubitSite
from repro.topology.coupling import CouplingMap
from repro.topology.heavy_hex import (
    HeavyHexLattice,
    build_heavy_hex,
    heavy_hex_by_qubit_count,
    heavy_hex_qubit_count,
)
from repro.topology.metrics import (
    average_degree,
    degree_histogram,
    densest_connected_subgraph,
    graph_diameter,
)
from repro.topology.ring import RingLattice, build_ring, ring_by_qubit_count
from repro.topology.square import SquareLattice, build_square, square_by_qubit_count

__all__ = [
    "CouplingMap",
    "Lattice",
    "LatticeOps",
    "HeavyHexLattice",
    "QubitSite",
    "RingLattice",
    "SquareLattice",
    "build_heavy_hex",
    "build_ring",
    "build_square",
    "heavy_hex_by_qubit_count",
    "heavy_hex_qubit_count",
    "ring_by_qubit_count",
    "square_by_qubit_count",
    "average_degree",
    "degree_histogram",
    "densest_connected_subgraph",
    "graph_diameter",
]
