"""Binomial confidence intervals for Monte-Carlo yield estimates.

Every yield number the package reports is the success fraction of a
binomial experiment (``num_collision_free`` out of ``batch_size``
virtually fabricated devices).  The paper's Fig. 4 / Fig. 8 curves live
deep in the tails of that distribution — yields indistinguishable from 0
or 1 — where the textbook Wald interval ``p +/- z * sqrt(p(1-p)/n)``
degenerates to a width of zero.  The two intervals implemented here do
not:

:func:`wilson_interval`
    Inversion of the score test (Wilson 1927).  Closed form, never
    escapes ``[0, 1]``, always contains the point estimate, and keeps a
    sensible width at 0 or n successes.  The package default.
:func:`jeffreys_interval`
    Equal-tailed credible interval of the Jeffreys ``Beta(1/2, 1/2)``
    prior posterior, ``Beta(s + 1/2, n - s + 1/2)``.  Slightly tighter
    in the tails; requires ``scipy`` for the Beta quantile.

Both are exposed through :func:`binomial_ci`, which returns a
:class:`ConfidenceInterval` value object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "ConfidenceInterval",
    "binomial_ci",
    "median_interval",
    "midpoint_median",
    "wilson_interval",
    "jeffreys_interval",
    "normal_quantile",
    "samples_for_half_width",
    "DEFAULT_CONFIDENCE",
    "CI_METHODS",
]

#: Confidence level used when the caller does not specify one.
DEFAULT_CONFIDENCE = 0.95

#: The supported interval constructions.
CI_METHODS = ("wilson", "jeffreys")


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a binomial proportion.

    Attributes
    ----------
    low, high:
        Interval bounds, clipped to ``[0, 1]``.
    estimate:
        The point estimate (``successes / trials``) the interval brackets.
    confidence:
        Nominal two-sided confidence level (e.g. ``0.95``).
    method:
        Construction used (``"wilson"`` or ``"jeffreys"``).
    """

    low: float
    high: float
    estimate: float
    confidence: float
    method: str

    @property
    def half_width(self) -> float:
        """Half of the interval width — the adaptive stopping criterion."""
        return (self.high - self.low) / 2.0

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def normal_quantile(probability: float) -> float:
    """Standard-normal quantile via the inverse error function.

    Uses :func:`scipy.special.ndtri` when available and falls back to a
    Newton refinement of the Acklam rational approximation otherwise, so
    the stats layer keeps working on a numpy-only install.
    """
    if not 0.0 < probability < 1.0:
        raise ValueError("probability must lie strictly inside (0, 1)")
    try:
        from scipy.special import ndtri
    except ImportError:  # pragma: no cover - scipy is a standard dependency
        return _acklam_quantile(probability)
    return float(ndtri(probability))


def _acklam_quantile(p: float) -> float:  # pragma: no cover - scipy fallback
    """Rational approximation of the normal quantile (Acklam, ~1e-9)."""
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        return -_acklam_quantile(1.0 - p)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def _validate(successes: int, trials: int, confidence: float) -> None:
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly inside (0, 1)")


def wilson_interval(
    successes: int, trials: int, confidence: float = DEFAULT_CONFIDENCE
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The interval is the set of hypothesised proportions the score test
    does not reject; it is contained in ``[0, 1]`` and always brackets
    the point estimate ``successes / trials``.
    """
    _validate(successes, trials, confidence)
    z = normal_quantile(0.5 + confidence / 2.0)
    n = float(trials)
    p_hat = successes / n
    z2 = z * z
    denominator = 1.0 + z2 / n
    centre = (p_hat + z2 / (2.0 * n)) / denominator
    margin = (z / denominator) * math.sqrt(
        p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)
    )
    # The Wilson interval brackets the MLE by construction; the min/max
    # only absorbs floating-point residue at the 0 and n boundaries.
    low = max(0.0, min(centre - margin, p_hat))
    high = min(1.0, max(centre + margin, p_hat))
    return (low, high)


def jeffreys_interval(
    successes: int, trials: int, confidence: float = DEFAULT_CONFIDENCE
) -> tuple[float, float]:
    """Jeffreys (equal-tailed ``Beta(s + 1/2, n - s + 1/2)``) interval.

    By the standard convention the lower bound is 0 when no successes
    were observed and the upper bound is 1 when every trial succeeded,
    so the interval always contains the point estimate.
    """
    _validate(successes, trials, confidence)
    from scipy.stats import beta

    alpha = 1.0 - confidence
    low = 0.0
    high = 1.0
    if successes > 0:
        low = float(beta.ppf(alpha / 2.0, successes + 0.5, trials - successes + 0.5))
    if successes < trials:
        high = float(
            beta.ppf(1.0 - alpha / 2.0, successes + 0.5, trials - successes + 0.5)
        )
    p_hat = successes / trials
    return (max(0.0, min(low, p_hat)), min(1.0, max(high, p_hat)))


def binomial_ci(
    successes: int,
    trials: int,
    confidence: float = DEFAULT_CONFIDENCE,
    method: str = "wilson",
) -> ConfidenceInterval:
    """Confidence interval for ``successes`` out of ``trials``.

    Parameters
    ----------
    successes, trials:
        The binomial observation.
    confidence:
        Two-sided confidence level.
    method:
        ``"wilson"`` (default) or ``"jeffreys"``.
    """
    if method == "wilson":
        low, high = wilson_interval(successes, trials, confidence)
    elif method == "jeffreys":
        low, high = jeffreys_interval(successes, trials, confidence)
    else:
        raise ValueError(f"unknown CI method {method!r}; expected one of {CI_METHODS}")
    return ConfidenceInterval(
        low=low,
        high=high,
        estimate=successes / trials,
        confidence=confidence,
        method=method,
    )


def _midpoint(ordered: "list[float]") -> float:
    """Midpoint-interpolated median of an already-sorted list."""
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[middle])
    return 0.5 * (ordered[middle - 1] + ordered[middle])


def midpoint_median(values) -> float:
    """Midpoint-interpolated sample median (the one idiom, shared).

    The estimator :func:`median_interval` brackets; also reused by the
    application-evaluation ensemble summaries.
    """
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("midpoint_median needs at least one value")
    return _midpoint(ordered)


def median_interval(
    values: "list[float] | tuple[float, ...]",
    confidence: float = DEFAULT_CONFIDENCE,
) -> ConfidenceInterval:
    """Order-statistic (distribution-free) confidence interval for a median.

    The interval between the ``k``-th smallest and ``k``-th largest
    observations covers the population median with exact probability
    ``1 - 2 * BinomCDF(k - 1; n, 1/2)`` whatever the underlying
    distribution; this picks the tightest symmetric pair whose coverage
    still reaches ``confidence``.  For very small samples even the full
    range (coverage ``1 - 2^(1-n)``) may fall short of the requested
    level — the full range is returned then, as the honest spread the
    sample supports.  The returned interval's ``confidence`` is the
    *achieved* exact coverage of the chosen pair (>= the request for
    large samples, below it only when no pair can reach it), never a
    nominal label a downstream consumer could over-trust.  Used by the
    application-evaluation layer to report the spread of a top-k device
    ensemble's fidelity scores.
    """
    ordered = sorted(float(v) for v in values)
    n = len(ordered)
    if n == 0:
        raise ValueError("median_interval needs at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie strictly inside (0, 1)")
    estimate = _midpoint(ordered)
    if n == 1:
        return ConfidenceInterval(
            low=estimate,
            high=estimate,
            estimate=estimate,
            confidence=0.0,
            method="median-order",
        )

    # Exact symmetric-binomial coverage via math.comb: ensembles are
    # small (top-k devices), so the O(n^2) tail sums are negligible.
    def _coverage(k: int) -> float:
        tail = sum(math.comb(n, i) for i in range(k)) / 2.0**n
        return 1.0 - 2.0 * tail

    best_k = 1
    for k in range(2, n // 2 + 1):
        if _coverage(k) >= confidence:
            best_k = k
        else:
            break
    return ConfidenceInterval(
        low=min(ordered[best_k - 1], estimate),
        high=max(ordered[n - best_k], estimate),
        estimate=estimate,
        confidence=_coverage(best_k),
        method="median-order",
    )


def samples_for_half_width(
    proportion: float, half_width: float, confidence: float = DEFAULT_CONFIDENCE
) -> int:
    """Normal-approximation sample size reaching a CI half-width.

    A planning helper (``n ~ p(1-p) z^2 / h^2``): the adaptive estimator
    does not trust it — it measures the realised half-width instead — but
    benchmarks report it as the theoretical point of reference.
    """
    if not 0.0 <= proportion <= 1.0:
        raise ValueError("proportion must be a probability")
    if half_width <= 0.0:
        raise ValueError("half_width must be positive")
    z = normal_quantile(0.5 + confidence / 2.0)
    variance = max(proportion * (1.0 - proportion), 1e-12)
    return max(1, math.ceil(variance * z * z / (half_width * half_width)))
