"""Streaming (chunked) accumulation of binomial Monte-Carlo outcomes.

The seed-level contract of the chunked estimators lives here:

* a batch of ``total`` samples is partitioned into chunks of
  ``chunk_size`` (the last chunk ragged) by :func:`chunk_layout`;
* chunk ``i`` of a run with master seed ``s`` always derives its seed as
  ``SeedSequence(s).spawn``-child ``i`` — a pure function of ``(s, i)``,
  independent of how many chunks end up being drawn (spawned children
  are prefix-stable), of execution order, and of the process the chunk
  runs in.

Those two rules make every chunked consumer bit-identical to the
monolithic batch at the same seed: materialising all chunks into one
``(total, num_qubits)`` array and reducing once, streaming them through
a :class:`StreamingEstimator` in O(chunk) memory, fanning them out as
engine tasks across worker processes, and stopping early after any chunk
prefix all observe literally the same samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.seeding import spawn_seed_at
from repro.stats.intervals import (
    DEFAULT_CONFIDENCE,
    ConfidenceInterval,
    binomial_ci,
)

__all__ = [
    "StreamingEstimator",
    "chunk_layout",
    "chunk_seed",
    "DEFAULT_CHUNK_SIZE",
]

#: Devices fabricated per chunk when the caller does not choose a size.
DEFAULT_CHUNK_SIZE = 250


def chunk_layout(total: int, chunk_size: int) -> list[int]:
    """Chunk lengths covering ``total`` samples (last chunk ragged).

    ``chunk_layout(1000, 250) == [250, 250, 250, 250]``;
    ``chunk_layout(600, 250) == [250, 250, 100]``.
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    full, remainder = divmod(total, chunk_size)
    return [chunk_size] * full + ([remainder] if remainder else [])


def chunk_seed(seed: int | None, chunk_index: int) -> int | None:
    """The canonical seed of chunk ``chunk_index`` under master ``seed``.

    ``None`` propagates (explicitly non-reproducible sampling).  For any
    ``n > chunk_index`` this equals
    ``repro.engine.seeding.spawn_seeds(seed, n)[chunk_index]`` — the
    derivation does not depend on how many chunks a run draws.
    """
    return spawn_seed_at(seed, chunk_index)


@dataclass
class StreamingEstimator:
    """Accumulates binomial chunk outcomes and serves running intervals.

    The estimator never sees the samples themselves — only per-chunk
    ``(successes, trials)`` pairs — so it is the O(1)-state reduction at
    the heart of the O(chunk)-memory yield paths.

    Attributes
    ----------
    confidence:
        Two-sided confidence level of the served intervals.
    method:
        Interval construction (``"wilson"`` or ``"jeffreys"``).
    successes, trials, chunks:
        Running totals.
    """

    confidence: float = DEFAULT_CONFIDENCE
    method: str = "wilson"
    successes: int = 0
    trials: int = 0
    chunks: int = field(default=0)

    def update(self, successes: int, trials: int) -> "StreamingEstimator":
        """Fold one chunk's outcome into the running totals."""
        if trials <= 0:
            raise ValueError("a chunk must contain at least one trial")
        if not 0 <= successes <= trials:
            raise ValueError("chunk successes must lie in [0, trials]")
        self.successes += successes
        self.trials += trials
        self.chunks += 1
        return self

    @property
    def estimate(self) -> float:
        """Running success fraction (``nan`` before the first chunk)."""
        if self.trials == 0:
            return float("nan")
        return self.successes / self.trials

    def interval(self) -> ConfidenceInterval:
        """Confidence interval at the current totals."""
        if self.trials == 0:
            raise ValueError("no chunks accumulated yet")
        return binomial_ci(
            self.successes, self.trials, confidence=self.confidence, method=self.method
        )

    def half_width(self) -> float:
        """CI half-width at the current totals (``inf`` with no data)."""
        if self.trials == 0:
            return float("inf")
        return self.interval().half_width
