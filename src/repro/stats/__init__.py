"""Adaptive Monte-Carlo statistics: streaming chunks + confidence intervals.

Every yield estimate the repo publishes is a binomial success fraction;
this package upgrades those point estimates into interval estimates and
bounded-memory, bounded-error sampling:

* :mod:`repro.stats.intervals` — Wilson and Jeffreys binomial confidence
  intervals (the Wald interval collapses exactly where the paper's
  yield-collapse curves live, at yields near 0 and 1);
* :mod:`repro.stats.streaming` — the chunked sampling contract (spawn-
  seeded, prefix-stable chunk seeds) and the O(1)-state
  :class:`StreamingEstimator` reduction;
* :mod:`repro.stats.adaptive` — the CI-targeted stopping rule and the
  :class:`StatsOptions` bundle the CLI threads into the sweeps.

Layering: ``repro.stats`` depends only on numpy/scipy and
:mod:`repro.engine.seeding`; it knows nothing about devices or
collisions, so any layer (core, analysis, benchmarks) may import it.
"""

from repro.stats.adaptive import (
    DEFAULT_MAX_SAMPLES,
    AdaptiveOutcome,
    StatsOptions,
    adaptive_estimate,
)
from repro.stats.intervals import (
    CI_METHODS,
    DEFAULT_CONFIDENCE,
    ConfidenceInterval,
    binomial_ci,
    jeffreys_interval,
    median_interval,
    midpoint_median,
    normal_quantile,
    samples_for_half_width,
    wilson_interval,
)
from repro.stats.streaming import (
    DEFAULT_CHUNK_SIZE,
    StreamingEstimator,
    chunk_layout,
    chunk_seed,
)

__all__ = [
    "AdaptiveOutcome",
    "ConfidenceInterval",
    "StatsOptions",
    "StreamingEstimator",
    "adaptive_estimate",
    "binomial_ci",
    "chunk_layout",
    "chunk_seed",
    "jeffreys_interval",
    "median_interval",
    "midpoint_median",
    "normal_quantile",
    "samples_for_half_width",
    "wilson_interval",
    "CI_METHODS",
    "DEFAULT_CHUNK_SIZE",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_MAX_SAMPLES",
]
