"""Adaptive (CI-targeted) Monte-Carlo sampling.

:func:`adaptive_estimate` is a generic driver: it pulls binomial chunk
outcomes from a callback until the running confidence interval is tight
enough (half-width at or below ``ci_target``) or a hard sample cap is
hit.  It knows nothing about devices or collisions — the yield model
supplies a ``draw_chunk`` that fabricates and reduces one spawn-seeded
chunk — so the same stopping rule serves any binomial experiment the
repo grows.

:class:`StatsOptions` is the user-facing bundle of the statistics knobs
(`--chunk-size`, ``--ci-target``, ``--max-samples`` on the CLI) threaded
from the command line through the experiment registry into the sweep
entry points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.stats.intervals import DEFAULT_CONFIDENCE
from repro.stats.streaming import DEFAULT_CHUNK_SIZE, StreamingEstimator, chunk_layout

__all__ = ["AdaptiveOutcome", "StatsOptions", "adaptive_estimate", "DEFAULT_MAX_SAMPLES"]

#: Hard sample cap of an adaptive run when the caller does not set one.
DEFAULT_MAX_SAMPLES = 10_000


@dataclass(frozen=True)
class AdaptiveOutcome:
    """What an adaptive run observed and why it stopped.

    Attributes
    ----------
    successes, trials:
        Accumulated binomial totals (``trials`` is the samples used).
    chunks:
        Number of chunks drawn.
    reached_target:
        True when the run stopped because the CI half-width hit the
        target; False when it exhausted the sample cap first.
    half_width:
        Realised CI half-width at the stopping point.
    """

    successes: int
    trials: int
    chunks: int
    reached_target: bool
    half_width: float


def adaptive_estimate(
    draw_chunk: Callable[[int, int], tuple[int, int]],
    ci_target: float,
    max_samples: int = DEFAULT_MAX_SAMPLES,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    confidence: float = DEFAULT_CONFIDENCE,
    method: str = "wilson",
) -> AdaptiveOutcome:
    """Draw chunks until the CI half-width reaches ``ci_target``.

    Parameters
    ----------
    draw_chunk:
        ``draw_chunk(chunk_index, chunk_length) -> (successes, trials)``.
        Implementations must key their randomness on the chunk index
        (see :func:`repro.stats.streaming.chunk_seed`) so the samples an
        adaptive run observes are a prefix of the fixed-batch run's.
    ci_target:
        Stop once the running CI half-width is at or below this value.
    max_samples:
        Hard cap on the total trials; the run stops there even if the
        target was never reached.
    chunk_size:
        Trials per chunk (the last chunk shrinks to land exactly on
        ``max_samples`` — the same ragged layout as
        :func:`repro.stats.streaming.chunk_layout`).
    confidence, method:
        Interval parameters of the stopping criterion.
    """
    if ci_target < 0.0:
        raise ValueError("ci_target must be non-negative")
    if max_samples <= 0:
        raise ValueError("max_samples must be positive")

    estimator = StreamingEstimator(confidence=confidence, method=method)
    layout = chunk_layout(max_samples, chunk_size)
    reached = False
    for index, length in enumerate(layout):
        successes, trials = draw_chunk(index, length)
        estimator.update(successes, trials)
        if estimator.half_width() <= ci_target:
            reached = True
            break
    return AdaptiveOutcome(
        successes=estimator.successes,
        trials=estimator.trials,
        chunks=estimator.chunks,
        reached_target=reached,
        half_width=estimator.half_width(),
    )


@dataclass(frozen=True)
class StatsOptions:
    """Statistics knobs threaded from the CLI into the yield sweeps.

    Attributes
    ----------
    chunk_size:
        Devices fabricated per chunk.  Setting it switches a sweep point
        to the O(chunk)-memory streaming sampler; the chunk partition is
        part of the seeded sampling scheme, so results are a function of
        ``(seed, chunk_size)``.
    ci_target:
        Target CI half-width; setting it enables adaptive stopping.
    max_samples:
        Hard sample cap of adaptive runs (defaults to the sweep's batch
        size when unset).
    confidence, method:
        Interval parameters attached to every resulting
        :class:`~repro.core.yield_model.YieldResult`.
    """

    chunk_size: int | None = None
    ci_target: float | None = None
    max_samples: int | None = None
    confidence: float = DEFAULT_CONFIDENCE
    method: str = "wilson"

    def __post_init__(self) -> None:
        if self.chunk_size is not None and self.chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if self.ci_target is not None and self.ci_target < 0.0:
            raise ValueError("ci_target must be non-negative")
        if self.max_samples is not None and self.max_samples <= 0:
            raise ValueError("max_samples must be positive")
        if self.max_samples is not None and self.ci_target is None:
            raise ValueError(
                "max_samples only applies to adaptive runs — set ci_target "
                "(fixed-size runs are bounded by the sweep's batch size)"
            )
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must lie strictly inside (0, 1)")

    @property
    def is_default(self) -> bool:
        """True when no knob differs from the defaults (legacy sampling).

        Includes ``confidence`` and ``method``: a caller asking for 99%
        or Jeffreys intervals must reach the stats-aware code paths even
        with default chunking.
        """
        return (
            self.chunk_size is None
            and self.ci_target is None
            and self.max_samples is None
            and self.confidence == DEFAULT_CONFIDENCE
            and self.method == "wilson"
        )
