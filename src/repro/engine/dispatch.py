"""The executor duck-type in one place.

Sweep entry points across the package accept an optional ``executor``
(anything implementing ``map_calls``) and fall back to an in-process
loop.  :func:`run_calls` is that dispatch, shared so the hook contract
changes in exactly one spot.  Like :mod:`repro.engine.seeding`, this
module depends on nothing, so ``core`` can import it without coupling to
the runner/cache machinery.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

__all__ = ["run_calls"]


def run_calls(
    fn: Callable[..., Any],
    kwargs_list: Sequence[dict[str, Any]],
    executor=None,
    name: str = "task",
    cacheable: bool = True,
) -> list[Any]:
    """``[fn(**kw) for kw in kwargs_list]``, through ``executor`` if given.

    Pass ``cacheable=False`` for stochastic calls whose kwargs carry no
    ``seed`` key — the executor cannot tell them apart from deterministic
    work, and replaying a cached draw would freeze their randomness.
    """
    if executor is None:
        return [fn(**kwargs) for kwargs in kwargs_list]
    return executor.map_calls(fn, kwargs_list, name=name, cacheable=cacheable)
