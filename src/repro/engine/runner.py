"""The execution engine: parallel task runner with caching and stats.

:class:`ExecutionEngine` executes :class:`~repro.engine.task.Task` batches
on a ``concurrent.futures.ProcessPoolExecutor`` and falls back to an
in-process sequential loop when ``jobs=1``, when a batch is trivially
small, when the task *function* refuses to pickle (lambdas, closures —
detected up front), or when the environment cannot start worker
processes.  Unpicklable *parameter values* are a caller error and raise.
Because every task carries its own pre-derived seed, the two backends
produce bit-identical results.

The engine deliberately exposes a small duck-typed surface —
:meth:`ExecutionEngine.map_calls` — that the ``core`` sweep entry points
accept as their ``executor`` hook without importing this package.
"""

from __future__ import annotations

import inspect
import os
import pickle
import time
from collections import defaultdict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.engine.cache import ResultCache, code_version_token
from repro.engine.task import Task, TaskGraph

__all__ = ["ExecutionEngine", "EngineStats"]


def _workers_can_start() -> bool:
    """Canary probe: can this environment run a worker process at all?

    Used only on the rare :class:`BrokenProcessPool` path to tell a
    sandbox that refuses subprocesses (fall back sequentially) apart from
    a worker killed by its task (surface the failure instead of
    re-running the killer in the parent).
    """
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, 0).result(timeout=30) == 0
    except Exception:
        return False


def _fn_cache_safe(fn: Callable[..., Any]) -> bool:
    """Only plain module-level functions may hit the on-disk cache.

    The cache key hashes a function's *source*; closures, lambdas defined
    inside other functions, bound methods and ``functools.partial``
    objects carry captured state the source does not show, so two
    same-source callables can compute different results and must never
    share a cache entry.
    """
    return (
        inspect.isfunction(fn)
        and fn.__closure__ is None
        and "<locals>" not in fn.__qualname__
    )


def _invoke(fn: Callable[..., Any], kwargs: dict[str, Any]) -> tuple[float, int, Any]:
    """Module-level trampoline so task invocations pickle cleanly.

    Returns ``(seconds, worker_pid, result)`` — the worker times its own
    execution so per-task-family statistics stay accurate across
    processes, and reports its PID so the engine can count the workers
    that *actually* ran tasks (a lazily-filled pool may use fewer
    processes than it was configured with).
    """
    started = time.perf_counter()
    result = fn(**kwargs)
    return time.perf_counter() - started, os.getpid(), result


@dataclass
class EngineStats:
    """Wall-clock / throughput instrumentation for one engine instance.

    Attributes
    ----------
    jobs:
        Worker processes the engine was configured with.
    workers_used:
        Largest number of *distinct* worker processes observed executing
        any one batch (1 when every batch took the sequential in-process
        path).  This is what benchmark reports should publish alongside
        the *configured* ``jobs`` — the two differ whenever the pool
        falls back sequentially, a batch is smaller than the pool, or a
        lazily-filled pool serves the whole batch from fewer processes.
    tasks_total:
        Tasks submitted (including cache hits).
    tasks_executed:
        Tasks that actually ran (cache misses).
    cache_hits:
        Tasks answered from the on-disk cache.
    wall_seconds:
        Total wall-clock time spent inside ``run_tasks`` calls.
    seconds_by_family:
        Cumulative *execution* time per task family (task ``name``),
        measured per task in whichever process ran it; cache hits cost
        nothing, and with parallel workers the sum can exceed
        ``wall_seconds``.
    """

    jobs: int = 1
    workers_used: int = 0
    tasks_total: int = 0
    tasks_executed: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0
    seconds_by_family: dict[str, float] = field(default_factory=lambda: defaultdict(float))

    @property
    def tasks_per_second(self) -> float:
        """Answered-task throughput (cache hits included) over the
        engine's lifetime — a fully cached run is fast, not idle."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.tasks_total / self.wall_seconds

    def summary(self) -> str:
        """One-line human-readable account of the engine's work."""
        return (
            f"{self.tasks_total} tasks ({self.cache_hits} cached, "
            f"{self.tasks_executed} executed) in {self.wall_seconds:.2f}s "
            f"on {self.jobs} worker(s) — {self.tasks_per_second:.1f} tasks/s"
        )


class ExecutionEngine:
    """Cached, seeded, multi-process task runner.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` uses every available core, ``1`` forces
        the sequential in-process backend.
    cache:
        Result cache instance; built at the default location when omitted
        and ``use_cache`` is set.
    use_cache:
        Master switch for the on-disk cache (the CLI's ``--no-cache``).
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        use_cache: bool = True,
    ):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache = (cache if cache is not None else ResultCache()) if use_cache else None
        self.stats = EngineStats(jobs=self.jobs)

    # ------------------------------------------------------------------ #
    # Flat batches
    # ------------------------------------------------------------------ #
    def map_calls(
        self,
        fn: Callable[..., Any],
        kwargs_list: Sequence[dict[str, Any]],
        *,
        name: str = "task",
        cacheable: bool = True,
    ) -> list[Any]:
        """Run ``fn(**kwargs)`` for every kwargs dict, preserving order.

        This is the duck-typed ``executor`` hook consumed by the ``core``
        sweep entry points.
        """
        tasks = [Task(name=name, fn=fn, params=kw, cacheable=cacheable) for kw in kwargs_list]
        return self.run_tasks(tasks)

    def run_tasks(self, tasks: Sequence[Task]) -> list[Any]:
        """Execute a batch of independent tasks, results in input order."""
        started = time.perf_counter()
        results: list[Any] = [None] * len(tasks)

        pending: list[int] = []
        keys: dict[int, str] = {}
        _MISS = object()
        for index, task in enumerate(tasks):
            # An explicit seed=None marks a task as intentionally
            # non-deterministic (fresh OS entropy) — replaying a cached
            # result would silently freeze its randomness.
            stochastic = "seed" in task.params and task.params["seed"] is None
            if (
                self.cache is not None
                and task.cacheable
                and not stochastic
                and not task.inject
                and _fn_cache_safe(task.fn)
            ):
                key = self.cache.key_for(
                    task.name, dict(task.params), code_version_token(task.fn)
                )
                keys[index] = key
                cached = self.cache.get(key, _MISS)
                if cached is not _MISS:
                    results[index] = cached
                    self.stats.cache_hits += 1
                    continue
            pending.append(index)

        durations = self._execute(tasks, pending, results)
        for index in durations:
            if index in keys:
                self.cache.put(keys[index], results[index])

        elapsed = time.perf_counter() - started
        self.stats.tasks_total += len(tasks)
        self.stats.tasks_executed += len(pending)
        self.stats.wall_seconds += elapsed
        for index, seconds in durations.items():
            self.stats.seconds_by_family[tasks[index].name] += seconds
        return results

    def _execute(
        self, tasks: Sequence[Task], pending: list[int], results: list[Any]
    ) -> dict[int, float]:
        """Run the cache misses; returns per-task execution seconds by index.

        Exceptions raised by a task function always propagate to the
        caller (from either backend).  The sequential fallback is reserved
        for infrastructure problems only: an unpicklable task function
        (detected up front) or an environment that cannot sustain worker
        processes.
        """
        durations: dict[int, float] = {}
        if not pending:
            return durations
        if self.jobs > 1 and len(pending) > 1 and self._fns_picklable(tasks, pending):
            try:
                pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(pending)))
            except OSError:
                pool = None  # process creation refused: sequential fallback
            if pool is not None:
                broken = False
                worker_pids: set[int] = set()
                try:
                    with pool:
                        futures = {
                            index: pool.submit(
                                _invoke, tasks[index].fn, dict(tasks[index].params)
                            )
                            for index in pending
                        }
                        for index, future in futures.items():
                            try:
                                durations[index], pid, results[index] = future.result()
                                worker_pids.add(pid)
                            except BrokenProcessPool as exc:
                                if _workers_can_start():
                                    # The environment can run workers, so
                                    # the pool broke because a task killed
                                    # its worker (OOM, native crash).
                                    # Re-running in the parent would
                                    # repeat the damage; surface it.  The
                                    # broken pool cannot say WHICH task
                                    # died, so name the batch.
                                    families = sorted(
                                        {tasks[i].name for i in pending}
                                    )
                                    raise RuntimeError(
                                        "a worker process died while "
                                        "executing this batch (task "
                                        f"families: {', '.join(families)}); "
                                        "not retrying sequentially (a task "
                                        "may have exhausted memory or "
                                        "crashed native code)"
                                    ) from exc
                                # Workers cannot start at all (sandboxed
                                # environment) — use the sequential
                                # backend.  Task exceptions propagate
                                # untouched.
                                broken = True
                                break
                except BrokenProcessPool:
                    broken = True  # raised by pool shutdown itself
                if not broken:
                    self.stats.workers_used = max(
                        self.stats.workers_used, len(worker_pids)
                    )
                    return durations
                durations.clear()
        self.stats.workers_used = max(self.stats.workers_used, 1)
        for index in pending:
            started = time.perf_counter()
            results[index] = tasks[index].run()
            durations[index] = time.perf_counter() - started
        return durations

    @staticmethod
    def _fns_picklable(tasks: Sequence[Task], pending: list[int]) -> bool:
        """Cheap up-front check that every task function crosses processes.

        Functions pickle by reference, so this catches lambdas and
        closures without serialising any (potentially large) parameters.
        """
        for fn in {tasks[index].fn for index in pending}:
            try:
                pickle.dumps(fn)
            except (pickle.PicklingError, AttributeError, TypeError):
                return False
        return True

    # ------------------------------------------------------------------ #
    # Graphs
    # ------------------------------------------------------------------ #
    def run_graph(self, graph: TaskGraph) -> dict[str, Any]:
        """Execute a task graph generation by generation.

        Returns a mapping ``task id -> result``.  Tasks inside one
        generation run in parallel; dependency results are injected into
        dependants' parameters per their ``inject`` mapping.
        """
        results: dict[str, Any] = {}
        for generation in graph.generations():
            tasks = []
            for task_id in generation:
                task = graph.task(task_id)
                if task.inject:
                    params = dict(task.params)
                    for param, dep_id in task.inject.items():
                        params[param] = results[dep_id]
                    task = Task(
                        name=task.name, fn=task.fn, params=params, cacheable=False
                    )
                tasks.append(task)
            for task_id, result in zip(generation, self.run_tasks(tasks)):
                results[task_id] = result
        return results
