"""The execution engine: pluggable-backend task runner with caching and stats.

:class:`ExecutionEngine` executes :class:`~repro.engine.task.Task` batches
on one of the registered execution backends
(:mod:`repro.engine.backends`): ``sequential`` in-process, ``threads``,
``processes`` or ``shared-memory``, selected by name or — the default —
per batch by the ``auto`` mode from the estimated task cost.  Because
every task carries its own pre-derived seed, all backends produce
bit-identical results.

Small cache-miss batches headed for a pool are *fused*: consecutive
same-function tasks are coalesced into super-tasks
(:func:`repro.engine.backends.run_fused`) so pool startup and submission
overhead amortise over many tasks.  Fusion changes scheduling only —
subtasks keep their own kwargs (and seeds), their own measured duration
and their own cache entry.

The engine deliberately exposes a small duck-typed surface —
:meth:`ExecutionEngine.map_calls` — that the ``core`` sweep entry points
accept as their ``executor`` hook without importing this package.
"""

from __future__ import annotations

import inspect
import os
import time
from collections import defaultdict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Callable, Sequence

from repro.engine.backends import (
    AUTO_BACKEND,
    BACKENDS,
    Call,
    CancelToken,
    fn_picklable,
    get_backend,
    run_fused,
)
from repro.engine.cache import ResultCache, code_version_token
from repro.engine.phases import collecting
from repro.engine.task import Task, TaskGraph
from repro.obs import tracing
from repro.obs.logs import get_logger
from repro.obs.metrics import REGISTRY

__all__ = ["ExecutionEngine", "EngineStats"]

_log = get_logger("engine.runner")

# Engine activity on the process metrics registry (see repro.obs.metrics).
# These mirror EngineStats — the registry aggregates across every engine
# instance in the process (the service runs one per job) and is what the
# /metrics endpoint renders.
_MET_TASKS = REGISTRY.counter(
    "repro_engine_tasks_total",
    "Tasks submitted to engines by outcome (cached, executed)",
    labels=("status",),
)
_MET_FUSED = REGISTRY.counter(
    "repro_engine_tasks_fused_total",
    "Executed tasks that travelled to their worker inside a fused super-task",
)
_MET_FUSION_BATCHES = REGISTRY.counter(
    "repro_engine_fusion_batches_total",
    "Fused super-tasks submitted to pooled backends",
)
_MET_BATCH_SECONDS = REGISTRY.histogram(
    "repro_engine_batch_seconds",
    "Wall-clock seconds per engine batch (one run_tasks call)",
)
_MET_PHASE_SECONDS = REGISTRY.counter(
    "repro_engine_phase_seconds_total",
    "Cumulative exclusive seconds per instrumented pipeline phase",
    labels=("phase",),
)

#: Environment variable naming the default backend (the CLI's --backend).
BACKEND_ENV_VAR = "REPRO_BACKEND"

# Auto-mode thresholds (seconds).  Estimated batch work below the first
# stays in-process (nothing amortises), below the second goes to threads
# (pool startup is ~free, numpy releases the GIL), above it to processes.
_AUTO_SEQUENTIAL_BELOW = 0.05
_AUTO_THREADS_BELOW = 0.5

#: Per-task cost above which fusion stops helping (pool overhead is
#: already amortised by the task itself).
_FUSION_MAX_TASK_SECONDS = 0.1

#: Fused super-task batches per worker: >1 keeps the pool load-balanced
#: when subtask durations are uneven.
_FUSION_WAVES = 2


@lru_cache(maxsize=64)
def _backend_accepts_cancel(backend_type: type) -> bool:
    """True when a backend's ``execute`` takes a ``cancel`` parameter.

    Detected from the signature (the ``initial_violations=`` idiom in
    ``tuning.repair_batch``) so third-party backends registered before
    cancellation existed keep working — they just cancel at batch
    granularity instead of call granularity.
    """
    try:
        return "cancel" in inspect.signature(backend_type.execute).parameters
    except (TypeError, ValueError):
        return False


def _fn_cache_safe(fn: Callable[..., Any]) -> bool:
    """Only plain module-level functions may hit the on-disk cache.

    The cache key hashes a function's *source*; closures, lambdas defined
    inside other functions, bound methods and ``functools.partial``
    objects carry captured state the source does not show, so two
    same-source callables can compute different results and must never
    share a cache entry.
    """
    return (
        inspect.isfunction(fn)
        and fn.__closure__ is None
        and "<locals>" not in fn.__qualname__
    )


@dataclass
class EngineStats:
    """Wall-clock / throughput instrumentation for one engine instance.

    Attributes
    ----------
    jobs:
        Workers the engine was configured with.
    workers_used:
        Largest number of *distinct* workers (processes or threads)
        observed executing any one batch (1 when every batch took the
        sequential in-process path).  This is what benchmark reports
        should publish alongside the *configured* ``jobs`` — the two
        differ whenever the pool falls back sequentially, a batch is
        smaller than the pool, or a lazily-filled pool serves the whole
        batch from fewer processes.
    backend:
        The configured backend name (``auto`` when the engine selects
        per batch).
    tasks_total:
        Tasks submitted (including cache hits).
    tasks_executed:
        Tasks that actually ran (cache misses).
    tasks_fused:
        Executed tasks that travelled to their worker inside a fused
        super-task (0 on the sequential path).
    fusion_batches:
        Fused super-tasks submitted to pools.
    cache_hits:
        Tasks answered from the on-disk cache.
    wall_seconds:
        Total wall-clock time spent inside ``run_tasks`` calls.
    seconds_by_family:
        Cumulative *execution* time per task family (task ``name``),
        measured per task in whichever process ran it; cache hits cost
        nothing, and with parallel workers the sum can exceed
        ``wall_seconds``.
    seconds_by_phase:
        Cumulative execution time per instrumented pipeline phase
        (``sample``/``mask``/``repair``/``compile``/``score``, see
        :mod:`repro.engine.phases`), measured inside whichever worker
        ran each task and shipped home with the result.  Exclusive
        accounting (a phase's time excludes its nested phases), so the
        buckets sum to at most the executed-task time; the gap from
        ``seconds_by_family`` totals is un-instrumented task code.
        Cache hits contribute nothing, same as ``seconds_by_family``.
    """

    jobs: int = 1
    workers_used: int = 0
    backend: str = AUTO_BACKEND
    tasks_total: int = 0
    tasks_executed: int = 0
    tasks_fused: int = 0
    fusion_batches: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0
    seconds_by_family: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    seconds_by_phase: dict[str, float] = field(default_factory=lambda: defaultdict(float))

    @property
    def tasks_per_second(self) -> float:
        """Answered-task throughput (cache hits included) over the
        engine's lifetime — a fully cached run is fast, not idle."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.tasks_total / self.wall_seconds

    def summary(self) -> str:
        """One-line human-readable account of the engine's work."""
        return (
            f"{self.tasks_total} tasks ({self.cache_hits} cached, "
            f"{self.tasks_executed} executed) in {self.wall_seconds:.2f}s "
            f"on {self.jobs} worker(s) [{self.backend}] — "
            f"{self.tasks_per_second:.1f} tasks/s"
        )


class ExecutionEngine:
    """Cached, seeded task runner over pluggable execution backends.

    Parameters
    ----------
    jobs:
        Workers; ``None`` uses every available core, ``1`` forces the
        sequential in-process backend regardless of ``backend``.
    cache:
        Result cache instance; built at the default location when omitted
        and ``use_cache`` is set.
    use_cache:
        Master switch for the on-disk cache (the CLI's ``--no-cache``).
    backend:
        Execution backend name (see :data:`repro.engine.backends.BACKENDS`);
        ``None`` reads the ``REPRO_BACKEND`` environment variable and
        falls back to ``auto``.  Unknown names raise a ``KeyError`` with
        a did-you-mean suggestion.
    fuse:
        Enable task fusion for pooled backends (on by default; results
        are bit-identical either way).
    cancel:
        Optional :class:`~repro.engine.backends.CancelToken`.  Once set
        (from any thread), the engine raises
        :class:`~repro.engine.backends.ExecutionCancelled` before
        scheduling the next batch, and the running batch stops
        scheduling its remaining calls on every built-in backend.
    progress:
        Optional callable invoked after every completed batch with a
        stats snapshot dict (``tasks_total``, ``tasks_executed``,
        ``cache_hits``, ``batch_tasks``, ``batch_executed``,
        ``batch_seconds``, ``wall_seconds``).  Called from whichever
        thread runs the batch; must be cheap and must not raise.
    tracer:
        Optional :class:`repro.obs.tracing.Tracer`.  When set (or when a
        tracer is ambiently active on the calling thread via
        ``Tracer.activate()``), every batch runs under an
        ``engine.batch`` span, backends collect spans inside their
        workers, and the engine adopts the shipped spans — re-parenting
        each task's ``task:<family>`` root under the batch span — so the
        assembled trace is one tree regardless of backend.  ``None``
        (the default) with no ambient tracer keeps tracing off and the
        hot paths free of overhead.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | None = None,
        use_cache: bool = True,
        backend: str | None = None,
        fuse: bool = True,
        cancel: CancelToken | None = None,
        progress: Callable[[dict[str, Any]], None] | None = None,
        tracer: tracing.Tracer | None = None,
    ):
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        self.cache = (cache if cache is not None else ResultCache()) if use_cache else None
        if backend is None:
            backend = os.environ.get(BACKEND_ENV_VAR) or AUTO_BACKEND
        BACKENDS.get(backend)  # validate early: KeyError carries did-you-mean
        self.backend = backend
        self.fuse = fuse
        self.cancel = cancel
        self.progress = progress
        self.tracer = tracer
        self.stats = EngineStats(jobs=self.jobs, backend=backend)
        self._family_counts: dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------ #
    # Flat batches
    # ------------------------------------------------------------------ #
    def map_calls(
        self,
        fn: Callable[..., Any],
        kwargs_list: Sequence[dict[str, Any]],
        *,
        name: str = "task",
        cacheable: bool = True,
    ) -> list[Any]:
        """Run ``fn(**kwargs)`` for every kwargs dict, preserving order.

        This is the duck-typed ``executor`` hook consumed by the ``core``
        sweep entry points.
        """
        tasks = [Task(name=name, fn=fn, params=kw, cacheable=cacheable) for kw in kwargs_list]
        return self.run_tasks(tasks)

    def run_tasks(self, tasks: Sequence[Task]) -> list[Any]:
        """Execute a batch of independent tasks, results in input order.

        Raises :class:`~repro.engine.backends.ExecutionCancelled` when
        the engine's cancel token is set — before the batch starts, or
        from the backend mid-batch.
        """
        # Tracer resolution: an explicitly configured tracer wins, else
        # whatever tracer the calling thread has activated (the CLI's
        # --trace flow).  When the configured tracer is not yet active on
        # this thread — the service runs jobs on worker threads — the
        # batch activates it so engine-side spans have a collector.
        tracer = self.tracer if self.tracer is not None else tracing.active_tracer()
        if tracer is not None and not tracing.is_tracing():
            with tracer.activate():
                return self._run_batch(tasks, tracer)
        return self._run_batch(tasks, tracer)

    def _run_batch(self, tasks: Sequence[Task], tracer: tracing.Tracer | None) -> list[Any]:
        if self.cancel is not None:
            self.cancel.raise_if_cancelled()
        started = time.perf_counter()
        results: list[Any] = [None] * len(tasks)

        pending: list[int] = []
        keys: dict[int, str] = {}
        _MISS = object()
        for index, task in enumerate(tasks):
            # An explicit seed=None marks a task as intentionally
            # non-deterministic (fresh OS entropy) — replaying a cached
            # result would silently freeze its randomness.
            stochastic = "seed" in task.params and task.params["seed"] is None
            if (
                self.cache is not None
                and task.cacheable
                and not stochastic
                and not task.inject
                and _fn_cache_safe(task.fn)
            ):
                key = self.cache.key_for(
                    task.name, dict(task.params), code_version_token(task.fn)
                )
                keys[index] = key
                cached = self.cache.get(key, _MISS)
                if cached is not _MISS:
                    results[index] = cached
                    self.stats.cache_hits += 1
                    continue
            pending.append(index)

        with tracing.span("engine.batch", tasks=len(tasks), pending=len(pending)):
            durations = self._execute(tasks, pending, results, tracer)
        for index in durations:
            if index in keys:
                self.cache.put(keys[index], results[index])

        elapsed = time.perf_counter() - started
        batch_hits = len(tasks) - len(pending)
        self.stats.tasks_total += len(tasks)
        self.stats.tasks_executed += len(pending)
        self.stats.wall_seconds += elapsed
        if batch_hits:
            _MET_TASKS.inc(batch_hits, status="cached")
        if pending:
            _MET_TASKS.inc(len(pending), status="executed")
        _MET_BATCH_SECONDS.observe(elapsed)
        _log.debug(
            "batch done: %d task(s), %d executed, %d cached, %.3fs",
            len(tasks),
            len(pending),
            batch_hits,
            elapsed,
        )
        for index, seconds in durations.items():
            self.stats.seconds_by_family[tasks[index].name] += seconds
            self._family_counts[tasks[index].name] += 1
        if self.progress is not None:
            self.progress(
                {
                    "tasks_total": self.stats.tasks_total,
                    "tasks_executed": self.stats.tasks_executed,
                    "cache_hits": self.stats.cache_hits,
                    "batch_tasks": len(tasks),
                    "batch_executed": len(pending),
                    "batch_seconds": elapsed,
                    "wall_seconds": self.stats.wall_seconds,
                }
            )
        return results

    # ------------------------------------------------------------------ #
    # Backend selection + fusion
    # ------------------------------------------------------------------ #
    def _estimated_cost(self, tasks: Sequence[Task], pending: list[int]) -> float | None:
        """Mean seconds per executed task over the pending families, from
        this engine's own history; ``None`` until every family has run."""
        families = {tasks[index].name for index in pending}
        costs = []
        for family in families:
            count = self._family_counts.get(family, 0)
            if count == 0:
                return None
            costs.append(self.stats.seconds_by_family[family] / count)
        return max(costs) if costs else None

    def _execute(
        self,
        tasks: Sequence[Task],
        pending: list[int],
        results: list[Any],
        tracer: tracing.Tracer | None = None,
    ) -> dict[int, float]:
        """Run the cache misses; returns per-task execution seconds by index.

        Exceptions raised by a task function always propagate to the
        caller (from any backend).  The sequential fallback is reserved
        for infrastructure problems only: an unpicklable task function
        (detected up front) or an environment that cannot sustain worker
        processes (see :mod:`repro.engine.backends`).
        """
        durations: dict[int, float] = {}
        if not pending:
            return durations
        pending = list(pending)

        cost = self._estimated_cost(tasks, pending)
        name = self.backend
        if name == AUTO_BACKEND:
            name, cost = self._auto_select(tasks, pending, durations, results, cost)
            if not pending:  # the probe consumed the whole batch
                self.stats.workers_used = max(self.stats.workers_used, 1)
                return durations
        if self.jobs <= 1 or len(pending) <= 1:
            name = "sequential"
        if name in ("processes", "shared-memory") and not all(
            fn_picklable(fn) for fn in {tasks[index].fn for index in pending}
        ):
            # Unpicklable task *functions* (lambdas, closures) cannot reach a
            # process pool; fused calls would smuggle them past the backend's
            # own check as parameters, so downgrade before planning.
            name = "sequential"

        backend = get_backend(name, jobs=self.jobs)
        trace = tracer is not None
        calls, groups = self._plan_calls(tasks, pending, backend.pooled, cost, trace)
        if self.cancel is not None and _backend_accepts_cancel(type(backend)):
            report = backend.execute(calls, cancel=self.cancel)
        else:
            report = backend.execute(calls)
        self.stats.workers_used = max(self.stats.workers_used, len(report.workers))

        # Cross-process metric deltas: workers increment their own
        # process's registry; the shipped deltas fold those increments
        # into this process.  Same-pid deltas are already booked (thread
        # workers, the sequential fallback) and must not merge twice.
        own_pid = os.getpid()
        for delta in getattr(report, "metrics", None) or []:
            if delta and delta.get("pid") != own_pid:
                REGISTRY.merge_delta(delta)

        # The span the workers' task roots re-parent under: the
        # engine.batch span currently open on this thread.
        parent_id = tracing.current_span_id() if trace else None

        # Older third-party backends may not populate `phases`/`spans`;
        # treat a missing or short list as empty.
        report_phases = getattr(report, "phases", None) or []
        report_spans = getattr(report, "spans", None) or []
        for position, group in enumerate(groups):
            if len(group) == 1:
                index = group[0]
                durations[index] = report.seconds[position]
                results[index] = report.results[position]
                if position < len(report_phases):
                    self._merge_phases(report_phases[position])
                if trace and position < len(report_spans) and report_spans[position]:
                    tracer.adopt(report_spans[position], parent_id=parent_id)
            else:
                self.stats.tasks_fused += len(group)
                self.stats.fusion_batches += 1
                _MET_FUSED.inc(len(group))
                _MET_FUSION_BATCHES.inc()
                for item, index in zip(report.results[position], group):
                    if len(item) == 4:  # traced run_fused ships spans too
                        seconds, phases, spans, result = item
                        if trace and spans:
                            tracer.adopt(spans, parent_id=parent_id)
                    else:
                        seconds, phases, result = item
                    durations[index] = seconds
                    results[index] = result
                    self._merge_phases(phases)
        return durations

    def _merge_phases(self, phases: dict[str, float] | None) -> None:
        if phases:
            for name, seconds in phases.items():
                self.stats.seconds_by_phase[name] += seconds
                _MET_PHASE_SECONDS.inc(seconds, phase=name)

    def _auto_select(
        self,
        tasks: Sequence[Task],
        pending: list[int],
        durations: dict[int, float],
        results: list[Any],
        cost: float | None,
    ) -> tuple[str, float | None]:
        """Resolve ``auto`` to a concrete backend from the estimated task cost.

        When no family history exists yet, the first pending task is
        *probed* in-process (its result and duration count normally) and
        its duration seeds the estimate — one task is a sunk sequential
        cost either way.
        """
        if self.jobs <= 1 or len(pending) <= 1:
            return "sequential", cost
        if cost is None:
            index = pending.pop(0)
            started = time.perf_counter()
            # The probe runs on the engine thread, where the tracer's
            # collector (if any) is already active — the span lands
            # under engine.batch directly, mirroring an adopted one.
            with tracing.span("task:" + tasks[index].name, probe=True):
                with collecting() as phases:
                    results[index] = tasks[index].run()
            cost = time.perf_counter() - started
            durations[index] = cost
            self._merge_phases(phases)
        remaining = cost * len(pending)
        if remaining < _AUTO_SEQUENTIAL_BELOW:
            return "sequential", cost
        if remaining < _AUTO_THREADS_BELOW:
            return "threads", cost
        return "processes", cost

    def _plan_calls(
        self,
        tasks: Sequence[Task],
        pending: list[int],
        pooled: bool,
        cost: float | None,
        trace: bool = False,
    ) -> tuple[list[Call], list[list[int]]]:
        """Build the backend call list, fusing small tasks for pooled backends.

        Returns ``(calls, groups)`` where ``groups[i]`` lists the task
        indices call ``i`` answers (singletons are plain calls, larger
        groups are :func:`run_fused` super-tasks).  Only consecutive
        same-function tasks fuse, and each super-task preserves the
        sequential execution order of its subtasks.

        With ``trace`` set, singleton calls carry ``Call.trace`` and
        fused super-calls pass ``trace``/``family`` through to
        :func:`run_fused`, so every subtask collects spans under its own
        ``task:<family>`` root (the super-call itself adds no span —
        trees stay identical with fusion on or off).
        """
        fusable = (
            self.fuse
            and pooled
            and len(pending) > self.jobs
            and (cost is None or cost < _FUSION_MAX_TASK_SECONDS)
        )
        target = -(-len(pending) // (self.jobs * _FUSION_WAVES)) if fusable else 1

        calls: list[Call] = []
        groups: list[list[int]] = []
        run: list[int] = []

        def _flush() -> None:
            while run:
                group, run[:] = run[:target], run[target:]
                if len(group) == 1:
                    index = group[0]
                    calls.append(
                        Call(
                            fn=tasks[index].fn,
                            kwargs=dict(tasks[index].params),
                            family=tasks[index].name,
                            trace=trace,
                        )
                    )
                else:
                    fused_kwargs: dict[str, Any] = {
                        "fn": tasks[group[0]].fn,
                        "kwargs_list": [dict(tasks[i].params) for i in group],
                    }
                    if trace:
                        # run_fused collects per-subtask spans itself, so
                        # the super-call's own Call.trace stays False (an
                        # extra wrapper span would make fused and unfused
                        # trees differ).
                        fused_kwargs["trace"] = True
                        fused_kwargs["family"] = tasks[group[0]].name
                    calls.append(
                        Call(
                            fn=run_fused,
                            kwargs=fused_kwargs,
                            family=tasks[group[0]].name,
                        )
                    )
                groups.append(group)

        for index in pending:
            if run and tasks[index].fn is not tasks[run[-1]].fn:
                _flush()
            run.append(index)
        _flush()
        return calls, groups

    # ------------------------------------------------------------------ #
    # Graphs
    # ------------------------------------------------------------------ #
    def run_graph(self, graph: TaskGraph) -> dict[str, Any]:
        """Execute a task graph generation by generation.

        Returns a mapping ``task id -> result``.  Tasks inside one
        generation run in parallel; dependency results are injected into
        dependants' parameters per their ``inject`` mapping.
        """
        results: dict[str, Any] = {}
        for generation in graph.generations():
            tasks = []
            for task_id in generation:
                task = graph.task(task_id)
                if task.inject:
                    params = dict(task.params)
                    for param, dep_id in task.inject.items():
                        params[param] = results[dep_id]
                    task = Task(
                        name=task.name, fn=task.fn, params=params, cacheable=False
                    )
                tasks.append(task)
            for task_id, result in zip(generation, self.run_tasks(tasks)):
                results[task_id] = result
        return results
