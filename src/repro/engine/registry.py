"""Experiment registry: name -> runnable experiment specification.

The analysis layer registers one :class:`ExperimentSpec` per figure/table
driver; the ``python -m repro`` CLI resolves experiments by name (or
alias) and hands them an :class:`~repro.engine.runner.ExecutionEngine`.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ExperimentSpec", "ExperimentRegistry", "did_you_mean"]


def did_you_mean(name: str, candidates) -> str:
    """``"; did you mean 'x'?"`` when a close match exists, else ``""``.

    Shared by the experiment and topology lookups so every CLI typo gets
    the same suggestion format.
    """
    matches = difflib.get_close_matches(name, list(candidates), n=1, cutoff=0.5)
    return f"; did you mean {matches[0]!r}?" if matches else ""


@dataclass(frozen=True)
class ExperimentSpec:
    """A named, engine-aware experiment.

    Attributes
    ----------
    name:
        Canonical name (``fig4``, ``table1``, ...).
    description:
        One-line summary shown by ``python -m repro list``.
    runner:
        ``runner(engine, seed, **options) -> result``; the result must
        expose ``format_table()`` or be printable.
    aliases:
        Alternative CLI names.
    stats_aware:
        True when the runner threads statistics options (chunked /
        adaptive Monte-Carlo) into its sampling; the CLI warns when
        statistics flags are passed to an experiment that ignores them.
    topology_aware:
        True when the runner threads a ``--topology`` selection into its
        models; the CLI warns when the flag is passed to an experiment
        that ignores it.
    tuning_aware:
        True when the runner threads post-fabrication repair options
        (the CLI's ``--tuning`` / ``--max-shift-mhz`` /
        ``--repair-budget``) into its yield Monte-Carlo; the CLI warns
        when the flags are passed to an experiment that ignores them.
    compiler_aware:
        True when the runner threads benchmark and routing-strategy
        selections (the CLI's ``--benchmarks`` / ``--routing``) into
        its application compilation; the CLI warns when the flags are
        passed to an experiment that ignores them.
    """

    name: str
    description: str
    runner: Callable[..., Any]
    aliases: tuple[str, ...] = field(default=())
    stats_aware: bool = False
    topology_aware: bool = False
    tuning_aware: bool = False
    compiler_aware: bool = False


class ExperimentRegistry:
    """Mutable name -> :class:`ExperimentSpec` mapping with alias support."""

    def __init__(self) -> None:
        self._specs: dict[str, ExperimentSpec] = {}
        self._aliases: dict[str, str] = {}

    def register(
        self,
        name: str,
        description: str,
        runner: Callable[..., Any],
        aliases: tuple[str, ...] = (),
        stats_aware: bool = False,
        topology_aware: bool = False,
        tuning_aware: bool = False,
        compiler_aware: bool = False,
    ) -> ExperimentSpec:
        """Register an experiment; raises on duplicate names or aliases."""
        spec = ExperimentSpec(
            name=name,
            description=description,
            runner=runner,
            aliases=aliases,
            stats_aware=stats_aware,
            topology_aware=topology_aware,
            tuning_aware=tuning_aware,
            compiler_aware=compiler_aware,
        )
        for key in (name, *aliases):
            if key in self._specs or key in self._aliases:
                raise ValueError(f"experiment name {key!r} already registered")
        self._specs[name] = spec
        for alias in aliases:
            self._aliases[alias] = name
        return spec

    def get(self, name: str) -> ExperimentSpec:
        """Resolve a name or alias; raises ``KeyError`` with suggestions."""
        canonical = self._aliases.get(name, name)
        if canonical not in self._specs:
            known = ", ".join(sorted(self._specs))
            suggestion = did_you_mean(name, [*self._specs, *self._aliases])
            raise KeyError(
                f"unknown experiment {name!r}{suggestion} (known: {known})"
            )
        return self._specs[canonical]

    def names(self) -> list[str]:
        """Canonical experiment names in registration order."""
        return list(self._specs)

    def specs(self) -> list[ExperimentSpec]:
        """Every registered spec in registration order."""
        return list(self._specs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._specs or name in self._aliases

    def __len__(self) -> int:
        return len(self._specs)
