"""On-disk content-addressed result cache for engine tasks.

Results are keyed on ``(task name, parameters, code version)`` — the seed
is one of the parameters, so the same experiment at a different seed is a
different cache entry.  The code version combines ``repro.__version__``,
a digest of every ``repro`` source file (computed once per process), and
a hash of the task function's own source — so editing *any* code the
package ships, including the models a task calls into, invalidates
cached results rather than silently serving stale numbers.

Values are stored as pickle files named after the SHA-256 of the key,
written atomically (temp file + rename) so concurrent workers never
observe a half-written entry.
"""

from __future__ import annotations

import hashlib
import inspect
import os
import pickle
import sys
import tempfile
import threading
from dataclasses import is_dataclass, fields
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable

import numpy as np

import repro
from repro.obs.logs import get_logger
from repro.obs.metrics import REGISTRY

__all__ = ["ResultCache", "stable_token", "code_version_token", "default_cache_dir"]

_log = get_logger("engine.cache")

#: Cache traffic by outcome: ``hit``, ``miss``, or ``poisoned_unlink``
#: (an entry that existed but could not be unpickled and was deleted).
_EVENTS = REGISTRY.counter(
    "repro_result_cache_events_total",
    "ResultCache lookups by outcome (hit, miss, poisoned_unlink)",
    labels=("event",),
)

#: Environment variable overriding the cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """`$REPRO_CACHE_DIR` when set, else ``.repro_cache/`` in the CWD."""
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else Path.cwd() / ".repro_cache"


def stable_token(value: Any) -> str:
    """A stable textual token for a parameter value.

    Primitives render literally; containers recurse with sorted dict keys;
    numpy arrays hash their bytes; dataclasses recurse over their fields;
    anything else falls back to a hash of its pickle serialisation.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return repr(value)
    if isinstance(value, float):
        return repr(float(value))
    if isinstance(value, (list, tuple)):
        inner = ",".join(stable_token(v) for v in value)
        return f"[{inner}]" if isinstance(value, list) else f"({inner})"
    if isinstance(value, dict):
        inner = ",".join(
            f"{stable_token(k)}:{stable_token(v)}" for k, v in sorted(value.items(), key=repr)
        )
        return f"{{{inner}}}"
    if isinstance(value, np.ndarray):
        digest = hashlib.sha256(np.ascontiguousarray(value).tobytes()).hexdigest()[:16]
        return f"ndarray({value.dtype},{value.shape},{digest})"
    if is_dataclass(value) and not isinstance(value, type):
        # compare=False fields are internal state (lazy caches, derived
        # values) — two logically equal instances may differ there, so
        # they must not influence the key.
        inner = ",".join(
            f"{f.name}={stable_token(getattr(value, f.name))}"
            for f in fields(value)
            if f.compare
        )
        return f"{type(value).__name__}({inner})"
    digest = hashlib.sha256(pickle.dumps(value, protocol=4)).hexdigest()[:16]
    return f"{type(value).__name__}#{digest}"


@lru_cache(maxsize=1)
def _package_source_digest() -> str:
    """Digest of the ``repro`` sources plus the numerical environment.

    Conservative by design: a task's results can depend on any module it
    calls into, so any package edit invalidates the whole cache — as does
    a Python or numpy upgrade, whose numerical behaviour (generator
    streams, percentile interpolation) task results silently inherit.
    """
    package_root = Path(repro.__file__).parent
    digest = hashlib.sha256()
    digest.update(
        f"py{sys.version_info[0]}.{sys.version_info[1]}:np{np.__version__}".encode()
    )
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        try:
            digest.update(path.read_bytes())
        except OSError:
            continue
    return digest.hexdigest()[:12]


@lru_cache(maxsize=512)
def code_version_token(fn: Callable[..., Any] | None = None) -> str:
    """Package version + package-source digest + the task's own source hash.

    Memoized per function: the token only changes with the installed
    sources, which cannot change within a process's lifetime.
    """
    token = f"{repro.__version__}:{_package_source_digest()}"
    if fn is not None:
        try:
            source = inspect.getsource(fn)
        except (OSError, TypeError):
            source = getattr(fn, "__qualname__", repr(fn))
        token += ":" + hashlib.sha256(source.encode()).hexdigest()[:12]
    return token


class ResultCache:
    """Pickle-backed result store addressed by content key.

    Parameters
    ----------
    directory:
        Cache root (created lazily on first write).
    """

    def __init__(self, directory: str | Path | None = None):
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.unlinked = 0  # poisoned entries deleted by get() (a subset of misses)
        # hits/misses are bare ints incremented from whichever thread runs
        # get(); without the lock concurrent engines (the thread backend,
        # the service's worker pool) lose increments and skew EngineStats.
        self._stats_lock = threading.Lock()

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_stats_lock"]  # locks do not pickle
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.__dict__.setdefault("unlinked", 0)  # pickles from older versions
        self._stats_lock = threading.Lock()

    def stats(self) -> dict[str, int]:
        """Lookup counters as a plain dict (for ``--dump-json`` and the
        service's per-job engine snapshots)."""
        with self._stats_lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "poisoned_unlinks": self.unlinked,
            }

    # ------------------------------------------------------------------ #
    # Keys
    # ------------------------------------------------------------------ #
    def key_for(
        self,
        name: str,
        params: dict[str, Any] | None = None,
        code_version: str | None = None,
    ) -> str:
        """SHA-256 key for one (name, params, code version) combination."""
        payload = "|".join(
            (
                name,
                stable_token(dict(params or {})),
                code_version if code_version is not None else code_version_token(),
            )
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # ------------------------------------------------------------------ #
    # Storage
    # ------------------------------------------------------------------ #
    def contains(self, key: str) -> bool:
        """True when an entry exists for ``key``."""
        return self._path(key).exists()

    def get(self, key: str, default: Any = None) -> Any:
        """Load a cached value (``default`` on miss or unreadable entry).

        An entry that exists but cannot be unpickled (truncated write,
        disk corruption, a stale class rename) is *deleted*, not just
        skipped: leaving it in place would make ``contains()`` keep
        answering True while every future ``get()`` re-fails on the same
        poisoned bytes, so the slot could never heal.
        """
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            with self._stats_lock:
                self.misses += 1
            _EVENTS.inc(event="miss")
            return default
        except Exception as exc:
            # The entry exists but cannot be read — unlink it so the next
            # run recomputes and rewrites the slot instead of re-failing
            # on the same poisoned bytes forever.
            poisoned = False
            try:
                path.unlink(missing_ok=True)
                poisoned = True
            except OSError:
                pass
            with self._stats_lock:
                self.misses += 1
                if poisoned:
                    self.unlinked += 1
            _EVENTS.inc(event="miss")
            if poisoned:
                _EVENTS.inc(event="poisoned_unlink")
                _log.warning(
                    "unlinked poisoned cache entry %s (%s: %s)",
                    path.name,
                    type(exc).__name__,
                    exc,
                )
            return default
        with self._stats_lock:
            self.hits += 1
        _EVENTS.inc(event="hit")
        return value

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` atomically."""
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=4)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        removed = 0
        if self.directory.exists():
            for path in self.directory.glob("*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.directory.exists():
            return 0
        return sum(1 for _ in self.directory.glob("*.pkl"))
