"""Task and task-graph abstractions for the experiment engine.

A :class:`Task` is one picklable unit of work: a module-level function plus
keyword arguments.  A :class:`TaskGraph` groups tasks with dependencies and
yields *generations* — maximal sets of tasks whose dependencies are all
satisfied — so the runner can execute each generation in parallel while
respecting ordering between generations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

__all__ = ["Task", "TaskGraph"]


@dataclass(frozen=True)
class Task:
    """One unit of work for the engine.

    Attributes
    ----------
    name:
        Task-family name (e.g. ``"fig4.point"``); part of the cache key and
        of the instrumentation break-down.
    fn:
        Module-level callable invoked as ``fn(**params)``.  It must be
        picklable for the process-pool backend; closures and lambdas only
        work with the sequential fallback.
    params:
        Keyword arguments.  Values become part of the cache key via
        :func:`repro.engine.cache.stable_token`.
    cacheable:
        Opt out of the on-disk cache for tasks whose results are too large
        or too cheap to be worth persisting.
    inject:
        Mapping ``param_name -> dependency task id``; when the task runs as
        part of a :class:`TaskGraph`, the dependency's *result* is injected
        under ``param_name`` before invocation.  Injected values do not
        contribute to the cache key (the dependency's own key already
        covers them), so graph tasks with injections are not cached.
    """

    name: str
    fn: Callable[..., Any]
    params: Mapping[str, Any] = field(default_factory=dict)
    cacheable: bool = True
    inject: Mapping[str, str] = field(default_factory=dict)

    def run(self, dep_results: Mapping[str, Any] | None = None) -> Any:
        """Execute the task in the current process."""
        kwargs = dict(self.params)
        if self.inject:
            if dep_results is None:
                raise ValueError(f"task {self.name!r} needs dependency results")
            for param, dep_id in self.inject.items():
                kwargs[param] = dep_results[dep_id]
        return self.fn(**kwargs)


class TaskGraph:
    """A DAG of named tasks executed generation by generation."""

    def __init__(self) -> None:
        self._tasks: dict[str, Task] = {}
        self._deps: dict[str, tuple[str, ...]] = {}

    def add(self, task_id: str, task: Task, deps: tuple[str, ...] = ()) -> str:
        """Register ``task`` under ``task_id`` with explicit dependencies.

        Dependencies named in ``task.inject`` are added automatically.
        """
        if task_id in self._tasks:
            raise ValueError(f"duplicate task id {task_id!r}")
        all_deps = tuple(dict.fromkeys((*deps, *task.inject.values())))
        for dep in all_deps:
            if dep not in self._tasks:
                raise ValueError(f"task {task_id!r} depends on unknown {dep!r}")
        self._tasks[task_id] = task
        self._deps[task_id] = all_deps
        return task_id

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def task(self, task_id: str) -> Task:
        """The task registered under ``task_id``."""
        return self._tasks[task_id]

    def dependencies(self, task_id: str) -> tuple[str, ...]:
        """Dependency ids of one task."""
        return self._deps[task_id]

    def generations(self) -> list[list[str]]:
        """Topological generations: each is runnable once the previous done.

        Insertion order is preserved inside every generation so results are
        deterministic regardless of dict/hash behaviour.
        """
        remaining = dict(self._deps)
        done: set[str] = set()
        generations: list[list[str]] = []
        while remaining:
            ready = [tid for tid, deps in remaining.items() if all(d in done for d in deps)]
            if not ready:
                raise ValueError(f"dependency cycle among {sorted(remaining)}")
            generations.append(ready)
            done.update(ready)
            for tid in ready:
                del remaining[tid]
        return generations
