"""Deterministic per-task seed derivation.

Every sweep derives one child seed per parameter point from its master seed
with ``np.random.SeedSequence.spawn``.  Child seeds depend only on the
master seed and the point's position in the sweep — never on execution
order — which is what makes a parallel run bit-identical to a sequential
one.  Child seeds are plain Python ints so they pickle across processes
and participate in cache keys.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds", "spawn_seed_at"]


def spawn_seeds(seed: int | None, count: int) -> list[int | None]:
    """Derive ``count`` independent child seeds from a master seed.

    ``None`` propagates: with no master seed every child is ``None`` and the
    consuming code falls back to fresh OS entropy (explicitly
    non-reproducible, as before).
    """
    if seed is None:
        return [None] * count
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]


def spawn_seed_at(seed: int | None, index: int) -> int | None:
    """The ``index``-th child seed of ``seed``, derived lazily.

    ``SeedSequence.spawn`` children are prefix-stable — child ``i`` is
    keyed on ``spawn_key=(i,)`` alone, never on how many siblings were
    spawned — so ``spawn_seed_at(s, i) == spawn_seeds(s, n)[i]`` for any
    ``n > i``.  Consumers that do not know their chunk count up front
    (the adaptive estimator) rely on this.
    """
    if seed is None:
        return None
    if index < 0:
        raise ValueError("index must be non-negative")
    child = np.random.SeedSequence(seed, spawn_key=(index,))
    return int(child.generate_state(1, np.uint64)[0])
