"""Deterministic per-task seed derivation.

Every sweep derives one child seed per parameter point from its master seed
with ``np.random.SeedSequence.spawn``.  Child seeds depend only on the
master seed and the point's position in the sweep — never on execution
order — which is what makes a parallel run bit-identical to a sequential
one.  Child seeds are plain Python ints so they pickle across processes
and participate in cache keys.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_seeds"]


def spawn_seeds(seed: int | None, count: int) -> list[int | None]:
    """Derive ``count`` independent child seeds from a master seed.

    ``None`` propagates: with no master seed every child is ``None`` and the
    consuming code falls back to fresh OS entropy (explicitly
    non-reproducible, as before).
    """
    if seed is None:
        return [None] * count
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1, np.uint64)[0]) for child in children]
