"""Parallel experiment-execution engine.

The analysis layer regenerates every figure and table of the paper from
thousands of independent Monte-Carlo points.  This package turns those
points into :class:`Task` objects and executes them on a pluggable
backend (:data:`BACKENDS`: ``sequential | threads | processes |
shared-memory``, default ``auto`` picks per batch by estimated cost) with

* deterministic per-task seed derivation (``np.random.SeedSequence.spawn``),
  so every backend is bit-identical to a sequential run at the same seed;
* an on-disk content-addressed result cache keyed on task name, parameters,
  seed and code version;
* task fusion on pooled backends (small same-function tasks coalesce into
  super-tasks; per-subtask durations and cache entries survive);
* wall-clock / throughput instrumentation;
* a sequential in-process fallback (``jobs=1`` or pickling-hostile tasks).

Layering: the engine depends only on numpy and the standard library, so
any layer may import it.  The ``core`` sweep entry points accept their
executor duck-typed (anything implementing
:meth:`ExecutionEngine.map_calls`) and call only the
:mod:`repro.engine.seeding` / :mod:`repro.engine.dispatch` helpers — they
never construct runners or caches themselves.
"""

from repro.engine.backends import (
    BACKENDS,
    Backend,
    BackendSpec,
    CancelToken,
    ExecutionCancelled,
    ProcessBackend,
    SequentialBackend,
    SharedMemoryBackend,
    ThreadBackend,
    get_backend,
)
from repro.engine.cache import ResultCache, stable_token
from repro.engine.dispatch import run_calls
from repro.engine.phases import collecting, phase
from repro.engine.registry import ExperimentRegistry, ExperimentSpec, did_you_mean
from repro.engine.runner import EngineStats, ExecutionEngine
from repro.engine.seeding import spawn_seed_at, spawn_seeds
from repro.engine.task import Task, TaskGraph

__all__ = [
    "ExecutionEngine",
    "EngineStats",
    "Backend",
    "BackendSpec",
    "BACKENDS",
    "CancelToken",
    "ExecutionCancelled",
    "get_backend",
    "SequentialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SharedMemoryBackend",
    "ResultCache",
    "stable_token",
    "ExperimentRegistry",
    "ExperimentSpec",
    "did_you_mean",
    "Task",
    "TaskGraph",
    "phase",
    "collecting",
    "run_calls",
    "spawn_seeds",
    "spawn_seed_at",
]
