"""Pluggable execution backends for the engine's cache-miss batches.

The :class:`~repro.engine.runner.ExecutionEngine` decides *what* to run
(cache misses, fused super-tasks) and the backend decides *how*: in the
calling process, on a thread pool, on a process pool, or on a process
pool fed through ``multiprocessing.shared_memory``.  Every backend
executes the same ordered list of :class:`Call` objects and returns an
:class:`ExecutionReport` aligned with it, so the engine's results are
bit-identical across backends — each task already carries its own
spawn-derived seed, and no backend reorders or re-seeds anything.

Backends are registered by name in :data:`BACKENDS`, which mirrors the
``ARCHITECTURES`` / ``ROUTING_STRATEGIES`` registries: lookups by unknown
name raise a ``KeyError`` with a did-you-mean suggestion, and the CLI
lists every entry.  ``auto`` is a registered *mode*, not a class — the
engine resolves it per batch from the estimated task cost (see
:meth:`ExecutionEngine._select_backend`).

Failure semantics (kept from the historical process-pool runner): a task
exception always propagates; the sequential fallback is reserved for
infrastructure problems only — an unpicklable task function, an
environment that refuses to start processes, or a pool that breaks
before any worker ever ran.  When a broken pool does fall back, only the
calls whose futures never completed are re-run (completed results and
durations are kept), so side-effecting tasks never execute twice.

Cancellation: every backend's ``execute`` accepts an optional
:class:`CancelToken`.  A set token stops the scheduling of remaining
calls — in-flight work runs to completion (a process cannot be safely
killed mid-task), queued futures are cancelled — and surfaces as
:class:`ExecutionCancelled`.  The token is a plain ``threading.Event``
wrapper, so the service layer can flip it from any thread.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.engine.phases import collecting
from repro.engine.registry import did_you_mean
from repro.obs.logs import get_logger
from repro.obs.metrics import REGISTRY
from repro.obs.tracing import collect_spans
from repro.obs.tracing import span as trace_span

_log = get_logger("engine.backends")

__all__ = [
    "Call",
    "ExecutionReport",
    "Backend",
    "CancelToken",
    "ExecutionCancelled",
    "fn_picklable",
    "run_fused",
    "SequentialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "SharedMemoryBackend",
    "BackendSpec",
    "BackendRegistry",
    "BACKENDS",
    "AUTO_BACKEND",
    "get_backend",
]

#: Name of the cost-based per-batch selection mode (not a Backend class).
AUTO_BACKEND = "auto"

#: Arrays smaller than this are cheaper to pickle than to export.
_SHARED_MIN_BYTES = 16 * 1024


class ExecutionCancelled(RuntimeError):
    """A batch stopped because its :class:`CancelToken` was set.

    Raised by the backend (between calls) or by the engine (between
    batches); completed call results inside the aborted batch are
    discarded — cancellation is a request to stop producing, not a
    partial-result channel.
    """


class CancelToken:
    """Thread-safe one-way cancellation flag shared across layers.

    The service layer flips it from the event loop, the engine checks it
    between task batches, and every backend checks it between call
    completions — so one ``cancel()`` stops the scheduling of all
    remaining work no matter which layer currently holds the batch.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation (idempotent, irreversible)."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self) -> None:
        if self._event.is_set():
            raise ExecutionCancelled("execution cancelled")


@dataclass(frozen=True)
class Call:
    """One unit of backend work: ``fn(**kwargs)`` plus its task family.

    ``family`` is diagnostic only (worker-death error messages); the
    engine owns the mapping back to task indices.  ``trace`` asks the
    executing worker to collect spans for this call (see
    :mod:`repro.obs.tracing`) and ship them home in the report — off by
    default so untraced runs pay nothing.
    """

    fn: Callable[..., Any]
    kwargs: dict[str, Any]
    family: str = "task"
    trace: bool = False


@dataclass
class ExecutionReport:
    """Per-call outcomes of one backend batch, aligned with the input.

    ``workers`` holds opaque worker identifiers (PIDs for processes,
    thread idents for threads) — its size is the number of distinct
    workers that actually executed something.

    ``phases`` carries each call's ``{phase: seconds}`` wall-clock
    buckets (see :mod:`repro.engine.phases`), measured in whichever
    worker ran the call.  Fused super-calls report an empty dict here —
    their per-subtask buckets travel inside the :func:`run_fused`
    result triples instead.  Defaults to empty so third-party backends
    that predate phase accounting keep working.

    ``spans`` carries each call's collected span records (empty unless
    the call asked for tracing via ``Call.trace``); like ``phases``,
    fused super-calls report an empty list here and their per-subtask
    spans travel inside the :func:`run_fused` result tuples.

    ``metrics`` carries each call's metrics-registry delta (``None``
    when nothing moved or the call ran in the engine's own process —
    see :meth:`repro.obs.metrics.MetricsRegistry.delta_since`); the
    engine merges cross-process deltas at report time.  Both new
    fields default to empty so third-party backends keep working.
    """

    results: list[Any]
    seconds: list[float]
    workers: set[int] = field(default_factory=set)
    phases: list[dict[str, float]] = field(default_factory=list)
    spans: list[list[dict]] = field(default_factory=list)
    metrics: list[Any] = field(default_factory=list)


@runtime_checkable
class Backend(Protocol):
    """The pluggable execution contract.

    ``execute`` runs every call (order of completion is free, order of
    the report is not) and must let task exceptions propagate.
    ``pooled`` tells the engine whether task fusion can amortise a
    per-batch pool cost (False for the in-process backend).
    """

    name: str
    pooled: bool

    def execute(
        self, calls: Sequence[Call], cancel: CancelToken | None = None
    ) -> ExecutionReport:
        """Run every call; report results/seconds in input order.

        A set ``cancel`` token stops the scheduling of remaining calls
        and raises :class:`ExecutionCancelled`.  Third-party backends
        may omit the parameter — the engine only passes it when the
        signature accepts it.
        """
        ...


def _traced_call(
    fn: Callable[..., Any], kwargs: dict[str, Any], trace: bool, family: str
) -> tuple[dict[str, float], list[dict], Any]:
    """Run one task under the phase collector (always) and, when asked,
    a span collector with a ``task:<family>`` root span.

    The root span carries ``parent=None`` — the worker knows nothing
    about the submitting task — and the engine re-parents it under the
    span active on the submitting thread when it adopts the shipment.
    """
    if trace:
        with collect_spans() as spans:
            with trace_span("task:" + family):
                with collecting() as phases:
                    result = fn(**kwargs)
        return phases, spans, result
    with collecting() as phases:
        result = fn(**kwargs)
    return phases, [], result


def _invoke(
    fn: Callable[..., Any],
    kwargs: dict[str, Any],
    trace: bool = False,
    family: str = "task",
) -> tuple[float, int, dict[str, float], list[dict], Any, Any]:
    """Module-level trampoline so task invocations pickle cleanly.

    Returns ``(seconds, worker_pid, phases, spans, metrics_delta,
    result)`` — the worker times its own execution (and collects the
    task's per-phase buckets, plus its spans when ``trace`` is set) so
    per-task-family statistics stay accurate across processes, and
    reports its PID so the engine can count the workers that *actually*
    ran tasks (a lazily-filled pool may use fewer processes than it was
    configured with).  ``metrics_delta`` carries what the call added to
    this worker's metrics registry (cache/routing counters incremented
    inside task code), so the engine-side registry sees increments made
    in other processes.
    """
    started = time.perf_counter()
    marks = REGISTRY.checkpoint()
    phases, spans, result = _traced_call(fn, kwargs, trace, family)
    delta = REGISTRY.delta_since(marks)
    return time.perf_counter() - started, os.getpid(), phases, spans, delta, result


def _invoke_in_thread(
    fn: Callable[..., Any],
    kwargs: dict[str, Any],
    trace: bool = False,
    family: str = "task",
) -> tuple[float, int, dict[str, float], list[dict], Any, Any]:
    """Thread-pool trampoline: like :func:`_invoke` but identifies the
    executing *thread*, so ``workers_used`` reflects thread concurrency.
    No metrics delta: worker threads share the engine process's registry,
    so their increments are already booked (shipping them home again
    would double count)."""
    started = time.perf_counter()
    phases, spans, result = _traced_call(fn, kwargs, trace, family)
    return time.perf_counter() - started, threading.get_ident(), phases, spans, None, result


def run_fused(
    fn: Callable[..., Any],
    kwargs_list: list[dict[str, Any]],
    trace: bool = False,
    family: str = "task",
) -> list[tuple]:
    """Execute a fused super-task: every subtask in order, individually timed.

    The engine unpacks the ``(seconds, phases, result)`` triples back
    onto the original task indices, so per-family statistics, per-phase
    buckets and cache entries stay per-subtask even though the pool only
    saw one submission.  Bit-identity is free: each subtask's kwargs
    carry its own spawn-derived seed, and execution order inside the
    group matches the sequential order.

    With ``trace`` set, each subtask additionally collects its own span
    list under a ``task:<family>`` root and the tuples become
    ``(seconds, phases, spans, result)`` — a 4-tuple, so the engine (and
    nothing else) distinguishes the shapes by length.  The super-call
    itself emits no span: the trace shows one ``task:<family>`` span per
    subtask regardless of fusion, keeping span trees backend-invariant.
    """
    out: list[tuple] = []
    for kwargs in kwargs_list:
        started = time.perf_counter()
        phases, spans, result = _traced_call(fn, kwargs, trace, family)
        elapsed = time.perf_counter() - started
        if trace:
            out.append((elapsed, phases, spans, result))
        else:
            out.append((elapsed, phases, result))
    return out


def _run_serial(
    calls: Sequence[Call], cancel: CancelToken | None = None
) -> ExecutionReport:
    """In-process execution of a call batch (also the infra fallback).

    Traced calls collect their spans in a dedicated frame (shadowing any
    collector active on the engine thread) and ship them through
    ``report.spans`` like every pooled backend, so span trees come out
    identical no matter which backend ran the batch.
    """
    results: list[Any] = []
    seconds: list[float] = []
    phase_buckets: list[dict[str, float]] = []
    span_lists: list[list[dict]] = []
    for call in calls:
        if cancel is not None:
            cancel.raise_if_cancelled()
        started = time.perf_counter()
        phases, spans, result = _traced_call(
            call.fn, call.kwargs, getattr(call, "trace", False), call.family
        )
        results.append(result)
        seconds.append(time.perf_counter() - started)
        phase_buckets.append(phases)
        span_lists.append(spans)
    return ExecutionReport(
        results=results,
        seconds=seconds,
        workers={os.getpid()},
        phases=phase_buckets,
        spans=span_lists,
        metrics=[None] * len(results),
    )


def fn_picklable(fn: Callable[..., Any]) -> bool:
    """Cheap up-front check that a function can cross process boundaries.

    Functions pickle by reference, so this catches lambdas and closures
    without serialising any (potentially large) parameters.
    """
    try:
        pickle.dumps(fn)
    except (pickle.PicklingError, AttributeError, TypeError):
        return False
    return True


def _fns_picklable(calls: Sequence[Call]) -> bool:
    return all(fn_picklable(fn) for fn in {call.fn for call in calls})


def _workers_can_start() -> bool:
    """Canary probe: can this environment run a worker process at all?

    Used only on the rare :class:`BrokenProcessPool` path to tell a
    sandbox that refuses subprocesses (fall back sequentially) apart from
    a worker killed by its task (surface the failure instead of
    re-running the killer in the parent).
    """
    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            return pool.submit(int, 0).result(timeout=30) == 0
    except Exception:
        return False


class SequentialBackend:
    """In-process, in-order execution (the determinism reference)."""

    name = "sequential"
    pooled = False

    def __init__(self, jobs: int = 1):
        self.jobs = 1

    def execute(
        self, calls: Sequence[Call], cancel: CancelToken | None = None
    ) -> ExecutionReport:
        return _run_serial(calls, cancel)


class ThreadBackend:
    """``ThreadPoolExecutor`` execution — no pickling, shared memory for
    free, cheap startup.  Pays the GIL on pure-Python tasks, but numpy
    kernels release it, so small numeric batches often beat a process
    pool whose startup cost they cannot amortise."""

    name = "threads"
    pooled = True

    def __init__(self, jobs: int = 1):
        self.jobs = max(1, jobs)

    def execute(
        self, calls: Sequence[Call], cancel: CancelToken | None = None
    ) -> ExecutionReport:
        if cancel is not None:
            cancel.raise_if_cancelled()  # don't submit an already-dead batch
        report = ExecutionReport(
            results=[None] * len(calls),
            seconds=[0.0] * len(calls),
            phases=[{} for _ in calls],
            spans=[[] for _ in calls],
            metrics=[None] * len(calls),
        )
        with ThreadPoolExecutor(max_workers=min(self.jobs, len(calls))) as pool:
            futures = [
                pool.submit(
                    _invoke_in_thread,
                    call.fn,
                    dict(call.kwargs),
                    getattr(call, "trace", False),
                    call.family,
                )
                for call in calls
            ]
            for index, future in enumerate(futures):
                if cancel is not None and cancel.cancelled:
                    for pending in futures[index:]:
                        pending.cancel()  # queued work never starts
                    raise ExecutionCancelled(
                        f"cancelled with {len(calls) - index} call(s) unscheduled"
                    )
                seconds, ident, phases, spans, delta, result = future.result()
                report.seconds[index] = seconds
                report.results[index] = result
                report.phases[index] = phases
                report.spans[index] = spans
                report.metrics[index] = delta
                report.workers.add(ident)
        return report


class ProcessBackend:
    """``ProcessPoolExecutor`` execution — true parallelism at the cost
    of pool startup and parameter/result pickling."""

    name = "processes"
    pooled = True

    def __init__(self, jobs: int = 1):
        self.jobs = max(1, jobs)

    def execute(
        self, calls: Sequence[Call], cancel: CancelToken | None = None
    ) -> ExecutionReport:
        if cancel is not None:
            cancel.raise_if_cancelled()  # don't submit an already-dead batch
        if not _fns_picklable(calls):
            _log.info(
                "%s: unpicklable task function(s); running %d call(s) in-process",
                self.name,
                len(calls),
            )
            return _run_serial(calls, cancel)
        try:
            pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(calls)))
        except OSError:
            _log.warning(
                "%s: process creation refused; running %d call(s) in-process",
                self.name,
                len(calls),
            )
            return _run_serial(calls, cancel)  # process creation refused
        report = ExecutionReport(
            results=[None] * len(calls),
            seconds=[0.0] * len(calls),
            phases=[{} for _ in calls],
            spans=[[] for _ in calls],
            metrics=[None] * len(calls),
        )
        broken = False
        completed = 0  # futures [0, completed) are recorded in the report
        try:
            with pool:
                futures = [
                    pool.submit(
                        _invoke,
                        call.fn,
                        dict(call.kwargs),
                        getattr(call, "trace", False),
                        call.family,
                    )
                    for call in calls
                ]
                for index, future in enumerate(futures):
                    if cancel is not None and cancel.cancelled:
                        for pending in futures[index:]:
                            pending.cancel()  # queued work never starts
                        raise ExecutionCancelled(
                            f"cancelled with {len(calls) - index} call(s) unscheduled"
                        )
                    try:
                        seconds, pid, phases, spans, delta, result = future.result()
                    except BrokenProcessPool as exc:
                        if _workers_can_start():
                            # The environment can run workers, so the pool
                            # broke because a task killed its worker (OOM,
                            # native crash).  Re-running in the parent would
                            # repeat the damage; surface it.  The broken
                            # pool cannot say WHICH task died, so name the
                            # batch.
                            families = sorted({call.family for call in calls})
                            raise RuntimeError(
                                "a worker process died while executing this "
                                f"batch (task families: {', '.join(families)}); "
                                "not retrying sequentially (a task may have "
                                "exhausted memory or crashed native code)"
                            ) from exc
                        broken = True
                        break
                    report.seconds[index] = seconds
                    report.results[index] = result
                    report.phases[index] = phases
                    report.spans[index] = spans
                    report.metrics[index] = delta
                    report.workers.add(pid)
                    completed = index + 1
        except BrokenProcessPool:
            broken = True  # raised by pool shutdown itself
        if broken:
            # Workers cannot start at all (sandboxed environment) — resume
            # in-process from the first call whose future never completed,
            # keeping the results/seconds already recorded so side effects
            # and per-family durations are never duplicated.  Task
            # exceptions propagate untouched.
            _log.warning(
                "%s: worker pool broke before any worker ran; resuming %d "
                "call(s) in-process",
                self.name,
                len(calls) - completed,
            )
            tail = _run_serial(calls[completed:], cancel)
            report.results[completed:] = tail.results
            report.seconds[completed:] = tail.seconds
            report.phases[completed:] = tail.phases
            report.spans[completed:] = tail.spans
            report.metrics[completed:] = tail.metrics
            report.workers |= tail.workers
        return report


@dataclass(frozen=True)
class _SharedArrayRef:
    """Picklable descriptor of an exported array: a few bytes crossing
    the process boundary instead of the array itself."""

    block: str
    shape: tuple[int, ...]
    dtype: str


def _export_value(value: Any, path: tuple, refs: dict, blocks: list) -> Any:
    """Replace large numeric arrays in ``value`` with ``None`` placeholders,
    recording a :class:`_SharedArrayRef` per exported array under its
    structural path (descends into dicts/lists/tuples, so fused
    ``kwargs_list`` payloads export too)."""
    if (
        isinstance(value, np.ndarray)
        and value.dtype.kind in "fiub"
        and value.nbytes >= _SHARED_MIN_BYTES
    ):
        data = np.ascontiguousarray(value)
        block = shared_memory.SharedMemory(create=True, size=data.nbytes)
        np.ndarray(data.shape, data.dtype, buffer=block.buf)[...] = data
        blocks.append(block)
        refs[path] = _SharedArrayRef(block.name, data.shape, data.dtype.str)
        return None
    if isinstance(value, dict):
        return {
            key: _export_value(item, path + (key,), refs, blocks)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        rebuilt = [
            _export_value(item, path + (index,), refs, blocks)
            for index, item in enumerate(value)
        ]
        return rebuilt if isinstance(value, list) else tuple(rebuilt)
    return value


def _set_at_path(root: Any, path: tuple, value: Any) -> None:
    node = root
    for key in path[:-1]:
        node = node[key]
    node[path[-1]] = value


#: Blocks this process has attached to (worker side); kept open so task
#: results that reference the buffers survive until the result is
#: pickled back.  Worker processes die with their pool, bounding the map.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}


def _attach(ref: _SharedArrayRef) -> np.ndarray:
    block = _ATTACHED.get(ref.block)
    if block is None:
        block = shared_memory.SharedMemory(name=ref.block)
        try:
            # Attaching registers the block with the resource tracker as
            # if this process owned it; the parent is the owner and
            # unlinks it, so unregister to avoid a double-unlink warning.
            from multiprocessing import resource_tracker

            resource_tracker.unregister(block._name, "shared_memory")  # noqa: SLF001
        except Exception:
            pass
        _ATTACHED[ref.block] = block
    array = np.ndarray(ref.shape, np.dtype(ref.dtype), buffer=block.buf)
    array.flags.writeable = False  # inputs are shared: tasks must copy to write
    return array


def _detach_all() -> None:
    for block in _ATTACHED.values():
        try:
            block.close()
        except Exception:
            pass
    _ATTACHED.clear()


def _invoke_shared(fn: Callable[..., Any], kwargs: dict[str, Any], refs: dict) -> Any:
    """Worker-side trampoline: re-attach exported arrays, then run."""
    for path, ref in refs.items():
        _set_at_path(kwargs, path, _attach(ref))
    return fn(**kwargs)


def _materialise_shared(value: Any, views: list[np.ndarray]) -> Any:
    """Copy any array in ``value`` whose memory aliases a shared block.

    On the sequential-fallback path a task runs in the parent process and
    may return a numpy view into an attached shared-memory block (e.g. a
    task that returns its own input array); once the block is detached
    and unlinked that view reads freed memory.  ``views`` are byte views
    over every block about to be released — aliasing arrays are copied
    into process-owned memory first.  Descends into dicts/lists/tuples,
    mirroring :func:`_export_value`'s structural reach.
    """
    if isinstance(value, np.ndarray):
        if any(np.may_share_memory(value, view) for view in views):
            return value.copy()
        return value
    if isinstance(value, dict):
        return {key: _materialise_shared(item, views) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        rebuilt = [_materialise_shared(item, views) for item in value]
        return rebuilt if isinstance(value, list) else tuple(rebuilt)
    return value


class SharedMemoryBackend(ProcessBackend):
    """Process pool fed through ``multiprocessing.shared_memory``.

    Large numeric arrays in task kwargs — e.g. a ``(batch, num_qubits)``
    frequency array — are copied once into a named shared block and
    cross the process boundary as a tiny descriptor instead of being
    pickled per task; workers map the block and hand the task a
    read-only zero-copy view.  Everything else (failure semantics,
    ordering, trampolines) is inherited from :class:`ProcessBackend`.
    """

    name = "shared-memory"

    def execute(
        self, calls: Sequence[Call], cancel: CancelToken | None = None
    ) -> ExecutionReport:
        blocks: list[shared_memory.SharedMemory] = []
        wrapped: list[Call] = []
        for call in calls:
            refs: dict = {}
            kwargs = _export_value(dict(call.kwargs), (), refs, blocks)
            if refs:
                wrapped.append(
                    Call(
                        fn=_invoke_shared,
                        kwargs={"fn": call.fn, "kwargs": kwargs, "refs": refs},
                        family=call.family,
                        trace=getattr(call, "trace", False),
                    )
                )
            else:
                wrapped.append(call)
        try:
            report = super().execute(wrapped, cancel)
            if _ATTACHED:
                # Sequential fallback: tasks ran in THIS process against
                # attached views, so a result may alias a block the
                # ``finally`` below is about to free — copy before detach.
                # (Pool results arrive pickled and never alias.)
                local_views = [
                    np.ndarray((block.size,), np.uint8, buffer=block.buf)
                    for block in (*_ATTACHED.values(), *blocks)
                ]
                report.results = [
                    _materialise_shared(result, local_views)
                    for result in report.results
                ]
            return report
        finally:
            _detach_all()  # only populated here on the sequential fallback
            for block in blocks:
                try:
                    block.close()
                    block.unlink()
                except Exception:
                    pass


@dataclass(frozen=True)
class BackendSpec:
    """A named, registered execution backend.

    Attributes
    ----------
    name:
        Registry/CLI identifier.
    description:
        One-line summary shown by ``python -m repro list``.
    factory:
        ``factory(jobs) -> Backend``; ``None`` for selection modes the
        engine resolves itself (``auto``).
    """

    name: str
    description: str
    factory: Callable[[int], Backend] | None


class BackendRegistry:
    """Name -> :class:`BackendSpec` mapping with did-you-mean lookups."""

    def __init__(self) -> None:
        self._specs: dict[str, BackendSpec] = {}

    def register(self, spec: BackendSpec) -> None:
        if spec.name in self._specs:
            raise ValueError(f"backend {spec.name!r} is already registered")
        self._specs[spec.name] = spec

    def names(self) -> list[str]:
        return list(self._specs)

    def specs(self) -> list[BackendSpec]:
        return list(self._specs.values())

    def __contains__(self, name: object) -> bool:
        return name in self._specs

    def get(self, name: str) -> BackendSpec:
        if name not in self._specs:
            known = ", ".join(self.names())
            suggestion = did_you_mean(name, self.names())
            raise KeyError(
                f"unknown backend {name!r}{suggestion} (known: {known})"
            )
        return self._specs[name]


#: Registered execution backends (plus the ``auto`` selection mode).
BACKENDS = BackendRegistry()
BACKENDS.register(
    BackendSpec(
        name=AUTO_BACKEND,
        description="pick a backend per batch from the estimated task cost "
        "(sequential for tiny batches, threads for small ones, processes "
        "for heavy ones); the default",
        factory=None,
    )
)
BACKENDS.register(
    BackendSpec(
        name=SequentialBackend.name,
        description="in-process, in-order execution (the determinism reference)",
        factory=SequentialBackend,
    )
)
BACKENDS.register(
    BackendSpec(
        name=ThreadBackend.name,
        description="thread pool: no pickling, cheap startup; numpy kernels "
        "release the GIL",
        factory=ThreadBackend,
    )
)
BACKENDS.register(
    BackendSpec(
        name=ProcessBackend.name,
        description="process pool: true parallelism, pays pool startup and "
        "pickling",
        factory=ProcessBackend,
    )
)
BACKENDS.register(
    BackendSpec(
        name=SharedMemoryBackend.name,
        description="process pool passing large arrays zero-copy via "
        "multiprocessing.shared_memory",
        factory=SharedMemoryBackend,
    )
)


def get_backend(name: str, jobs: int = 1) -> Backend:
    """Instantiate a registered backend by name.

    ``auto`` cannot be instantiated — it is a per-batch selection mode
    resolved by the engine; asking for it here is a programming error.
    """
    spec = BACKENDS.get(name)
    if spec.factory is None:
        raise ValueError(
            f"backend {name!r} is a selection mode, not an executable backend; "
            "the engine resolves it per batch"
        )
    return spec.factory(jobs)
