"""Per-phase wall-clock accounting threaded through engine workers.

The trend harness (``benchmarks/trend.py``) can only attribute a cross-PR
regression when the engine says *where* task time went.  This module is
that channel: hot-path kernels mark themselves with :func:`phase` —
``sample`` (fabrication draws), ``mask`` (collision screening), ``repair``
(frequency repair), ``compile`` (transpilation), ``score`` (fidelity
products) — and the backend trampolines wrap every task invocation in
:func:`collecting`, so each task ships a ``{phase: seconds}`` dict home
with its result no matter which process or thread ran it.  The engine
aggregates the dicts into ``EngineStats.seconds_by_phase``, surfaced via
``--dump-json`` and the service ``/stats`` endpoint.

Design constraints, in order:

1. **Free when idle.**  ``phase`` is on hot paths that also run outside
   the engine (unit tests, library use); without an active collector it
   is a no-op costing one thread-local attribute read.
2. **Exclusive time.**  Entering an inner phase pauses the outer one
   (``repair`` calls ``mask``; their buckets must not double-count), so
   the buckets sum to at most the task's wall-clock.
3. **No engine imports.**  Stdlib only (plus :mod:`repro.obs.tracing`,
   itself stdlib-only and dependency-free), so ``core``/``tuning``/
   ``compiler`` modules can mark phases without import cycles.

:func:`phase` doubles as the tracing bridge: when a span collector is
active on the thread (``--trace`` runs), each phase additionally emits a
``phase:<name>`` span — inclusive wall-clock, unlike the exclusive
bucket accounting — so traces show where task time went without any
extra annotations in the kernels.

Thread safety: state is ``threading.local`` — each worker thread collects
its own frames, and nested collectors shadow outer ones (a fused
super-task collects per subtask; the surrounding trampoline frame then
sees nothing, which is exactly right — the engine books the subtask
dicts individually).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.obs.tracing import end_span, is_tracing, start_span

__all__ = ["phase", "collecting"]

_STATE = threading.local()


@contextmanager
def collecting():
    """Collect phase seconds recorded inside this block.

    Yields the ``{phase: seconds}`` dict, live-updated as phases exit.
    Re-entrant: an inner ``collecting`` shadows the outer one for its
    duration (phases attribute to the innermost active collector).
    """
    frames = getattr(_STATE, "frames", None)
    if frames is None:
        frames = _STATE.frames = []
    bucket: dict[str, float] = {}
    stack: list[list] = []  # [name, started] entries, innermost last
    frames.append((bucket, stack))
    try:
        yield bucket
    finally:
        frames.pop()


@contextmanager
def phase(name: str):
    """Attribute the enclosed wall-clock to ``name`` (exclusive time).

    Entering a nested phase pauses the enclosing one: time spent in
    ``mask`` while inside ``repair`` books to ``mask`` alone.  Without
    an active :func:`collecting` frame on this thread, a no-op.
    """
    record = start_span("phase:" + name) if is_tracing() else None
    frames = getattr(_STATE, "frames", None)
    if not frames:
        try:
            yield
        finally:
            end_span(record)
        return
    bucket, stack = frames[-1]
    now = time.perf_counter()
    if stack:
        outer = stack[-1]
        bucket[outer[0]] = bucket.get(outer[0], 0.0) + (now - outer[1])
    entry = [name, now]
    stack.append(entry)
    try:
        yield
    finally:
        now = time.perf_counter()
        stack.pop()
        bucket[entry[0]] = bucket.get(entry[0], 0.0) + (now - entry[1])
        if stack:
            stack[-1][1] = now  # resume the enclosing phase
        end_span(record)
