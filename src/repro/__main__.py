"""Command-line entry point: ``python -m repro``.

Subcommands
-----------
``run <experiment>``
    Regenerate one figure/table of the paper through the parallel
    experiment engine.  ``--jobs N`` controls the worker-process count
    (``1`` forces the sequential backend; results are bit-identical),
    ``--seed S`` overrides the experiment's master seed, ``--no-cache``
    bypasses the on-disk result cache and ``--batch B`` scales the
    Monte-Carlo batches.  ``--topology T`` switches topology-aware
    experiments to another registered architecture (heavy-hex, square,
    ring); the selection is validated against the registry and becomes
    part of every Monte-Carlo point's cache key.  The statistics flags
    select the adaptive Monte-Carlo layer: ``--chunk-size C`` streams
    every yield point in O(C) memory, ``--ci-target H`` keeps sampling
    each point until its confidence-interval half-width is at most ``H``
    (capped by ``--max-samples``, default: the batch size).  The tuning
    flags enable the post-fabrication repair stage on tuning-aware
    experiments: ``--tuning STRATEGY`` selects the repair strategy
    (``greedy`` or ``anneal``), ``--max-shift-mhz`` bounds the tuner's
    reach and ``--repair-budget`` caps the accepted shifts per qubit
    (``0`` is a strict no-op baseline).  ``--backend NAME`` selects the
    execution backend (``sequential``, ``threads``, ``processes``,
    ``shared-memory`` or the cost-based ``auto`` default; the
    ``REPRO_BACKEND`` environment variable changes the default) —
    results are bit-identical across backends.  The compiler flags steer the
    application experiments (``fig10``, ``appsweep``):
    ``--benchmarks NAMES`` restricts the compiled benchmark subset
    (comma-separated) and ``--routing NAME`` selects a registered
    routing strategy (``basic`` or ``noise-aware``).  ``--dump-json
    PATH`` writes the experiment's full result — every numeric field,
    confidence intervals included — to a machine-readable JSON file,
    along with engine statistics and routing/result-cache counters.
    ``--trace PATH`` records a span trace of the run (engine batches,
    per-task and per-phase spans, worker-process spans re-parented under
    the submitting task): a ``.jsonl`` path writes one span per line,
    anything else writes Chrome trace-event JSON loadable in Perfetto
    or ``chrome://tracing``.  ``--log-level``/``--log-json`` configure
    the ``repro.*`` structured-logging spine (``REPRO_LOG_LEVEL`` sets
    the default level).
``trace <path>``
    Summarize a trace file produced by ``run --trace``: span count,
    top spans by duration, per-name rollup and the critical path.
    ``--json`` emits the summary as JSON instead of text.
``list``
    Show every registered experiment, topology, repair strategy,
    benchmark, routing strategy and execution backend.
``cache clear``
    Drop the on-disk result cache.
``serve``
    Run the reproduction service: an asyncio HTTP job API over the
    engine (stdlib only, no extra dependencies).  ``--host``/``--port``
    bind the listener (``--port 0`` picks a free port and prints it),
    ``--workers`` sets the concurrent-job count, ``--queue-size`` the
    bounded-queue capacity (submissions beyond it get HTTP 429),
    ``--rate``/``--burst`` enable per-client token-bucket rate limiting,
    ``--max-attempts`` caps transient-failure retries and
    ``--jobs``/``--backend``/``--no-cache`` configure each job's
    execution engine exactly like ``run``, and
    ``--log-level``/``--log-json`` the logging spine.  Submissions with
    identical experiment + parameters + code version coalesce onto one
    in-flight job.  ``GET /metrics`` exposes the process-wide metrics
    registry in Prometheus text format.  See the README's "Reproduction
    as a service" section for the endpoint reference.

Unknown experiment or topology names exit with status 2 and a
did-you-mean suggestion from the corresponding registry.

Examples
--------
::

    python -m repro list
    python -m repro run fig4 --jobs 4 --seed 7
    python -m repro run fig4 --topology square --jobs 2
    python -m repro run topoyield --batch 500
    python -m repro run fig4 --ci-target 0.02 --chunk-size 250 --max-samples 4000
    python -m repro run tunedyield --tuning greedy --max-shift-mhz 100
    python -m repro run repairbudget --tuning anneal --jobs 4
    python -m repro run fig10 --routing noise-aware --benchmarks bv,qaoa
    python -m repro run appsweep --jobs 4 --batch 400
    python -m repro run fig4 --dump-json fig4.json
    python -m repro run fig4 --trace fig4.trace.json --backend processes
    python -m repro trace fig4.trace.json --top 5
    python -m repro run fig4 --log-level debug
    python -m repro run fig4 --backend threads --jobs 4
    python -m repro run fig8 --jobs 4 --batch 2000
    python -m repro cache clear
    python -m repro serve --port 8151 --workers 2
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.analysis.registry import EXPERIMENTS
from repro.analysis.reporting import jsonable
from repro.circuits.benchmarks import BENCHMARK_NAMES
from repro.compiler.pipeline import ROUTING_STRATEGIES
from repro.compiler.routing import routing_cache_stats
from repro.core.architecture import ARCHITECTURES
from repro.core.sample_bank import SAMPLE_BANK_ENV, sample_bank_stats
from repro.engine import BACKENDS, ExecutionEngine, ResultCache, did_you_mean
from repro.obs import configure_logging
from repro.obs import tracing as obs_tracing
from repro.obs.export import format_summary, load_trace, summarize, write_trace
from repro.stats import StatsOptions
from repro.tuning import STRATEGIES, TuningOptions

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's figures/tables on the parallel "
        "experiment engine.",
    )
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", help="experiment name (see `list`)")
    run.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes (default: all cores; 1 = sequential)",
    )
    run.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="execution backend (sequential, threads, processes, "
        "shared-memory, or auto; default: $REPRO_BACKEND or auto; "
        "results are bit-identical across backends)",
    )
    run.add_argument(
        "--seed", "-s", type=int, default=None, help="master seed override"
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache",
    )
    run.add_argument(
        "--no-sample-bank",
        action="store_true",
        help="disable the common-random-number fabrication sample bank "
        "(sets $REPRO_SAMPLE_BANK=0 so worker processes inherit it)",
    )
    run.add_argument(
        "--batch",
        "-b",
        type=int,
        default=None,
        help="Monte-Carlo batch size override",
    )
    run.add_argument(
        "--topology",
        "-t",
        default=None,
        metavar="NAME",
        help="registered device topology (default: heavy-hex; see `list`)",
    )
    run.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="stream yield Monte-Carlo in chunks of this many devices "
        "(O(chunk) instead of O(batch) memory)",
    )
    run.add_argument(
        "--ci-target",
        type=float,
        default=None,
        help="adaptive sampling: draw chunks until the yield CI "
        "half-width is at most this value",
    )
    run.add_argument(
        "--max-samples",
        type=int,
        default=None,
        help="hard per-point sample cap for --ci-target runs "
        "(default: the batch size)",
    )
    run.add_argument(
        "--tuning",
        choices=sorted(STRATEGIES),
        default=None,
        help="enable post-fabrication frequency repair with this strategy",
    )
    run.add_argument(
        "--max-shift-mhz",
        type=float,
        default=None,
        help="tuner reach: largest intended per-qubit shift in MHz "
        "(implies --tuning greedy when no strategy is given)",
    )
    run.add_argument(
        "--repair-budget",
        type=int,
        default=None,
        help="per-qubit tune-count budget (0 = strict no-op baseline; "
        "implies --tuning greedy when no strategy is given)",
    )
    run.add_argument(
        "--benchmarks",
        default=None,
        metavar="NAMES",
        help="comma-separated benchmark subset for application "
        "experiments (default: fig10 compiles every benchmark, "
        "appsweep a three-benchmark core; see `list`)",
    )
    run.add_argument(
        "--routing",
        default=None,
        metavar="NAME",
        help="registered routing strategy for application experiments "
        "(default: basic; see `list`)",
    )
    run.add_argument(
        "--dump-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the experiment's result (CIs included) to a JSON file",
    )
    run.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help="record a span trace of the run (.jsonl = one span per "
        "line, anything else = Chrome trace-event JSON for Perfetto)",
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="paper-sized configuration sweep (slow)",
    )
    run.add_argument(
        "--quiet", "-q", action="store_true", help="suppress the result table"
    )
    _add_logging_flags(run)

    trace = sub.add_parser(
        "trace", help="summarize a trace file produced by `run --trace`"
    )
    trace.add_argument("path", type=Path, help="trace file (.jsonl or Chrome)")
    trace.add_argument(
        "--top", type=int, default=10, help="longest spans to show (default 10)"
    )
    trace.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    sub.add_parser("list", help="list registered experiments")

    cache = sub.add_parser("cache", help="manage the on-disk result cache")
    cache.add_argument("action", choices=("clear", "info"))

    serve = sub.add_parser("serve", help="run the HTTP reproduction service")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=8151, help="bind port (0 picks a free one)"
    )
    serve.add_argument(
        "--workers", type=int, default=2, help="concurrent jobs (warm pool size)"
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=32,
        help="bounded job-queue capacity (submissions beyond it get 429)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="per-client rate limit in submissions/second (off by default)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=10.0,
        help="per-client burst capacity when --rate is set",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per job for transient failures (1 disables retries)",
    )
    serve.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="engine worker processes per job (default: all cores)",
    )
    serve.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="engine execution backend for every job (see `run --backend`)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache",
    )
    serve.add_argument(
        "--no-sample-bank",
        action="store_true",
        help="disable the common-random-number fabrication sample bank "
        "for every job (sets $REPRO_SAMPLE_BANK=0)",
    )
    _add_logging_flags(serve)
    return parser


def _add_logging_flags(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--log-level",
        default=None,
        metavar="LEVEL",
        help="repro.* log level (debug, info, warning, error; "
        "default: $REPRO_LOG_LEVEL or warning)",
    )
    sub.add_argument(
        "--log-json",
        action="store_true",
        help="emit log lines as JSON objects",
    )


def _cmd_list() -> int:
    print("experiments:")
    width = max((len(name) for name in EXPERIMENTS.names()), default=0)
    for spec in EXPERIMENTS.specs():
        aliases = f"  (aliases: {', '.join(spec.aliases)})" if spec.aliases else ""
        print(f"  {spec.name:<{width}}  {spec.description}{aliases}")
    print("\ntopologies (for --topology):")
    width = max((len(name) for name in ARCHITECTURES.names()), default=0)
    for arch in ARCHITECTURES.specs():
        print(f"  {arch.name:<{width}}  {arch.description}")
    print("\nrepair strategies (for --tuning):")
    width = max((len(name) for name in STRATEGIES), default=0)
    for name in sorted(STRATEGIES):
        doc = (STRATEGIES[name].__doc__ or "").strip().splitlines()[0]
        print(f"  {name:<{width}}  {doc}")
    print("\nbenchmarks (for --benchmarks):")
    print("  " + ", ".join(BENCHMARK_NAMES))
    print("\nrouting strategies (for --routing):")
    width = max((len(name) for name in ROUTING_STRATEGIES.names()), default=0)
    for strategy in ROUTING_STRATEGIES.specs():
        print(f"  {strategy.name:<{width}}  {strategy.description}")
    print("\nexecution backends (for --backend / $REPRO_BACKEND):")
    width = max((len(name) for name in BACKENDS.names()), default=0)
    for backend in BACKENDS.specs():
        print(f"  {backend.name:<{width}}  {backend.description}")
    return 0


def _cmd_cache(action: str) -> int:
    cache = ResultCache()
    if action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached result(s) from {cache.directory}")
    else:
        print(f"cache directory: {cache.directory}")
        print(f"entries: {len(cache)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        configure_logging(level=args.log_level, json_format=args.log_json)
    except ValueError as exc:
        print(f"invalid logging options: {exc}", file=sys.stderr)
        return 2
    try:
        spec = EXPERIMENTS.get(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    if args.no_sample_bank:
        # The env var (not a process-local flag) so spawned engine worker
        # processes inherit the opt-out.
        os.environ[SAMPLE_BANK_ENV] = "0"

    if args.backend is not None and args.backend not in BACKENDS:
        known = ", ".join(BACKENDS.names())
        suggestion = did_you_mean(args.backend, BACKENDS.names())
        print(
            f"unknown backend {args.backend!r}{suggestion} (known: {known})",
            file=sys.stderr,
        )
        return 2

    if args.topology is not None and args.topology not in ARCHITECTURES:
        known = ", ".join(sorted(ARCHITECTURES.names()))
        suggestion = did_you_mean(args.topology, ARCHITECTURES.names())
        print(
            f"unknown topology {args.topology!r}{suggestion} (known: {known})",
            file=sys.stderr,
        )
        return 2

    benchmarks = None
    if args.benchmarks is not None:
        benchmarks = tuple(
            name.strip() for name in args.benchmarks.split(",") if name.strip()
        )
        for name in benchmarks:
            if name not in BENCHMARK_NAMES:
                known = ", ".join(BENCHMARK_NAMES)
                suggestion = did_you_mean(name, BENCHMARK_NAMES)
                print(
                    f"unknown benchmark {name!r}{suggestion} (known: {known})",
                    file=sys.stderr,
                )
                return 2
        if not benchmarks:
            print("--benchmarks needs at least one name", file=sys.stderr)
            return 2

    if args.routing is not None and args.routing not in ROUTING_STRATEGIES:
        known = ", ".join(ROUTING_STRATEGIES.names())
        suggestion = did_you_mean(args.routing, ROUTING_STRATEGIES.names())
        print(
            f"unknown routing strategy {args.routing!r}{suggestion} "
            f"(known: {known})",
            file=sys.stderr,
        )
        return 2

    if (args.benchmarks is not None or args.routing is not None) and not spec.compiler_aware:
        print(
            f"warning: experiment {spec.name!r} does not thread benchmark/"
            "routing selections; --benchmarks/--routing have no effect on it",
            file=sys.stderr,
        )

    stats = None
    if (
        args.chunk_size is not None
        or args.ci_target is not None
        or args.max_samples is not None
    ):
        try:
            stats = StatsOptions(
                chunk_size=args.chunk_size,
                ci_target=args.ci_target,
                max_samples=args.max_samples,
            )
        except ValueError as exc:
            print(f"invalid statistics options: {exc}", file=sys.stderr)
            return 2
        if not spec.stats_aware:
            print(
                f"warning: experiment {spec.name!r} does not use the "
                "statistics options; --chunk-size/--ci-target/--max-samples "
                "have no effect on it",
                file=sys.stderr,
            )

    if args.topology is not None and not spec.topology_aware:
        print(
            f"warning: experiment {spec.name!r} is heavy-hex only; "
            "--topology has no effect on it",
            file=sys.stderr,
        )

    tuning = None
    tuning_requested = (
        args.tuning is not None
        or args.max_shift_mhz is not None
        or args.repair_budget is not None
    )
    if tuning_requested:
        try:
            tuning = TuningOptions.build(
                strategy=args.tuning if args.tuning is not None else "greedy",
                max_shift_ghz=(
                    args.max_shift_mhz / 1000.0
                    if args.max_shift_mhz is not None
                    else None
                ),
                max_tunes_per_qubit=args.repair_budget,
            )
        except (KeyError, ValueError) as exc:
            print(f"invalid tuning options: {exc}", file=sys.stderr)
            return 2
        if not spec.tuning_aware:
            print(
                f"warning: experiment {spec.name!r} does not use the "
                "post-fabrication repair stage; --tuning/--max-shift-mhz/"
                "--repair-budget have no effect on it",
                file=sys.stderr,
            )

    tracer = obs_tracing.Tracer() if args.trace is not None else None
    engine = ExecutionEngine(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        backend=args.backend,
        tracer=tracer,
    )

    def _run() -> tuple:
        return spec.runner(
            engine,
            seed=args.seed,
            batch_size=args.batch,
            full=args.full,
            stats=stats,
            topology=args.topology,
            tuning=tuning,
            benchmarks=benchmarks,
            routing=args.routing,
        )

    started = time.perf_counter()
    if tracer is not None:
        with tracer.activate():
            with obs_tracing.span("run:" + spec.name):
                result, text = _run()
    else:
        result, text = _run()
    elapsed = time.perf_counter() - started

    if tracer is not None:
        write_trace(tracer.spans, str(args.trace))
        print(
            f"[trace] {len(tracer)} span(s) written to {args.trace} "
            f"(trace id {tracer.trace_id})"
        )

    if not args.quiet:
        print(f"[{spec.name}] {spec.description}")
        print(text)
    if args.dump_json is not None:
        payload = {
            "experiment": spec.name,
            "description": spec.description,
            "seed": args.seed,
            "batch_size": args.batch,
            "topology": args.topology,
            "benchmarks": list(benchmarks) if benchmarks else None,
            "routing": args.routing,
            "tuning": jsonable(tuning),
            "elapsed_seconds": elapsed,
            "engine": {
                "jobs": engine.stats.jobs,
                "backend": engine.stats.backend,
                "workers_used": engine.stats.workers_used,
                "tasks_total": engine.stats.tasks_total,
                "tasks_executed": engine.stats.tasks_executed,
                "tasks_fused": engine.stats.tasks_fused,
                "fusion_batches": engine.stats.fusion_batches,
                "cache_hits": engine.stats.cache_hits,
                "wall_seconds": engine.stats.wall_seconds,
                "seconds_by_family": jsonable(dict(engine.stats.seconds_by_family)),
                "seconds_by_phase": jsonable(dict(engine.stats.seconds_by_phase)),
                "routing_cache": routing_cache_stats(),
                "sample_bank": sample_bank_stats(),
                "result_cache": (
                    engine.cache.stats() if engine.cache is not None else None
                ),
            },
            "result": jsonable(result),
            "text": text,
        }
        args.dump_json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"[dump] result written to {args.dump_json}")
    print(f"\n[engine] {engine.stats.summary()}")
    print(f"[engine] experiment wall-clock: {elapsed:.2f}s")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        spans = load_trace(str(args.path))
    except FileNotFoundError:
        print(f"no such trace file: {args.path}", file=sys.stderr)
        return 2
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"unreadable trace file {args.path}: {exc}", file=sys.stderr)
        return 2
    summary = summarize(spans, top=args.top)
    if args.json:
        print(json.dumps(jsonable(summary), indent=2))
    else:
        print(format_summary(summary))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import JobManager, RateLimiter, RetryPolicy, ServiceServer

    try:
        configure_logging(level=args.log_level, json_format=args.log_json)
    except ValueError as exc:
        print(f"invalid logging options: {exc}", file=sys.stderr)
        return 2
    if args.backend is not None and args.backend not in BACKENDS:
        known = ", ".join(BACKENDS.names())
        suggestion = did_you_mean(args.backend, BACKENDS.names())
        print(
            f"unknown backend {args.backend!r}{suggestion} (known: {known})",
            file=sys.stderr,
        )
        return 2
    try:
        retry = RetryPolicy(max_attempts=args.max_attempts)
    except ValueError as exc:
        print(f"invalid retry options: {exc}", file=sys.stderr)
        return 2
    if args.no_sample_bank:
        os.environ[SAMPLE_BANK_ENV] = "0"
    limiter = (
        RateLimiter(rate=args.rate, burst=args.burst)
        if args.rate is not None
        else None
    )
    engine_options = {
        "jobs": args.jobs,
        "backend": args.backend,
        "use_cache": not args.no_cache,
    }

    async def _serve() -> None:
        manager = JobManager(
            workers=args.workers,
            queue_size=args.queue_size,
            retry=retry,
            limiter=limiter,
            engine_options=engine_options,
        )
        async with manager:
            server = ServiceServer(manager, host=args.host, port=args.port)
            await server.start()
            print(
                f"[serve] listening on http://{server.host}:{server.port} "
                f"(workers={manager.workers}, queue={manager.queue_size})",
                flush=True,
            )
            try:
                await server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("\n[serve] stopped")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "cache":
            return _cmd_cache(args.action)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "serve":
            return _cmd_serve(args)
    except BrokenPipeError:
        # Output piped into a pager/head that quit early (`repro trace
        # ... | head`): not an error.  Point stdout at devnull so the
        # interpreter's exit-time flush doesn't raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
