"""Table I (collision criteria) and Table II (compiled benchmarks)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import format_table
from repro.circuits.benchmarks import BENCHMARK_NAMES, build_benchmark
from repro.compiler.transpile import transpile
from repro.core.chiplet import ChipletDesign
from repro.core.collisions import find_collisions
from repro.core.frequencies import FrequencySpec, allocation_from_labels
from repro.engine.dispatch import run_calls

__all__ = [
    "Table1Result",
    "Table2Result",
    "run_table1_collision_criteria",
    "run_table2_compiled_benchmarks",
]


@dataclass
class Table1Result:
    """One demonstration row per collision type."""

    rows: list[dict] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the per-criterion demonstrations."""
        header = ["type", "description", "frequencies (GHz)", "detected"]
        body = [
            [r["type"], r["description"], r["frequencies"], "yes" if r["detected"] else "NO"]
            for r in self.rows
        ]
        return format_table(header, body)


def run_table1_collision_criteria() -> Table1Result:
    """Check each Table I criterion on a minimal hand-crafted device.

    A three-qubit device (control ``Q1`` coupled to targets ``Q0`` and
    ``Q2``) is given frequency assignments that violate exactly one
    criterion at a time; the collision detector must flag each of them.
    (Fully deterministic — no seed parameter needed.)
    """
    spec = FrequencySpec()
    alpha = spec.anharmonicity_ghz
    labels = np.array([0, 2, 1])
    edges = [(1, 0), (1, 2)]
    allocation = allocation_from_labels(labels, edges, spec=spec)
    f0, f1, f2 = spec.frequencies

    cases = [
        (1, "f_i = f_j (near-null neighbours)", np.array([f2 + 0.001, f2, f1])),
        (2, "f_i + a/2 = f_j", np.array([f2 + alpha / 2.0, f2, f1])),
        (3, "f_i = f_j + a", np.array([f2 + alpha + 0.001, f2, f1])),
        (4, "target outside straddling regime", np.array([f2 + 0.05, f2, f1])),
        (5, "f_j = f_k (shared control)", np.array([f0, f2, f0 + 0.001])),
        (6, "f_j = f_k + a (shared control)", np.array([f0, f2, f0 - alpha - 0.001])),
        (7, "2 f_i + a = f_j + f_k", np.array([2 * f2 + alpha - f1 + 0.001, f2, f1])),
    ]
    result = Table1Result()
    for ctype, description, frequencies in cases:
        report = find_collisions(allocation, frequencies)
        detected = ctype in {t for t, _ in report.collisions}
        result.rows.append(
            {
                "type": ctype,
                "description": description,
                "frequencies": "/".join(f"{f:.3f}" for f in frequencies),
                "detected": detected,
            }
        )
    return result


@dataclass
class Table2Result:
    """Gate-count details for compiled benchmarks on 2x2 MCMs."""

    rows: list[dict] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the Table II rows."""
        header = ["chiplet", "dim", "qubits", "benchmark", "1q", "2q", "2q critical"]
        body = [
            [
                r["chiplet_size"],
                f"{r['grid'][0]}x{r['grid'][1]}",
                r["num_qubits"],
                r["benchmark"],
                r["num_one_qubit"],
                r["num_two_qubit"],
                r["two_qubit_critical_path"],
            ]
            for r in self.rows
        ]
        return format_table(header, body)


def compile_benchmark_row(
    chiplet_size: int,
    grid: tuple[int, int],
    benchmark: str,
    utilisation: float = 0.8,
    seed: int = 5,
) -> dict:
    """Compile one benchmark onto one MCM coupling map (engine task unit)."""
    from repro.core.mcm import MCMDesign  # local import to avoid cycles

    design = ChipletDesign.build(chiplet_size)
    mcm = MCMDesign.build(design, *grid)
    coupling = mcm.coupling_map()
    width = max(2, int(round(utilisation * mcm.num_qubits)))
    circuit = build_benchmark(benchmark, width, seed=seed)
    transpiled = transpile(circuit, coupling)
    return {
        "chiplet_size": chiplet_size,
        "grid": grid,
        "num_qubits": mcm.num_qubits,
        "benchmark": benchmark,
        "num_one_qubit": transpiled.metrics.num_one_qubit,
        "num_two_qubit": transpiled.metrics.num_two_qubit,
        "two_qubit_critical_path": transpiled.metrics.two_qubit_critical_path,
    }


def run_table2_compiled_benchmarks(
    chiplet_sizes: tuple[int, ...] = (10, 20, 40, 60, 90),
    grid: tuple[int, int] = (2, 2),
    benchmarks: tuple[str, ...] = BENCHMARK_NAMES,
    utilisation: float = 0.8,
    seed: int = 5,
    engine=None,
) -> Table2Result:
    """Regenerate Table II: compiled gate counts for the 2x2 MCM systems.

    Each (chiplet size, benchmark) compilation is independent, so with an
    ``engine`` the table's cells fan out over worker processes.
    """
    kwargs_list = [
        dict(
            chiplet_size=chiplet_size,
            grid=grid,
            benchmark=benchmark,
            utilisation=utilisation,
            seed=seed,
        )
        for chiplet_size in chiplet_sizes
        for benchmark in benchmarks
    ]
    rows = run_calls(
        compile_benchmark_row, kwargs_list, executor=engine, name="table2.compile"
    )
    return Table2Result(rows=rows)
