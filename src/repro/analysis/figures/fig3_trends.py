"""Fig. 3 — processor-size vs. CX infidelity trends."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import format_table
from repro.device.calibration import SyntheticCalibrationGenerator

__all__ = ["Fig3Result", "run_fig3_processor_trends"]


@dataclass
class Fig3Result:
    """CX-infidelity statistics per processor (Fig. 3b)."""

    rows: list[dict] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the per-processor statistics as a text table."""
        header = ["device", "qubits", "median", "mean", "q25", "q75", "iqr"]
        body = [
            [
                r["device"],
                r["qubits"],
                f"{r['median']:.4f}",
                f"{r['mean']:.4f}",
                f"{r['q25']:.4f}",
                f"{r['q75']:.4f}",
                f"{r['iqr']:.4f}",
            ]
            for r in self.rows
        ]
        return format_table(header, body)


def run_fig3_processor_trends(
    num_cycles: int = 15, seed: int = 11
) -> Fig3Result:
    """Regenerate Fig. 3(b): CX infidelity distributions vs. processor size."""
    generator = SyntheticCalibrationGenerator()
    suite = generator.generate_processor_suite(num_cycles=num_cycles, seed=seed)
    result = Fig3Result()
    for name, dataset in suite.items():
        values = dataset.all_infidelities()
        q25, q75 = np.percentile(values, [25, 75])
        result.rows.append(
            {
                "device": name,
                "qubits": dataset.num_qubits,
                "median": dataset.median_infidelity(),
                "mean": dataset.mean_infidelity(),
                "q25": float(q25),
                "q75": float(q75),
                "iqr": dataset.infidelity_iqr(),
            }
        )
    result.rows.sort(key=lambda r: r["qubits"])
    return result
