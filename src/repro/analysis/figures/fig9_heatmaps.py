"""Fig. 9 — average-infidelity heat-maps under four link scenarios."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.study import ArchitectureStudy
from repro.core.mcm import square_dimensions_for

__all__ = ["Fig9Result", "run_fig9_infidelity_heatmap"]


@dataclass
class Fig9Result:
    """E_avg ratios per scenario, chiplet size and square MCM dimension."""

    cells: list[dict] = field(default_factory=list)

    def ratios_for_scenario(self, scenario: str) -> dict[tuple[int, int], float]:
        """Map (chiplet size, grid dimension) -> ratio for one scenario."""
        return {
            (c["chiplet_size"], c["grid"][0]): c["ratio"]
            for c in self.cells
            if c["scenario"] == scenario
        }

    def fraction_below_one(self, scenario: str) -> float:
        """Fraction of (finite) cells where the MCM wins for one scenario."""
        ratios = [
            c["ratio"]
            for c in self.cells
            if c["scenario"] == scenario and np.isfinite(c["ratio"])
        ]
        if not ratios:
            return float("nan")
        return float(np.mean([r < 1.0 for r in ratios]))

    def best_ratio(self, scenario: str) -> float:
        """Lowest finite ratio for one scenario (the paper quotes ~0.815)."""
        ratios = [
            c["ratio"]
            for c in self.cells
            if c["scenario"] == scenario and np.isfinite(c["ratio"])
        ]
        return min(ratios) if ratios else float("nan")

    def format_table(self, scenario: str) -> str:
        """Render one scenario's heat-map as a table."""
        header = ["chiplet", "grid", "qubits", "E_mcm", "E_mono", "ratio"]
        body = []
        for cell in self.cells:
            if cell["scenario"] != scenario:
                continue
            ratio = cell["ratio"]
            body.append(
                [
                    cell["chiplet_size"],
                    f"{cell['grid'][0]}x{cell['grid'][1]}",
                    cell["num_qubits"],
                    f"{cell['mcm_eavg']:.4f}",
                    "n/a" if np.isnan(cell["mono_eavg"]) else f"{cell['mono_eavg']:.4f}",
                    "inf-yield" if not np.isfinite(ratio) else f"{ratio:.3f}",
                ]
            )
        return format_table(header, body)


def run_fig9_infidelity_heatmap(
    study: ArchitectureStudy,
    chiplet_sizes: tuple[int, ...] | None = None,
) -> Fig9Result:
    """Regenerate the Fig. 9 heat-maps for all four link scenarios.

    Like Fig. 8, the study's engine (when present) prefetches every bin,
    assembly and monolithic run the heat-maps touch in parallel waves.
    """
    config = study.config
    sizes = chiplet_sizes or tuple(
        s for s in config.chiplet_sizes if square_dimensions_for(s, config.max_qubits)
    )

    grids: list[tuple[int, tuple[int, int]]] = []
    monolithic_sizes: set[int] = set()
    for chiplet_size in sizes:
        for grid in square_dimensions_for(chiplet_size, config.max_qubits):
            grids.append((chiplet_size, grid))
            monolithic_sizes.add(chiplet_size * grid[0] * grid[1])
    study.prefetch(
        chiplet_sizes=sizes,
        mcm_grids=grids,
        monolithic_sizes=sorted(monolithic_sizes),
    )

    result = Fig9Result()
    for chiplet_size in sizes:
        for grid in square_dimensions_for(chiplet_size, config.max_qubits):
            mcm = study.mcm_result(chiplet_size, grid)
            mono = study.monolithic_result(mcm.design.num_qubits)
            # Scaled-yield comparison (Section VII-C2): the monolithic pool
            # contains only its collision-free devices, so the modular pool
            # is restricted to the same number of modules, built from the
            # best chiplets of the sorted, collision-free bin.
            num_mono_devices = int(
                round(mono.collision_free_yield * config.monolithic_batch_size)
            )
            count = max(1, num_mono_devices)
            for scenario in study.scenarios:
                mcm_eavg = mcm.eavg_for_scenario(scenario, count=count)
                ratio = (
                    mcm_eavg / mono.eavg
                    if np.isfinite(mono.eavg) and mono.eavg > 0
                    else float("inf")
                )
                result.cells.append(
                    {
                        "chiplet_size": chiplet_size,
                        "grid": grid,
                        "num_qubits": mcm.design.num_qubits,
                        "scenario": scenario.name,
                        "mcm_eavg": mcm_eavg,
                        "mono_eavg": mono.eavg,
                        "ratio": ratio,
                    }
                )
    return result
